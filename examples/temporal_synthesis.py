"""Temporal-pattern synthesis via the tsdiff auxiliary attribute (§3.2/§3.4).

Shows how NetDPSyn carries packet-arrival intervals through synthesis:
the tsdiff attribute is derived group-wise over the flow 5-tuple, binned
and published like any other field, then used to rebuild timestamps.
Compares raw vs synthetic inter-arrival distributions and flow-size
structure on a data-center packet trace.

    python examples/temporal_synthesis.py
"""

import numpy as np

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.binning.encoder import compute_tsdiff
from repro.metrics import earth_movers_distance
from repro.netml import build_flows


def interarrivals(table) -> np.ndarray:
    tsdiff = compute_tsdiff(table, table.schema.effective_flow_key())
    return tsdiff[tsdiff > 0]


def main() -> None:
    raw = load_dataset("dc", n_records=10000, seed=6)
    print(f"raw: {raw.n_records} packets, {len(build_flows(raw))} multi-packet flows")

    synthesizer = NetDPSyn(SynthesisConfig(epsilon=2.0), rng=6)
    synthetic = synthesizer.synthesize(raw)
    syn_flows = build_flows(synthetic)
    print(f"syn: {synthetic.n_records} packets, {len(syn_flows)} multi-packet flows")

    raw_iat = interarrivals(raw)
    syn_iat = interarrivals(synthetic)
    print("\ninter-arrival times (seconds):")
    print(f"  raw: median={np.median(raw_iat):.4f}  p90={np.quantile(raw_iat, 0.9):.4f}")
    print(f"  syn: median={np.median(syn_iat):.4f}  p90={np.quantile(syn_iat, 0.9):.4f}")
    print(f"  EMD = {earth_movers_distance(raw_iat, syn_iat):.4f}")

    raw_sizes = np.bincount(raw.group_ids(raw.schema.effective_flow_key()))
    syn_sizes = np.bincount(synthetic.group_ids(synthetic.schema.effective_flow_key()))
    print("\nflow sizes (packets per 5-tuple):")
    print(f"  raw: mean={raw_sizes.mean():.2f}  max={raw_sizes.max()}")
    print(f"  syn: mean={syn_sizes.mean():.2f}  max={syn_sizes.max()}")
    print(f"  EMD = {earth_movers_distance(raw_sizes, syn_sizes):.3f}")

    # Timestamps within a synthesized flow are strictly ordered by design.
    ordered = all((np.diff(f.timestamps) >= 0).all() for f in syn_flows)
    print(f"\nsynthesized flows time-ordered: {ordered}")


if __name__ == "__main__":
    main()
