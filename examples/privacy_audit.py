"""Privacy audit: membership inference against raw vs DP-synthesized data.

Reproduces the paper's Appendix G in miniature: the Yeom loss-threshold
attack succeeds well above chance against a model trained on raw flows,
and collapses toward chance when the model is trained on NetDPSyn output —
more so at smaller epsilon.  Also contrasts with CryptoPAn anonymization,
the classical redaction approach the paper argues is insufficient.

    python examples/privacy_audit.py
"""

import numpy as np

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.anonymization import CryptoPan
from repro.attacks import loss_threshold_mia
from repro.ml import DecisionTreeClassifier


def features(table, label):
    X, _ = table.feature_matrix(exclude=(label,))
    return X, np.asarray(table.column(label))


def main() -> None:
    raw = load_dataset("ton", n_records=6000, seed=4)
    label = raw.schema.label_field.name
    rng = np.random.default_rng(11)
    perm = rng.permutation(raw.n_records)
    n_test = raw.n_records // 5
    test, train = raw.take(perm[:n_test]), raw.take(perm[n_test:])

    X_train, y_train = features(train, label)
    X_test, y_test = features(test, label)

    print("=== membership inference (Yeom loss-threshold attack) ===")
    # The attack exploits overfitting, so the target is a deep memorizing tree.
    target = DecisionTreeClassifier(max_depth=40, min_samples_leaf=1, rng=0)
    target.fit(X_train, y_train)
    raw_attack = loss_threshold_mia(target, X_train, y_train, X_test, y_test, rng=1)
    print(f"model trained on RAW data:        attack accuracy {raw_attack.accuracy:.1%}")

    for eps in (2.0, 0.1):
        synthetic = NetDPSyn(SynthesisConfig(epsilon=eps), rng=5).synthesize(train)
        X_syn, y_syn = features(synthetic, label)
        surrogate = DecisionTreeClassifier(max_depth=40, min_samples_leaf=1, rng=0)
        surrogate.fit(X_syn, y_syn)
        attack = loss_threshold_mia(surrogate, X_train, y_train, X_test, y_test, rng=1)
        print(
            f"model trained on NetDPSyn eps={eps:<4}: attack accuracy {attack.accuracy:.1%}"
        )
    print("(paper App. G: 64.0% raw, 55.9% at eps=2, 40.9% at eps=0.1)")

    print("\n=== why not just anonymize IPs? (paper §2.1) ===")
    pan = CryptoPan(b"institutional-secret-key")
    srcips = np.asarray(train.column("srcip"), dtype=np.int64)[:2000]
    anonymized = pan.anonymize(srcips)
    # Prefix structure survives anonymization: subnet frequencies leak.
    raw_prefixes, raw_counts = np.unique(srcips >> 8, return_counts=True)
    anon_prefixes, anon_counts = np.unique(anonymized >> 8, return_counts=True)
    print(f"distinct /24 prefixes: raw={len(raw_prefixes)}, anonymized={len(anon_prefixes)}")
    print(
        "top-prefix share:      raw={:.1%}, anonymized={:.1%}".format(
            raw_counts.max() / len(srcips), anon_counts.max() / len(srcips)
        )
    )
    print("prefix-preserving anonymization keeps the traffic-volume fingerprint —")
    print("the institutional-privacy leak that motivates DP synthesis instead.")


if __name__ == "__main__":
    main()
