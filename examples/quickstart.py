"""Quickstart: synthesize a DP-protected flow trace and inspect its fidelity.

Runs the full NetDPSyn pipeline (binning → marginal selection → noisy
publication → GUMMI synthesis) on a TON-style IoT flow trace at the paper's
default budget (epsilon=2, delta=1e-5) and prints before/after statistics.

    python examples/quickstart.py
"""

import collections
import os

import numpy as np

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.metrics import earth_movers_distance, jensen_shannon_divergence


def main() -> None:
    raw = load_dataset("ton", n_records=8000, seed=0)
    print(f"raw trace: {raw.n_records} flows, fields: {list(raw.schema.names)}")

    config = SynthesisConfig(epsilon=2.0, delta=1e-5)
    synthesizer = NetDPSyn(config, rng=0)
    synthetic = synthesizer.synthesize(raw)
    print(f"synthetic trace: {synthetic.n_records} flows")

    print("\nfit-stage timings (synthesizer.fit_report):")
    for line in synthesizer.fit_report.lines():
        print(f"  {line}")

    ledger = synthesizer.ledger
    print(f"\nprivacy ledger (rho-zCDP): total={ledger.total:.4f}")
    for purpose, rho in ledger.entries():
        print(f"  {purpose:<32s} rho={rho:.4f}")

    # Fit once, sample anywhere: the saved model file carries everything a
    # stateless worker needs, and samples bit-identically to this instance.
    model_path = "quickstart-model.ndpsyn"
    synthesizer.save(model_path)
    loaded = NetDPSyn.load(model_path)
    check = loaded.sample(1000, rng=42)
    same = check.content_digest() == synthesizer.sample(1000, rng=42).content_digest()
    print(f"\nsaved model round trip ({model_path}): bit-identical={same}")
    os.unlink(model_path)

    print(f"\nselected 2-way marginals: {len(synthesizer.selection.pairs)}")
    print("published marginal tables:")
    for marginal in synthesizer.published:
        print(f"  {' x '.join(marginal.attrs):<40s} {marginal.n_cells:>6d} cells")

    print("\nattribute fidelity (raw vs synthetic):")
    for column in ("dstport", "proto", "type"):
        jsd = jensen_shannon_divergence(raw.column(column), synthetic.column(column))
        print(f"  JSD[{column:<8s}] = {jsd:.4f}")
    for column in ("pkt", "byt", "td"):
        emd = earth_movers_distance(
            np.asarray(raw.column(column), dtype=float),
            np.asarray(synthetic.column(column), dtype=float),
        )
        print(f"  EMD[{column:<8s}] = {emd:.2f}")

    print("\nlabel distribution:")
    raw_counts = collections.Counter(raw.column("type"))
    syn_counts = collections.Counter(synthetic.column("type"))
    for label in sorted(raw_counts):
        print(f"  {label:<12s} raw={raw_counts[label]:>5d}  syn={syn_counts.get(label, 0):>5d}")


if __name__ == "__main__":
    main()
