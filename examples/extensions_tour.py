"""Tour of the reproduction's extension features (the paper's follow-ups).

1. **User-level DP** (paper App. G future work): bound each source IP's
   contribution and pay the zCDP group-privacy cost so the *stated* epsilon
   protects whole users, not single flows.
2. **Gaussian-copula synthesis** (paper §2.3: "the result was
   unsatisfactory"): run the DP copula next to NetDPSyn and watch the
   downstream gap that made the authors drop it.

    python examples/extensions_tour.py
"""

import numpy as np

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.baselines import CopulaConfig, GaussianCopulaSynthesizer
from repro.core import UserLevelNetDPSyn
from repro.ml import DecisionTreeClassifier, accuracy_score


def downstream_accuracy(train_table, test_table, label="type") -> float:
    X, _ = train_table.feature_matrix(exclude=(label,))
    y = np.asarray(train_table.column(label))
    X_test, _ = test_table.feature_matrix(exclude=(label,))
    y_test = np.asarray(test_table.column(label))
    model = DecisionTreeClassifier(max_depth=12, rng=0)
    model.fit(X, y)
    return accuracy_score(y_test, model.predict(X_test))


def main() -> None:
    raw = load_dataset("ton", n_records=6000, seed=8)
    test = load_dataset("ton", n_records=1500, seed=88)

    print("=== user-level DP (contribution bounding + group privacy) ===")
    config = SynthesisConfig(epsilon=4.0)
    user_synth = UserLevelNetDPSyn(config, user_key="srcip", max_contribution=4, rng=8)
    print(f"user-level target: epsilon={config.epsilon}")
    print(f"record-level epsilon the pipeline runs at: {user_synth.record_level_epsilon:.4f}")
    user_out = user_synth.synthesize(raw)
    print(f"records after per-user cap of 4: {user_synth.bounded_records} (from {raw.n_records})")
    print(f"synthetic records: {user_out.n_records}")
    print(f"downstream DT accuracy: {downstream_accuracy(user_out, test):.3f}")

    print("\n=== Gaussian copula vs NetDPSyn (paper §2.3's dropped approach) ===")
    ours = NetDPSyn(SynthesisConfig(epsilon=2.0), rng=9).synthesize(raw)
    copula = GaussianCopulaSynthesizer(CopulaConfig(epsilon=2.0), rng=9).synthesize(raw)
    acc_real = downstream_accuracy(raw, test)
    acc_ours = downstream_accuracy(ours, test)
    acc_copula = downstream_accuracy(copula, test)
    print(f"DT accuracy — real: {acc_real:.3f}  NetDPSyn: {acc_ours:.3f}  copula: {acc_copula:.3f}")
    print("the copula keeps marginals but drops the multi-modal port/label joints —")
    print("the 'unsatisfactory' result that pushed the paper to marginal-based GUM.")


if __name__ == "__main__":
    main()
