"""Heavy-hitter sketching on synthesized packet traces (the paper's §4.2).

Synthesizes a CAIDA-style backbone packet trace under DP, then checks
whether four sketch algorithms (Count-Min, Count Sketch, UnivMon,
NitroSketch) see the same heavy-hitter estimation difficulty on synthetic
data as on raw data — Figure 2 in miniature.

    python examples/packet_sketching.py
"""

import numpy as np

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.sketch import (
    CountMinSketch,
    CountSketch,
    NitroSketch,
    UnivMon,
    exact_heavy_hitters,
    sketch_fidelity_error,
)

SKETCHES = {
    "CMS": lambda rng: CountMinSketch(width=1024, depth=4, rng=rng),
    "CS": lambda rng: CountSketch(width=1024, depth=5, rng=rng),
    "UM": lambda rng: UnivMon(levels=8, width=1024, depth=5, rng=rng),
    "NS": lambda rng: NitroSketch(width=1024, depth=5, sample_rate=0.25, rng=rng),
}


def main() -> None:
    raw = load_dataset("caida", n_records=12000, seed=2)
    raw_keys = np.asarray(raw.column("srcip"), dtype=np.int64)
    hh, counts = exact_heavy_hitters(raw_keys, threshold=0.001)
    print(f"raw trace: {len(raw_keys)} packets, {len(hh)} heavy hitters (>0.1%)")
    print(f"hottest source holds {counts.max() / len(raw_keys):.1%} of the stream")

    print("\nsynthesizing under epsilon=2 ...")
    synthetic = NetDPSyn(SynthesisConfig(epsilon=2.0), rng=2).synthesize(raw)
    syn_keys = np.asarray(synthetic.column("srcip"), dtype=np.int64)
    syn_hh, _ = exact_heavy_hitters(syn_keys, threshold=0.001)
    print(f"synthetic trace keeps {len(syn_hh)} heavy hitters")

    print(f"\n{'sketch':<8s} {'relative error':>15s}   (|err_syn - err_raw| / err_raw)")
    for name, factory in SKETCHES.items():
        error = sketch_fidelity_error(
            factory, raw_keys, syn_keys, threshold=0.001, trials=10, rng=5
        )
        print(f"{name:<8s} {error:>15.3f}")
    print("\nlower = synthetic data stresses the sketch like real data does")


if __name__ == "__main__":
    main()
