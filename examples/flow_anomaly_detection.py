"""Flow anomaly detection on synthesized traces (the paper's §4.3 use case).

Trains the paper's five classifiers on (a) raw flows and (b) NetDPSyn
output, evaluates both on held-out raw flows, and reports the accuracy gap
plus the Spearman rank correlation of the model rankings — Figure 3 and
Table 1 in miniature.

    python examples/flow_anomaly_detection.py
"""

import numpy as np

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.metrics import spearman_rank_correlation
from repro.ml import accuracy_score, build_classifier
from repro.ml.model_zoo import PAPER_MODELS


def features(table, label):
    X, _ = table.feature_matrix(exclude=(label,))
    return X, np.asarray(table.column(label))


def main() -> None:
    raw = load_dataset("ton", n_records=8000, seed=1)
    label = raw.schema.label_field.name

    # 80/20 random split, as in the paper (footnote 3).
    rng = np.random.default_rng(7)
    perm = rng.permutation(raw.n_records)
    n_test = raw.n_records // 5
    test, train = raw.take(perm[:n_test]), raw.take(perm[n_test:])

    print("synthesizing from the training split (epsilon=2)...")
    synthetic = NetDPSyn(SynthesisConfig(epsilon=2.0), rng=1).synthesize(train)

    X_test, y_test = features(test, label)
    results = {}
    for source_name, source in (("real", train), ("netdpsyn", synthetic)):
        X_train, y_train = features(source, label)
        for model_name in PAPER_MODELS:
            model = build_classifier(model_name, rng=3)
            model.fit(X_train, y_train)
            acc = accuracy_score(y_test, model.predict(X_test))
            results[(source_name, model_name)] = acc

    print(f"\n{'model':<6s} {'real':>8s} {'netdpsyn':>10s} {'gap':>8s}")
    for model_name in PAPER_MODELS:
        real = results[("real", model_name)]
        syn = results[("netdpsyn", model_name)]
        print(f"{model_name:<6s} {real:>8.3f} {syn:>10.3f} {real - syn:>8.3f}")

    rho = spearman_rank_correlation(
        [results[("real", m)] for m in PAPER_MODELS],
        [results[("netdpsyn", m)] for m in PAPER_MODELS],
    )
    print(f"\nSpearman rank correlation of model rankings: {rho:.2f}")
    print("(paper Table 1 reports 0.90 for NetDPSyn on TON)")


if __name__ == "__main__":
    main()
