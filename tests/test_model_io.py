"""Tests for model persistence: save/load round trips and format validation."""

import pickle

import pytest

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.experiments.fit_scaling import published_digest
from repro.io.model import MODEL_MAGIC, MODEL_VERSION, load_model, save_model


@pytest.fixture(scope="module")
def ton():
    return load_dataset("ton", n_records=1500, seed=3)


@pytest.fixture(scope="module")
def fitted(ton):
    config = SynthesisConfig(epsilon=2.0)
    config.gum.iterations = 8
    return NetDPSyn(config, rng=11).fit(ton)


@pytest.fixture()
def model_path(fitted, tmp_path):
    return save_model(fitted, tmp_path / "model.ndpsyn")


class TestRoundTrip:
    def test_samples_bit_identical(self, fitted, model_path):
        loaded = NetDPSyn.load(model_path)
        assert (
            loaded.sample(500, rng=9).content_digest()
            == fitted.sample(500, rng=9).content_digest()
        )
        # And again with a different seed: the plan is fully restored, not
        # merely cached output.
        assert (
            loaded.sample(200, rng=1).content_digest()
            == fitted.sample(200, rng=1).content_digest()
        )

    def test_sharded_sampling_from_loaded_model(self, fitted, model_path):
        loaded = load_model(model_path)
        a = fitted.sample(600, rng=4, shards=2, backend="process")
        b = loaded.sample(600, rng=4, shards=2, backend="process")
        assert a.content_digest() == b.content_digest()

    def test_seed_sequence_continuation(self, ton, tmp_path):
        """rng=None sampling continues the saved instance's stream."""

        def fresh():
            config = SynthesisConfig(epsilon=2.0)
            config.gum.iterations = 8
            return NetDPSyn(config, rng=21).fit(ton)

        original = fresh()
        path = save_model(original, tmp_path / "cont.ndpsyn")
        loaded = load_model(path)
        assert (
            original.sample(300).content_digest()
            == loaded.sample(300).content_digest()
        )

    def test_metadata_restored(self, fitted, model_path):
        loaded = load_model(model_path)
        assert loaded.config.epsilon == fitted.config.epsilon
        assert loaded.ledger.total == fitted.ledger.total
        assert loaded.ledger.spent == fitted.ledger.spent
        assert loaded.ledger.entries() == fitted.ledger.entries()
        assert loaded.selection.pairs == fitted.selection.pairs
        assert published_digest(loaded.published) == published_digest(fitted.published)
        assert loaded.fit_report.stage_seconds == fitted.fit_report.stage_seconds

    def test_loaded_model_needs_no_encoder(self, model_path):
        loaded = load_model(model_path)
        assert loaded.encoder is None
        assert loaded.plan() is loaded.plan()
        assert loaded.sample(100).n_records == 100


class TestValidation:
    def test_save_requires_fit(self, tmp_path):
        with pytest.raises(RuntimeError, match="fit"):
            NetDPSyn().save(tmp_path / "unfitted.ndpsyn")

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "garbage.ndpsyn"
        path.write_bytes(b"definitely not a model file")
        with pytest.raises(ValueError, match="not a NetDPSyn model"):
            load_model(path)

    def test_rejects_wrong_payload_format(self, tmp_path):
        path = tmp_path / "wrong.ndpsyn"
        with open(path, "wb") as fh:
            fh.write(MODEL_MAGIC)
            pickle.dump({"format": "something-else", "version": 1}, fh)
        with pytest.raises(ValueError, match="not a NetDPSyn model"):
            load_model(path)

    def test_rejects_future_version(self, model_path, tmp_path):
        with open(model_path, "rb") as fh:
            fh.read(len(MODEL_MAGIC))
            payload = pickle.load(fh)
        payload["version"] = MODEL_VERSION + 1
        future = tmp_path / "future.ndpsyn"
        with open(future, "wb") as fh:
            fh.write(MODEL_MAGIC)
            pickle.dump(payload, fh)
        with pytest.raises(ValueError, match="version"):
            load_model(future)

    def test_rejects_truncated_file(self, model_path, tmp_path):
        blob = model_path.read_bytes()
        truncated = tmp_path / "truncated.ndpsyn"
        truncated.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_model(truncated)


class TestRunnerPersistence:
    def test_model_dir_saves_then_loads(self, tmp_path):
        from repro.experiments.runner import ExperimentScale, clear_cache, synthesize_cached

        scale = ExperimentScale(n_records=800, seed=0, gum_iterations=5)
        clear_cache()
        try:
            first, _ = synthesize_cached("netdpsyn", "ton", scale, model_dir=tmp_path)
            saved = list(tmp_path.glob("*.ndpsyn"))
            assert len(saved) == 1
            clear_cache()
            second, _ = synthesize_cached("netdpsyn", "ton", scale, model_dir=tmp_path)
        finally:
            clear_cache()
        assert first.content_digest() == second.content_digest()
