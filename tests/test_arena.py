"""Tests for the contiguous columnar arena (:mod:`repro.data.arena`).

The arena is the wire form of a table's buffer layout — everything else in
the data plane (shm descriptors, concat stitching, the Arrow wrap) builds on
the contract pinned here: ``from_arena(to_arena(t))`` is digest-identical to
``t`` for every dtype and schema shape, raw columns reconstruct as zero-copy
views, and the :data:`~repro.data.arena.copy_stats` ledger observes exactly
the byte movements it claims to.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.arena import (
    ARENA_ALIGN,
    SLOT_DICT,
    SLOT_PICKLE,
    SLOT_RAW,
    TableArena,
    copy_stats,
    plan_layout,
)
from repro.data.schema import FieldKind, FieldSpec, Schema
from repro.data.table import TraceTable


def _spec(name: str, kind=FieldKind.NUMERIC, categories=None) -> FieldSpec:
    return FieldSpec(name=name, kind=kind, categories=categories)


_COLUMN_KINDS = (
    "int64",
    "int32",
    "uint16",
    "float64",
    "float32",
    "bool",
    "fixed_str",
    "object_str",
    "object_mixed",
)


def _make_column(kind: str, n: int, rng: np.random.Generator):
    if kind == "int64":
        return rng.integers(-(2**40), 2**40, size=n)
    if kind == "int32":
        return rng.integers(0, 2**20, size=n).astype(np.int32)
    if kind == "uint16":
        return rng.integers(0, 2**16, size=n).astype(np.uint16)
    if kind == "float64":
        return rng.standard_normal(n)
    if kind == "float32":
        return rng.standard_normal(n).astype(np.float32)
    if kind == "bool":
        return rng.integers(0, 2, size=n).astype(bool)
    if kind == "fixed_str":
        return np.array([f"v{int(v)}" for v in rng.integers(0, 50, size=n)])
    if kind == "object_str":
        choices = np.array(["tcp", "udp", "icmp", "-"], dtype=object)
        return choices[rng.integers(0, len(choices), size=n)]
    if kind == "object_mixed":
        # Unorderable mix: forces the pickle fallback slot.
        pool = [1, "one", 2.5, None]
        return np.array([pool[int(i)] for i in rng.integers(0, 4, size=n)], dtype=object)
    raise AssertionError(kind)


@st.composite
def _tables(draw):
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    n = draw(st.integers(min_value=0, max_value=120))
    kinds = draw(
        st.lists(st.sampled_from(_COLUMN_KINDS), min_size=1, max_size=6)
    )
    columns = {}
    specs = []
    for i, kind in enumerate(kinds):
        name = f"c{i}_{kind}"
        columns[name] = _make_column(kind, n, rng)
        specs.append(_spec(name))
    return TraceTable(Schema(kind="flow", fields=tuple(specs)), columns)


class TestArenaRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(table=_tables())
    def test_round_trip_is_digest_identical(self, table):
        restored = TraceTable.from_arena(table.to_arena())
        assert restored.content_digest() == table.content_digest()

    @settings(max_examples=20, deadline=None)
    @given(table=_tables())
    def test_round_trip_preserves_dtypes_and_length(self, table):
        restored = TraceTable.from_arena(table.to_arena())
        assert restored.n_records == table.n_records
        for name in table.schema.names:
            assert restored.column(name).dtype == table.column(name).dtype

    def test_raw_columns_are_views_over_the_buffer(self):
        table = TraceTable(
            Schema(kind="flow", fields=(_spec("a"), _spec("b"))),
            {"a": np.arange(100, dtype=np.int64), "b": np.ones(100)},
        )
        arena = table.to_arena()
        restored = arena.to_table()
        for name in ("a", "b"):
            assert restored.column(name).base is not None
            assert np.shares_memory(restored.column(name), arena.buffer)

    def test_slot_kinds_and_alignment(self):
        rng = np.random.default_rng(1)
        table = TraceTable(
            Schema(kind="flow", fields=(_spec("num"), _spec("cat"), _spec("mix"))),
            {
                "num": np.arange(50, dtype=np.int64),
                "cat": _make_column("object_str", 50, rng),
                "mix": _make_column("object_mixed", 50, rng),
            },
        )
        slots, nbytes, _, extras = plan_layout(table)
        by_name = {slot.name: slot for slot in slots}
        assert by_name["num"].kind == SLOT_RAW
        assert by_name["cat"].kind == SLOT_DICT
        assert by_name["mix"].kind == SLOT_PICKLE
        for slot in slots:
            if slot.kind != SLOT_PICKLE:
                assert slot.offset % ARENA_ALIGN == 0
        assert "cat" in extras and "mix" in extras

    def test_dict_slot_payload_is_four_bytes_per_row(self):
        rng = np.random.default_rng(2)
        n = 1000
        table = TraceTable(
            Schema(kind="flow", fields=(_spec("cat"),)),
            {"cat": _make_column("object_str", n, rng)},
        )
        slots, nbytes, _, _ = plan_layout(table)
        assert slots[0].kind == SLOT_DICT
        assert nbytes == 4 * n

    def test_empty_table_round_trips(self):
        table = TraceTable(
            Schema(kind="flow", fields=(_spec("a"),)), {"a": np.array([], dtype=np.int64)}
        )
        restored = TraceTable.from_arena(table.to_arena())
        assert restored.n_records == 0
        assert restored.content_digest() == table.content_digest()


class TestCopyStats:
    def test_arena_alloc_tracks_high_water_mark(self):
        copy_stats.reset()
        base = copy_stats.snapshot()["arena_bytes_in_use"]
        table = TraceTable(
            Schema(kind="flow", fields=(_spec("a"),)),
            {"a": np.arange(10_000, dtype=np.int64)},
        )
        arena = table.to_arena()
        snap = copy_stats.snapshot()
        assert snap["arena_bytes_in_use"] == base + arena.nbytes
        assert snap["arena_bytes_peak"] >= base + arena.nbytes
        del arena
        import gc

        gc.collect()
        assert copy_stats.snapshot()["arena_bytes_in_use"] == base

    def test_pickle_slot_bytes_are_counted(self):
        rng = np.random.default_rng(3)
        table = TraceTable(
            Schema(kind="flow", fields=(_spec("mix"),)),
            {"mix": _make_column("object_mixed", 40, rng)},
        )
        arena = table.to_arena()
        assert arena.pickled_column_bytes() > 0

    def test_concat_all_stitches_into_one_arena(self):
        copy_stats.reset()
        before = copy_stats.snapshot()["stitch_bytes"]
        parts = [
            TraceTable(
                Schema(kind="flow", fields=(_spec("a"), _spec("b"))),
                {
                    "a": np.arange(500, dtype=np.int64) + i,
                    "b": np.ones(500) * i,
                },
            )
            for i in range(4)
        ]
        merged = TraceTable.concat_all(parts)
        assert merged.n_records == 2000
        # Both columns are views over the same stitched buffer.
        assert np.shares_memory(merged.column("a").base, merged.column("b").base)
        stitched = copy_stats.snapshot()["stitch_bytes"] - before
        assert stitched == 2000 * 8 * 2
        expected = np.concatenate([p.column("a") for p in parts])
        assert np.array_equal(merged.column("a"), expected)

    def test_reset_does_not_zero_live_arenas(self):
        table = TraceTable(
            Schema(kind="flow", fields=(_spec("a"),)),
            {"a": np.arange(10_000, dtype=np.int64)},
        )
        arena = table.to_arena()
        copy_stats.reset()
        snap = copy_stats.snapshot()
        assert snap["arena_bytes_in_use"] >= arena.nbytes
        assert snap["arena_bytes_peak"] == snap["arena_bytes_in_use"]


class TestTrustedConstructor:
    def test_transforms_skip_revalidation_but_preserve_content(self):
        table = TraceTable(
            Schema(kind="flow", fields=(_spec("a"), _spec("b"))),
            {"a": np.arange(100, dtype=np.int64), "b": np.arange(100) * 0.5},
        )
        out = table.filter(table.column("a") % 2 == 0).sort_by("a").head(10)
        assert out.n_records == 10
        assert np.array_equal(out.column("a"), np.arange(0, 20, 2))

    def test_public_constructor_still_validates(self):
        schema = Schema(kind="flow", fields=(_spec("a"),))
        with pytest.raises(ValueError, match="missing"):
            TraceTable(schema, {})
        with pytest.raises(ValueError, match="not in schema"):
            TraceTable(schema, {"a": np.arange(3), "zz": np.arange(3)})
