"""Unit tests for marginal computation, InDif, DenseMarg, combining, publishing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binning import DatasetEncoder, EncoderConfig
from repro.data.domain import Domain
from repro.datasets import load_dataset
from repro.marginals import (
    Marginal,
    combine_attr_sets,
    compute_marginal,
    cover_all_attributes,
    independent_difference,
    marginal_counts,
    noisy_indif_scores,
    publish_marginals,
    select_pairs,
)


@pytest.fixture(scope="module")
def encoded():
    table = load_dataset("ton", n_records=1200, seed=11)
    encoder = DatasetEncoder(EncoderConfig()).fit(table, rho=0.05, rng=13)
    return encoder.encode(table)


class TestMarginal:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Marginal(("a", "b"), np.zeros(4))

    def test_project_sums_out(self):
        m = Marginal(("a", "b"), np.array([[1.0, 2.0], [3.0, 4.0]]))
        pa = m.project(("a",))
        assert np.allclose(pa.counts, [3.0, 7.0])
        pb = m.project(("b",))
        assert np.allclose(pb.counts, [4.0, 6.0])

    def test_project_reorders_axes(self):
        m = Marginal(("a", "b"), np.arange(6.0).reshape(2, 3))
        swapped = m.project(("b", "a"))
        assert swapped.shape == (3, 2)
        assert np.allclose(swapped.counts, m.counts.T)

    def test_project_unknown_attr(self):
        m = Marginal(("a",), np.ones(2))
        with pytest.raises(KeyError):
            m.project(("zzz",))

    def test_normalized(self):
        m = Marginal(("a",), np.array([1.0, 3.0]))
        assert np.allclose(m.normalized(), [0.25, 0.75])

    def test_scale_to(self):
        m = Marginal(("a",), np.array([1.0, 1.0]))
        assert m.scale_to(10.0).total == pytest.approx(10.0)

    def test_l1_distance(self):
        a = Marginal(("x",), np.array([1.0, 2.0]))
        b = Marginal(("x",), np.array([2.0, 0.0]))
        assert a.l1_distance(b) == pytest.approx(3.0)


class TestComputeMarginal:
    def test_counts_sum_to_n(self, encoded):
        m = compute_marginal(encoded, ("proto", "type"))
        assert m.total == pytest.approx(encoded.n_records)

    def test_matches_manual_bincount(self, encoded):
        m = compute_marginal(encoded, ("proto",))
        manual = np.bincount(encoded.column("proto"), minlength=encoded.domain.size("proto"))
        assert np.array_equal(m.counts, manual)

    def test_marginal_counts_shape_mismatch(self):
        with pytest.raises(ValueError):
            marginal_counts(np.zeros((5, 2), dtype=int), (3,))

    def test_empty_data(self):
        out = marginal_counts(np.empty((0, 2), dtype=int), (2, 3))
        assert out.shape == (2, 3)
        assert out.sum() == 0


class TestInDif:
    def test_independent_attrs_score_low(self):
        rng = np.random.default_rng(0)
        n = 4000
        data = np.stack([rng.integers(0, 4, n), rng.integers(0, 4, n)], axis=1)

        class Fake:
            attrs = ("a", "b")
            domain = Domain({"a": 4, "b": 4})

            def project(self, attrs):
                idx = [("a", "b").index(x) for x in attrs]
                return data[:, idx]

        fake = Fake()
        score = independent_difference(fake, "a", "b")
        # Perfectly correlated copy for contrast.
        data2 = np.stack([data[:, 0], data[:, 0]], axis=1)

        class Fake2(Fake):
            def project(self, attrs):
                idx = [("a", "b").index(x) for x in attrs]
                return data2[:, idx]

        assert independent_difference(Fake2(), "a", "b") > 10 * score

    def test_label_pairs_rank_high(self, encoded):
        scores = noisy_indif_scores(encoded, rho=None, rng=1)
        ranked = sorted(scores, key=scores.get, reverse=True)
        top_attrs = {a for pair in ranked[:8] for a in pair}
        assert "type" in top_attrs  # label correlations dominate TON

    def test_noise_applied(self, encoded):
        exact = noisy_indif_scores(encoded, rho=None, rng=1)
        noisy = noisy_indif_scores(encoded, rho=0.01, rng=1)
        diffs = [abs(exact[p] - noisy[p]) for p in exact]
        assert max(diffs) > 0

    def test_scores_non_negative(self, encoded):
        noisy = noisy_indif_scores(encoded, rho=0.001, rng=2)
        assert all(v >= 0 for v in noisy.values())


class TestDenseMarg:
    def test_strong_dependencies_selected_first(self):
        indif = {("a", "b"): 1000.0, ("a", "c"): 900.0, ("b", "c"): 1.0}
        cells = {("a", "b"): 100, ("a", "c"): 100, ("b", "c"): 100}
        result = select_pairs(indif, cells, rho_publish=0.1)
        assert ("a", "b") in result.pairs
        assert ("a", "c") in result.pairs

    def test_tiny_budget_selects_nothing_weak(self):
        indif = {("a", "b"): 0.5}
        cells = {("a", "b"): 10**6}
        result = select_pairs(indif, cells, rho_publish=1e-6)
        assert result.pairs == []
        assert result.dependency_error == pytest.approx(0.5)

    def test_max_pairs_cap(self):
        indif = {(f"a{i}", f"b{i}"): 100.0 for i in range(10)}
        cells = {p: 10 for p in indif}
        result = select_pairs(indif, cells, rho_publish=1.0, max_pairs=3)
        assert len(result.pairs) == 3

    def test_error_accounting(self):
        indif = {("a", "b"): 100.0, ("c", "d"): 50.0}
        cells = {("a", "b"): 10, ("c", "d"): 10}
        result = select_pairs(indif, cells, rho_publish=10.0)
        assert result.total_error <= 150.0  # selecting must not hurt

    def test_missing_cells_raises(self):
        with pytest.raises(KeyError):
            select_pairs({("a", "b"): 1.0}, {}, rho_publish=1.0)


class TestCombine:
    def test_overlapping_pairs_merge(self):
        domain = Domain({"a": 4, "b": 4, "c": 4})
        sets = combine_attr_sets([("a", "b"), ("b", "c")], domain, max_cells=1000)
        assert sets == [("a", "b", "c")]

    def test_oversized_union_not_merged(self):
        domain = Domain({"a": 100, "b": 100, "c": 100})
        sets = combine_attr_sets([("a", "b"), ("b", "c")], domain, max_cells=10_000)
        assert len(sets) == 2

    def test_disjoint_pairs_kept(self):
        domain = Domain({"a": 2, "b": 2, "c": 2, "d": 2})
        sets = combine_attr_sets([("a", "b"), ("c", "d")], domain, max_cells=100)
        assert len(sets) == 2

    def test_cover_all_attributes(self):
        domain = Domain({"a": 2, "b": 2, "c": 2})
        sets = cover_all_attributes([("a", "b")], domain)
        assert ("c",) in sets


class TestPublish:
    def test_budget_split_and_sigma(self, encoded):
        marginals = publish_marginals(encoded, [("proto",), ("proto", "type")], 0.1, rng=3)
        assert sum(m.rho for m in marginals) == pytest.approx(0.1)
        big, small = marginals[1], marginals[0]
        # Weighted allocation: larger marginal gets more budget.
        assert big.rho > small.rho

    def test_exact_mode(self, encoded):
        marginals = publish_marginals(encoded, [("proto",)], None, rng=3)
        assert marginals[0].rho is None
        assert marginals[0].total == pytest.approx(encoded.n_records)

    def test_noise_magnitude(self, encoded):
        m = publish_marginals(encoded, [("proto",)], 0.5, rng=3)[0]
        exact = compute_marginal(encoded, ("proto",))
        assert m.l1_distance(exact) > 0
        assert abs(m.total - exact.total) < 100  # noise, not distortion

    @given(st.integers(min_value=1, max_value=10**5))
    @settings(max_examples=20)
    def test_sigma_decreases_with_rho_property(self, cells):
        from repro.dp.mechanisms import gaussian_sigma

        assert gaussian_sigma(1.0, 0.8) < gaussian_sigma(1.0, 0.1)
