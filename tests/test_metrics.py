"""Unit tests for the fidelity metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    earth_movers_distance,
    jensen_shannon_divergence,
    normalize_emds,
    relative_error,
    spearman_rank_correlation,
    total_variation,
)
from repro.metrics.error import mean_relative_error


class TestJsd:
    def test_identical_distributions_zero(self):
        a = ["x", "y", "x", "z"]
        assert jensen_shannon_divergence(a, list(a)) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_distributions_one(self):
        assert jensen_shannon_divergence(["a"] * 10, ["b"] * 10) == pytest.approx(1.0)

    def test_symmetry(self):
        a = ["x"] * 8 + ["y"] * 2
        b = ["x"] * 3 + ["y"] * 7
        assert jensen_shannon_divergence(a, b) == pytest.approx(
            jensen_shannon_divergence(b, a)
        )

    def test_bounded(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, 100)
        b = rng.integers(0, 8, 100)
        assert 0.0 <= jensen_shannon_divergence(a, b) <= 1.0

    def test_works_on_integers(self):
        assert jensen_shannon_divergence([1, 1, 2], [1, 1, 2]) == pytest.approx(0.0)


class TestEmd:
    def test_identical_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        assert earth_movers_distance(a, a) == pytest.approx(0.0)

    def test_constant_shift(self):
        a = np.array([0.0, 1.0, 2.0])
        assert earth_movers_distance(a, a + 5.0) == pytest.approx(5.0)

    def test_point_masses(self):
        assert earth_movers_distance([0.0], [3.0]) == pytest.approx(3.0)

    def test_matches_scipy(self):
        from scipy.stats import wasserstein_distance

        rng = np.random.default_rng(1)
        a = rng.exponential(2.0, 300)
        b = rng.exponential(3.0, 200)
        assert earth_movers_distance(a, b) == pytest.approx(
            wasserstein_distance(a, b), rel=1e-9
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            earth_movers_distance([], [1.0])

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=30),
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=30),
    )
    @settings(max_examples=50)
    def test_non_negative_symmetric_property(self, a, b):
        d1 = earth_movers_distance(a, b)
        d2 = earth_movers_distance(b, a)
        assert d1 >= 0
        assert d1 == pytest.approx(d2, abs=1e-9)


class TestTotalVariation:
    def test_bounds(self):
        assert total_variation(["a"] * 5, ["a"] * 5) == pytest.approx(0.0)
        assert total_variation(["a"] * 5, ["b"] * 5) == pytest.approx(1.0)


class TestNormalizeEmds:
    def test_range_mapping(self):
        scaled = normalize_emds({"a": 0.0, "b": 5.0, "c": 10.0})
        assert scaled["a"] == pytest.approx(0.1)
        assert scaled["b"] == pytest.approx(0.5)
        assert scaled["c"] == pytest.approx(0.9)

    def test_degenerate_all_equal(self):
        scaled = normalize_emds({"a": 3.0, "b": 3.0})
        assert scaled["a"] == pytest.approx(0.5)

    def test_constant_dict_no_division_by_zero(self):
        # lo == hi across the whole dict (vmax - vmin == 0): every value maps
        # to the band midpoint instead of dividing by the zero range.
        for value in (0.0, 7.25):
            scaled = normalize_emds({"a": value, "b": value, "c": value})
            assert all(np.isfinite(v) for v in scaled.values())
            assert all(v == pytest.approx(0.5) for v in scaled.values())
        single = normalize_emds({"only": 2.0}, lo=0.2, hi=0.6)
        assert single["only"] == pytest.approx(0.4)

    def test_empty(self):
        assert normalize_emds({}) == {}


class TestRelativeError:
    def test_basic(self):
        assert relative_error(12.0, 10.0) == pytest.approx(0.2)

    def test_zero_raw_guarded(self):
        assert relative_error(1.0, 0.0) > 0

    def test_zero_denominator_contract(self):
        # Aligned zeros are perfect agreement, not 0/0.
        assert relative_error(0.0, 0.0) == 0.0
        # A zero raw value against a non-zero synthetic one is the finite
        # sentinel |syn| / eps (never inf/nan, so means stay finite).
        assert relative_error(3.0, 0.0) == pytest.approx(3.0e12)
        assert relative_error(3.0, 0.0, eps=1e-6) == pytest.approx(3.0e6)
        assert np.isfinite(relative_error(1e9, 0.0))
        # Sub-eps raw values take the same branch as exact zeros.
        assert relative_error(0.0, 1e-15) == 0.0
        assert relative_error(2.0, 1e-15) == pytest.approx(2.0e12)

    def test_mean_relative_error_zero_denominator_contract(self):
        # Element-wise: [aligned zeros, zero raw vs non-zero syn, regular].
        got = mean_relative_error([0.0, 2.0, 4.0], [0.0, 0.0, 2.0], eps=1e-6)
        assert got == pytest.approx((0.0 + 2.0e6 + 1.0) / 3)
        assert mean_relative_error([0.0, 0.0], [0.0, 0.0]) == 0.0

    def test_mean_relative_error(self):
        assert mean_relative_error([2.0, 4.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_mean_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_relative_error([1.0], [1.0, 2.0])


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman_rank_correlation([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        from scipy.stats import spearmanr

        rng = np.random.default_rng(2)
        a = rng.random(20)
        b = rng.random(20)
        assert spearman_rank_correlation(a, b) == pytest.approx(
            spearmanr(a, b).statistic, rel=1e-9
        )

    def test_ties_handled(self):
        from scipy.stats import spearmanr

        a = [1.0, 1.0, 2.0, 3.0]
        b = [4.0, 4.0, 5.0, 5.0]
        assert spearman_rank_correlation(a, b) == pytest.approx(
            spearmanr(a, b).statistic, rel=1e-9
        )

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1], [1, 2])
        with pytest.raises(ValueError):
            spearman_rank_correlation([1], [2])
