"""Chaos suite: fault injection, deterministic recovery, graceful degradation.

The reliability contract under test:

- **Engine recovery is bit-identical.**  A killed worker, a vanished shm
  segment, or an injected transient error resubmits only the failed shards
  on their original ``SeedSequence`` children, so the recovered run's
  content digest equals the fault-free run's — for ``sample()`` and for
  ``sample_stream()`` mid-stream, on the process and shared backends.
- **Failures are attributed.**  Anything crossing ``run_tasks`` out of a
  process pool is a :class:`ShardTaskError` with the shard index, the
  attempt count, and the worker-side traceback text.
- **Serving degrades, never hangs, never 500s untyped.**  Deadlines map to
  504, load shedding and breaker-open to typed 503s with ``Retry-After``;
  while the breaker is open, marginal-path queries still answer.
- **A corrupt model file cannot take a serving model down.**  The registry
  keeps serving the previous generation and reports the failure in stats.

Worker-side fault injection (kill/drop_shm inside pool workers) relies on
``fork`` inheritance of the installed injector; those tests skip on spawn
platforms.  ``REPRO_FAULT_SEED`` pins the retry jitter in CI.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.engine import ShardTaskError, get_backend
from repro.reliability import (
    KIND_CORRUPT_MODEL,
    KIND_DROP_SHM,
    KIND_ERROR,
    KIND_KILL,
    SITE_MODEL_LOAD,
    SITE_QUERY,
    SITE_SHARD,
    SITE_SHM_EXPORT,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultError,
    FaultSpec,
    RetryPolicy,
    inject,
    maybe_fire,
)
from repro.serving import (
    CircuitOpen,
    EngineFaultError,
    ModelRegistry,
    ModelUnavailable,
    Prefer,
    QueryService,
    RequestDeadlineExceeded,
    ServiceConfig,
    ServiceOverloaded,
    answers_equal,
    count,
    topk,
)
from repro.serving.http import DEADLINE_HEADER, serve_in_thread

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker-side fault injection relies on fork inheritance",
)

N_FIT = 1200
N_SAMPLE = 1200


def _shm_segments() -> set:
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(("psm_", "nds"))
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture(scope="module")
def fitted():
    table = load_dataset("ton", n_records=N_FIT, seed=3)
    config = SynthesisConfig(epsilon=2.0)
    config.gum.iterations = 6
    return NetDPSyn(config, rng=11).fit(table)


@pytest.fixture()
def model_dir(tmp_path, fitted):
    fitted.save(tmp_path / "ton.ndpsyn")
    return tmp_path


def _service(model_dir, **config_kwargs) -> QueryService:
    config_kwargs.setdefault("engine_options", {"sample_records": 3000})
    return QueryService(ModelRegistry(model_dir), ServiceConfig(**config_kwargs))


# ------------------------------------------------------------ policy units
class FakeClock:
    def __init__(self) -> None:
        self.t = 100.0

    def __call__(self) -> float:
        return self.t


class TestRetryPolicy:
    def test_same_seed_same_delays(self):
        a = RetryPolicy(max_retries=3, seed=7)
        b = RetryPolicy(max_retries=3, seed=7)
        assert [a.delay(i) for i in (1, 2, 3)] == [b.delay(i) for i in (1, 2, 3)]

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0)
        assert [policy.delay(i) for i in (1, 2, 3, 4)] == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_stretches_within_band(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5, seed=1)
        for attempt in range(1, 20):
            assert 0.1 <= policy.delay(attempt) <= 0.15 + 1e-12

    def test_retry_budget(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.retryable(1) and policy.retryable(2) and not policy.retryable(3)
        assert not RetryPolicy(max_retries=0).retryable(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        clock.t += 4.0
        assert not deadline.expired
        deadline.check()  # no raise
        clock.t += 2.0
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded, match="fetch"):
            deadline.check("fetch")

    def test_clamp(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.clamp(5.0) == pytest.approx(2.0)
        assert deadline.clamp(0.5) == pytest.approx(0.5)
        assert deadline.clamp(None) == pytest.approx(2.0)

    def test_after_none_is_unbounded(self):
        assert Deadline.after(None) is None
        assert Deadline.after(1.0).budget == 1.0


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("failure_threshold", 2)
        kwargs.setdefault("reset_timeout", 10.0)
        return CircuitBreaker(clock=clock, **kwargs), clock

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self._breaker()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats()["opens"] == 1
        assert breaker.stats()["rejections"] == 1

    def test_success_resets_the_count(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_then_close(self):
        breaker, clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.t += 10.0
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe slot
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker, clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock.t += 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.stats()["opens"] == 2
        assert breaker.retry_after() == pytest.approx(10.0)


# ---------------------------------------------------------- injector units
class TestFaultInjector:
    def test_fires_exactly_times(self):
        with inject(
            FaultSpec(kind="delay", site=SITE_SHARD, times=2, delay_seconds=0.0)
        ) as injector:
            assert injector.fire(SITE_SHARD) is not None
            assert injector.fire(SITE_SHARD) is not None
            assert injector.fire(SITE_SHARD) is None
            assert injector.fired() == 2

    def test_index_matching(self):
        with inject(FaultSpec(kind="delay", site=SITE_SHARD, index=3, delay_seconds=0.0)) as injector:
            assert injector.fire(SITE_SHARD, index=1) is None
            assert injector.fire(SITE_SHARD, index=3) is not None
            assert injector.fire(SITE_SHARD, index=3) is None

    def test_error_kind_raises(self):
        with inject(FaultSpec(kind=KIND_ERROR, site=SITE_QUERY)):
            with pytest.raises(FaultError):
                maybe_fire(SITE_QUERY)

    def test_uninstalled_is_noop(self):
        assert maybe_fire(SITE_SHARD) is None

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="nope", site=SITE_SHARD)
        with pytest.raises(ValueError):
            FaultSpec(kind=KIND_KILL, site=SITE_SHARD, times=0)


# ------------------------------------------------------- engine attribution
def _chaos_task(shared, index):
    maybe_fire(SITE_SHARD, index=index)
    return index * 2


def _boom_task(shared, seed):
    if seed == 1:
        raise RuntimeError("chaos boom")
    return seed


class TestShardAttribution:
    def test_process_wraps_failures_in_shard_task_error(self):
        runner = get_backend("process", 2)
        try:
            with pytest.raises(ShardTaskError, match="chaos boom") as excinfo:
                runner.run_tasks(_boom_task, [(0,), (1,), (2,)])
        finally:
            runner.close()
        error = excinfo.value
        assert error.index == 1
        assert error.transient is False
        assert error.attempts == 1
        assert isinstance(error.__cause__, RuntimeError)
        assert error.remote_traceback and "chaos boom" in error.remote_traceback

    def test_serial_keeps_raw_exceptions(self):
        runner = get_backend("serial")
        with pytest.raises(RuntimeError, match="chaos boom"):
            runner.run_tasks(_boom_task, [(0,), (1,), (2,)])

    @fork_only
    def test_killed_worker_recovers_run_tasks(self):
        runner = get_backend("process", 2, retry=RetryPolicy(max_retries=2, base_delay=0.01))
        try:
            with inject(FaultSpec(kind=KIND_KILL, site=SITE_SHARD, index=1)) as injector:
                assert runner.run_tasks(_chaos_task, [(0,), (1,), (2,)]) == [0, 2, 4]
                assert injector.fired(KIND_KILL) == 1
        finally:
            runner.close()

    @fork_only
    def test_exhausted_retries_raise_transient_shard_error(self):
        runner = get_backend("process", 2, retry=RetryPolicy(max_retries=1, base_delay=0.01))
        try:
            with inject(FaultSpec(kind=KIND_KILL, site=SITE_SHARD, index=1, times=5)):
                with pytest.raises(ShardTaskError) as excinfo:
                    runner.run_tasks(_chaos_task, [(0,), (1,), (2,)])
        finally:
            runner.close()
        error = excinfo.value
        assert error.transient is True
        assert error.index == 1
        assert error.attempts == 2


# --------------------------------------------------- digest-identical chaos
@fork_only
class TestRecoveryDigestIdentity:
    """Recovered runs are bit-identical to fault-free runs, /dev/shm clean."""

    @pytest.fixture(scope="class")
    def baseline(self, fitted):
        return fitted.sample(N_SAMPLE, rng=123, shards=4, backend="process").content_digest()

    @pytest.mark.parametrize("backend", ["process", "shared"])
    def test_killed_worker_sample(self, fitted, baseline, backend):
        before = _shm_segments()
        with inject(FaultSpec(kind=KIND_KILL, site=SITE_SHARD, index=2)) as injector:
            table = fitted.sample(N_SAMPLE, rng=123, shards=4, backend=backend)
            assert injector.fired(KIND_KILL) == 1
        assert table.content_digest() == baseline
        assert _shm_segments() == before

    def test_dropped_shm_segment_sample(self, fitted, baseline):
        before = _shm_segments()
        with inject(FaultSpec(kind=KIND_DROP_SHM, site=SITE_SHM_EXPORT)) as injector:
            table = fitted.sample(N_SAMPLE, rng=123, shards=4, backend="shared")
            assert injector.fired(KIND_DROP_SHM) == 1
        assert table.content_digest() == baseline
        assert _shm_segments() == before

    @pytest.mark.parametrize("backend", ["process", "shared"])
    def test_killed_worker_mid_stream(self, fitted, backend):
        clean = [
            part.content_digest()
            for part in fitted.sample_stream(
                N_SAMPLE, chunk=300, rng=5, shards=4, backend=backend
            )
        ]
        before = _shm_segments()
        with inject(FaultSpec(kind=KIND_KILL, site=SITE_SHARD, index=2)) as injector:
            faulted = [
                part.content_digest()
                for part in fitted.sample_stream(
                    N_SAMPLE, chunk=300, rng=5, shards=4, backend=backend
                )
            ]
            assert injector.fired(KIND_KILL) == 1
        assert faulted == clean
        assert _shm_segments() == before


# ------------------------------------------------------------ service chaos
class TestServiceReliability:
    def test_engine_fault_is_typed_and_breaker_trips(self, model_dir):
        service = _service(
            model_dir,
            batch_window=0.0,
            cache_answers=False,
            breaker_failures=2,
            breaker_reset=60.0,
        )
        with inject(FaultSpec(kind=KIND_ERROR, site=SITE_QUERY, times=2)):
            for _ in range(2):
                with pytest.raises(EngineFaultError):
                    service.query("ton", count())
            assert service.breaker.state == "open"
            # Degraded serving: the marginal path still answers...
            degraded = service.query("ton", count())
            assert degraded.provenance == "marginal"
            # ...but sample-path work is refused with a typed, retryable 503.
            with pytest.raises(CircuitOpen) as excinfo:
                service.query("ton", count(), prefer=Prefer.SAMPLE)
            assert excinfo.value.retry_after > 0
        reliability = service.stats()["reliability"]
        assert reliability["engine_faults"] == 2
        assert reliability["degraded_answers"] == 1
        assert reliability["breaker"]["state"] == "open"

    def test_degraded_answer_matches_healthy_path(self, model_dir):
        service = _service(
            model_dir, batch_window=0.0, cache_answers=False, breaker_failures=1,
            breaker_reset=60.0,
        )
        healthy = service.query("ton", topk("dstport", k=5))
        with inject(FaultSpec(kind=KIND_ERROR, site=SITE_QUERY)):
            with pytest.raises(EngineFaultError):
                service.query("ton", count())
        assert answers_equal(service.query("ton", topk("dstport", k=5)), healthy)

    def test_breaker_recovers_through_half_open_probe(self, model_dir):
        service = _service(
            model_dir,
            batch_window=0.0,
            cache_answers=False,
            breaker_failures=1,
            breaker_reset=0.05,
        )
        with inject(FaultSpec(kind=KIND_ERROR, site=SITE_QUERY)):
            with pytest.raises(EngineFaultError):
                service.query("ton", count())
        assert service.breaker.state == "open"
        time.sleep(0.06)
        answer = service.query("ton", count())  # the half-open probe
        assert answer is not None
        assert service.breaker.state == "closed"

    def test_load_shedding_at_the_inflight_cap(self, model_dir):
        service = _service(model_dir, batch_window=0.0, max_inflight=1)
        primed = service.query("ton", count())  # prime the cache
        with service._admit():
            with pytest.raises(ServiceOverloaded) as excinfo:
                service.query("ton", count(where={"dstport": 443}))
            assert excinfo.value.retry_after > 0
            # Cache hits are never shed.
            assert answers_equal(service.query("ton", count()), primed)
        assert service.stats()["reliability"]["shed"] == 1
        # The slot was released: fresh work flows again.
        assert service.query("ton", count(where={"dstport": 443})) is not None

    def test_default_request_deadline_maps_to_504(self, model_dir):
        service = _service(model_dir, batch_window=0.0, request_deadline=1e-7)
        with pytest.raises(RequestDeadlineExceeded):
            service.query("ton", count())
        assert service.stats()["reliability"]["deadline_hits"] == 1

    def test_explicit_deadline_overrides(self, model_dir):
        service = _service(model_dir, batch_window=0.0)
        with pytest.raises(RequestDeadlineExceeded):
            service.query("ton", count(), deadline=Deadline(0.0))
        # And an ample explicit deadline passes.
        assert service.query("ton", count(), deadline=Deadline(30.0)) is not None

    def test_batched_leader_window_clamped_by_deadline(self, model_dir):
        service = _service(model_dir, batch_window=0.5, cache_answers=False)
        service.query("ton", count())  # warm the model outside timing
        started = time.monotonic()
        service.query("ton", count(), deadline=Deadline(0.2))
        # The 0.5 s collection window bent to the 0.2 s budget.
        assert time.monotonic() - started < 0.4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(request_deadline=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(max_inflight=0)
        with pytest.raises(ValueError):
            ServiceConfig(breaker_failures=0)
        with pytest.raises(ValueError):
            ServiceConfig(breaker_reset=0.0)


# ----------------------------------------------------------- registry chaos
class TestRegistryReloadIsolation:
    def test_corrupt_rewrite_serves_previous_generation(self, model_dir):
        registry = ModelRegistry(model_dir)
        model = registry.get("ton")
        path = model_dir / "ton.ndpsyn"
        good = path.read_bytes()

        path.write_bytes(good[: len(good) // 2])  # mid-rewrite / corrupt
        assert registry.get("ton") is model
        assert registry.stats.load_failures == 1
        assert registry.stats.stale_serves == 1
        assert registry.stats.last_load_error

        # A stably-corrupt file does not trigger a reload storm.
        assert registry.get("ton") is model
        assert registry.stats.load_failures == 1
        assert registry.stats.stale_serves == 2

        # The completed rewrite rolls forward normally.
        path.write_bytes(good)
        recovered = registry.get("ton")
        assert recovered is not model
        assert registry.stats.reloads == 1
        assert registry.generation("ton") == 2

    def test_never_loaded_corrupt_file_is_typed_unavailable(self, tmp_path):
        (tmp_path / "junk.ndpsyn").write_bytes(b"definitely not a model" * 10)
        registry = ModelRegistry(tmp_path)
        with pytest.raises(ModelUnavailable) as excinfo:
            registry.get("junk")
        assert excinfo.value.retry_after > 0
        assert registry.stats.load_failures == 1

    def test_injected_corruption_at_the_load_site(self, tmp_path, fitted):
        fitted.save(tmp_path / "doomed.ndpsyn")
        registry = ModelRegistry(tmp_path)
        with inject(
            FaultSpec(kind=KIND_CORRUPT_MODEL, site=SITE_MODEL_LOAD)
        ) as injector:
            with pytest.raises(ModelUnavailable):
                registry.get("doomed")
            assert injector.fired(KIND_CORRUPT_MODEL) == 1

    def test_deleted_file_stays_a_404_not_found(self, model_dir):
        registry = ModelRegistry(model_dir)
        registry.get("ton")
        (model_dir / "ton.ndpsyn").unlink()
        with pytest.raises(FileNotFoundError):
            registry.get("ton")


# --------------------------------------------------------------- HTTP chaos
@pytest.fixture()
def served(model_dir):
    service = _service(model_dir, batch_window=0.0, cache_answers=False)
    server, _thread = serve_in_thread(service)
    conn = HTTPConnection(*server.server_address[:2])
    yield server, service, conn
    conn.close()
    server.shutdown()
    server.server_close()


def _get(conn, path, headers=None):
    conn.request("GET", path, headers=headers or {})
    response = conn.getresponse()
    return response.status, json.loads(response.read()), response


def _post(conn, path, payload, headers=None):
    base = {"Content-Type": "application/json"}
    base.update(headers or {})
    conn.request("POST", path, body=json.dumps(payload), headers=base)
    response = conn.getresponse()
    return response.status, json.loads(response.read()), response


COUNT_WIRE = {"query": {"kind": "count"}}


class TestHTTPReliability:
    def test_model_unavailable_wire_schema(self, served, model_dir):
        _server, _service_, conn = served
        (model_dir / "busted.ndpsyn").write_bytes(b"garbage bytes, not a model")
        status, payload, response = _post(conn, "/v1/models/busted/query", COUNT_WIRE)
        assert status == 503
        assert payload["error"]["code"] == "model_unavailable"
        assert payload["error"]["details"]["retry_after"] > 0
        assert response.getheader("Retry-After") is not None

    def test_deadline_header_maps_to_504(self, served):
        _server, _service_, conn = served
        status, payload, _ = _post(
            conn, "/v1/models/ton/query", COUNT_WIRE, headers={DEADLINE_HEADER: "0.0001"}
        )
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"

    def test_bad_deadline_header_is_a_400(self, served):
        _server, _service_, conn = served
        for bad in ("woof", "-5"):
            status, payload, _ = _post(
                conn, "/v1/models/ton/query", COUNT_WIRE, headers={DEADLINE_HEADER: bad}
            )
            assert status == 400
            assert payload["error"]["code"] == "invalid_query"

    def test_engine_fault_is_a_typed_503(self, served):
        _server, _service_, conn = served
        with inject(FaultSpec(kind=KIND_ERROR, site=SITE_QUERY)):
            status, payload, _ = _post(conn, "/v1/models/ton/query", COUNT_WIRE)
        assert status == 503
        assert payload["error"]["code"] == "engine_fault"

    def test_readyz_flips_on_drain(self, served):
        server, _service_, conn = served
        status, payload, _ = _get(conn, "/readyz")
        assert status == 200
        assert payload == {"status": "ready", "breaker": "closed"}
        server.begin_drain()
        status, payload, _ = _get(conn, "/readyz")
        assert status == 503
        assert payload == {"status": "draining"}
        # Liveness is unaffected by draining.
        status, _, _ = _get(conn, "/healthz")
        assert status == 200

    def test_stats_expose_reliability_section(self, served):
        _server, _service_, conn = served
        status, payload, _ = _get(conn, "/v1/stats")
        assert status == 200
        reliability = payload["reliability"]
        assert reliability["breaker"]["state"] == "closed"
        assert reliability["inflight"] >= 0
        assert "load_failures" in payload["registry"]

    def test_drain_waits_for_inflight_requests(self, served):
        server, _service_, _conn = served
        server.request_began()
        assert server.await_drain(grace=0.1) is False
        server.request_ended()
        assert server.await_drain(grace=0.1) is True


def test_cli_sigterm_drains_and_exits_zero(tmp_path):
    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serving.http", str(tmp_path), "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()  # blocks until the server announces itself
        assert "serving" in line
        proc.send_signal(signal.SIGTERM)
        returncode = proc.wait(timeout=20)
    finally:
        if proc.poll() is None:  # pragma: no cover - hang guard
            proc.kill()
            proc.wait()
    rest = proc.stdout.read()
    assert returncode == 0, rest
    assert "draining" in rest
    assert "shutdown clean" in rest
