"""Unit tests for the PGM, PrivMRF, and NetShare baselines."""

import numpy as np
import pytest

from repro.baselines import (
    MemoryBudgetExceeded,
    NetShareConfig,
    NetShareSynthesizer,
    PgmConfig,
    PgmSynthesizer,
    PrivMrfConfig,
    PrivMrfSynthesizer,
)
from repro.baselines.netshare.representation import BlockOneHot
from repro.baselines.privmrf.memory import MemoryAccountant
from repro.data.domain import Domain
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def ton():
    return load_dataset("ton", n_records=1500, seed=21)


class TestPgm:
    def test_synthesizes_schema_preserving(self, ton):
        syn = PgmSynthesizer(PgmConfig(estimation_iterations=20), rng=0).synthesize(
            ton, n=1500
        )
        assert syn.schema.names == ton.schema.names
        assert syn.n_records == 1500

    def test_budget_fully_spent(self, ton):
        pgm = PgmSynthesizer(PgmConfig(estimation_iterations=5), rng=0).fit(ton)
        assert pgm.ledger.remaining == pytest.approx(0.0, abs=1e-9)

    def test_label_marginals_always_measured(self, ton):
        pgm = PgmSynthesizer(PgmConfig(estimation_iterations=5), rng=0).fit(ton)
        label = "type"
        others = [a for a in pgm.encoder.schema.names if a != label]
        for attr in others:
            pair = tuple(sorted((label, attr)))
            assert pair in pgm.marginals

    def test_tree_structure_is_spanning(self, ton):
        pgm = PgmSynthesizer(PgmConfig(estimation_iterations=5), rng=0).fit(ton)
        attrs = set(pgm.encoder.schema.names)
        covered = {pgm._root}
        for parent, child in pgm.edges:
            covered.add(child)
        assert covered == attrs

    def test_label_distribution_roughly_preserved(self, ton):
        syn = PgmSynthesizer(PgmConfig(estimation_iterations=20), rng=0).synthesize(
            ton, n=3000
        )
        frac = np.mean(np.asarray(syn.column("type")) == "normal")
        assert 0.3 < frac < 0.8

    def test_sample_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PgmSynthesizer().sample()


class TestPrivMrf:
    def test_memory_accountant_charges(self):
        acct = MemoryAccountant(budget_bytes=1000)
        acct.charge_cells(100)
        assert acct.allocated_bytes == 800
        with pytest.raises(MemoryBudgetExceeded):
            acct.charge_cells(100)

    def test_memory_error_message(self):
        with pytest.raises(MemoryBudgetExceeded, match="GiB"):
            MemoryAccountant(budget_bytes=8).charge_cells(10**9, what="test")

    def test_runs_on_ton(self, ton):
        config = PrivMrfConfig(
            gibbs_sweeps=2,
            estimation_iterations=3,
            estimation_particles=300,
            memory_budget_bytes=512 * 1024**3,
        )
        syn = PrivMrfSynthesizer(config, rng=0).synthesize(ton, n=1000)
        assert syn.n_records == 1000
        assert syn.schema.names == ton.schema.names

    def test_ooms_on_packet_dataset(self):
        caida = load_dataset("caida", n_records=1500, seed=22)
        config = PrivMrfConfig(
            memory_budget_bytes=64 * 1024 * 1024,
            estimation_iterations=2,
            estimation_particles=200,
        )
        with pytest.raises(MemoryBudgetExceeded):
            PrivMrfSynthesizer(config, rng=0).fit(caida)

    def test_budget_fully_spent(self, ton):
        config = PrivMrfConfig(
            estimation_iterations=2,
            estimation_particles=200,
            memory_budget_bytes=512 * 1024**3,
        )
        mrf = PrivMrfSynthesizer(config, rng=0).fit(ton)
        assert mrf.ledger.remaining == pytest.approx(0.0, abs=1e-9)

    def test_estimation_reduces_moment_gap(self, ton):
        config = PrivMrfConfig(
            estimation_iterations=10,
            estimation_particles=800,
            memory_budget_bytes=512 * 1024**3,
        )
        mrf = PrivMrfSynthesizer(config, rng=0).fit(ton)
        gaps = mrf.estimation_gaps
        assert gaps[-1] < gaps[0]


class TestBlockOneHot:
    def test_encode_shape_and_hardness(self):
        blocks = BlockOneHot(Domain({"a": 3, "b": 2}))
        data = np.array([[0, 1], [2, 0]])
        onehot = blocks.encode(data)
        assert onehot.shape == (2, 5)
        assert np.allclose(onehot.sum(axis=1), 2.0)
        assert onehot[0, 1] == 0 and onehot[0, 0] == 1 and onehot[0, 4] == 1

    def test_block_softmax_per_block_simplex(self):
        blocks = BlockOneHot(Domain({"a": 3, "b": 2}))
        logits = np.random.default_rng(0).normal(size=(4, 5))
        probs = blocks.block_softmax(logits)
        assert np.allclose(probs[:, :3].sum(axis=1), 1.0)
        assert np.allclose(probs[:, 3:].sum(axis=1), 1.0)

    def test_sample_within_domains(self):
        blocks = BlockOneHot(Domain({"a": 3, "b": 2}))
        probs = blocks.block_softmax(np.zeros((100, 5)))
        codes = blocks.sample(probs, np.random.default_rng(1))
        assert codes[:, 0].max() < 3
        assert codes[:, 1].max() < 2

    def test_softmax_backward_matches_numeric(self):
        blocks = BlockOneHot(Domain({"a": 3}))
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(2, 3))
        weight = rng.normal(size=(2, 3))

        def f(x):
            return float((blocks.block_softmax(x) * weight).sum())

        probs = blocks.block_softmax(logits)
        grad = blocks.block_softmax_backward(probs, weight)
        eps = 1e-6
        for i in range(2):
            for j in range(3):
                logits[i, j] += eps
                hi = f(logits)
                logits[i, j] -= 2 * eps
                lo = f(logits)
                logits[i, j] += eps
                assert grad[i, j] == pytest.approx((hi - lo) / (2 * eps), abs=1e-5)


class TestNetShare:
    @pytest.fixture(scope="class")
    def trained(self):
        table = load_dataset("ton", n_records=800, seed=23)
        config = NetShareConfig(pretrain_iterations=15, finetune_iterations=15)
        return NetShareSynthesizer(config, rng=0).fit(table), table

    def test_sample_schema(self, trained):
        synthesizer, table = trained
        syn = synthesizer.sample(500)
        assert syn.schema.names == table.schema.names
        assert syn.n_records == 500

    def test_dp_accounting_reported(self, trained):
        synthesizer, _ = trained
        assert synthesizer.noise_multiplier > 0
        eps = synthesizer.spent_epsilon()
        # The DP-SGD epsilon must not exceed the configured target.
        assert eps <= synthesizer.config.epsilon * 1.05

    def test_history_recorded(self, trained):
        synthesizer, _ = trained
        assert len(synthesizer.history["d_loss"]) == 30
        assert all(np.isfinite(v) for v in synthesizer.history["d_loss"])

    def test_ports_valid(self, trained):
        synthesizer, _ = trained
        syn = synthesizer.sample(300)
        assert (np.asarray(syn.column("srcport")) < 65536).all()
        assert (np.asarray(syn.column("byt")) >= np.asarray(syn.column("pkt"))).all()
