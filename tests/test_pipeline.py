"""Tests for the staged fit pipeline: stages, budget invariants, executors."""

from itertools import combinations

import numpy as np
import pytest

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.core.synthesizer import smallest_marginal_index
from repro.dp.mechanisms import gaussian_mechanism
from repro.engine import BACKENDS, EngineConfig, get_backend, scatter_map
from repro.experiments.fit_scaling import FIT_GOLDEN, published_digest
from repro.marginals.compute import compute_marginal, exact_count_payload
from repro.marginals.indif import (
    INDIF_SENSITIVITY,
    exact_indif_scores,
    independent_difference,
    noisy_indif_scores,
)
from repro.marginals.publish import exact_marginals
from repro.pipeline import FitPipeline, FitStage, default_stages

#: The golden digest was captured on NumPy 2.x; Generator streams are stable
#: in practice but NEP 19 reserves the right to change them across majors.
requires_numpy2 = pytest.mark.skipif(
    np.lib.NumpyVersion(np.__version__) < "2.0.0",
    reason="golden digest captured on the NumPy 2.x generator streams",
)

STAGE_ORDER = ("binning", "selection", "combine", "publish", "consistency")


@pytest.fixture(scope="module")
def ton():
    return load_dataset("ton", n_records=2500, seed=31)


def build(ton, fit_engine=None, rng=7):
    config = SynthesisConfig(epsilon=2.0, fit_engine=fit_engine)
    config.gum.iterations = 15
    return NetDPSyn(config, rng=rng).fit(ton)


@pytest.fixture(scope="module")
def fitted(ton):
    return build(ton)


@pytest.fixture(scope="module")
def encoded(fitted, ton):
    return fitted.encoder.encode(ton)


# ----------------------------------------------------------- task executor
def _offset_square(shared, x):
    return shared["offset"] + x * x


def _chunk_add(shared, chunk):
    return [shared + item for item in chunk]


def _chunk_bad_length(shared, chunk):
    return [0]


class TestRunTasks:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_task_order_with_shared(self, backend):
        runner = get_backend(backend, max_workers=2)
        tasks = [(i,) for i in range(7)]
        out = runner.run_tasks(_offset_square, tasks, shared={"offset": 3})
        assert out == [3 + i * i for i in range(7)]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_tasks(self, backend):
        assert get_backend(backend).run_tasks(_offset_square, [], shared=None) == []

    def test_scatter_map_preserves_item_order(self):
        runner = get_backend("serial")
        items = list(range(11))
        out = scatter_map(runner, _chunk_add, items, shared=100, n_chunks=3)
        assert out == [100 + i for i in items]

    def test_scatter_map_checks_result_count(self):
        runner = get_backend("serial")
        with pytest.raises(RuntimeError, match="results"):
            scatter_map(runner, _chunk_bad_length, [1, 2, 3], shared=0, n_chunks=1)

    def test_process_persistent_pool_reuse(self):
        runner = get_backend("process", max_workers=2)
        shared = {"offset": 10}
        runner.open(shared)
        try:
            a = runner.run_tasks(_offset_square, [(1,), (2,)], shared=shared)
            b = runner.run_tasks(_offset_square, [(3,)], shared=shared)
            # A different payload still works (per-call pool) while open.
            c = runner.run_tasks(_offset_square, [(1,)], shared={"offset": 0})
            d = runner.run_tasks(_offset_square, [(4,)], shared=shared)
        finally:
            runner.close()
        assert (a, b, c, d) == ([11, 14], [19], [1], [26])

    def test_close_without_open_is_noop(self):
        runner = get_backend("process", max_workers=2)
        runner.close()


# -------------------------------------------------------- ledger invariants
class TestBudgetLedgerInvariants:
    def test_stage_spend_order_matches_paper_split(self, fitted):
        entries = fitted.ledger.entries()
        assert [purpose for purpose, _ in entries] == [
            "frequency-dependent binning",
            "marginal selection",
            "marginal publication",
        ]
        total = fitted.ledger.total
        fractions = [rho / total for _, rho in entries]
        assert fractions == pytest.approx([0.1, 0.1, 0.8], rel=1e-9)

    def test_stage_spends_sum_to_total_rho(self, fitted):
        ledger = fitted.ledger
        assert sum(rho for _, rho in ledger.entries()) == pytest.approx(
            ledger.total, rel=1e-12
        )
        assert ledger.spent == pytest.approx(ledger.total, rel=1e-12)
        assert ledger.remaining == pytest.approx(0.0, abs=1e-9)

    def test_executor_fit_spends_identically(self, ton, fitted):
        parallel = build(ton, fit_engine=EngineConfig(backend="serial", max_workers=1))
        assert parallel.ledger.entries() == fitted.ledger.entries()


# --------------------------------------------------------------- fit report
class TestFitReport:
    def test_stage_order_and_timings(self, fitted):
        report = fitted.fit_report
        assert tuple(report.stage_seconds) == STAGE_ORDER
        assert all(seconds >= 0.0 for seconds in report.stage_seconds.values())
        assert report.total_seconds >= sum(report.stage_seconds.values()) - 1e-6

    def test_workload_shape(self, fitted):
        report = fitted.fit_report
        assert report.n_records == 2500
        assert report.n_pairs == 66  # C(12, 2) over the encoded attributes
        assert report.n_marginals == len(fitted.published)
        assert report.backend is None and report.workers is None

    def test_executor_fit_records_backend(self, ton):
        synth = build(ton, fit_engine=EngineConfig(backend="thread", max_workers=2))
        assert synth.fit_report.backend == "thread"
        assert synth.fit_report.workers == 2

    def test_report_renders_lines_and_dict(self, fitted):
        lines = fitted.fit_report.lines()
        assert lines[0].startswith("fit:")
        assert len(lines) == 1 + len(STAGE_ORDER)
        payload = fitted.fit_report.as_dict()
        assert tuple(payload["stage_seconds"]) == STAGE_ORDER

    def test_verbose_runner_prints_report(self, capsys):
        from repro.experiments.runner import ExperimentScale, clear_cache, synthesize_cached

        clear_cache()
        scale = ExperimentScale(n_records=600, seed=0, gum_iterations=4, verbose=True)
        try:
            table, _ = synthesize_cached("netdpsyn", "ton", scale)
        finally:
            clear_cache()
        assert table is not None
        out = capsys.readouterr().out
        assert "fit:" in out and "binning" in out


# ----------------------------------------------------------- bit identity
class TestFitGolden:
    @requires_numpy2
    def test_serial_fit_matches_pre_refactor_golden(self, fitted):
        assert published_digest(fitted.published) == FIT_GOLDEN

    @requires_numpy2
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_executor_fit_matches_golden(self, ton, backend):
        synth = build(ton, fit_engine=EngineConfig(backend=backend, max_workers=2))
        assert published_digest(synth.published) == FIT_GOLDEN


class TestExecutorEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_samples_identical_across_executors(self, ton, fitted, backend):
        synth = build(ton, fit_engine=EngineConfig(backend=backend, max_workers=2))
        assert (
            synth.sample(400, rng=5).content_digest()
            == fitted.sample(400, rng=5).content_digest()
        )

    def test_exact_indif_scores_match_reference(self, encoded):
        pairs = list(combinations(encoded.attrs, 2))[:20]
        reference = exact_indif_scores(encoded, pairs)
        runner = get_backend("thread", max_workers=2)
        batched = exact_indif_scores(encoded, pairs, executor=runner)
        assert batched == pytest.approx(reference)

    def test_exact_marginals_match_reference(self, encoded):
        attrs = encoded.attrs
        attr_sets = [(attrs[0],), (attrs[1], attrs[4]), (attrs[4], attrs[9], attrs[10])]
        reference = [compute_marginal(encoded, s) for s in attr_sets]
        runner = get_backend("serial")
        batched = exact_marginals(
            encoded, attr_sets, executor=runner, shared=exact_count_payload(encoded)
        )
        for ref, got in zip(reference, batched):
            assert got.attrs == ref.attrs
            assert np.array_equal(got.counts, ref.counts)


class TestVectorizedNoiseStream:
    def test_single_draw_equals_legacy_per_pair_draws(self, encoded):
        """The satellite fix is stream-identical to the historical loop."""
        pairs = list(combinations(encoded.attrs[:6], 2))
        rho = 0.05
        rho_each = rho / len(pairs)
        legacy_rng = np.random.default_rng(5)
        legacy = {}
        for a, b in pairs:
            exact = independent_difference(encoded, a, b)
            noisy = gaussian_mechanism(
                np.array([exact]), INDIF_SENSITIVITY, rho_each, legacy_rng
            )[0]
            legacy[(a, b)] = float(max(noisy, 0.0))
        vectorized = noisy_indif_scores(
            encoded, rho, np.random.default_rng(5), pairs=pairs
        )
        assert vectorized == legacy


# ------------------------------------------------------------ one-way index
class TestOneWayIndex:
    def test_index_matches_per_attribute_rescan(self, fitted):
        index = smallest_marginal_index(fitted.published)
        for attr in fitted._template.attrs:
            holders = [m for m in fitted.published if attr in m.attrs]
            legacy = min(holders, key=lambda m: m.n_cells)
            assert index[attr] is legacy

    def test_plan_one_way_counts_match_legacy_projection(self, fitted):
        plan = fitted.plan()
        for attr in plan.attrs:
            holders = [m for m in fitted.published if attr in m.attrs]
            expected = min(holders, key=lambda m: m.n_cells).project((attr,)).counts
            assert np.array_equal(plan.one_way[attr], expected)


# ------------------------------------------------------------ pipeline shape
class _RecordingStage:
    name = "recording"

    def __init__(self):
        self.ran = False

    def run(self, ctx):
        self.ran = True


class TestPipelineStructure:
    def test_default_stages_satisfy_protocol(self):
        stages = default_stages()
        assert [stage.name for stage in stages] == list(STAGE_ORDER)
        assert all(isinstance(stage, FitStage) for stage in stages)

    def test_duplicate_stage_names_rejected(self):
        stage = _RecordingStage()
        with pytest.raises(ValueError, match="duplicate"):
            FitPipeline([stage, _RecordingStage()])

    def test_custom_stage_runs_and_is_timed(self, ton):
        extra = _RecordingStage()
        pipeline = FitPipeline(list(default_stages()) + [extra])
        from repro.core.config import SynthesisConfig as Config
        from repro.dp.accountant import BudgetLedger
        from repro.dp.allocation import split_budget
        from repro.pipeline import FitContext

        config = Config(epsilon=2.0)
        ledger = BudgetLedger.from_eps_delta(config.epsilon, config.delta)
        ctx = FitContext(
            table=ton,
            config=config,
            rng=np.random.default_rng(0),
            ledger=ledger,
            stage_budgets=split_budget(ledger.total, config.stage_split),
        )
        pipeline.run(ctx)
        assert extra.ran
        assert set(ctx.timings) == set(STAGE_ORDER) | {"recording"}
