"""Smoke tests for the experiments package at tiny scale.

Each paper table/figure has a full regeneration bench under ``benchmarks/``;
these tests only validate the plumbing (shapes, N/A handling, caching) with
minimal record counts and iteration budgets.
"""

import pytest

from repro.experiments import ExperimentScale, clear_cache, synthesize_cached
from repro.experiments import (
    ablations,
    appg_mia,
    fig3_classification,
    fig5_fig6_attributes,
    tab1_rank_correlation,
    tab4_marginal_examples,
    tab5_datasets,
)
from repro.experiments.runner import build_synthesizer, load_raw_cached, split_cached


@pytest.fixture(scope="module")
def tiny():
    scale = ExperimentScale(
        n_records=1200,
        seed=3,
        gum_iterations=6,
        netshare_pretrain=10,
        netshare_finetune=10,
        gibbs_sweeps=2,
    )
    yield scale
    clear_cache()


class TestRunner:
    def test_build_all_methods(self, tiny):
        for method in ("netdpsyn", "netshare", "pgm", "privmrf"):
            assert build_synthesizer(method, tiny) is not None

    def test_unknown_method(self, tiny):
        with pytest.raises(KeyError):
            build_synthesizer("ctgan", tiny)

    def test_raw_cache_identity(self, tiny):
        a = load_raw_cached("ton", tiny)
        b = load_raw_cached("ton", tiny)
        assert a is b

    def test_split_deterministic_and_disjoint(self, tiny):
        train, test = split_cached("ton", tiny)
        assert len(train) + len(test) == tiny.n_records
        assert len(test) == round(tiny.n_records * 0.2)

    def test_synthesize_cached_reuses(self, tiny):
        a, t1 = synthesize_cached("pgm", "ton", tiny)
        b, t2 = synthesize_cached("pgm", "ton", tiny)
        assert a is b
        assert t1 == t2

    def test_privmrf_na_on_packets(self, tiny):
        table, _ = synthesize_cached("privmrf", "caida", tiny)
        assert table is None

    def test_smaller_scale(self, tiny):
        reduced = tiny.smaller(n_records=500)
        assert reduced.n_records == 500
        assert reduced.gum_iterations <= tiny.gum_iterations


class TestFig3AndTab1:
    @pytest.fixture(scope="class")
    def fig3(self, tiny):
        return fig3_classification.run(
            tiny, datasets=("ton",), methods=("real", "netdpsyn", "pgm"), models=("DT", "LR")
        )

    def test_shape(self, fig3):
        assert set(fig3) == {"ton"}
        assert set(fig3["ton"]) == {"DT", "LR"}
        assert set(fig3["ton"]["DT"]) == {"real", "netdpsyn", "pgm"}

    def test_accuracies_in_unit_interval(self, fig3):
        for per_model in fig3.values():
            for per_method in per_model.values():
                for acc in per_method.values():
                    assert acc is None or 0.0 <= acc <= 1.0

    def test_real_dt_learns(self, fig3):
        assert fig3["ton"]["DT"]["real"] > 0.7

    def test_tab1_reduction(self, fig3):
        table = tab1_rank_correlation.from_fig3(fig3, methods=("netdpsyn", "pgm"))
        assert set(table["ton"]) == {"netdpsyn", "pgm"}
        for rho in table["ton"].values():
            assert rho is None or -1.0 <= rho <= 1.0

    def test_tab1_handles_all_none(self):
        fake = {"x": {"DT": {"real": 0.9, "m": None}, "LR": {"real": 0.5, "m": None}}}
        table = tab1_rank_correlation.from_fig3(fake, methods=("m",))
        assert table["x"]["m"] is None


class TestAttributeExperiment:
    def test_fig5_structure(self, tiny):
        out = fig5_fig6_attributes.run(tiny, dataset="ton", methods=("netdpsyn",))
        assert set(out) == {"jsd", "emd", "emd_normalized"}
        assert set(out["jsd"]) == {"SA", "DA", "SP", "DP", "PR"}
        assert set(out["emd"]) == {"TS", "TD", "PKT", "BYT"}
        for metric in out["jsd"].values():
            v = metric["netdpsyn"]
            assert v is None or 0.0 <= v <= 1.0

    def test_normalization_range(self, tiny):
        out = fig5_fig6_attributes.run(tiny, dataset="ton", methods=("netdpsyn", "pgm"))
        for per_method in out["emd_normalized"].values():
            values = [v for v in per_method.values() if v is not None]
            assert all(0.1 - 1e-9 <= v <= 0.9 + 1e-9 for v in values)


class TestTables:
    def test_tab5_rows(self, tiny):
        out = tab5_datasets.run(tiny, datasets=("ton", "caida"))
        assert out["ton"]["attributes"] == 11
        assert out["caida"]["attributes"] == 15
        assert out["ton"]["records"] == tiny.n_records

    def test_tab5_reports_paper_reference(self, tiny):
        out = tab5_datasets.run(tiny)
        # Observed-distinct domains are scale-dependent; the paper reference
        # columns must be carried through for side-by-side comparison.
        for row in out.values():
            assert row["domain"] > 0
            assert row["paper_domain"] >= 2e6

    def test_tab4_panels(self, tiny):
        out = tab4_marginal_examples.run(tiny, top_k=4)
        assert set(out) == {
            "one_way_dstport",
            "one_way_type",
            "noisy_2way",
            "postprocessed_2way",
            "exact_2way",
        }
        assert len(out["noisy_2way"]) == 4
        # Post-processed cells are non-negative; raw noisy cells may not be.
        assert all(row[2] >= 0 for row in out["postprocessed_2way"])


class TestMiaExperiment:
    def test_shape_and_ordering(self, tiny):
        out = appg_mia.run(tiny, eps_values=(2.0,), model="DT")
        assert "raw" in out and 2.0 in out
        assert 0.0 <= out["raw"] <= 1.0
        assert 0.0 <= out[2.0] <= 1.0


class TestAblations:
    def test_allocation_ablation(self, tiny):
        out = ablations.run_allocation(tiny)
        assert set(out) == {"weighted", "uniform"}
        assert all(0 <= v <= 1 for v in out.values())

    def test_protocol_rule_ablation(self, tiny):
        out = ablations.run_protocol_rules(tiny)
        assert set(out) == {"raw", "rules_on", "rules_off"}
