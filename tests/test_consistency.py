"""Unit and property tests for marginal post-processing (§3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binning import CategoricalCodec, LogNumericCodec, PortCodec
from repro.consistency import (
    ComparisonRule,
    ImplicationRule,
    attribute_consistency,
    build_default_rules,
    make_consistent,
    norm_sub,
    overall_total_consistency,
    postprocess_marginals,
)
from repro.data.schema import FieldKind, FieldSpec, Schema
from repro.marginals.marginal import Marginal


class TestNormSub:
    def test_projects_to_target(self):
        v = np.array([5.0, -3.0, 2.0])
        out = norm_sub(v, 10.0)
        assert out.sum() == pytest.approx(10.0)
        assert (out >= 0).all()

    def test_preserves_order(self):
        v = np.array([10.0, 5.0, -1.0])
        out = norm_sub(v, 14.0)
        assert out[0] >= out[1] >= out[2]

    def test_already_valid_shifted_only(self):
        v = np.array([4.0, 6.0])
        out = norm_sub(v, 10.0)
        assert np.allclose(out, v)

    def test_zero_target(self):
        assert norm_sub(np.array([1.0, 2.0]), 0.0).sum() == 0.0

    def test_all_negative(self):
        out = norm_sub(np.array([-5.0, -1.0]), 3.0)
        assert out.sum() == pytest.approx(3.0)
        assert (out >= 0).all()

    def test_shape_preserved(self):
        out = norm_sub(np.full((2, 3), -1.0), 6.0)
        assert out.shape == (2, 3)

    def test_rejects_negative_target(self):
        with pytest.raises(ValueError):
            norm_sub(np.ones(3), -1.0)

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=40),
        st.floats(min_value=0, max_value=1000),
    )
    @settings(max_examples=100)
    def test_feasibility_property(self, values, target):
        out = norm_sub(np.array(values), target)
        assert out.sum() == pytest.approx(target, abs=1e-6)
        assert (out >= -1e-9).all()


def _two_noisy_marginals():
    # Two marginals sharing attribute 'a' with conflicting projections.
    m1 = Marginal(("a", "b"), np.array([[10.0, 10.0], [5.0, 5.0]]), rho=0.1, sigma=1.0)
    m2 = Marginal(("a", "c"), np.array([[4.0, 4.0], [11.0, 11.0]]), rho=0.1, sigma=2.0)
    return m1, m2


class TestWeightedAverage:
    def test_totals_reconciled(self):
        m1, m2 = _two_noisy_marginals()
        out = overall_total_consistency([m1, m2])
        assert out[0].total == pytest.approx(out[1].total)

    def test_shared_attribute_reconciled(self):
        m1, m2 = _two_noisy_marginals()
        out = attribute_consistency([m1, m2], attrs=["a"])
        pa1 = out[0].project(("a",)).counts
        pa2 = out[1].project(("a",)).counts
        assert np.allclose(pa1, pa2)

    def test_less_noisy_marginal_dominates(self):
        m1, m2 = _two_noisy_marginals()  # sigma 1 vs sigma 2
        out = attribute_consistency([m1, m2], attrs=["a"])
        consensus = out[0].project(("a",)).counts
        original_precise = m1.project(("a",)).counts
        original_noisy = m2.project(("a",)).counts
        # Consensus sits closer to the lower-sigma marginal's projection.
        assert np.abs(consensus - original_precise).sum() < np.abs(
            consensus - original_noisy
        ).sum()

    def test_make_consistent_nonnegative(self):
        m1 = Marginal(("a",), np.array([5.0, -2.0]), rho=0.1, sigma=1.0)
        m2 = Marginal(("a", "b"), np.array([[1.0, 1.0], [4.0, -3.0]]), rho=0.1, sigma=1.0)
        out = make_consistent([m1, m2], rounds=3)
        for m in out:
            assert (m.counts >= -1e-9).all()
        assert out[0].total == pytest.approx(out[1].total)


def _codecs():
    pkt = LogNumericCodec("pkt", max_value=1e4)
    byt = LogNumericCodec("byt", max_value=1e7)
    proto = CategoricalCodec("proto", ("TCP", "UDP", "ICMP"))
    port = PortCodec("dstport")
    return {"pkt": pkt, "byt": byt, "proto": proto, "dstport": port}


class TestComparisonRule:
    def test_impossible_cells_zeroed(self):
        codecs = _codecs()
        rule = ComparisonRule("byt", "pkt", ">=")
        shape = (codecs["byt"].domain_size, codecs["pkt"].domain_size)
        m = Marginal(("byt", "pkt"), np.ones(shape))
        out = rule.apply(m, codecs)
        blo, bhi = codecs["byt"].bin_bounds()
        plo, phi = codecs["pkt"].bin_bounds()
        # A cell where every byt < every pkt must be zero.
        for i in range(0, shape[0], 7):
            for j in range(0, shape[1], 5):
                if bhi[i] <= plo[j]:
                    assert out.counts[i, j] == 0.0

    def test_total_preserved(self):
        codecs = _codecs()
        rule = ComparisonRule("byt", "pkt", ">=")
        shape = (codecs["byt"].domain_size, codecs["pkt"].domain_size)
        m = Marginal(("byt", "pkt"), np.ones(shape))
        out = rule.apply(m, codecs)
        assert out.total == pytest.approx(m.total)

    def test_applies_to(self):
        rule = ComparisonRule("byt", "pkt")
        assert rule.applies_to(("pkt", "byt", "x"))
        assert not rule.applies_to(("pkt", "x"))

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            ComparisonRule("a", "b", op="!=")


class TestImplicationRule:
    def test_ftp_mass_capped(self):
        codecs = _codecs()
        rule = ImplicationRule("dstport", (21,), "proto", ("TCP",), tau=0.1)
        port_size = codecs["dstport"].domain_size
        counts = np.zeros((port_size, 3))
        counts[21] = [10.0, 90.0, 0.0]  # 90% of FTP rows on UDP
        m = Marginal(("dstport", "proto"), counts)
        out = rule.apply(m, codecs)
        slice_total = out.counts[21].sum()
        bad = out.counts[21][1] + out.counts[21][2]
        assert bad <= 0.1 * slice_total + 1e-9
        assert slice_total == pytest.approx(100.0)

    def test_below_threshold_untouched(self):
        codecs = _codecs()
        rule = ImplicationRule("dstport", (21,), "proto", ("TCP",), tau=0.5)
        port_size = codecs["dstport"].domain_size
        counts = np.zeros((port_size, 3))
        counts[21] = [80.0, 20.0, 0.0]
        m = Marginal(("dstport", "proto"), counts)
        out = rule.apply(m, codecs)
        assert np.allclose(out.counts[21], [80.0, 20.0, 0.0])

    def test_build_default_rules(self):
        schema = Schema(
            fields=(
                FieldSpec("dstport", FieldKind.PORT),
                FieldSpec("proto", FieldKind.CATEGORICAL, categories=("TCP", "UDP")),
                FieldSpec("pkt", FieldKind.NUMERIC),
                FieldSpec("byt", FieldKind.NUMERIC),
            )
        )
        rules = build_default_rules(schema)
        kinds = {type(r) for r in rules}
        assert ComparisonRule in kinds
        assert ImplicationRule in kinds


class TestPostprocess:
    def test_end_to_end_validity(self):
        codecs = _codecs()
        rng = np.random.default_rng(5)
        shape = (codecs["byt"].domain_size, codecs["pkt"].domain_size)
        noisy = Marginal(
            ("byt", "pkt"), rng.normal(10, 5, size=shape), rho=0.1, sigma=1.0
        )
        out = postprocess_marginals(
            [noisy], codecs, rules=[ComparisonRule("byt", "pkt", ">=")]
        )
        assert (out[0].counts >= -1e-9).all()
