"""Public-API export audit: ``__all__`` is a pinned, resolvable contract.

The serving PR consolidated the public surface: ``repro.serving`` exports
the whole serving stack (engine, registry, service, schemas, errors, query
algebra) and top-level ``repro`` re-exports the registry + query algebra so
the fit/sample and query tiers read as one API.  These tests pin both lists
exactly — adding an export is a deliberate diff here, and nothing can land
in ``__all__`` that does not resolve or that shadows a module.
"""

import importlib

import pytest

import repro
import repro.attacks
import repro.dp
import repro.serving

#: The pinned top-level surface.  Append deliberately; never remove without
#: a deprecation note in CHANGES.md.
REPRO_ALL = [
    "FieldKind",
    "FieldSpec",
    "ModelRegistry",
    "NetDPSyn",
    "Query",
    "QueryAnswer",
    "QueryEngine",
    "Schema",
    "SynthesisConfig",
    "TraceTable",
    "count",
    "histogram",
    "load_dataset",
    "marginal",
    "synthesize",
    "topk",
    "__version__",
]

#: The pinned attack surface (the measurement side of the privacy gates;
#: docs/privacy.md).
ATTACKS_ALL = [
    "AttributeInferenceResult",
    "MiaResult",
    "attribute_inference_attack",
    "loss_threshold_mia",
    "membership_auc",
    "user_level_mia",
]

#: The pinned DP-primitive surface.  The user_level trio was importable but
#: unexported until the PR-9 audit; it is part of the contract now.
DP_ALL = [
    "BudgetLedger",
    "RdpAccountant",
    "bound_user_contributions",
    "eps_delta_to_rho",
    "exponential_mechanism",
    "gaussian_mechanism",
    "gaussian_sigma",
    "record_rho_for_user_level",
    "rho_to_eps",
    "split_budget",
    "user_level_rho",
    "weighted_marginal_budgets",
]

#: The pinned serving surface (the HTTP transport stays a module import:
#: ``repro.serving.http`` pulls in the server machinery only when asked).
SERVING_ALL = [
    "AnswerCache",
    "ApiKeyAuth",
    "AuthenticationError",
    "CircuitOpen",
    "DEFAULT_BYTE_BUDGET",
    "DEFAULT_SAMPLE_RECORDS",
    "EngineFaultError",
    "MODEL_SUFFIX",
    "MicroBatcher",
    "ModelNotFound",
    "ModelRegistry",
    "ModelUnavailable",
    "OpenAccess",
    "PROVENANCE_MARGINAL",
    "PROVENANCE_SAMPLE",
    "Prefer",
    "Query",
    "QueryAnswer",
    "QueryEngine",
    "QueryService",
    "QueryValidationError",
    "QuotaExceeded",
    "RegistryStats",
    "RequestDeadlineExceeded",
    "SCHEMA_VERSION",
    "SchemaVersionError",
    "ServiceConfig",
    "ServiceOverloaded",
    "ServingError",
    "Tenant",
    "TokenBucket",
    "answer_from_wire",
    "answer_to_wire",
    "answers_equal",
    "bin_labels",
    "count",
    "histogram",
    "marginal",
    "query_from_wire",
    "query_to_wire",
    "topk",
]


@pytest.mark.parametrize(
    "module, pinned",
    [
        (repro, REPRO_ALL),
        (repro.attacks, ATTACKS_ALL),
        (repro.dp, DP_ALL),
        (repro.serving, SERVING_ALL),
    ],
    ids=["repro", "repro.attacks", "repro.dp", "repro.serving"],
)
def test_all_is_pinned_exactly(module, pinned):
    assert list(module.__all__) == pinned


@pytest.mark.parametrize(
    "module",
    [repro, repro.attacks, repro.dp, repro.serving],
    ids=["repro", "repro.attacks", "repro.dp", "repro.serving"],
)
def test_all_is_sorted_and_unique(module):
    names = [n for n in module.__all__ if not n.startswith("__")]
    assert names == sorted(names), "keep __all__ sorted (dunders last)"
    assert len(set(module.__all__)) == len(module.__all__)


@pytest.mark.parametrize(
    "module",
    [repro, repro.attacks, repro.dp, repro.serving],
    ids=["repro", "repro.attacks", "repro.dp", "repro.serving"],
)
def test_every_export_resolves(module):
    for name in module.__all__:
        assert getattr(module, name, None) is not None, f"{name} does not resolve"


def test_top_level_reexports_are_the_serving_objects():
    # One object, two import paths — no parallel definitions.
    for name in ("ModelRegistry", "Query", "QueryAnswer", "QueryEngine",
                 "count", "histogram", "marginal", "topk"):
        assert getattr(repro, name) is getattr(repro.serving, name)


def test_http_transport_importable_but_not_reexported():
    module = importlib.import_module("repro.serving.http")
    assert hasattr(module, "make_server") and hasattr(module, "main")
    assert "http" not in repro.serving.__all__
