"""Fleet suite: registry, work-queue, multi-worker releases, chaos legs.

The fleet contract under test:

- **Digest-equality.**  A release fanned across a ``LocalCluster`` is
  bit-identical to the single-node serial run at the same shard count —
  regardless of worker count, scheduling order, or a worker killed
  mid-release or mid-heartbeat (its shards re-run on their original
  ``SeedSequence`` children on a surviving worker).
- **Liveness is heartbeat-driven and monotonic.**  A worker that stops
  heartbeating (``SIGSTOP``) is expired exactly once, its shards are
  reassigned, and after ``SIGCONT`` it re-registers and resumes cleanly —
  the registry counts the re-registration.
- **Failures are attributed.**  A deterministically-raising task fails the
  release with a :class:`ShardTaskError` carrying the worker-side
  traceback; an empty fleet fails typed (:class:`FleetError`), not by
  hanging.
- **Serving replicas are interchangeable.**  Round-robin answers are
  bit-identical across replicas, and a killed replica fails over behind its
  circuit breaker without surfacing an error.

Worker-kill legs rely on ``fork`` inheritance of the installed
:class:`FaultInjector` (same as the engine chaos suite) and skip on spawn
platforms.
"""

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.engine import ALL_BACKENDS, BACKENDS, get_backend
from repro.fleet import (
    FLEET_SCHEMA_VERSION,
    Envelope,
    EnvelopeError,
    FleetError,
    LocalCluster,
    ReplicatedQueryClient,
    ShardQueue,
    WorkerRegistry,
    current_cluster,
    decode_envelope,
    encode_envelope,
    release_seed_specs,
    seed_from_spec,
    seed_spec,
)
from repro.fleet.registry import STATE_ALIVE, STATE_EVICTED, STATE_EXPIRED
from repro.reliability import (
    KIND_ERROR,
    KIND_KILL,
    FaultSpec,
    ShardTaskError,
    inject,
)
from repro.reliability.faults import SITE_FLEET_HEARTBEAT, SITE_SHARD

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker-side fault injection requires fork inheritance",
)

N_FIT = 1200
N_SAMPLE = 20_000


@pytest.fixture(scope="module")
def fitted():
    table = load_dataset("ton", n_records=N_FIT, seed=3)
    config = SynthesisConfig(epsilon=2.0)
    config.gum.iterations = 6
    return NetDPSyn(config, rng=11).fit(table)


@pytest.fixture(scope="module")
def serial_digest(fitted):
    return fitted.sample(N_SAMPLE, rng=123, shards=6, backend="serial").content_digest()


def _fleet_digest(fitted, **cluster_kwargs):
    with LocalCluster(**cluster_kwargs):
        table = fitted.sample(N_SAMPLE, rng=123, shards=6, backend="fleet")
    return table.content_digest()


# ------------------------------------------------------------------ messaging
class TestEnvelope:
    def test_round_trip(self):
        env = Envelope(type="assign", sender="w0", seq=3, payload={"index": 1})
        assert decode_envelope(encode_envelope(env)) == env

    def test_rejects_foreign_schema_version(self):
        import json

        frame = json.loads(encode_envelope(Envelope(type="heartbeat", sender="w0")))
        frame["version"] = FLEET_SCHEMA_VERSION + 1
        with pytest.raises(EnvelopeError, match="schema version"):
            decode_envelope(json.dumps(frame).encode())

    def test_rejects_unknown_type_and_garbage(self):
        with pytest.raises(EnvelopeError):
            Envelope(type="gossip", sender="w0")
        with pytest.raises(EnvelopeError):
            decode_envelope(b"{not json")
        with pytest.raises(EnvelopeError):
            decode_envelope(b'["a", "list"]')

    def test_seed_spec_round_trip_is_bit_identical(self):
        root = np.random.SeedSequence(42, spawn_key=(7,))
        rebuilt = seed_from_spec(seed_spec(root))
        a = np.random.default_rng(root).integers(0, 1 << 30, 64)
        b = np.random.default_rng(rebuilt).integers(0, 1 << 30, 64)
        assert (a == b).all()

    def test_release_seed_specs_match_engine_derivation(self):
        # The published assignment must mirror the engine's: GUM child i,
        # decode child shards + i, from one 2*shards spawn.
        shards = 4
        specs = release_seed_specs(np.random.SeedSequence(99), shards)
        children = np.random.SeedSequence(99).spawn(2 * shards)
        assert len(specs) == shards
        for i, spec in enumerate(specs):
            assert seed_from_spec(spec["gum"]).spawn_key == children[i].spawn_key
            assert (
                seed_from_spec(spec["decode"]).spawn_key
                == children[shards + i].spawn_key
            )


# ------------------------------------------------------------------- registry
class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestRegistry:
    def test_heartbeats_keep_a_worker_alive(self):
        clock = FakeClock()
        registry = WorkerRegistry(heartbeat_interval=1.0, liveness_factor=3.0, clock=clock)
        registry.register("w0", pid=1)
        for _ in range(5):
            clock.now += 2.5  # late, but within the 3.0 liveness window
            assert registry.heartbeat("w0")
            assert registry.expire() == []
        assert registry.get("w0").heartbeats == 5

    def test_expiry_fires_once_and_late_heartbeat_does_not_resurrect(self):
        clock = FakeClock()
        registry = WorkerRegistry(heartbeat_interval=1.0, liveness_factor=3.0, clock=clock)
        registry.register("w0", pid=1)
        clock.now += 3.5
        assert registry.expire() == ["w0"]
        assert registry.expire() == []  # newly-expired only, exactly once
        assert registry.get("w0").state == STATE_EXPIRED
        # Its shards were reassigned the moment it expired; a late heartbeat
        # must not quietly resurrect it — it has to re-register.
        assert not registry.heartbeat("w0")
        assert registry.get("w0").state == STATE_EXPIRED

    def test_reregistration_resumes_and_is_counted(self):
        clock = FakeClock()
        registry = WorkerRegistry(heartbeat_interval=1.0, clock=clock)
        registry.register("w0", pid=1)
        clock.now += 10.0
        registry.expire()
        record = registry.register("w0", pid=2)
        assert record.state == STATE_ALIVE
        assert record.registrations == 2
        assert record.pid == 2
        assert registry.heartbeat("w0")

    def test_evicted_workers_are_gone_for_good(self):
        registry = WorkerRegistry()
        registry.register("w0", pid=1)
        registry.evict("w0")
        assert registry.get("w0").state == STATE_EVICTED
        assert not registry.heartbeat("w0")
        assert registry.alive() == []

    def test_alive_filters_by_role(self):
        registry = WorkerRegistry()
        registry.register("w0", pid=1, role="sampler")
        registry.register("w1", pid=2, role="serving", meta={"url": "http://x"})
        assert [r.worker_id for r in registry.alive()] == ["w0", "w1"]
        assert [r.worker_id for r in registry.alive(role="serving")] == ["w1"]


# ----------------------------------------------------------------- work-queue
class TestShardQueue:
    def test_lease_complete_lifecycle(self):
        queue = ShardQueue(3)
        assert [queue.lease("a"), queue.lease("b"), queue.lease("a")] == [0, 1, 2]
        assert queue.lease("c") is None
        assert queue.complete(0, "a") and queue.complete(1, "b") and queue.complete(2, "a")
        assert queue.done
        assert queue.attempts == {0: 1, 1: 1, 2: 1}

    def test_stale_completions_are_rejected(self):
        queue = ShardQueue(2)
        queue.lease("a")
        assert not queue.complete(0, "b")  # not the lease holder
        assert queue.complete(0, "a")
        assert not queue.complete(0, "a")  # already done
        assert not queue.complete(1, "a")  # never leased

    def test_release_worker_requeues_to_front_seeds_untouched(self):
        queue = ShardQueue(4)
        assert queue.lease("dead") == 0
        assert queue.lease("dead") == 1
        assert queue.lease("alive") == 2
        assert queue.release_worker("dead") == [0, 1]
        # Requeued shards lead the pending queue (recovery first), and a
        # re-lease is the *same* index — the task tuple (and its seeds)
        # never changes, only the worker does.
        assert queue.lease("alive") == 0
        assert queue.lease("alive") == 1
        assert queue.attempts[0] == 2 and queue.attempts[3] == 0
        assert queue.max_attempts() == 2


# ------------------------------------------------------- multi-worker release
class TestFleetRelease:
    def test_fleet_backend_requires_a_cluster(self):
        assert "fleet" in ALL_BACKENDS and "fleet" not in BACKENDS
        backend = get_backend("fleet")
        assert current_cluster() is None
        with pytest.raises(RuntimeError, match="LocalCluster"):
            backend.run_tasks(print, [(1,)])

    def test_two_workers_digest_equal_to_serial(self, fitted, serial_digest):
        assert _fleet_digest(fitted, workers=2) == serial_digest

    def test_four_workers_digest_equal_to_serial(self, fitted, serial_digest):
        assert _fleet_digest(fitted, workers=4) == serial_digest

    def test_deterministic_task_failure_is_attributed(self):
        with LocalCluster(workers=1) as cluster:
            with pytest.raises(ShardTaskError) as excinfo:
                cluster.run_tasks(_raise_task, [(0,), (1,)])
        err = excinfo.value
        assert not err.transient
        assert "injected deterministic failure" in str(err)
        assert "ValueError" in (err.remote_traceback or "")

    def test_empty_fleet_fails_typed_not_hanging(self):
        with LocalCluster(workers=0) as cluster:
            with pytest.raises(FleetError, match="no live fleet workers"):
                cluster.run_tasks(_echo_task, [(1,), (2,)])

    def test_closed_cluster_refuses_releases(self):
        cluster = LocalCluster(workers=0)
        cluster.close()
        with pytest.raises(FleetError, match="closed"):
            cluster.run_tasks(_echo_task, [(1,)])

    def test_generic_tasks_and_shared_payload(self):
        with LocalCluster(workers=2) as cluster:
            out = cluster.run_tasks(_mul_task, [(i,) for i in range(8)], shared=7)
            assert out == [7 * i for i in range(8)]
            # Same payload object again: spooled once, results still right.
            assert cluster.run_tasks(_mul_task, [(3,)], shared=7) == [21]


def _raise_task(shared, index):
    raise ValueError(f"injected deterministic failure on task {index}")


def _echo_task(shared, value):
    return value


def _mul_task(shared, value):
    return shared * value


# ------------------------------------------------------------------ chaos legs
@fork_only
class TestFleetChaos:
    def test_killed_worker_mid_release_digest_identical(self, fitted, serial_digest):
        with inject(FaultSpec(kind=KIND_KILL, site=SITE_SHARD, index=1)) as injector:
            digest = _fleet_digest(fitted, workers=2)
            assert injector.fired(KIND_KILL) >= 1
        assert digest == serial_digest

    def test_killed_worker_mid_heartbeat_digest_identical(self, fitted, serial_digest):
        # 50 ms heartbeats so the first beat (and the kill) lands mid-release.
        with inject(FaultSpec(kind=KIND_KILL, site=SITE_FLEET_HEARTBEAT)) as injector:
            digest = _fleet_digest(fitted, workers=2, heartbeat_interval=0.05)
            assert injector.fired(KIND_KILL) >= 1
        assert digest == serial_digest

    def test_injected_error_is_remote_attributed(self, fitted):
        with inject(FaultSpec(kind=KIND_ERROR, site=SITE_SHARD, index=0)):
            with LocalCluster(workers=2):
                with pytest.raises(ShardTaskError) as excinfo:
                    fitted.sample(N_SAMPLE, rng=123, shards=6, backend="fleet")
        assert "FaultError" in (excinfo.value.remote_traceback or "")

    def test_stalled_worker_is_expired_shards_reassigned_then_resumes(
        self, fitted, serial_digest
    ):
        """The full eviction-and-return cycle: ``SIGSTOP`` mid-release stops
        the heartbeats, the coordinator expires the worker and reassigns its
        shards (digest still identical), and after ``SIGCONT`` the worker
        re-registers and serves the next release."""
        with LocalCluster(workers=2, heartbeat_interval=0.05) as cluster:
            victim = None
            digests = {}

            def sample():
                digests["value"] = fitted.sample(
                    N_SAMPLE, rng=123, shards=6, backend="fleet"
                ).content_digest()

            runner = threading.Thread(target=sample)
            runner.start()
            deadline = time.monotonic() + 10
            while victim is None and time.monotonic() < deadline:
                holders = cluster.registry.alive()
                if len(holders) == 2 and cluster.stats()["active_release"]:
                    victim = holders[0]
                time.sleep(0.005)
            assert victim is not None, "release never started"
            os.kill(victim.pid, signal.SIGSTOP)
            try:
                runner.join(timeout=60)
                assert not runner.is_alive()
                assert digests["value"] == serial_digest
                # The stall was noticed: the victim left the alive set.
                record = cluster.registry.get(victim.worker_id)
                assert record.state in (STATE_EXPIRED, STATE_EVICTED)
            finally:
                os.kill(victim.pid, signal.SIGCONT)
            # After SIGCONT the worker's dead connection makes it reconnect
            # and re-register under its id: a clean resume, counted.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                record = cluster.registry.get(victim.worker_id)
                if record.state == STATE_ALIVE and record.registrations >= 2:
                    break
                time.sleep(0.02)
            assert record.registrations >= 2, "worker never re-registered"
            table = fitted.sample(N_SAMPLE, rng=123, shards=6, backend="fleet")
            assert table.content_digest() == serial_digest


# ------------------------------------------------------------- fleet serving
@pytest.fixture(scope="module")
def model_root(tmp_path_factory, fitted):
    root = tmp_path_factory.mktemp("fleet-models")
    fitted.save(root / "ton.ndpsyn")
    return root


def _await_replicas(cluster, count, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        urls = cluster.serving_urls()
        if len(urls) >= count:
            return urls
        time.sleep(0.02)
    raise AssertionError(f"only {cluster.serving_urls()} replicas came up")


class TestReplicatedServing:
    QUERY = {"kind": "marginal", "attrs": ["proto"]}

    def test_round_robin_answers_bit_identical(self, model_root):
        with LocalCluster(workers=2, serving_root=model_root) as cluster:
            _await_replicas(cluster, 2)
            client = ReplicatedQueryClient(cluster)
            answers = [client.query("ton", self.QUERY) for _ in range(4)]
            assert all(answer == answers[0] for answer in answers)
            stats = client.stats()
            assert stats["dispatched"] == 4
            assert stats["failovers"] == 0
            assert len(stats["replicas"]) == 2

    def test_failover_after_replica_death(self, model_root):
        with LocalCluster(workers=2, serving_root=model_root) as cluster:
            _await_replicas(cluster, 2)
            client = ReplicatedQueryClient(cluster)
            baseline = client.query("ton", self.QUERY)
            os.kill(cluster.registry.alive()[0].pid, signal.SIGKILL)
            # Every request still answers — the dead replica trips its
            # breaker and traffic fails over to the survivor.
            for _ in range(6):
                assert client.query("ton", self.QUERY) == baseline
            stats = client.stats()
            assert stats["failovers"] >= 1
            states = {r["breaker"]["state"] for r in stats["replicas"]}
            assert "open" in states

    def test_client_requires_replicas(self):
        with pytest.raises(ValueError, match="at least one"):
            ReplicatedQueryClient([])
        with pytest.raises(ValueError, match="http"):
            ReplicatedQueryClient(["ftp://nope"])
