"""Wire-schema contract tests: round-trips, strictness, golden v1 forms.

Three layers of protection for the serving API's wire contract:

- **property round-trips** (hypothesis): ``query_from_wire(query_to_wire(q))
  == q`` through a real ``json.dumps``/``loads`` cycle for arbitrary valid
  queries, and ``answer_from_wire(answer_to_wire(a))`` bit-identical under
  ``answers_equal`` — floats survive because JSON's shortest-repr float
  round-trip is exact;
- **strict parsing**: unknown keys, foreign schema versions, and type
  confusion are rejected with the typed taxonomy (machine-readable codes),
  never silently reinterpreted;
- **golden fixtures**: ``tests/data/wire_golden_v1.json`` pins the exact
  version-1 JSON forms; any re-shape of the wire format fails these tests
  until ``SCHEMA_VERSION`` is bumped and the fixtures are regenerated
  (``python tests/test_schemas.py`` rewrites the file).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    SCHEMA_VERSION,
    Prefer,
    Query,
    QueryAnswer,
    QueryValidationError,
    SchemaVersionError,
    answer_from_wire,
    answer_to_wire,
    answers_equal,
    count,
    histogram,
    marginal,
    query_from_wire,
    query_to_wire,
    topk,
)
from repro.serving.schemas import prefer_from_wire

GOLDEN_PATH = Path(__file__).parent / "data" / "wire_golden_v1.json"

ATTRS = ("proto", "dstport", "srcport", "byt", "pkt", "td", "sa", "da", "flag")

_scalar = st.one_of(
    st.text(max_size=12),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False),
)
_where = st.dictionaries(
    st.sampled_from(ATTRS),
    st.one_of(_scalar, st.lists(_scalar, min_size=1, max_size=4)),
    max_size=3,
)


def _split(attrs_and_where):
    """Target attrs and a filter over *disjoint* attributes."""
    targets, where = attrs_and_where
    return tuple(targets), {a: v for a, v in where.items() if a not in targets}


_marginal_inputs = st.tuples(
    st.lists(st.sampled_from(ATTRS), min_size=1, max_size=3, unique=True), _where
)
_single_inputs = st.tuples(
    st.lists(st.sampled_from(ATTRS), min_size=1, max_size=1, unique=True), _where
)


def _roundtrip(query: Query) -> Query:
    """to_wire -> real JSON text -> from_wire."""
    return query_from_wire(json.loads(json.dumps(query_to_wire(query))))


# ------------------------------------------------------------ property tests
@settings(max_examples=200, deadline=None)
@given(_where)
def test_count_roundtrip(where):
    query = count(where=where)
    assert _roundtrip(query) == query


@settings(max_examples=200, deadline=None)
@given(_marginal_inputs)
def test_marginal_roundtrip(inputs):
    attrs, where = _split(inputs)
    query = marginal(*attrs, where=where)
    assert _roundtrip(query) == query


@settings(max_examples=200, deadline=None)
@given(_single_inputs, st.integers(min_value=1, max_value=1000))
def test_topk_roundtrip(inputs, k):
    attrs, where = _split(inputs)
    query = topk(attrs[0], k=k, where=where)
    assert _roundtrip(query) == query


@settings(max_examples=200, deadline=None)
@given(_single_inputs, st.integers(min_value=1, max_value=512))
def test_histogram_roundtrip(inputs, bins):
    attrs, where = _split(inputs)
    query = histogram(attrs[0], bins=bins, where=where)
    assert _roundtrip(query) == query


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=16
    )
)
def test_count_answer_value_bit_exact(values):
    # Any finite float must survive the wire bit-for-bit (shortest repr).
    for value in values:
        answer = QueryAnswer(query=count(), value=value, provenance="marginal", source=("proto",))
        back = answer_from_wire(json.loads(json.dumps(answer_to_wire(answer))))
        assert answers_equal(back, answer)
        assert math.copysign(1.0, back.value) == math.copysign(1.0, value)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.lists(
            st.floats(min_value=0, max_value=1e12, allow_nan=False), min_size=2, max_size=5
        ),
        min_size=2,
        max_size=5,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1)
)
def test_marginal_answer_roundtrip(rows):
    value = np.asarray(rows, dtype=np.float64)
    answer = QueryAnswer(
        query=marginal("proto", "dstport"), value=value, provenance="sample", source=None
    )
    back = answer_from_wire(json.loads(json.dumps(answer_to_wire(answer))))
    assert answers_equal(back, answer)
    assert back.value.dtype == np.float64


def test_topk_and_histogram_answer_roundtrip():
    topk_answer = QueryAnswer(
        query=topk("proto", k=2),
        value=[
            {"bin": 3, "label": "TCP", "count": 1234.0625},
            {"bin": 0, "label": "UDP", "count": 98.5},
        ],
        provenance="marginal",
        source=("proto", "dstport"),
    )
    hist_answer = QueryAnswer(
        query=histogram("byt", bins=3),
        value={
            "edges": np.asarray([0.0, 0.1, 0.2, 1 / 3]),
            "counts": np.asarray([5.25, 0.0, 17.125]),
        },
        provenance="sample",
        source=None,
    )
    for answer in (topk_answer, hist_answer):
        back = answer_from_wire(json.loads(json.dumps(answer_to_wire(answer))))
        assert answers_equal(back, answer)


# ------------------------------------------------------------- strict parsing
def test_unknown_query_key_rejected():
    with pytest.raises(QueryValidationError, match="unknown field"):
        query_from_wire({"kind": "count", "atrs": ["proto"]})


def test_unknown_answer_key_rejected():
    wire = answer_to_wire(QueryAnswer(count(), 1.0, "marginal", ("proto",)))
    wire["extra"] = 1
    with pytest.raises(QueryValidationError, match="unknown field"):
        answer_from_wire(wire)


def test_foreign_schema_version_rejected():
    with pytest.raises(SchemaVersionError) as excinfo:
        query_from_wire({"schema_version": 2, "kind": "count"})
    assert excinfo.value.code == "unsupported_schema_version"
    assert excinfo.value.http_status == 400


def test_missing_schema_version_means_current():
    assert query_from_wire({"kind": "count"}) == count()


@pytest.mark.parametrize(
    "payload, match",
    [
        ({"kind": "tally"}, "kind"),
        ({"kind": "count", "attrs": ["proto"]}, "no attrs"),
        ({"kind": "count", "attrs": "proto"}, "list"),
        ({"kind": "marginal"}, "at least one attribute"),
        ({"kind": "topk", "attrs": ["a", "b"], "k": 3}, "exactly one"),
        ({"kind": "topk", "attrs": ["a"], "k": True}, "integer"),
        ({"kind": "topk", "attrs": ["a"], "k": 0}, ">= 1"),
        ({"kind": "marginal", "attrs": ["a"], "k": 3}, "only applies to topk"),
        ({"kind": "count", "bins": 4}, "only applies to histogram"),
        ({"kind": "histogram", "attrs": ["a"], "bins": "ten"}, "integer"),
        ({"kind": "count", "where": ["proto"]}, "object"),
        ({"kind": "count", "where": {"proto": None}}, "scalar"),
        ({"kind": "count", "where": {"proto": [["TCP"]]}}, "scalar"),
    ],
)
def test_invalid_queries_rejected(payload, match):
    with pytest.raises(QueryValidationError, match=match):
        query_from_wire(payload)


def test_query_validation_error_is_a_value_error():
    # Pre-taxonomy call sites catch ValueError; the taxonomy must satisfy them.
    with pytest.raises(ValueError):
        query_from_wire({"kind": "nope"})


def test_answer_missing_fields_rejected():
    wire = answer_to_wire(QueryAnswer(count(), 1.0, "marginal", None))
    del wire["value"]
    with pytest.raises(QueryValidationError, match="missing required field"):
        answer_from_wire(wire)


def test_answer_value_shape_mismatch_rejected():
    wire = answer_to_wire(
        QueryAnswer(
            histogram("byt"),
            {"edges": np.asarray([0.0, 1.0]), "counts": np.asarray([1.0])},
            "sample",
        )
    )
    wire["value"] = {"edges": [0.0, 1.0]}  # counts missing
    with pytest.raises(QueryValidationError, match="histogram"):
        answer_from_wire(wire)


# ------------------------------------------------------------------- prefer
def test_prefer_coerce_is_the_single_validation_point():
    assert Prefer.coerce("sample") is Prefer.SAMPLE
    assert Prefer.coerce(Prefer.MARGINAL) is Prefer.MARGINAL
    assert Prefer.SAMPLE == "sample"  # str-valued: pre-enum call sites work
    assert str(Prefer.AUTO) == "auto"
    with pytest.raises(QueryValidationError, match="prefer must be one of"):
        Prefer.coerce("bogus")
    with pytest.raises(ValueError):  # back-compat alias of the above
        Prefer.coerce("bogus")


def test_prefer_from_wire():
    assert prefer_from_wire({}) is Prefer.AUTO
    assert prefer_from_wire({"prefer": "marginal"}) is Prefer.MARGINAL
    with pytest.raises(QueryValidationError):
        prefer_from_wire({"prefer": "everything"})


# ------------------------------------------------------------ golden fixtures
def golden_cases() -> tuple[dict, dict]:
    """The pinned objects; regenerate the fixture by running this module."""
    queries = {
        "count_total": count(),
        "count_filtered": count(where={"proto": "TCP"}),
        "count_multi_filter": count(where={"proto": ["TCP", "UDP"], "dstport": 443}),
        "marginal_pair": marginal("proto", "dstport"),
        "marginal_filtered": marginal("sa", "da", where={"proto": ["TCP", "UDP"]}),
        "topk_plain": topk("dstport", k=5),
        "topk_filtered": topk("proto", k=3, where={"dstport": 443}),
        "histogram_plain": histogram("byt", bins=12),
        "histogram_filtered": histogram("td", bins=8, where={"dstport": [80, 443]}),
    }
    answers = {
        "count_answer": QueryAnswer(
            query=queries["count_filtered"],
            value=1234.5678901234567,
            provenance="marginal",
            source=("proto", "dstport"),
        ),
        "marginal_answer": QueryAnswer(
            query=queries["marginal_pair"],
            value=np.asarray([[1.5, 2.25], [0.1, 7.75]]),
            provenance="marginal",
            source=("proto", "dstport"),
        ),
        "topk_answer": QueryAnswer(
            query=queries["topk_plain"],
            value=[
                {"bin": 7, "label": "443", "count": 1000.125},
                {"bin": 2, "label": "80", "count": 512.0},
            ],
            provenance="sample",
            source=None,
        ),
        "histogram_answer": QueryAnswer(
            query=queries["histogram_plain"],
            value={
                "edges": np.asarray([0.0, 0.5, 1.0]),
                "counts": np.asarray([3.0, 4.5]),
            },
            provenance="sample",
            source=None,
        ),
    }
    return queries, answers


def _golden_payload() -> dict:
    queries, answers = golden_cases()
    return {
        "schema_version": SCHEMA_VERSION,
        "queries": {name: query_to_wire(q) for name, q in queries.items()},
        "answers": {name: answer_to_wire(a) for name, a in answers.items()},
    }


def _load_golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def test_golden_file_pins_version_1():
    golden = _load_golden()
    assert golden["schema_version"] == 1
    assert SCHEMA_VERSION == 1, "bump the golden fixtures with the schema version"
    for wire in list(golden["queries"].values()) + list(golden["answers"].values()):
        assert wire["schema_version"] == 1


def test_wire_forms_match_golden_exactly():
    # Byte-level stability: the emitted wire form IS the committed form.
    assert _golden_payload() == _load_golden()


def test_golden_queries_parse_back():
    golden = _load_golden()
    queries, _ = golden_cases()
    for name, query in queries.items():
        assert query_from_wire(golden["queries"][name]) == query


def test_golden_answers_parse_back():
    golden = _load_golden()
    _, answers = golden_cases()
    for name, answer in answers.items():
        assert answers_equal(answer_from_wire(golden["answers"][name]), answer)


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(_golden_payload(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")
