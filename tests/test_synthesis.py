"""Unit tests for GUM, GUMMI initialization, decoding, and timestamps."""

import numpy as np
import pytest

from repro.data.domain import Domain
from repro.data.schema import FieldKind, FieldSpec, Schema
from repro.data.table import TraceTable
from repro.marginals.marginal import Marginal
from repro.synthesis import (
    GumConfig,
    marginal_initialization,
    random_initialization,
    reconstruct_timestamps,
    run_gum,
    weighted_pearson,
)
from repro.synthesis.initialization import key_correlation_score


class TestWeightedPearson:
    def test_perfect_correlation(self):
        counts = np.diag([10.0, 10.0, 10.0])
        assert weighted_pearson(counts) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        counts = np.fliplr(np.diag([10.0, 10.0, 10.0]))
        assert weighted_pearson(counts) == pytest.approx(-1.0)

    def test_independent_is_zero(self):
        counts = np.ones((4, 4))
        assert weighted_pearson(counts) == pytest.approx(0.0, abs=1e-9)

    def test_degenerate_is_zero(self):
        assert weighted_pearson(np.zeros((3, 3))) == 0.0
        assert weighted_pearson(np.array([[5.0, 0.0]])) == 0.0

    def test_key_correlation_score(self):
        m = Marginal(("label", "x"), np.diag([5.0, 5.0]))
        assert key_correlation_score(m, "label") == pytest.approx(1.0)
        assert key_correlation_score(m, "absent") == 0.0


class TestInitialization:
    def _one_way(self):
        return {"a": np.array([80.0, 20.0]), "b": np.array([10.0, 90.0])}

    def test_random_init_follows_marginals(self):
        data = random_initialization(self._one_way(), ("a", "b"), 5000, rng=0)
        assert data.shape == (5000, 2)
        freq_a = np.bincount(data[:, 0], minlength=2) / 5000
        assert freq_a[0] == pytest.approx(0.8, abs=0.03)

    def test_marginal_init_preserves_joint(self):
        # Joint marginal: a and label perfectly correlated.
        joint = Marginal(("a", "label"), np.diag([50.0, 50.0]))
        domain = Domain({"a": 2, "label": 2})
        data = marginal_initialization(
            [joint], self._one_way() | {"label": np.array([50.0, 50.0])},
            ("a", "label"), domain, 2000, key_attr="label", rng=1,
        )
        agreement = np.mean(data[:, 0] == data[:, 1])
        assert agreement > 0.95

    def test_marginal_init_falls_back_for_uncovered(self):
        joint = Marginal(("a", "label"), np.diag([50.0, 50.0]))
        domain = Domain({"a": 2, "label": 2, "b": 2})
        one_way = self._one_way() | {"label": np.array([50.0, 50.0])}
        data = marginal_initialization(
            [joint], one_way, ("a", "label", "b"), domain, 1000,
            key_attr="label", rng=2,
        )
        assert data.shape == (1000, 3)
        freq_b = np.bincount(data[:, 2], minlength=2) / 1000
        assert freq_b[1] == pytest.approx(0.9, abs=0.05)

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            marginal_initialization(
                [], self._one_way(), ("a", "b"), Domain({"a": 2, "b": 2}),
                10, key_attr="zzz", rng=0,
            )


class TestGum:
    def _setup(self, n=3000, seed=3):
        rng = np.random.default_rng(seed)
        domain = Domain({"x": 4, "y": 3})
        # Target: strong correlation between x and y.
        target = np.zeros((4, 3))
        for i in range(4):
            target[i, i % 3] = 1.0
        target = target / target.sum() * n
        marginal = Marginal(("x", "y"), target)
        data = np.stack(
            [rng.integers(0, 4, n), rng.integers(0, 3, n)], axis=1
        ).astype(np.int32)
        return data, [marginal], ("x", "y"), domain

    def test_error_decreases(self):
        data, targets, attrs, domain = self._setup()
        result = run_gum(
            data, targets, attrs, domain, GumConfig(iterations=20), rng=4
        )
        assert result.errors[-1] < result.errors[0]
        assert result.errors[-1] < 0.1

    def test_preserves_row_count(self):
        data, targets, attrs, domain = self._setup(n=500)
        result = run_gum(data, targets, attrs, domain, GumConfig(iterations=5), rng=4)
        assert result.data.shape == (500, 2)

    def test_early_stop(self):
        data, targets, attrs, domain = self._setup()
        config = GumConfig(iterations=200, tol=1e-3, patience=3)
        result = run_gum(data, targets, attrs, domain, config, rng=4)
        assert result.iterations_run < 200

    def test_empty_inputs(self):
        domain = Domain({"x": 2})
        result = run_gum(np.empty((0, 1), dtype=np.int32), [], ("x",), domain)
        assert result.iterations_run == 0

    def test_values_stay_in_domain(self):
        data, targets, attrs, domain = self._setup()
        result = run_gum(data, targets, attrs, domain, GumConfig(iterations=10), rng=4)
        assert result.data[:, 0].max() < 4
        assert result.data[:, 1].max() < 3
        assert result.data.min() >= 0

    def test_duplicate_fraction_zero_is_pure_replace(self):
        data, targets, attrs, domain = self._setup()
        config = GumConfig(iterations=15, duplicate_fraction=0.0)
        result = run_gum(data, targets, attrs, domain, config, rng=4)
        assert result.errors[-1] < result.errors[0]

    def test_run_gum_reports_seconds(self):
        data, targets, attrs, domain = self._setup(n=500)
        result = run_gum(data, targets, attrs, domain, GumConfig(iterations=3), rng=4)
        assert result.seconds > 0
        assert result.records_per_second > 0


class TestGumUpdateModes:
    def _setup(self, n=3000, seed=3):
        return TestGum._setup(TestGum(), n=n, seed=seed)

    @pytest.mark.parametrize("mode", ["vectorized", "reference"])
    def test_both_modes_converge(self, mode):
        data, targets, attrs, domain = self._setup()
        config = GumConfig(iterations=20, update_mode=mode)
        result = run_gum(data, targets, attrs, domain, config, rng=4)
        assert result.errors[-1] < result.errors[0]
        assert result.errors[-1] < 0.1
        assert result.data.min() >= 0
        assert result.data[:, 0].max() < 4 and result.data[:, 1].max() < 3

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            GumConfig(update_mode="magic")

    def test_auto_resolution(self):
        config = GumConfig()
        assert config.resolved_mode() == "vectorized"
        assert config.resolved_mode("reference") == "reference"
        pinned = GumConfig(update_mode="reference")
        assert pinned.resolved_mode("vectorized") == "reference"
        with pytest.raises(ValueError):
            config.resolved_mode("auto")

    def test_incremental_counts_stay_exact(self):
        """The vectorized path's cached counts must equal a fresh bincount."""
        from repro.marginals.compute import cell_codes, marginal_counts
        from repro.synthesis.gum import _MarginalState, _update_marginal_vectorized

        data, targets, attrs, domain = self._setup(n=2000)
        rng = np.random.default_rng(8)
        config = GumConfig(iterations=8, update_mode="vectorized")
        n = data.shape[0]
        states = []
        for m in targets:
            axes = np.array([attrs.index(a) for a in m.attrs])
            shape = domain.shape(m.attrs)
            target = np.clip(m.flat(), 0.0, None)
            state = _MarginalState(axes, shape, target * (n / target.sum()))
            state.init_cache(data)
            states.append(state)
        for t in range(8):
            for k in rng.permutation(len(states)):
                _update_marginal_vectorized(data, states, k, 0.98**t, config, rng)
        for state in states:
            fresh = marginal_counts(data[:, state.axes], state.shape).reshape(-1)
            assert np.array_equal(state.counts, fresh)
            assert np.array_equal(state.codes, cell_codes(data[:, state.axes], state.shape))


class TestTimestampReconstruction:
    def _table(self):
        schema = Schema(
            fields=(
                FieldSpec("srcip", FieldKind.IP),
                FieldSpec("ts", FieldKind.TIMESTAMP),
                FieldSpec("tsdiff", FieldKind.NUMERIC, integral=False),
            ),
            flow_key=("srcip",),
        )
        return TraceTable(
            schema,
            {
                "srcip": np.array([1, 1, 1, 2, 2]),
                "ts": np.array([100.0, 50.0, 80.0, 10.0, 30.0]),
                "tsdiff": np.array([4.0, 0.0, 2.0, 0.0, 7.0]),
            },
        )

    def test_group_heads_anchor(self):
        out = reconstruct_timestamps(self._table(), rng=0)
        ts = out.column("ts")
        # Group 1 head is the record with original ts=50 (index 1).
        assert ts[1] == pytest.approx(50.0)
        # Then 50 + 2 (row 2's tsdiff), then + 4 (row 0's tsdiff).
        assert ts[2] == pytest.approx(52.0)
        assert ts[0] == pytest.approx(56.0)

    def test_second_group_independent(self):
        out = reconstruct_timestamps(self._table(), rng=0)
        ts = out.column("ts")
        assert ts[3] == pytest.approx(10.0)
        assert ts[4] == pytest.approx(17.0)

    def test_tsdiff_dropped(self):
        out = reconstruct_timestamps(self._table(), rng=0)
        assert "tsdiff" not in out.schema

    def test_monotone_within_group(self):
        out = reconstruct_timestamps(self._table(), rng=0)
        ts = np.asarray(out.column("ts"))
        groups = np.asarray(self._table().column("srcip"))
        for g in np.unique(groups):
            member_ts = ts[groups == g]
            # With non-negative tsdiff, reconstruction preserves order.
            assert (np.sort(member_ts) == member_ts[np.argsort(member_ts)]).all()

    def test_table_without_tsdiff_passthrough(self):
        schema = Schema(
            fields=(FieldSpec("srcip", FieldKind.IP), FieldSpec("ts", FieldKind.TIMESTAMP)),
            flow_key=("srcip",),
        )
        table = TraceTable(schema, {"srcip": np.array([1]), "ts": np.array([5.0])})
        out = reconstruct_timestamps(table, rng=0)
        assert out.column("ts")[0] == 5.0
