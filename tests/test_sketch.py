"""Unit and property tests for the sketching substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import (
    CountMinSketch,
    CountSketch,
    MultiplyShiftHasher,
    NitroSketch,
    UnivMon,
    exact_counts,
    exact_heavy_hitters,
    heavy_hitter_are,
    sketch_fidelity_error,
)


def _zipf_stream(n=20000, k=500, a=1.4, seed=0):
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, k + 1, dtype=float)
    probs = ranks**-a
    probs /= probs.sum()
    return rng.choice(k, size=n, p=probs).astype(np.int64)


class TestHasher:
    def test_width_rounded_to_pow2(self):
        h = MultiplyShiftHasher(3, 1000, np.random.default_rng(0))
        assert h.width == 1024

    def test_indices_in_range(self):
        h = MultiplyShiftHasher(4, 256, np.random.default_rng(1))
        idx = h.index(np.arange(10000))
        assert idx.min() >= 0
        assert idx.max() < 256

    def test_signs_are_pm_one(self):
        h = MultiplyShiftHasher(4, 256, np.random.default_rng(2))
        signs = h.sign(np.arange(1000))
        assert set(np.unique(signs)) == {-1, 1}

    def test_deterministic_per_key(self):
        h = MultiplyShiftHasher(2, 64, np.random.default_rng(3))
        a = h.index(np.array([42, 42, 7]))
        assert a[0, 0] == a[0, 1]


class TestCountMin:
    def test_never_underestimates(self):
        keys = _zipf_stream()
        sketch = CountMinSketch(width=512, depth=4, rng=0)
        sketch.update(keys)
        uniq, counts = exact_counts(keys)
        estimates = sketch.estimate(uniq)
        assert (estimates >= counts - 1e-9).all()

    def test_exact_when_wide(self):
        keys = np.arange(50).repeat(3)
        sketch = CountMinSketch(width=4096, depth=4, rng=0)
        sketch.update(keys)
        assert np.allclose(sketch.estimate(np.arange(50)), 3.0)

    def test_conservative_update_tighter(self):
        keys = _zipf_stream(n=30000, k=2000)
        plain = CountMinSketch(width=256, depth=4, conservative=False, rng=0)
        cons = CountMinSketch(width=256, depth=4, conservative=True, rng=0)
        plain.update(keys)
        cons.update(keys)
        uniq, counts = exact_counts(keys)
        err_plain = np.abs(plain.estimate(uniq) - counts).mean()
        err_cons = np.abs(cons.estimate(uniq) - counts).mean()
        assert err_cons <= err_plain

    def test_weighted_updates(self):
        sketch = CountMinSketch(width=1024, depth=4, rng=0)
        sketch.update(np.array([5, 5]), np.array([10.0, 3.0]))
        assert sketch.estimate(np.array([5]))[0] >= 13.0

    def test_empty_estimate(self):
        sketch = CountMinSketch(rng=0)
        assert len(sketch.estimate(np.array([], dtype=np.int64))) == 0


class TestCountSketch:
    def test_heavy_hitters_accurate(self):
        keys = _zipf_stream()
        sketch = CountSketch(width=1024, depth=5, rng=0)
        are = heavy_hitter_are(sketch, keys, threshold=0.005)
        assert are < 0.05

    def test_roughly_unbiased(self):
        keys = np.arange(200).repeat(10)
        totals = []
        for seed in range(10):
            sketch = CountSketch(width=64, depth=1, rng=seed)
            sketch.update(keys)
            totals.append(sketch.estimate(np.array([0]))[0])
        assert np.mean(totals) == pytest.approx(10.0, abs=15.0)


class TestUnivMon:
    def test_level0_estimates(self):
        keys = _zipf_stream()
        um = UnivMon(levels=6, width=1024, depth=5, rng=0)
        um.update(keys)
        uniq, counts = exact_heavy_hitters(keys, 0.005)
        est = um.estimate(uniq)
        rel = np.abs(est - counts) / counts
        assert rel.mean() < 0.1

    def test_levels_subsample(self):
        keys = np.arange(4096)
        um = UnivMon(levels=6, width=256, depth=3, rng=1)
        um.update(keys)
        masks = [um._level_mask(keys, lvl).sum() for lvl in range(4)]
        # Each level keeps roughly half the previous one.
        for a, b in zip(masks, masks[1:]):
            assert b < a

    def test_heavy_hitters_tracked(self):
        keys = _zipf_stream()
        um = UnivMon(levels=4, width=512, depth=4, top_k=16, rng=2)
        um.update(keys)
        hh = um.heavy_hitters(0)
        true_hh, _ = exact_heavy_hitters(keys, 0.01)
        assert len(set(hh) & set(true_hh.tolist())) >= len(true_hh) // 2

    def test_gsum_l1_close_to_stream_length(self):
        keys = _zipf_stream(n=8000, k=50, a=1.6)
        um = UnivMon(levels=5, width=1024, depth=5, top_k=64, rng=3)
        um.update(keys)
        l1 = um.gsum(lambda f: f)
        assert l1 == pytest.approx(8000, rel=0.5)


class TestNitroSketch:
    def test_estimates_with_sampling(self):
        keys = _zipf_stream()
        ns = NitroSketch(width=1024, depth=5, sample_rate=0.5, rng=0)
        ns.update(keys)
        uniq, counts = exact_heavy_hitters(keys, 0.01)
        rel = np.abs(ns.estimate(uniq) - counts) / counts
        assert rel.mean() < 0.3

    def test_lower_rate_noisier(self):
        keys = _zipf_stream()
        uniq, counts = exact_heavy_hitters(keys, 0.01)
        errs = {}
        for rate in (1.0, 0.1):
            ns = NitroSketch(width=1024, depth=5, sample_rate=rate, rng=0)
            ns.update(keys)
            errs[rate] = np.abs(ns.estimate(uniq) - counts).mean()
        assert errs[0.1] >= errs[1.0]

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            NitroSketch(sample_rate=0.0)


class TestHeavyHitterHarness:
    def test_exact_heavy_hitters_threshold(self):
        keys = np.array([1] * 100 + [2] * 5 + list(range(10, 40)))
        hh, counts = exact_heavy_hitters(keys, threshold=0.05)
        assert list(hh) == [1]
        assert counts[0] == 100

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            exact_heavy_hitters(np.array([1]), threshold=2.0)

    def test_fidelity_error_zero_for_identical_streams(self):
        keys = _zipf_stream()
        err = sketch_fidelity_error(
            lambda rng: CountMinSketch(width=1024, depth=4, rng=rng),
            keys,
            keys.copy(),
            threshold=0.005,
            trials=3,
            rng=0,
        )
        assert err < 0.5  # same stream, same error profile (up to seed noise)

    def test_fidelity_error_large_for_uniform_synthetic(self):
        keys = _zipf_stream(a=1.8)
        uniform = np.random.default_rng(1).integers(0, 500, size=len(keys))
        err_same = sketch_fidelity_error(
            lambda rng: CountMinSketch(width=128, depth=3, rng=rng),
            keys, keys.copy(), threshold=0.005, trials=3, rng=0,
        )
        err_diff = sketch_fidelity_error(
            lambda rng: CountMinSketch(width=128, depth=3, rng=rng),
            keys, uniform, threshold=0.005, trials=3, rng=0,
        )
        assert err_diff > err_same

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20)
    def test_cms_single_key_property(self, count):
        sketch = CountMinSketch(width=64, depth=3, rng=0)
        sketch.update(np.full(count, 7, dtype=np.int64))
        assert sketch.estimate(np.array([7]))[0] >= count
