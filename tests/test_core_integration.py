"""Integration tests: the full NetDPSyn pipeline end to end."""

import numpy as np
import pytest

from repro import NetDPSyn, SynthesisConfig, load_dataset, synthesize
from repro.metrics import jensen_shannon_divergence


@pytest.fixture(scope="module")
def ton():
    return load_dataset("ton", n_records=2500, seed=31)


@pytest.fixture(scope="module")
def fitted(ton):
    config = SynthesisConfig(epsilon=2.0)
    config.gum.iterations = 15
    synthesizer = NetDPSyn(config, rng=7)
    synthesizer.fit(ton)
    return synthesizer


class TestPipeline:
    def test_schema_preserved(self, fitted, ton):
        syn = fitted.sample(1000)
        assert syn.schema.names == ton.schema.names
        assert syn.n_records == 1000

    def test_budget_exactly_spent(self, fitted):
        assert fitted.ledger.remaining == pytest.approx(0.0, abs=1e-9)
        purposes = [p for p, _ in fitted.ledger.entries()]
        assert "frequency-dependent binning" in purposes
        assert "marginal selection" in purposes
        assert "marginal publication" in purposes

    def test_stage_split_fractions(self, fitted):
        spent = dict(fitted.ledger.entries())
        total = fitted.ledger.total
        assert spent["frequency-dependent binning"] == pytest.approx(0.1 * total)
        assert spent["marginal selection"] == pytest.approx(0.1 * total)
        assert spent["marginal publication"] == pytest.approx(0.8 * total)

    def test_published_marginals_are_valid_distributions(self, fitted):
        for m in fitted.published:
            assert (m.counts >= -1e-9).all()
        totals = [m.total for m in fitted.published]
        assert np.allclose(totals, totals[0], rtol=1e-6)

    def test_every_attribute_covered(self, fitted):
        covered = {a for m in fitted.published for a in m.attrs}
        assert covered == set(fitted.encoder.schema.names)

    def test_default_sample_size_from_noisy_total(self, fitted, ton):
        syn = fitted.sample()
        # The noisy consensus total should be near the true record count.
        assert abs(syn.n_records - ton.n_records) < 0.1 * ton.n_records

    def test_protocol_invariants_hold(self, fitted):
        syn = fitted.sample(2000)
        assert (np.asarray(syn.column("byt")) >= np.asarray(syn.column("pkt"))).all()
        assert (np.asarray(syn.column("srcport")) < 65536).all()
        assert (np.asarray(syn.column("dstport")) < 65536).all()
        assert (np.asarray(syn.column("td")) >= 0).all()

    def test_label_fidelity(self, fitted, ton):
        syn = fitted.sample(2500)
        jsd = jensen_shannon_divergence(ton.column("type"), syn.column("type"))
        assert jsd < 0.1

    def test_port_fidelity(self, fitted, ton):
        syn = fitted.sample(2500)
        jsd = jensen_shannon_divergence(ton.column("dstport"), syn.column("dstport"))
        assert jsd < 0.35

    def test_gum_converges(self, fitted):
        fitted.sample(1500)
        errors = fitted.gum_result.errors
        assert errors[-1] <= errors[0]

    def test_label_correlation_preserved(self, fitted, ton):
        # ddos flows target port 80 in TON; the synthesized joint should too.
        # A pinned rng keeps this independent of sibling tests' draws on the
        # module-scoped fixture.
        syn = fitted.sample(2500, rng=1234)
        labels = np.asarray(syn.column("type"))
        ports = np.asarray(syn.column("dstport"))
        ddos = labels == "ddos"
        if ddos.sum() >= 30:
            assert np.mean(ports[ddos] == 80) > 0.5

    def test_sample_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            NetDPSyn().sample()


class TestConfig:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            SynthesisConfig(epsilon=0.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            SynthesisConfig(delta=1.0)

    def test_invalid_initialization(self):
        with pytest.raises(ValueError):
            SynthesisConfig(initialization="magic")

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            SynthesisConfig(tau=1.5)


class TestFunctionalApi:
    def test_one_shot(self, ton):
        config = SynthesisConfig(epsilon=2.0)
        config.gum.iterations = 5
        syn = synthesize(ton, rng=3, config=config, n=500)
        assert syn.n_records == 500

    def test_epsilon_passthrough(self, ton):
        small = load_dataset("ugr16", n_records=800, seed=32)
        syn = synthesize(small, epsilon=1.0, rng=3, n=400)
        assert syn.n_records == 400


class TestEpsilonEffect:
    def test_lower_epsilon_not_catastrophic(self, ton):
        """NetDPSyn's headline: utility holds at small epsilon (Fig. 7)."""
        results = {}
        for eps in (0.1, 2.0):
            config = SynthesisConfig(epsilon=eps)
            config.gum.iterations = 10
            syn = NetDPSyn(config, rng=11).synthesize(ton)
            results[eps] = jensen_shannon_divergence(
                ton.column("type"), syn.column("type")
            )
        assert results[0.1] < 0.25
        assert results[2.0] <= results[0.1] + 0.05


class TestRandomVsGummi:
    def test_gummi_starts_closer_to_targets(self, ton):
        """Fig. 8's mechanism: GUMMI carries label joints from iteration 0.

        The first GUM iteration's *pre-update* marginal error measures the
        initialization directly: the marginal-seeded dataset must start
        closer to the published targets than independent sampling.
        """
        first_errors = {}
        for init in ("gummi", "random"):
            config = SynthesisConfig(epsilon=2.0, initialization=init)
            config.gum.iterations = 1
            synthesizer = NetDPSyn(config, rng=13)
            synthesizer.synthesize(ton)
            first_errors[init] = synthesizer.gum_result.errors[0]
        assert first_errors["gummi"] < first_errors["random"]
