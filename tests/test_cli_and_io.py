"""Tests for the experiments CLI and end-to-end CSV workflows."""

import json

import numpy as np

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.data import read_csv, write_csv
from repro.experiments.__main__ import EXPERIMENTS, _sanitize, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig3", "tab3", "appg"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_registry_covers_every_paper_artifact(self):
        expected = {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7",
            "appg", "ablations",
        }
        assert expected <= set(EXPERIMENTS)

    def test_tab5_runs_and_prints_json(self, capsys):
        assert main(["tab5", "--records", "400"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out.split("===")[-1].replace("tab5", "").strip())
        assert payload["ton"]["attributes"] == 11

    def test_sanitize_handles_tuple_keys_and_numpy(self):
        raw = {("a", "b"): np.float64(1.5), "x": [np.int64(2)]}
        clean = _sanitize(raw)
        assert clean == {"('a', 'b')": 1.5, "x": [2]}


class TestCsvWorkflow:
    def test_synthetic_trace_roundtrips_through_csv(self, tmp_path):
        raw = load_dataset("ugr16", n_records=600, seed=51)
        config = SynthesisConfig(epsilon=2.0)
        config.gum.iterations = 5
        synthetic = NetDPSyn(config, rng=5).synthesize(raw, n=400)

        path = tmp_path / "synthetic.csv"
        write_csv(synthetic, path)
        loaded = read_csv(path, synthetic.schema)

        assert loaded.n_records == 400
        for name in synthetic.schema.names:
            a = np.asarray(synthetic.column(name))
            b = np.asarray(loaded.column(name))
            if a.dtype.kind == "f":
                assert np.allclose(a, b)
            else:
                assert list(a) == list(b)

    def test_loaded_trace_usable_downstream(self, tmp_path):
        raw = load_dataset("caida", n_records=1500, seed=52)
        path = tmp_path / "packets.csv"
        write_csv(raw, path)
        loaded = read_csv(path, raw.schema)
        from repro.netml import build_flows

        assert len(build_flows(loaded)) == len(build_flows(raw))
