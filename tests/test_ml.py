"""Unit tests for the from-scratch ML substrate."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    LabelEncoder,
    LogisticRegressionClassifier,
    MlpClassifier,
    OneClassSVM,
    RandomForestClassifier,
    StandardScaler,
    accuracy_score,
    build_classifier,
    confusion_matrix,
    train_test_split,
)
from repro.ml.model_zoo import PAPER_MODELS


def _blobs(n=600, seed=0, k=3):
    """Well-separated Gaussian blobs."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 10, size=(k, 4))
    y = rng.integers(0, k, n)
    X = centers[y] + rng.normal(0, 1.0, size=(n, 4))
    return X, y


def _xor(n=800, seed=1):
    """The classic non-linear XOR problem."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestSplit:
    def test_sizes(self):
        X, y = _blobs(100)
        Xtr, Xte, ytr, yte = train_test_split(X, y, 0.2, rng=0)
        assert len(Xte) == 20
        assert len(Xtr) == 80

    def test_no_overlap_covers_all(self):
        X, y = _blobs(50)
        X = X + np.arange(50)[:, None] * 1000  # make rows unique
        Xtr, Xte, _, _ = train_test_split(X, y, 0.3, rng=0)
        all_rows = np.vstack([Xtr, Xte])
        assert len(np.unique(all_rows[:, 0])) == 50

    def test_bad_fraction(self):
        X, y = _blobs(10)
        with pytest.raises(ValueError):
            train_test_split(X, y, 1.5)


class TestPreprocessing:
    def test_scaler(self):
        X = np.array([[1.0, 10.0], [3.0, 30.0]])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0)
        assert np.allclose(Z.std(axis=0), 1)

    def test_scaler_constant_feature(self):
        X = np.ones((5, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()

    def test_label_encoder_roundtrip(self):
        enc = LabelEncoder()
        codes = enc.fit_transform(["b", "a", "b"])
        assert list(enc.inverse_transform(codes)) == ["b", "a", "b"]

    def test_label_encoder_unseen(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            enc.transform(["c"])


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 1, 0], [1, 0, 0]) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_confusion(self):
        cm = confusion_matrix([0, 0, 1], [0, 1, 1], labels=[0, 1])
        assert cm.tolist() == [[1, 1], [0, 1]]


class TestDecisionTree:
    def test_separable_blobs(self):
        X, y = _blobs()
        Xtr, Xte, ytr, yte = train_test_split(X, y, 0.25, rng=0)
        clf = DecisionTreeClassifier(max_depth=8).fit(Xtr, ytr)
        assert accuracy_score(yte, clf.predict(Xte)) > 0.9

    def test_xor(self):
        X, y = _xor()
        clf = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) > 0.95

    def test_max_depth_limits(self):
        X, y = _xor()
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=8).fit(X, y)
        assert accuracy_score(y, deep.predict(X)) > accuracy_score(y, stump.predict(X))

    def test_string_labels(self):
        X, y = _blobs(k=2)
        labels = np.where(y == 0, "benign", "attack")
        clf = DecisionTreeClassifier(max_depth=6).fit(X, labels)
        preds = clf.predict(X)
        assert set(preds) <= {"benign", "attack"}

    def test_predict_proba_simplex(self):
        X, y = _blobs()
        clf = DecisionTreeClassifier(max_depth=4).fit(X, y)
        probs = clf.predict_proba(X[:10])
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_single_class(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        clf = DecisionTreeClassifier().fit(X, np.zeros(20, dtype=int))
        assert (clf.predict(X) == 0).all()


class TestDecisionTreeRegressor:
    def test_step_function(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, size=(500, 1))
        y = np.where(X[:, 0] > 0.5, 10.0, -10.0)
        reg = DecisionTreeRegressor(max_depth=2)
        reg.fit(X, y)
        preds = reg.predict(X)
        assert np.abs(preds - y).mean() < 1.0

    def test_leaf_mean(self):
        X = np.zeros((4, 1))
        y = np.array([1.0, 2.0, 3.0, 4.0])
        reg = DecisionTreeRegressor(max_depth=3)
        reg.fit(X, y)  # no split possible
        assert reg.predict(np.zeros((1, 1)))[0] == pytest.approx(2.5)


class TestEnsembles:
    def test_random_forest_beats_chance(self):
        X, y = _blobs()
        Xtr, Xte, ytr, yte = train_test_split(X, y, 0.25, rng=0)
        clf = RandomForestClassifier(n_estimators=10, max_depth=8, rng=0).fit(Xtr, ytr)
        assert accuracy_score(yte, clf.predict(Xte)) > 0.9

    def test_gradient_boosting_xor(self):
        X, y = _xor(500)
        clf = GradientBoostingClassifier(n_estimators=15, max_depth=3, rng=0).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) > 0.9

    def test_gb_multiclass(self):
        X, y = _blobs(k=4)
        clf = GradientBoostingClassifier(n_estimators=10, rng=0).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) > 0.85

    def test_forest_proba_simplex(self):
        X, y = _blobs(200)
        clf = RandomForestClassifier(n_estimators=5, rng=0).fit(X, y)
        probs = clf.predict_proba(X[:7])
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestLogisticAndMlp:
    def test_logistic_linear_problem(self):
        X, y = _blobs(k=2)
        clf = LogisticRegressionClassifier(max_iter=200).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) > 0.95

    def test_logistic_fails_xor(self):
        # LR is linear: XOR stays near chance — the paper's "LR is low".
        X, y = _xor()
        clf = LogisticRegressionClassifier(max_iter=200).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) < 0.7

    def test_mlp_solves_xor(self):
        X, y = _xor(600)
        clf = MlpClassifier(hidden=(32,), epochs=80, rng=0).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) > 0.9

    def test_mlp_multiclass(self):
        X, y = _blobs(k=3)
        clf = MlpClassifier(hidden=(16,), epochs=30, rng=0).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) > 0.9


class TestOneClassSVM:
    def test_flags_outliers(self):
        rng = np.random.default_rng(4)
        inliers = rng.normal(0, 1, size=(400, 3))
        outliers = rng.normal(8, 0.5, size=(40, 3))
        model = OneClassSVM(nu=0.1, epochs=40, rng=0).fit(inliers)
        out_ratio = np.mean(model.predict(outliers) < 0)
        in_ratio = np.mean(model.predict(inliers) < 0)
        assert out_ratio > 0.8
        assert in_ratio < 0.3

    def test_nu_bounds_training_anomaly_rate(self):
        rng = np.random.default_rng(5)
        X = rng.normal(0, 1, size=(500, 2))
        model = OneClassSVM(nu=0.2, epochs=40, rng=0).fit(X)
        assert model.anomaly_ratio(X) < 0.45

    def test_linear_kernel(self):
        rng = np.random.default_rng(6)
        X = rng.normal(0, 1, size=(200, 2))
        model = OneClassSVM(nu=0.3, kernel="linear", epochs=30, rng=0).fit(X)
        assert np.isfinite(model.decision_function(X)).all()

    def test_invalid_nu(self):
        with pytest.raises(ValueError):
            OneClassSVM(nu=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            OneClassSVM().decision_function(np.zeros((1, 2)))


class TestModelZoo:
    def test_all_paper_models_train(self):
        X, y = _blobs(300)
        for name in PAPER_MODELS:
            clf = build_classifier(name, rng=0)
            clf.fit(X, y)
            assert accuracy_score(y, clf.predict(X)) > 0.8, name

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_classifier("SVM")
