"""Statistical acceptance suite: synthesized traces must stay faithful.

The golden-digest suites pin *determinism* (same seed, same bytes); this
suite pins *fidelity* — for the paper's headline setting (ToN at
``epsilon=2.0``), per-attribute distances between raw and synthesized tables
must stay under committed thresholds, and heavy-hitter rankings must stay
rank-correlated.  It runs in tier-1 at 10k records on every seed below
(~0.6s per seed), with and without the optional accelerators — kernels are
bit-identical, so fidelity cannot depend on the CI matrix leg.

Thresholds were derived from 3-seed runs (seeds 0/1/2, this exact setup)
and committed at roughly 2-3x the worst measured value, so they fail on
real fidelity regressions (a broken marginal, a mis-scaled decode) but not
on seed-to-seed noise.  Measured values, 2026-07:

  JSD      proto 0.002-0.017   service 0.001-0.006   type 0.0006-0.0012
           dstport 0.136-0.147  srcip 0.087-0.093    dstip 0.043-0.047
  EMD/span td 0.004-0.009   byt 0.006-0.008   pkt 0.011-0.017   ts 0.010-0.028
  Spearman dstport top-10 0.709-0.818        proto 1.000 (all seeds)

``srcport`` is deliberately absent from the JSD gate: ephemeral source
ports are near-uniform over 32768-65535, so *any* two finite samples — even
two raw draws — sit at JSD ~0.87 from each other; the metric measures
sample discreteness there, not synthesis quality.
"""

import numpy as np
import pytest

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.metrics.distribution import (
    earth_movers_distance,
    jensen_shannon_divergence,
)
from repro.metrics.ranking import spearman_rank_correlation

pytestmark = pytest.mark.fidelity

N_RECORDS = 10_000
EPSILON = 2.0
SEEDS = (0, 1, 2)

#: Attr -> max Jensen-Shannon divergence (base 2) between raw and synthetic.
JSD_THRESHOLDS = {
    "proto": 0.06,
    "service": 0.02,
    "type": 0.005,
    "dstport": 0.20,
    "srcip": 0.13,
    "dstip": 0.08,
}

#: Attr -> max range-normalized EMD (Wasserstein-1 / raw value span).
EMD_THRESHOLDS = {
    "td": 0.03,
    "byt": 0.02,
    "pkt": 0.04,
    "ts": 0.06,
}

#: Spearman floors for heavy-hitter count rankings.
TOPK_PORTS = 10
SPEARMAN_PORT_FLOOR = 0.5
SPEARMAN_PROTO_FLOOR = 0.9


@pytest.fixture(scope="module", params=SEEDS, ids=lambda s: f"seed{s}")
def tables(request):
    """(raw, synthetic) pair at one fixed seed; fitted once per module run."""
    seed = request.param
    raw = load_dataset("ton", n_records=N_RECORDS, seed=seed)
    synth = (
        NetDPSyn(SynthesisConfig(epsilon=EPSILON), rng=seed + 1)
        .fit(raw)
        .sample(N_RECORDS, rng=seed + 100)
    )
    return raw, synth


def test_schema_and_size_preserved(tables):
    raw, synth = tables
    assert synth.schema.names == raw.schema.names
    assert synth.n_records == N_RECORDS


@pytest.mark.parametrize("attr", sorted(JSD_THRESHOLDS))
def test_categorical_jsd_under_threshold(tables, attr):
    raw, synth = tables
    jsd = jensen_shannon_divergence(raw.column(attr), synth.column(attr))
    assert jsd <= JSD_THRESHOLDS[attr], (
        f"{attr}: JSD {jsd:.4f} > committed threshold {JSD_THRESHOLDS[attr]}"
    )


@pytest.mark.parametrize("attr", sorted(EMD_THRESHOLDS))
def test_numeric_emd_under_threshold(tables, attr):
    raw, synth = tables
    r = np.asarray(raw.column(attr), dtype=np.float64)
    s = np.asarray(synth.column(attr), dtype=np.float64)
    span = float(r.max() - r.min()) or 1.0
    emd = earth_movers_distance(r, s) / span
    assert emd <= EMD_THRESHOLDS[attr], (
        f"{attr}: EMD/span {emd:.4f} > committed threshold {EMD_THRESHOLDS[attr]}"
    )


def _counts_for(table, attr, values) -> np.ndarray:
    column = table.column(attr)
    return np.array([np.sum(column == v) for v in values], dtype=np.float64)


def test_top_port_counts_rank_correlated(tables):
    """The k heaviest raw dstports keep their relative ordering in synthesis."""
    raw, synth = tables
    values, counts = np.unique(raw.column("dstport"), return_counts=True)
    top = values[np.argsort(-counts, kind="stable")[:TOPK_PORTS]]
    rho = spearman_rank_correlation(
        _counts_for(raw, "dstport", top), _counts_for(synth, "dstport", top)
    )
    assert rho >= SPEARMAN_PORT_FLOOR, (
        f"top-{TOPK_PORTS} dstport rank correlation {rho:.3f} < {SPEARMAN_PORT_FLOOR}"
    )


def test_proto_counts_rank_correlated(tables):
    raw, synth = tables
    values = np.unique(raw.column("proto"))
    rho = spearman_rank_correlation(
        _counts_for(raw, "proto", values), _counts_for(synth, "proto", values)
    )
    assert rho >= SPEARMAN_PROTO_FLOOR, (
        f"proto rank correlation {rho:.3f} < {SPEARMAN_PROTO_FLOOR}"
    )
