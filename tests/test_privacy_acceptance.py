"""Privacy acceptance suite: synthesized traces must stay *private*, per PR.

The statistical companion of ``tests/test_fidelity_acceptance.py`` — that
suite pins the utility half of NetDPSyn's claim, this one pins the leakage
half, so a fast-path refactor can never silently trade privacy for speed
(ROADMAP's "privacy regression gates, not just fidelity gates").  Protocol
and threat model in ``docs/privacy.md``.

At every seed below, the ``privacy`` experiment runs the full epsilon sweep
on ToN: NetDPSyn synthesizes from the 80% train split, a deliberately
overfitting surrogate forest trains on the synthetic output, and three
seeded attacks score it — record-level membership inference (AUC),
user-level membership inference (per-``srcip`` mean-loss AUC), and
attribute inference on the label field (member-vs-non-member accuracy
advantage).  Every leakage number must stay under its committed ceiling at
**every** epsilon in the sweep, and the same attacks must demonstrate power
against an unprotected target (floors) — a gate whose attack cannot beat
chance on raw data gates nothing.

Ceilings were derived from 3-seed runs (seeds 0/1/2, this exact setup) and
committed at a documented margin over the measured worst — wide enough not
to fail on benign drift from an intentional change, tight enough that a
real leak (noise silently dropped, marginals published un-noised, member
rows echoed into the sample) fails loudly.  Measured values, 2026-08
(n=4000, overfit-rf target; worst across seeds 0/1/2 and eps 0.5/2.0/8.0):

  MIA AUC          sweep worst 0.5386   raw calibration 0.6218-0.6503
  user MIA AUC     sweep worst 0.6003   raw calibration 0.6933-0.7471
  attr advantage   sweep worst 0.0650   raw calibration 0.0975-0.1150

- ``MIA_AUC_CEILING = 0.60``: ~2.6x the worst measured excess over the 0.5
  chance level, mirroring the fidelity suite's 2-3x rule.
- ``USER_MIA_AUC_CEILING = 0.66``: a tighter 1.6x multiplier, because the
  ceiling must stay below the raw-calibration floor (0.69) to separate DP
  targets from unprotected ones at all.
- ``ATTR_ADVANTAGE_CEILING = 0.09``: 1.4x the worst measured value, capped
  by the same constraint (raw calibration reaches 0.0975).

Seeds are pinned, so CI re-measures these exact numbers — the margins
absorb drift from intentional pipeline changes, not run-to-run randomness.
If a deliberate change shifts leakage above a ceiling, that is the gate
doing its job: re-derive the ceilings with a fresh multi-seed measurement
and justify the new margin in docs/privacy.md.
"""

import pytest

from repro.experiments.privacy import PRIVACY_EPSILONS, run as run_privacy
from repro.experiments.runner import ExperimentScale

pytestmark = pytest.mark.privacy

N_RECORDS = 4_000
SEEDS = (0, 1, 2)
EPSILONS = PRIVACY_EPSILONS  # (0.5, 2.0, 8.0)

#: Committed leakage ceilings (derivation in the module docstring).
MIA_AUC_CEILING = 0.60
USER_MIA_AUC_CEILING = 0.66
ATTR_ADVANTAGE_CEILING = 0.09

#: Attack-power floors on the unprotected (raw-target) calibration run.
RAW_MIA_AUC_FLOOR = 0.58
RAW_USER_MIA_AUC_FLOOR = 0.62
RAW_ATTR_ADVANTAGE_FLOOR = 0.07


@pytest.fixture(scope="module", params=SEEDS, ids=lambda s: f"seed{s}")
def sweep(request):
    """One full epsilon-sweep attack run at a pinned seed."""
    return run_privacy(ExperimentScale(n_records=N_RECORDS, seed=request.param))


def _point(sweep, epsilon):
    (point,) = [p for p in sweep["frontier"] if p["epsilon"] == epsilon]
    return point


def test_sweep_covers_committed_epsilons(sweep):
    assert [p["epsilon"] for p in sweep["frontier"]] == list(EPSILONS)


def test_raw_target_attacks_have_power(sweep):
    """Floors: the ceilings below are vacuous unless the attacks work."""
    raw = sweep["raw"]
    assert raw["mia_auc"] >= RAW_MIA_AUC_FLOOR, (
        f"record-level MIA lost its raw-target power: AUC {raw['mia_auc']:.4f} "
        f"< floor {RAW_MIA_AUC_FLOOR}"
    )
    assert raw["user_mia_auc"] >= RAW_USER_MIA_AUC_FLOOR, (
        f"user-level MIA lost its raw-target power: AUC {raw['user_mia_auc']:.4f} "
        f"< floor {RAW_USER_MIA_AUC_FLOOR}"
    )
    assert raw["attr_advantage"] >= RAW_ATTR_ADVANTAGE_FLOOR, (
        f"attribute inference lost its raw-target power: advantage "
        f"{raw['attr_advantage']:.4f} < floor {RAW_ATTR_ADVANTAGE_FLOOR}"
    )


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_mia_auc_under_ceiling(sweep, epsilon):
    auc = _point(sweep, epsilon)["mia_auc"]
    assert auc <= MIA_AUC_CEILING, (
        f"eps={epsilon}: record-level MIA AUC {auc:.4f} > committed ceiling "
        f"{MIA_AUC_CEILING} — the release leaks membership signal"
    )


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_user_level_mia_auc_under_ceiling(sweep, epsilon):
    auc = _point(sweep, epsilon)["user_mia_auc"]
    assert auc <= USER_MIA_AUC_CEILING, (
        f"eps={epsilon}: user-level MIA AUC {auc:.4f} > committed ceiling "
        f"{USER_MIA_AUC_CEILING} — heavy users are distinguishable"
    )


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_attribute_advantage_under_ceiling(sweep, epsilon):
    advantage = _point(sweep, epsilon)["attr_advantage"]
    assert advantage <= ATTR_ADVANTAGE_CEILING, (
        f"eps={epsilon}: attribute-inference advantage {advantage:.4f} > committed "
        f"ceiling {ATTR_ADVANTAGE_CEILING} — the release teaches more about its "
        f"members than about the population"
    )


def test_fidelity_improves_across_the_sweep(sweep):
    """The frontier's utility coordinate must bend the right way: more budget,
    better fidelity.  (Leakage ordering is too noise-dominated to gate — the
    ceilings above do that job epsilon-by-epsilon.)"""
    jsd = {p["epsilon"]: p["jsd"] for p in sweep["frontier"]}
    assert jsd[min(EPSILONS)] > jsd[max(EPSILONS)]
