"""Unit and property tests for the binning codecs and the encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binning import (
    CategoricalCodec,
    DatasetEncoder,
    EncoderConfig,
    IpCodec,
    LogNumericCodec,
    PortCodec,
    TimestampCodec,
    aggregate_counts,
    merge_codec,
)
from repro.binning.encoder import TSDIFF, compute_tsdiff
from repro.data.schema import FieldKind, FieldSpec, Schema
from repro.data.table import TraceTable
from repro.datasets import load_dataset

RNG = np.random.default_rng(0)


class TestCategoricalCodec:
    def test_roundtrip(self):
        codec = CategoricalCodec("proto", ("TCP", "UDP", "ICMP"))
        values = np.array(["UDP", "TCP", "ICMP", "TCP"], dtype=object)
        codes = codec.encode(values)
        assert codec.domain_size == 3
        decoded = codec.decode_bins(codes, RNG)
        assert list(decoded) == list(values)

    def test_unknown_category_rejected(self):
        codec = CategoricalCodec("proto", ("TCP",))
        with pytest.raises(ValueError):
            codec.encode(np.array(["GRE"], dtype=object))

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValueError):
            CategoricalCodec("x", ("a", "a"))

    def test_numeric_categories_bounds(self):
        codec = CategoricalCodec("tos", (0, 8, 16))
        lo, hi = codec.bin_bounds()
        assert list(lo) == [0.0, 8.0, 16.0]


class TestIpCodec:
    def test_encode_decode_identity(self):
        observed = np.array([100, 200, 300, 100])
        codec = IpCodec.fit("srcip", observed)
        codes = codec.encode(observed)
        assert np.array_equal(codec.decode_bins(codes, RNG), observed)

    def test_unseen_address_snaps_to_nearest(self):
        codec = IpCodec.fit("srcip", np.array([10, 20]))
        codes = codec.encode(np.array([11, 19, 30]))
        assert np.array_equal(codec.decode_bins(codes, RNG), [10, 20, 20])

    def test_coarse_keys_are_slash30(self):
        codec = IpCodec.fit("srcip", np.array([100, 101, 102, 103, 104]))
        keys = codec.coarse_keys()
        # 100..103 share a /30 block (100 >> 2 == 25); 104 starts the next.
        assert len(np.unique(keys[:4])) == 1
        assert keys[4] != keys[0]

    def test_decode_group_within_block(self):
        codec = IpCodec.fit("srcip", np.array([100, 101]))
        samples = codec.decode_group(25, np.array([0, 1]), 100, RNG)
        assert ((samples >= 100) & (samples < 104)).all()


class TestPortCodec:
    def test_wellknown_ports_are_singletons(self):
        codec = PortCodec("dstport")
        codes = codec.encode(np.array([22, 80, 443]))
        assert np.array_equal(codec.decode_bins(codes, RNG), [22, 80, 443])

    def test_high_ports_binned_by_width(self):
        # High bins are width-10 ranges aligned to common_max (1024).
        codec = PortCodec("dstport", bin_width=10)
        codes = codec.encode(np.array([2004, 2013, 2014]))
        assert codes[0] == codes[1]
        assert codes[1] != codes[2]

    def test_decode_never_exceeds_max_port(self):
        codec = PortCodec("dstport")
        codes = codec.encode(np.array([65535] * 100))
        decoded = codec.decode_bins(codes, RNG)
        assert (decoded < 65536).all()

    def test_out_of_range_rejected(self):
        codec = PortCodec("dstport")
        with pytest.raises(ValueError):
            codec.encode(np.array([70000]))

    @given(st.lists(st.integers(min_value=0, max_value=65535), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_decode_stays_in_bin_property(self, ports):
        codec = PortCodec("p")
        ports = np.array(ports)
        codes = codec.encode(ports)
        decoded = codec.decode_bins(codes, np.random.default_rng(1))
        lo, hi = codec.bin_bounds()
        assert (decoded >= lo[codes]).all()
        assert (decoded < hi[codes]).all()


class TestLogNumericCodec:
    def test_monotone_binning(self):
        codec = LogNumericCodec.fit("byt", np.array([1.0, 10.0, 1e6]))
        codes = codec.encode(np.array([1, 100, 10000, 1000000]))
        assert list(codes) == sorted(codes)

    def test_far_fewer_bins_than_linear(self):
        codec = LogNumericCodec.fit("byt", np.array([1e9]))
        assert codec.domain_size < 50

    def test_integral_decode_in_bin(self):
        codec = LogNumericCodec("pkt", max_value=1e4, integral=True)
        values = np.array([1, 7, 300, 9999])
        codes = codec.encode(values)
        decoded = codec.decode_bins(codes, RNG)
        assert np.array_equal(codec.encode(decoded), codes)

    def test_float_decode_in_bin(self):
        codec = LogNumericCodec("td", max_value=100.0, integral=False)
        codes = codec.encode(np.array([0.5, 3.3, 42.0]))
        decoded = codec.decode_bins(codes, RNG)
        assert np.array_equal(codec.encode(decoded), codes)

    def test_negative_values_clamped(self):
        codec = LogNumericCodec("td", max_value=10.0)
        assert codec.encode(np.array([-5.0]))[0] == 0

    @given(st.lists(st.floats(min_value=0, max_value=1e8), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_roundtrip_bin_containment_property(self, values):
        codec = LogNumericCodec("x", max_value=1e8, integral=False)
        arr = np.array(values)
        codes = codec.encode(arr)
        decoded = codec.decode_bins(codes, np.random.default_rng(2))
        assert np.array_equal(codec.encode(decoded), codes)


class TestTimestampCodec:
    def test_fit_covers_span(self):
        values = np.array([100.0, 200.0, 1000.0])
        codec = TimestampCodec.fit("ts", values, n_windows=16)
        codes = codec.encode(values)
        assert codes.min() >= 0
        assert codes.max() < codec.domain_size

    def test_decode_within_window(self):
        codec = TimestampCodec("ts", origin=0.0, window=10.0, n_bins=10)
        codes = np.array([0, 5, 9])
        decoded = codec.decode_bins(codes, RNG)
        assert np.array_equal(codec.encode(decoded), codes)

    def test_constant_column(self):
        codec = TimestampCodec.fit("ts", np.full(5, 42.0))
        assert codec.domain_size == 1

    def test_bin_starts(self):
        codec = TimestampCodec("ts", origin=5.0, window=2.0, n_bins=4)
        assert np.allclose(codec.bin_starts(np.array([0, 2])), [5.0, 9.0])


class TestFrequencyMerging:
    def _base(self):
        return PortCodec("p", common_max=16, bin_width=10, coarse_width=100)

    def test_high_count_bins_survive(self):
        base = self._base()
        counts = np.zeros(base.domain_size)
        counts[5] = 1000.0
        merged = merge_codec(base, counts, threshold=10.0)
        codes = merged.encode(np.array([5]))
        assert len(merged.member_lists[codes[0]]) == 1

    def test_low_count_bins_merge(self):
        base = self._base()
        counts = np.full(base.domain_size, 1.0)
        merged = merge_codec(base, counts, threshold=50.0)
        assert merged.domain_size < base.domain_size

    def test_min_bins_respected(self):
        base = CategoricalCodec("label", tuple("abcdef"))
        counts = np.ones(6)
        merged = merge_codec(base, counts, threshold=100.0, min_bins=6)
        assert merged.domain_size == 6

    def test_encode_consistent_with_base(self):
        base = self._base()
        rng = np.random.default_rng(3)
        values = rng.integers(0, 65536, 200)
        counts = np.bincount(base.encode(values), minlength=base.domain_size)
        merged = merge_codec(base, counts.astype(float), threshold=3.0)
        codes = merged.encode(values)
        assert (codes >= 0).all() and (codes < merged.domain_size).all()

    def test_aggregate_counts_preserves_total(self):
        base = self._base()
        counts = np.arange(base.domain_size, dtype=float)
        merged = merge_codec(base, counts, threshold=100.0)
        assert aggregate_counts(merged, counts).sum() == pytest.approx(counts.sum())

    def test_decode_covers_all_merged_bins(self):
        base = self._base()
        counts = np.ones(base.domain_size)
        merged = merge_codec(base, counts, threshold=1000.0)
        codes = np.arange(merged.domain_size)
        decoded = merged.decode_bins(codes, RNG)
        assert len(decoded) == merged.domain_size


class TestComputeTsdiff:
    def _table(self):
        schema = Schema(
            fields=(
                FieldSpec("srcip", FieldKind.IP),
                FieldSpec("ts", FieldKind.TIMESTAMP),
            ),
            flow_key=("srcip",),
        )
        return TraceTable(
            schema,
            {
                "srcip": np.array([1, 1, 2, 1, 2]),
                "ts": np.array([10.0, 5.0, 0.0, 20.0, 100.0]),
            },
        )

    def test_groupwise_diffs(self):
        table = self._table()
        diffs = compute_tsdiff(table, ("srcip",))
        # group 1 time-ordered: 5, 10, 20 -> diffs 0, 5, 10
        assert diffs[1] == 0.0  # first of group 1
        assert diffs[0] == 5.0
        assert diffs[3] == 10.0
        # group 2: 0, 100 -> diffs 0, 100
        assert diffs[2] == 0.0
        assert diffs[4] == 100.0

    def test_non_negative(self):
        diffs = compute_tsdiff(self._table(), ("srcip",))
        assert (diffs >= 0).all()


class TestDatasetEncoder:
    def test_fit_encode_decode_roundtrip_bins(self):
        table = load_dataset("ton", n_records=800, seed=5)
        encoder = DatasetEncoder(EncoderConfig()).fit(table, rho=0.05, rng=7)
        encoded = encoder.encode(table)
        assert encoded.data.shape[0] == 800
        assert TSDIFF in encoded.attrs
        decoded = encoder.decode(encoded, rng=7)
        # Re-encoding the decoded table must reproduce the same bin codes.
        re_encoded = encoder.encode(decoded)
        assert np.array_equal(re_encoded.data, encoded.data)

    def test_label_domain_protected(self):
        table = load_dataset("ton", n_records=500, seed=5)
        encoder = DatasetEncoder(EncoderConfig()).fit(table, rho=0.001, rng=7)
        assert encoder.codecs["type"].domain_size == 10

    def test_noise_free_mode(self):
        table = load_dataset("ugr16", n_records=400, seed=5)
        encoder = DatasetEncoder(EncoderConfig()).fit(table, rho=None, rng=7)
        counts = encoder.noisy_one_way["proto"]
        # Without noise the 1-way counts are exact.
        assert counts.sum() == pytest.approx(400)

    def test_encode_requires_fit(self):
        table = load_dataset("ugr16", n_records=100, seed=5)
        with pytest.raises(RuntimeError):
            DatasetEncoder().encode(table)

    def test_domain_sizes_match_codecs(self):
        table = load_dataset("cidds", n_records=600, seed=5)
        encoder = DatasetEncoder(EncoderConfig()).fit(table, rho=0.05, rng=7)
        encoded = encoder.encode(table)
        for attr in encoded.attrs:
            assert encoded.domain.size(attr) == encoder.codecs[attr].domain_size
            assert encoded.column(attr).max() < encoded.domain.size(attr)
