"""Unit tests for repro.utils."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.ipaddr import (
    MAX_IPV4,
    apply_prefix,
    int_to_ip,
    ints_to_ips,
    ip_to_int,
    ips_to_ints,
    prefix_mask,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
)


class TestIpAddr:
    def test_roundtrip_known_addresses(self):
        for addr in ("0.0.0.0", "10.0.0.1", "192.168.1.255", "255.255.255.255"):
            assert int_to_ip(ip_to_int(addr)) == addr

    def test_known_value(self):
        assert ip_to_int("1.2.3.4") == (1 << 24) | (2 << 16) | (3 << 8) | 4

    def test_rejects_bad_strings(self):
        with pytest.raises(ValueError):
            ip_to_int("1.2.3")
        with pytest.raises(ValueError):
            ip_to_int("256.0.0.1")

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            int_to_ip(MAX_IPV4 + 1)
        with pytest.raises(ValueError):
            int_to_ip(-1)

    def test_vectorized_roundtrip(self):
        addrs = ["10.1.2.3", "172.16.0.9"]
        assert ints_to_ips(ips_to_ints(addrs)) == addrs

    def test_prefix_mask_extremes(self):
        assert prefix_mask(0) == 0
        assert prefix_mask(32) == MAX_IPV4
        assert prefix_mask(24) == ip_to_int("255.255.255.0")

    def test_prefix_mask_rejects_bad_length(self):
        with pytest.raises(ValueError):
            prefix_mask(33)

    def test_apply_prefix_30(self):
        values = np.array([ip_to_int("10.0.0.5"), ip_to_int("10.0.0.6")])
        masked = apply_prefix(values, 30)
        assert masked[0] == masked[1] == ip_to_int("10.0.0.4")

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestRng:
    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_seed_determinism(self):
        a = ensure_rng(42).integers(0, 100, 5)
        b = ensure_rng(42).integers(0, 100, 5)
        assert np.array_equal(a, b)

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(7, 3)
        streams = [c.integers(0, 1000, 10) for c in children]
        assert not np.array_equal(streams[0], streams[1])

    def test_spawn_rngs_deterministic(self):
        a = [r.integers(0, 100, 3) for r in spawn_rngs(1, 2)]
        b = [r.integers(0, 100, 3) for r in spawn_rngs(1, 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_fraction_bounds(self):
        assert check_fraction("f", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_fraction("f", 0.0, inclusive=False)
        with pytest.raises(ValueError):
            check_fraction("f", 1.5)

    def test_probability_vector(self):
        check_probability_vector("p", np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            check_probability_vector("p", np.array([0.7, 0.5]))
        with pytest.raises(ValueError):
            check_probability_vector("p", np.array([-0.1, 1.1]))


class TestTimer:
    def test_context_manager(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_start_stop(self):
        t = Timer()
        t.start()
        assert t.stop() >= 0.0
