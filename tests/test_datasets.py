"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import DATASET_INFO, get_generator, load_dataset
from repro.datasets.packets import draw_flow_sizes, expand_flows

ALL = ("ton", "ugr16", "cidds", "caida", "dc")


class TestRegistry:
    def test_all_datasets_load(self):
        for name in ALL:
            table = load_dataset(name, n_records=500, seed=0)
            assert len(table) == 500

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("darpa")

    def test_determinism(self):
        a = load_dataset("ton", n_records=300, seed=5)
        b = load_dataset("ton", n_records=300, seed=5)
        for name in a.schema.names:
            assert np.array_equal(np.asarray(a[name]), np.asarray(b[name]))

    def test_different_seeds_differ(self):
        a = load_dataset("ton", n_records=300, seed=5)
        b = load_dataset("ton", n_records=300, seed=6)
        assert not np.array_equal(np.asarray(a["srcip"]), np.asarray(b["srcip"]))

    def test_info_matches_table5(self):
        assert DATASET_INFO["ton"]["records"] == 295_497
        assert DATASET_INFO["caida"]["type"] == "packet"


class TestSchemas:
    def test_attribute_counts_match_table5(self):
        for name in ALL:
            generator = get_generator(name)
            assert len(generator.schema()) == DATASET_INFO[name]["attributes"], name

    def test_flow_vs_packet_kinds(self):
        for name in ALL:
            table = load_dataset(name, n_records=100, seed=0)
            assert table.schema.kind == DATASET_INFO[name]["type"]

    def test_labels_present(self):
        for name in ALL:
            table = load_dataset(name, n_records=100, seed=0)
            assert table.schema.label_field is not None


class TestInvariants:
    @pytest.mark.parametrize("name", ["ton", "ugr16", "cidds"])
    def test_flow_invariants(self, name):
        table = load_dataset(name, n_records=2000, seed=1)
        pkt = np.asarray(table["pkt"])
        byt = np.asarray(table["byt"])
        td = np.asarray(table["td"])
        assert (pkt >= 1).all()
        assert (byt >= pkt).all()
        assert (td >= 0).all()
        assert (np.asarray(table["srcport"]) < 65536).all()
        assert (np.asarray(table["dstport"]) < 65536).all()

    @pytest.mark.parametrize("name", ["caida", "dc"])
    def test_packet_invariants(self, name):
        table = load_dataset(name, n_records=2000, seed=1)
        assert (np.asarray(table["pkt_len"]) >= 40).all()
        assert (np.asarray(table["ttl"]) > 0).all()
        ts = np.asarray(table["ts"])
        assert (np.diff(ts) >= 0).all()  # packet traces are time-sorted

    def test_ton_label_distribution(self):
        table = load_dataset("ton", n_records=5000, seed=2)
        types, counts = np.unique(table["type"], return_counts=True)
        assert "normal" in types
        normal_frac = counts[list(types).index("normal")] / 5000
        assert 0.45 < normal_frac < 0.65

    def test_ton_attacks_arrive_late(self):
        table = load_dataset("ton", n_records=5000, seed=2)
        ts = np.asarray(table["ts"])
        labels = np.asarray(table["type"])
        attack_ts = ts[labels != "normal"]
        span = ts.max()
        assert attack_ts.min() > 0.5 * span

    def test_ugr16_imbalance(self):
        table = load_dataset("ugr16", n_records=20000, seed=3)
        frac = np.mean(np.asarray(table["label"]) == "malicious")
        assert frac < 0.02  # predicting all-benign is ~0.99+ accurate

    def test_ugr16_ftp_udp_anomaly_exists(self):
        # Footnote 1: a few FTP (port 21) flows ride UDP.
        table = load_dataset("ugr16", n_records=50000, seed=4)
        dstport = np.asarray(table["dstport"])
        proto = np.asarray(table["proto"])
        ftp = dstport == 21
        assert ftp.any()
        assert (proto[ftp] == "UDP").any()

    def test_caida_srcip_heavy_hitters(self):
        table = load_dataset("caida", n_records=20000, seed=5)
        _, counts = np.unique(table["srcip"], return_counts=True)
        top_share = counts.max() / 20000
        assert top_share > 0.001  # 0.1% threshold used in Fig. 2

    def test_dc_dstip_heavy_hitters(self):
        table = load_dataset("dc", n_records=20000, seed=5)
        _, counts = np.unique(table["dstip"], return_counts=True)
        assert counts.max() / 20000 > 0.01

    def test_dc_bimodal_packet_sizes(self):
        table = load_dataset("dc", n_records=10000, seed=6)
        sizes = np.asarray(table["pkt_len"])
        small = np.mean(sizes < 200)
        large = np.mean(sizes > 1200)
        assert small > 0.2
        assert large > 0.2

    def test_packet_flows_have_structure(self):
        table = load_dataset("caida", n_records=10000, seed=7)
        groups = table.group_ids(table.schema.effective_flow_key())
        sizes = np.bincount(groups)
        assert (sizes >= 2).sum() > 100  # plenty of multi-packet flows


class TestPacketHelpers:
    def test_draw_flow_sizes_sums_exactly(self):
        rng = np.random.default_rng(8)
        for n in (10, 999, 5000):
            sizes = draw_flow_sizes(rng, n)
            assert sizes.sum() == n
            assert (sizes >= 1).all()

    def test_expand_flows_positions(self):
        sizes = np.array([3, 1, 2])
        flow_idx, position = expand_flows(sizes)
        assert list(flow_idx) == [0, 0, 0, 1, 2, 2]
        assert list(position) == [0, 1, 2, 0, 0, 1]
