"""Tests for the sampling engine: plan, backends, sharding, reproducibility."""

import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.binning.encoder import TSDIFF
from repro.data.table import TraceTable
from repro.engine import (
    BACKENDS,
    EngineConfig,
    execute_plan,
    get_backend,
    shard_sizes,
)
from repro.experiments.engine_scaling import PRE_REFACTOR_GOLDEN
from repro.synthesis.decode import decode_records
from repro.synthesis.gum import run_gum
from repro.synthesis.initialization import marginal_initialization
from repro.synthesis.timestamps import reconstruct_timestamps


def table_digest(table) -> str:
    """Stable content hash of a trace table (order- and dtype-sensitive)."""
    return table.content_digest()


@pytest.fixture(scope="module")
def ton():
    return load_dataset("ton", n_records=2500, seed=31)


@pytest.fixture(scope="module")
def fitted(ton):
    config = SynthesisConfig(epsilon=2.0)
    config.gum.iterations = 15
    return NetDPSyn(config, rng=7).fit(ton)


class TestShardSizes:
    def test_balanced(self):
        assert shard_sizes(10, 3) == [4, 3, 3]
        assert shard_sizes(9, 3) == [3, 3, 3]
        assert shard_sizes(2, 4) == [1, 1, 0, 0]

    def test_total_preserved(self):
        for n, k in [(1001, 3), (7, 5), (50_000, 4)]:
            assert sum(shard_sizes(n, k)) == n

    def test_invalid(self):
        with pytest.raises(ValueError):
            shard_sizes(-1, 2)
        with pytest.raises(ValueError):
            shard_sizes(10, 0)


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.backend == "serial" and config.shards == 1

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            EngineConfig(backend="gpu")
        with pytest.raises(ValueError):
            get_backend("gpu")

    def test_invalid_shards(self):
        with pytest.raises(ValueError, match="shards must be an integer >= 1"):
            EngineConfig(shards=0)
        with pytest.raises(ValueError, match="shards must be an integer >= 1"):
            EngineConfig(shards=-2)
        with pytest.raises(ValueError, match="shards"):
            EngineConfig(shards=2.5)
        with pytest.raises(ValueError, match="shards"):
            EngineConfig(shards=True)

    def test_invalid_max_workers(self):
        with pytest.raises(ValueError, match="max_workers must be an integer >= 1"):
            EngineConfig(max_workers=-1)
        with pytest.raises(ValueError, match="max_workers"):
            EngineConfig(max_workers=0)

    def test_override_validates_eagerly(self):
        config = EngineConfig()
        with pytest.raises(ValueError, match="shards must be an integer >= 1"):
            config.override(shards=0)
        with pytest.raises(ValueError, match="max_workers must be an integer >= 1"):
            config.override(max_workers=-4)

    def test_sample_rejects_invalid_shards(self, fitted):
        # The config constructor is the single validation point, so bad
        # per-call overrides fail fast instead of deep inside shard_sizes.
        with pytest.raises(ValueError, match="shards must be an integer >= 1"):
            fitted.sample(100, rng=1, shards=0)

    def test_override(self):
        config = EngineConfig(backend="serial", shards=1, max_workers=3)
        out = config.override(shards=4, backend="process")
        assert (out.backend, out.shards, out.max_workers) == ("process", 4, 3)
        kept = config.override()
        assert (kept.backend, kept.shards) == ("serial", 1)
        widened = config.override(max_workers=8)
        assert widened.max_workers == 8 and config.max_workers == 3


class TestSynthesisPlan:
    def test_pickle_round_trip(self, fitted):
        plan = fitted.plan()
        clone = pickle.loads(pickle.dumps(plan))
        a = plan.run_shard(400, np.random.default_rng(9), update_mode="vectorized")
        b = clone.run_shard(400, np.random.default_rng(9), update_mode="vectorized")
        assert np.array_equal(a.data, b.data)
        assert a.errors == b.errors
        ta = plan.finalize(a.data, np.random.default_rng(10))
        tb = clone.finalize(b.data, np.random.default_rng(10))
        assert table_digest(ta) == table_digest(tb)

    def test_default_n_is_noisy_total(self, fitted):
        plan = fitted.plan()
        assert plan.default_n == max(int(round(plan.published[0].total)), 1)

    def test_plan_cached_until_refit(self, fitted):
        assert fitted.plan() is fitted.plan()


#: The golden digest was captured on NumPy 2.x; Generator streams are stable
#: in practice but NEP 19 reserves the right to change them across majors.
requires_numpy2 = pytest.mark.skipif(
    np.lib.NumpyVersion(np.__version__) < "2.0.0",
    reason="golden digest captured on the NumPy 2.x generator streams",
)


class TestBitIdentity:
    @requires_numpy2
    def test_serial_single_shard_matches_pre_refactor_golden(self, fitted):
        syn = fitted.sample(2000, rng=123)
        assert table_digest(syn) == PRE_REFACTOR_GOLDEN

    @requires_numpy2
    def test_process_single_shard_matches_golden(self, fitted):
        # The shard generator round-trips through pickling with its state
        # intact, so even the process backend reproduces the legacy stream.
        syn = fitted.sample(2000, rng=123, backend="process")
        assert table_digest(syn) == PRE_REFACTOR_GOLDEN

    def test_engine_equals_legacy_orchestration(self, fitted):
        """The engine path replays the historic sample() call sequence."""
        plan = fitted.plan()
        rng = np.random.default_rng(123)
        data = marginal_initialization(
            plan.published,
            plan.one_way,
            plan.attrs,
            plan.domain,
            2000,
            key_attr=plan.key_attr,
            n_init=plan.n_init_marginals,
            rng=rng,
        )
        gum = run_gum(
            data,
            plan.published,
            plan.attrs,
            plan.domain,
            replace(fitted.config.gum, update_mode="reference"),
            rng,
        )
        encoded = fitted._template.replace_data(gum.data)
        table = decode_records(encoded, fitted.encoder, rng, rules=plan.rules)
        if TSDIFF in table.schema:
            table = reconstruct_timestamps(
                table,
                tsdiff_codes=encoded.column(TSDIFF),
                tsdiff_codec=fitted.encoder.codecs[TSDIFF],
                rng=rng,
            )
        legacy = TraceTable(
            plan.original_schema,
            {name: table.column(name) for name in plan.original_schema.names},
        )
        assert table_digest(fitted.sample(2000, rng=123)) == table_digest(legacy)


class TestBackendEquality:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_backends_identical_for_same_seed(self, fitted, shards):
        digests = {
            backend: table_digest(
                fitted.sample(1200, rng=5, shards=shards, backend=backend)
            )
            for backend in BACKENDS
        }
        assert len(set(digests.values())) == 1, digests

    def test_shard_merge_preserves_total_count(self, fitted):
        syn = fitted.sample(1001, rng=2, shards=3, backend="serial")
        assert syn.n_records == 1001
        sizes = [r.n_records for r in fitted.gum_result.shard_results]
        assert sorted(sizes) == [333, 334, 334]

    def test_shard_payloads_dropped_after_merge(self, fitted):
        # Keeping every per-shard matrix alive alongside the merged result
        # used to double peak RSS; only metadata survives the merge.
        fitted.sample(900, rng=2, shards=3, backend="serial")
        for result in fitted.gum_result.shard_results:
            assert result.data is None
            assert result.n_records > 0
            assert result.seconds > 0

    def test_process_backend_advances_caller_generator(self, fitted):
        # Backends must mutate a caller-owned generator identically, so a
        # caller who keeps drawing from it sees the same stream either way.
        serial_rng = np.random.default_rng(21)
        process_rng = np.random.default_rng(21)
        a = fitted.sample(300, rng=serial_rng, backend="serial")
        b = fitted.sample(300, rng=process_rng, backend="process")
        assert table_digest(a) == table_digest(b)
        assert serial_rng.bit_generator.state == process_rng.bit_generator.state

    def test_execute_plan_direct(self, fitted):
        plan = fitted.plan()
        out = execute_plan(plan, EngineConfig(backend="thread", shards=2), n=600, rng=3)
        assert out.gum.data.shape[0] == 600
        assert out.gum.backend == "thread" and out.gum.shards == 2
        assert len(out.gum.shard_results) == 2
        assert out.decode_rng is not None

    def test_invalid_n(self, fitted):
        with pytest.raises(ValueError):
            execute_plan(fitted.plan(), EngineConfig(), n=0)


class TestTimingInstrumentation:
    def test_gum_result_carries_timings(self, fitted):
        fitted.sample(800, rng=1, shards=2, backend="serial")
        result = fitted.gum_result
        assert result.seconds > 0
        assert result.records_per_second > 0
        assert all(r.seconds > 0 for r in result.shard_results)
        assert result.errors and result.errors[-1] <= result.errors[0]
        assert result.iterations_run >= 1


class TestSampleReproducibility:
    """Regression: sample() no longer leaks state through a shared rng."""

    def test_same_seed_instances_agree_call_by_call(self, ton):
        def build():
            config = SynthesisConfig(epsilon=2.0)
            config.gum.iterations = 10
            return NetDPSyn(config, rng=11).fit(ton)

        a, b = build(), build()
        assert table_digest(a.sample(500)) == table_digest(b.sample(500))
        assert table_digest(a.sample(500)) == table_digest(b.sample(500))

    def test_unrelated_rng_use_does_not_shift_sample(self, ton):
        def build():
            config = SynthesisConfig(epsilon=2.0)
            config.gum.iterations = 10
            return NetDPSyn(config, rng=11).fit(ton)

        a, b = build(), build()
        first = table_digest(a.sample(500))
        assert table_digest(b.sample(500)) == first
        # Draining the shared instance rng between calls used to desync
        # subsequent samples; per-call spawned streams must not care.
        b._rng.integers(0, 10, size=1000)
        assert table_digest(a.sample(500)) == table_digest(b.sample(500))

    def test_repeated_calls_use_fresh_streams(self, fitted):
        assert table_digest(fitted.sample(500)) != table_digest(fitted.sample(500))

    def test_explicit_seed_still_pins_output(self, fitted):
        assert table_digest(fitted.sample(500, rng=77)) == table_digest(
            fitted.sample(500, rng=77)
        )
