"""Unit tests for the MIA attack and CryptoPAn anonymization."""

import numpy as np
import pytest

from repro.anonymization import CryptoPan
from repro.attacks import (
    attribute_inference_attack,
    loss_threshold_mia,
    membership_auc,
    user_level_mia,
)
from repro.ml import RandomForestClassifier
from repro.utils.ipaddr import ip_to_int


class TestMia:
    def _overfit_model(self, seed=0):
        # Tiny forest on tiny data overfits hard -> strong membership signal.
        rng = np.random.default_rng(seed)
        X_members = rng.normal(0, 1, size=(60, 4))
        y_members = (X_members.sum(axis=1) + rng.normal(0, 2.0, 60) > 0).astype(int)
        X_non = rng.normal(0, 1, size=(60, 4))
        y_non = (X_non.sum(axis=1) + rng.normal(0, 2.0, 60) > 0).astype(int)
        model = RandomForestClassifier(n_estimators=20, max_depth=12, rng=0)
        model.fit(X_members, y_members)
        return model, X_members, y_members, X_non, y_non

    def test_attack_beats_chance_on_overfit_model(self):
        model, Xm, ym, Xn, yn = self._overfit_model()
        result = loss_threshold_mia(model, Xm, ym, Xn, yn, rng=1)
        assert result.accuracy > 0.6

    def test_member_loss_below_non_member(self):
        model, Xm, ym, Xn, yn = self._overfit_model()
        result = loss_threshold_mia(model, Xm, ym, Xn, yn, rng=1)
        assert result.member_mean_loss < result.non_member_mean_loss

    def test_chance_level_when_model_ignores_data(self):
        rng = np.random.default_rng(2)
        X_big = rng.normal(0, 1, size=(4000, 4))
        y_big = (X_big.sum(axis=1) > 0).astype(int)
        model = RandomForestClassifier(n_estimators=5, max_depth=3, rng=0)
        model.fit(X_big, y_big)
        # Fresh i.i.d. members/non-members: no memorization signal.
        Xm = rng.normal(0, 1, size=(500, 4))
        ym = (Xm.sum(axis=1) > 0).astype(int)
        Xn = rng.normal(0, 1, size=(500, 4))
        yn = (Xn.sum(axis=1) > 0).astype(int)
        result = loss_threshold_mia(model, Xm, ym, Xn, yn, rng=3)
        assert abs(result.accuracy - 0.5) < 0.12

    def test_unseen_labels_handled(self):
        model, Xm, ym, Xn, yn = self._overfit_model()
        yn = yn.copy()
        yn[0] = 99  # label the model never saw
        result = loss_threshold_mia(model, Xm, ym, Xn, yn, rng=1)
        assert np.isfinite(result.accuracy)


class TestCryptoPan:
    def test_deterministic(self):
        pan = CryptoPan(b"key-1")
        addr = ip_to_int("192.168.1.7")
        assert pan.anonymize_int(addr) == pan.anonymize_int(addr)

    def test_key_dependence(self):
        addr = ip_to_int("192.168.1.7")
        assert CryptoPan(b"key-1").anonymize_int(addr) != CryptoPan(b"key-2").anonymize_int(addr)

    def test_prefix_preservation(self):
        pan = CryptoPan(b"secret")
        a = ip_to_int("10.1.2.3")
        b = ip_to_int("10.1.2.200")   # shares /24
        c = ip_to_int("10.1.99.1")    # shares /16 only
        ea, eb, ec = pan.anonymize_int(a), pan.anonymize_int(b), pan.anonymize_int(c)

        def shared_prefix(x, y):
            return 32 - int(x ^ y).bit_length() if x != y else 32

        assert shared_prefix(ea, eb) >= 24
        assert 16 <= shared_prefix(ea, ec) < 24

    def test_injective_on_sample(self):
        pan = CryptoPan(b"secret")
        rng = np.random.default_rng(0)
        addrs = np.unique(rng.integers(0, 2**32 - 1, size=500))
        out = pan.anonymize(addrs)
        assert len(np.unique(out)) == len(addrs)

    def test_vectorized_matches_scalar(self):
        pan = CryptoPan(b"secret")
        addrs = np.array([1, 2**31, 2**32 - 1])
        vec = pan.anonymize(addrs)
        for a, e in zip(addrs, vec):
            assert pan.anonymize_int(int(a)) == e

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            CryptoPan(b"")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CryptoPan(b"k").anonymize_int(2**32)


class TestMembershipAuc:
    def test_perfect_separation(self):
        assert membership_auc([5.0, 4.0, 3.0], [2.0, 1.0]) == 1.0
        assert membership_auc([1.0, 2.0], [3.0, 4.0]) == 0.0

    def test_constant_scores_are_chance(self):
        # Every score identical: average ranks make the AUC exactly 0.5,
        # so a signal-free attack can never look better (or worse) than chance.
        assert membership_auc(np.zeros(50), np.zeros(80)) == 0.5

    def test_partial_ties_use_average_ranks(self):
        # members {1, 0}, non-members {1, 0}: each cross pair contributes
        # 1 (win), 0 (loss) or 0.5 (tie) -> (1 + 0.5 + 0.5 + 0) / 4.
        assert membership_auc([1.0, 0.0], [1.0, 0.0]) == 0.5
        # members {2, 0}, non-members {2, 1}: wins 1.5 of 4 comparisons.
        assert membership_auc([2.0, 0.0], [2.0, 1.0]) == pytest.approx(0.375)

    def test_empty_candidate_set_rejected(self):
        with pytest.raises(ValueError):
            membership_auc([], [1.0])
        with pytest.raises(ValueError):
            membership_auc([1.0], [])

    def test_matches_pairwise_probability(self):
        rng = np.random.default_rng(7)
        members = rng.normal(0.3, 1.0, 40)
        non_members = rng.normal(0.0, 1.0, 60)
        wins = (members[:, None] > non_members[None, :]).mean()
        assert membership_auc(members, non_members) == pytest.approx(wins)

    def test_loss_threshold_mia_reports_auc(self):
        model, Xm, ym, Xn, yn = TestMia()._overfit_model()
        result = loss_threshold_mia(model, Xm, ym, Xn, yn, rng=1)
        assert 0.5 < result.auc <= 1.0


class TestUserLevelMia:
    def _fitted(self):
        return TestMia()._overfit_model()

    def test_single_member_groups_match_record_level(self):
        # Degenerate grouping (every record its own user): the user-level
        # AUC must equal the record-level AUC — the aggregation is a no-op.
        model, Xm, ym, Xn, yn = self._fitted()
        record = loss_threshold_mia(model, Xm, ym, Xn, yn, rng=1)
        user = user_level_mia(
            model, Xm, ym, np.arange(len(ym)), Xn, yn, np.arange(len(yn)), rng=1
        )
        assert user.auc == pytest.approx(record.auc)

    def test_grouping_aggregates_to_user_counts(self):
        model, Xm, ym, Xn, yn = self._fitted()
        # 3 member users, 2 non-member users: the balanced accuracy must be
        # computed over min(3, 2) = 2 users per side, hence quantized to 1/4.
        member_users = np.arange(len(ym)) % 3
        non_member_users = np.arange(len(yn)) % 2
        result = user_level_mia(
            model, Xm, ym, member_users, Xn, yn, non_member_users, rng=1
        )
        assert result.accuracy in {0.0, 0.25, 0.5, 0.75, 1.0}

    def test_misaligned_user_ids_rejected(self):
        model, Xm, ym, Xn, yn = self._fitted()
        with pytest.raises(ValueError):
            user_level_mia(model, Xm, ym, np.arange(3), Xn, yn, np.arange(len(yn)), rng=1)

    def test_empty_candidate_set_rejected(self):
        model, Xm, ym, Xn, yn = self._fitted()
        empty_X = np.empty((0, Xm.shape[1]))
        empty_y = np.empty(0, dtype=ym.dtype)
        with pytest.raises(ValueError):
            user_level_mia(
                model, Xm, ym, np.arange(len(ym)), empty_X, empty_y, np.empty(0), rng=1
            )


class TestAttributeInference:
    @pytest.fixture(scope="class")
    def tables(self):
        from repro.datasets import load_dataset

        raw = load_dataset("ton", n_records=1200, seed=5)
        rng = np.random.default_rng(6)
        perm = rng.permutation(raw.n_records)
        return raw.take(perm[:400]), raw.take(perm[400:800]), raw.take(perm[800:])

    def test_memorizing_source_has_positive_advantage(self, tables):
        members, non_members, _ = tables
        # Attribute model trained on the members themselves memorizes them:
        # member accuracy must exceed non-member accuracy.
        result = attribute_inference_attack(members, members, non_members, "type", rng=3)
        assert result.advantage > 0.02
        assert result.member_accuracy > result.majority_accuracy

    def test_disjoint_source_has_no_advantage(self, tables):
        members, non_members, source = tables
        # Trained on a disjoint same-population sample, the model knows the
        # population, not the members: advantage ~ 0 (tolerance for noise).
        result = attribute_inference_attack(source, members, non_members, "type", rng=3)
        assert abs(result.advantage) < 0.1

    def test_advantage_is_the_accuracy_gap(self, tables):
        members, non_members, source = tables
        result = attribute_inference_attack(source, members, non_members, "type", rng=3)
        assert result.advantage == pytest.approx(
            result.member_accuracy - result.non_member_accuracy
        )
        assert result.sensitive == "type"

    def test_unknown_sensitive_attr_rejected(self, tables):
        members, non_members, source = tables
        with pytest.raises(ValueError):
            attribute_inference_attack(source, members, non_members, "nope", rng=3)

    def test_empty_candidate_set_rejected(self, tables):
        members, non_members, source = tables
        empty = members.filter(np.zeros(members.n_records, dtype=bool))
        with pytest.raises(ValueError):
            attribute_inference_attack(source, empty, non_members, "type", rng=3)
        with pytest.raises(ValueError):
            attribute_inference_attack(source, members, empty, "type", rng=3)
