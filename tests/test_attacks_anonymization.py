"""Unit tests for the MIA attack and CryptoPAn anonymization."""

import numpy as np
import pytest

from repro.anonymization import CryptoPan
from repro.attacks import loss_threshold_mia
from repro.ml import RandomForestClassifier
from repro.utils.ipaddr import ip_to_int


class TestMia:
    def _overfit_model(self, seed=0):
        # Tiny forest on tiny data overfits hard -> strong membership signal.
        rng = np.random.default_rng(seed)
        X_members = rng.normal(0, 1, size=(60, 4))
        y_members = (X_members.sum(axis=1) + rng.normal(0, 2.0, 60) > 0).astype(int)
        X_non = rng.normal(0, 1, size=(60, 4))
        y_non = (X_non.sum(axis=1) + rng.normal(0, 2.0, 60) > 0).astype(int)
        model = RandomForestClassifier(n_estimators=20, max_depth=12, rng=0)
        model.fit(X_members, y_members)
        return model, X_members, y_members, X_non, y_non

    def test_attack_beats_chance_on_overfit_model(self):
        model, Xm, ym, Xn, yn = self._overfit_model()
        result = loss_threshold_mia(model, Xm, ym, Xn, yn, rng=1)
        assert result.accuracy > 0.6

    def test_member_loss_below_non_member(self):
        model, Xm, ym, Xn, yn = self._overfit_model()
        result = loss_threshold_mia(model, Xm, ym, Xn, yn, rng=1)
        assert result.member_mean_loss < result.non_member_mean_loss

    def test_chance_level_when_model_ignores_data(self):
        rng = np.random.default_rng(2)
        X_big = rng.normal(0, 1, size=(4000, 4))
        y_big = (X_big.sum(axis=1) > 0).astype(int)
        model = RandomForestClassifier(n_estimators=5, max_depth=3, rng=0)
        model.fit(X_big, y_big)
        # Fresh i.i.d. members/non-members: no memorization signal.
        Xm = rng.normal(0, 1, size=(500, 4))
        ym = (Xm.sum(axis=1) > 0).astype(int)
        Xn = rng.normal(0, 1, size=(500, 4))
        yn = (Xn.sum(axis=1) > 0).astype(int)
        result = loss_threshold_mia(model, Xm, ym, Xn, yn, rng=3)
        assert abs(result.accuracy - 0.5) < 0.12

    def test_unseen_labels_handled(self):
        model, Xm, ym, Xn, yn = self._overfit_model()
        yn = yn.copy()
        yn[0] = 99  # label the model never saw
        result = loss_threshold_mia(model, Xm, ym, Xn, yn, rng=1)
        assert np.isfinite(result.accuracy)


class TestCryptoPan:
    def test_deterministic(self):
        pan = CryptoPan(b"key-1")
        addr = ip_to_int("192.168.1.7")
        assert pan.anonymize_int(addr) == pan.anonymize_int(addr)

    def test_key_dependence(self):
        addr = ip_to_int("192.168.1.7")
        assert CryptoPan(b"key-1").anonymize_int(addr) != CryptoPan(b"key-2").anonymize_int(addr)

    def test_prefix_preservation(self):
        pan = CryptoPan(b"secret")
        a = ip_to_int("10.1.2.3")
        b = ip_to_int("10.1.2.200")   # shares /24
        c = ip_to_int("10.1.99.1")    # shares /16 only
        ea, eb, ec = pan.anonymize_int(a), pan.anonymize_int(b), pan.anonymize_int(c)

        def shared_prefix(x, y):
            return 32 - int(x ^ y).bit_length() if x != y else 32

        assert shared_prefix(ea, eb) >= 24
        assert 16 <= shared_prefix(ea, ec) < 24

    def test_injective_on_sample(self):
        pan = CryptoPan(b"secret")
        rng = np.random.default_rng(0)
        addrs = np.unique(rng.integers(0, 2**32 - 1, size=500))
        out = pan.anonymize(addrs)
        assert len(np.unique(out)) == len(addrs)

    def test_vectorized_matches_scalar(self):
        pan = CryptoPan(b"secret")
        addrs = np.array([1, 2**31, 2**32 - 1])
        vec = pan.anonymize(addrs)
        for a, e in zip(addrs, vec):
            assert pan.anonymize_int(int(a)) == e

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            CryptoPan(b"")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CryptoPan(b"k").anonymize_int(2**32)
