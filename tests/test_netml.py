"""Unit tests for the NetML flow-representation substrate."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.netml import NETML_MODES, build_flows, flow_features, netml_anomaly_ratio
from repro.netml.anomaly import netml_feature_matrix
from repro.netml.flows import Flow


class TestFlow:
    def test_properties(self):
        flow = Flow(np.array([0.0, 1.0, 3.0]), np.array([100.0, 200.0, 50.0]))
        assert flow.n_packets == 3
        assert flow.duration == pytest.approx(3.0)
        assert np.allclose(flow.iats, [1.0, 2.0])


class TestBuildFlows:
    def test_min_packets_filter(self):
        table = load_dataset("caida", n_records=3000, seed=7)
        all_flows = build_flows(table, min_packets=1)
        multi = build_flows(table, min_packets=2)
        assert len(multi) < len(all_flows)
        assert all(f.n_packets >= 2 for f in multi)

    def test_timestamps_sorted_within_flow(self):
        table = load_dataset("dc", n_records=3000, seed=7)
        for flow in build_flows(table)[:50]:
            assert (np.diff(flow.timestamps) >= 0).all()

    def test_packet_conservation(self):
        table = load_dataset("caida", n_records=2000, seed=8)
        flows = build_flows(table, min_packets=1)
        assert sum(f.n_packets for f in flows) == 2000

    def test_missing_size_field(self):
        table = load_dataset("ton", n_records=100, seed=7)  # flow table: no pkt_len
        with pytest.raises(KeyError):
            build_flows(table)


class TestFeatures:
    @pytest.fixture(scope="class")
    def flow(self):
        rng = np.random.default_rng(9)
        ts = np.sort(rng.uniform(0, 10, 20))
        sizes = rng.integers(40, 1500, 20).astype(float)
        return Flow(ts, sizes)

    def test_all_modes_produce_vectors(self, flow):
        for mode in NETML_MODES:
            vec = flow_features(flow, mode)
            assert vec.ndim == 1
            assert np.isfinite(vec).all()

    def test_stats_mode_has_10_features(self, flow):
        assert len(flow_features(flow, "STATS")) == 10

    def test_iat_size_concatenates(self, flow):
        iat = flow_features(flow, "IAT")
        size = flow_features(flow, "SIZE")
        both = flow_features(flow, "IAT_SIZE")
        assert len(both) == len(iat) + len(size)

    def test_samp_num_counts_packets(self, flow):
        series = flow_features(flow, "SAMP_NUM", n_windows=10)
        assert series.sum() == pytest.approx(flow.n_packets)

    def test_samp_size_counts_bytes(self, flow):
        series = flow_features(flow, "SAMP_SIZE", n_windows=10)
        assert series.sum() == pytest.approx(flow.sizes.sum())

    def test_unknown_mode(self, flow):
        with pytest.raises(KeyError):
            flow_features(flow, "BOGUS")

    def test_paper_abbreviations(self, flow):
        assert np.allclose(flow_features(flow, "IS"), flow_features(flow, "IAT_SIZE"))
        assert np.allclose(flow_features(flow, "SN"), flow_features(flow, "SAMP_NUM"))
        assert np.allclose(flow_features(flow, "SS"), flow_features(flow, "SAMP_SIZE"))


class TestAnomalyPipeline:
    def test_ratio_in_unit_interval(self):
        table = load_dataset("caida", n_records=4000, seed=10)
        ratio = netml_anomaly_ratio(table, "STATS", nu=0.1, rng=0)
        assert 0.0 <= ratio <= 1.0

    def test_nan_when_no_flows(self):
        # A trace where every 5-tuple is unique -> no >=2-packet flows.
        table = load_dataset("caida", n_records=400, seed=11)
        import numpy as np

        unique_src = table.with_column(
            "srcport", np.arange(400, dtype=np.int64)
        ).with_column("srcip", np.arange(400, dtype=np.int64) + 10**6)
        ratio = netml_anomaly_ratio(unique_src, "STATS", rng=0)
        assert np.isnan(ratio)

    def test_feature_matrix_shape(self):
        table = load_dataset("dc", n_records=3000, seed=12)
        features = netml_feature_matrix(table, "SIZE")
        assert features.shape[0] == len(build_flows(table))
