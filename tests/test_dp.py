"""Unit tests for the DP primitives (accounting, mechanisms, allocation, RDP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp import (
    BudgetLedger,
    RdpAccountant,
    eps_delta_to_rho,
    exponential_mechanism,
    gaussian_mechanism,
    gaussian_sigma,
    rho_to_eps,
    split_budget,
    weighted_marginal_budgets,
)
from repro.dp.allocation import uniform_marginal_budgets


class TestZcdpConversion:
    def test_roundtrip_exact(self):
        rho = eps_delta_to_rho(2.0, 1e-5)
        assert rho_to_eps(rho, 1e-5) == pytest.approx(2.0, rel=1e-9)

    def test_paper_budget_magnitude(self):
        # epsilon=2, delta=1e-5 (the paper's default) gives rho ~ 0.08.
        rho = eps_delta_to_rho(2.0, 1e-5)
        assert 0.05 < rho < 0.12

    def test_monotone_in_epsilon(self):
        assert eps_delta_to_rho(1.0, 1e-5) < eps_delta_to_rho(4.0, 1e-5)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            eps_delta_to_rho(1.0, 1.5)
        with pytest.raises(ValueError):
            rho_to_eps(0.1, 0.0)

    @given(
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=1e-10, max_value=0.1),
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, eps, delta):
        rho = eps_delta_to_rho(eps, delta)
        assert rho_to_eps(rho, delta) == pytest.approx(eps, rel=1e-6)


class TestBudgetLedger:
    def test_spend_and_remaining(self):
        ledger = BudgetLedger(1.0)
        ledger.spend(0.4, "a")
        assert ledger.remaining == pytest.approx(0.6)
        assert ledger.entries() == [("a", 0.4)]

    def test_overdraw_raises(self):
        ledger = BudgetLedger(1.0)
        ledger.spend(0.9)
        with pytest.raises(RuntimeError):
            ledger.spend(0.2)

    def test_float_drift_tolerated(self):
        ledger = BudgetLedger(1.0)
        for _ in range(10):
            ledger.spend(0.1)
        assert ledger.remaining == pytest.approx(0.0, abs=1e-9)

    def test_from_eps_delta(self):
        ledger = BudgetLedger.from_eps_delta(2.0, 1e-5)
        assert ledger.total == pytest.approx(eps_delta_to_rho(2.0, 1e-5))


class TestGaussianMechanism:
    def test_sigma_formula(self):
        # rho = Delta^2 / (2 sigma^2)  =>  sigma = sqrt(1/(2 rho)).
        assert gaussian_sigma(1.0, 0.5) == pytest.approx(1.0)
        assert gaussian_sigma(2.0, 0.5) == pytest.approx(2.0)

    def test_noise_scale_statistics(self):
        rng = np.random.default_rng(0)
        values = np.zeros(20000)
        noisy = gaussian_mechanism(values, 1.0, 0.5, rng)
        assert noisy.std() == pytest.approx(1.0, rel=0.05)

    def test_unbiased(self):
        rng = np.random.default_rng(1)
        noisy = gaussian_mechanism(np.full(50000, 7.0), 1.0, 2.0, rng)
        assert noisy.mean() == pytest.approx(7.0, abs=0.02)

    def test_preserves_shape(self):
        out = gaussian_mechanism(np.zeros((3, 4)), 1.0, 1.0, 0)
        assert out.shape == (3, 4)


class TestExponentialMechanism:
    def test_prefers_high_scores(self):
        rng = np.random.default_rng(2)
        scores = np.array([0.0, 0.0, 100.0])
        picks = [exponential_mechanism(scores, 1.0, 1.0, rng) for _ in range(200)]
        assert np.mean(np.array(picks) == 2) > 0.95

    def test_uniform_when_scores_equal(self):
        rng = np.random.default_rng(3)
        picks = [
            exponential_mechanism(np.zeros(4), 1.0, 1.0, rng) for _ in range(2000)
        ]
        counts = np.bincount(picks, minlength=4)
        assert counts.min() > 350


class TestAllocation:
    def test_split_budget_default(self):
        parts = split_budget(1.0)
        assert parts == pytest.approx({"binning": 0.1, "selection": 0.1, "publish": 0.8})

    def test_split_budget_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            split_budget(1.0, {"a": 0.5, "b": 0.6})

    def test_weighted_budgets_sum(self):
        budgets = weighted_marginal_budgets(2.0, [10, 100, 1000])
        assert budgets.sum() == pytest.approx(2.0)

    def test_weighted_budgets_proportional_to_c23(self):
        budgets = weighted_marginal_budgets(1.0, [8, 64])
        # (8^{2/3}, 64^{2/3}) = (4, 16) -> ratio 1:4.
        assert budgets[1] / budgets[0] == pytest.approx(4.0)

    def test_uniform_budgets(self):
        budgets = uniform_marginal_budgets(1.0, 4)
        assert np.allclose(budgets, 0.25)

    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_weighted_conservation_property(self, cells):
        budgets = weighted_marginal_budgets(0.8, cells)
        assert budgets.sum() == pytest.approx(0.8)
        assert (budgets > 0).all()


class TestRdpAccountant:
    def test_more_steps_more_epsilon(self):
        a, b = RdpAccountant(), RdpAccountant()
        a.step(1.0, 0.01, num_steps=10)
        b.step(1.0, 0.01, num_steps=1000)
        assert b.get_epsilon(1e-5) > a.get_epsilon(1e-5)

    def test_more_noise_less_epsilon(self):
        a, b = RdpAccountant(), RdpAccountant()
        a.step(0.5, 0.01, num_steps=100)
        b.step(4.0, 0.01, num_steps=100)
        assert b.get_epsilon(1e-5) < a.get_epsilon(1e-5)

    def test_subsampling_amplifies(self):
        full, sampled = RdpAccountant(), RdpAccountant()
        full.step(1.0, 1.0, num_steps=10)
        sampled.step(1.0, 0.01, num_steps=10)
        assert sampled.get_epsilon(1e-5) < full.get_epsilon(1e-5)

    def test_noise_multiplier_inversion(self):
        sigma = RdpAccountant.noise_multiplier_for(2.0, 1e-5, 0.02, 200)
        acct = RdpAccountant()
        acct.step(sigma, 0.02, num_steps=200)
        assert acct.get_epsilon(1e-5) <= 2.0 * 1.01

    def test_huge_epsilon_small_sigma(self):
        sigma = RdpAccountant.noise_multiplier_for(1e10, 1e-5, 0.02, 100)
        assert sigma < 0.1  # nearly no noise needed

    def test_tiny_epsilon_large_sigma(self):
        sigma = RdpAccountant.noise_multiplier_for(0.5, 1e-5, 0.02, 500)
        assert sigma > 1.0
