"""Edge-path tests: small behaviours not covered by the main suites."""

import numpy as np
import pytest

from repro.binning import CategoricalCodec, MergedCodec, PortCodec, merge_codec
from repro.data.schema import FieldKind, FieldSpec, Schema
from repro.data.table import TraceTable
from repro.marginals.marginal import Marginal
from repro.nn.layers import Dense
from repro.synthesis.gum import GumConfig, GumResult


class TestTraceTableEdges:
    def _table(self):
        schema = Schema(
            fields=(
                FieldSpec("a", FieldKind.NUMERIC),
                FieldSpec("b", FieldKind.CATEGORICAL, categories=("x", "y")),
            ),
            flow_key=(),
        )
        return TraceTable(
            schema, {"a": np.array([1, 2]), "b": np.array(["x", "y"], dtype=object)}
        )

    def test_to_records(self):
        records = self._table().to_records()
        assert records == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_without_column(self):
        table = self._table().without_column("a")
        assert table.schema.names == ("b",)

    def test_spec_name_mismatch_rejected(self):
        table = self._table()
        with pytest.raises(ValueError):
            table.with_column("c", np.zeros(2), FieldSpec("wrong", FieldKind.NUMERIC))

    def test_concat_schema_mismatch(self):
        table = self._table()
        other = table.without_column("a")
        with pytest.raises(ValueError):
            table.concat(other)

    def test_empty_feature_matrix(self):
        table = self._table()
        X, names = table.feature_matrix(exclude=("a", "b"))
        assert X.shape == (2, 0)
        assert names == []


class TestMergedCodecEdges:
    def test_decode_empty_codes(self):
        base = CategoricalCodec("c", ("a", "b", "rare1", "rare2"))
        merged = merge_codec(base, np.array([10.0, 10.0, 0.1, 0.1]), threshold=5.0)
        out = merged.decode_bins(np.array([], dtype=np.int64), np.random.default_rng(0))
        assert len(out) == 0

    def test_metadata_alignment_validated(self):
        base = CategoricalCodec("c", ("a", "b"))
        with pytest.raises(ValueError):
            MergedCodec(base, np.array([0, 1]), [np.array([0])], [], [])

    def test_base_map_length_validated(self):
        base = CategoricalCodec("c", ("a", "b"))
        with pytest.raises(ValueError):
            MergedCodec(base, np.array([0]), [np.array([0])], [np.array([1.0])], [None])

    def test_port_singleton_group_decode(self):
        codec = PortCodec("p", common_max=16, bin_width=10, coarse_width=100)
        out = codec.decode_group(-1 - 7, np.array([7]), 5, np.random.default_rng(0))
        assert (out == 7).all()

    def test_bin_bounds_span_members(self):
        base = PortCodec("p", common_max=16, bin_width=10, coarse_width=100)
        counts = np.ones(base.domain_size)
        merged = merge_codec(base, counts, threshold=1000.0, min_bins=1)
        lo, hi = merged.bin_bounds()
        assert (hi > lo).all()


class TestMarginalEdges:
    def test_normalize_zero_total_rejected(self):
        with pytest.raises(ValueError):
            Marginal(("a",), np.zeros(3)).normalized()

    def test_scale_to_zero_total_rejected(self):
        with pytest.raises(ValueError):
            Marginal(("a",), np.zeros(3)).scale_to(5.0)

    def test_l1_misaligned_rejected(self):
        a = Marginal(("a",), np.ones(2))
        b = Marginal(("b",), np.ones(2))
        with pytest.raises(ValueError):
            a.l1_distance(b)


class TestNnEdges:
    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_per_example_before_backward_raises(self):
        layer = Dense(2, 2, np.random.default_rng(0))
        layer.forward(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            layer.per_example_grads()

    def test_inference_forward_keeps_no_cache(self):
        layer = Dense(2, 2, np.random.default_rng(0))
        layer.forward(np.zeros((1, 2)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestGumEdges:
    def test_result_defaults(self):
        result = GumResult(data=np.zeros((1, 1), dtype=np.int32))
        assert result.errors == []
        assert result.iterations_run == 0

    def test_config_defaults_paper_aligned(self):
        config = GumConfig()
        assert config.duplicate_fraction == 0.5
        assert 0 < config.alpha_decay < 1
