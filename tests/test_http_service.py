"""QueryService + HTTP transport tests: batching, caching, auth, wire errors.

The service promises: micro-batched answers bit-identical to serial
execution, generation-keyed answer caching that a hot reload invalidates
(the stale-answer test), per-tenant quotas with retry hints, and a typed
error taxonomy the HTTP layer maps to status codes mechanically.  Every
promise is exercised here — at the service level and end-to-end over a real
``ThreadingHTTPServer`` with ``http.client`` connections.
"""

import json
import os
import threading
import time
from http.client import HTTPConnection

import pytest

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.experiments.serving import _categorical_values, uncovered_pairs
from repro.serving import (
    AnswerCache,
    ApiKeyAuth,
    AuthenticationError,
    MicroBatcher,
    ModelNotFound,
    ModelRegistry,
    Prefer,
    QueryEngine,
    QueryService,
    QueryValidationError,
    QuotaExceeded,
    ServiceConfig,
    Tenant,
    TokenBucket,
    answer_from_wire,
    answers_equal,
    count,
    histogram,
    marginal,
    query_to_wire,
    topk,
)
from repro.serving.http import API_KEY_HEADER, _parse_tenant, serve_in_thread

N_FIT = 1200
SAMPLE_RECORDS = 3000
ENGINE_OPTIONS = {"sample_records": SAMPLE_RECORDS}


def _fit(rng: int) -> NetDPSyn:
    table = load_dataset("ton", n_records=N_FIT, seed=3)
    config = SynthesisConfig(epsilon=2.0)
    config.gum.iterations = 6
    return NetDPSyn(config, rng=rng).fit(table)


@pytest.fixture(scope="module")
def model():
    return _fit(rng=11)


@pytest.fixture(scope="module")
def model_b():
    """A differently-noised fit of the same data (for hot-reload tests)."""
    return _fit(rng=29)


@pytest.fixture(scope="module")
def direct_engine(model):
    return QueryEngine(model, **ENGINE_OPTIONS)


@pytest.fixture(scope="module")
def proto_value(model):
    return _categorical_values(model.plan(), "proto")[0]


@pytest.fixture(scope="module")
def workload(model, proto_value):
    fallback = [p for p in uncovered_pairs(model.plan()) if "tsdiff" not in str(p)]
    queries = [
        count(),
        count(where={"proto": proto_value}),
        topk("dstport", k=5),
        histogram("byt", bins=8),
        count(where={"dstport": 443}),
    ]
    if fallback:
        queries.append(marginal(*fallback[0]))
    return queries


@pytest.fixture()
def model_dir(tmp_path, model):
    model.save(tmp_path / "ton.ndpsyn")
    return tmp_path


def _service(model_dir, **config_kwargs) -> QueryService:
    config_kwargs.setdefault("engine_options", ENGINE_OPTIONS)
    return QueryService(ModelRegistry(model_dir), ServiceConfig(**config_kwargs))


def _touch(path, bump_ns: int = 5_000_000) -> None:
    stat = path.stat()
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + bump_ns))


# ------------------------------------------------------------- service core
def test_service_matches_direct_engine(model_dir, direct_engine, workload):
    service = _service(model_dir, batch_window=0.0, cache_answers=False)
    for query in workload:
        assert answers_equal(service.query("ton", query), direct_engine.run(query))


def test_micro_batched_answers_bit_identical_under_concurrency(
    model_dir, direct_engine, workload
):
    service = _service(model_dir, batch_window=0.02, cache_answers=False)
    service.query("ton", workload[0])  # warm the model + sample outside timing
    queries = (workload * 4)[: 4 * len(workload)]
    results: list = [None] * len(queries)
    errors: list = []
    barrier = threading.Barrier(len(queries))

    def worker(i):
        try:
            barrier.wait()
            results[i] = service.query("ton", queries[i])
        except Exception as exc:  # pragma: no cover - surfaced in assert
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(queries))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    for query, answer in zip(queries, results):
        assert answers_equal(answer, direct_engine.run(query))
    stats = service.batcher.stats()
    assert stats["batches"] >= 1
    assert stats["largest_batch"] > 1, f"no batching observed: {stats}"


def test_answer_cache_hits_are_bit_identical(model_dir, direct_engine):
    service = _service(model_dir, batch_window=0.0, cache_answers=True)
    query = topk("dstport", k=4)
    first = service.query("ton", query)
    second = service.query("ton", query)
    assert service.cache.stats()["hits"] == 1
    assert answers_equal(first, second)
    assert answers_equal(first, direct_engine.run(query))


def test_cache_key_includes_prefer(model_dir, proto_value):
    service = _service(model_dir, batch_window=0.0, cache_answers=True)
    query = count(where={"proto": proto_value})
    auto = service.query("ton", query)
    sample = service.query("ton", query, prefer="sample")
    assert service.cache.stats()["hits"] == 0  # distinct keys, no collision
    assert auto.provenance == "marginal"
    assert sample.provenance == "sample"
    assert service.query("ton", query, prefer=Prefer.SAMPLE).value == sample.value


def test_stale_answer_impossible_after_hot_reload(model_dir, model_b):
    """THE invalidation contract: a re-deployed model changes served answers."""
    service = _service(model_dir, batch_window=0.0, cache_answers=True)
    query = count()
    before = service.query("ton", query)
    assert answers_equal(service.query("ton", query), before)  # cache hit
    assert service.cache.stats()["hits"] == 1
    assert service.registry.generation("ton") == 1

    path = model_dir / "ton.ndpsyn"
    model_b.save(path)
    _touch(path)

    after = service.query("ton", query)
    assert service.registry.generation("ton") == 2
    assert after.value != before.value, "stale answer served after hot reload"
    expected = QueryEngine(model_b, **ENGINE_OPTIONS).run(query)
    assert answers_equal(after, expected)
    # And the new answer is itself cached under the new generation:
    assert answers_equal(service.query("ton", query), after)
    assert service.cache.stats()["hits"] == 2


def test_generation_monotonic_across_reload_and_eviction(model_dir):
    registry = ModelRegistry(model_dir)
    assert registry.generation("ton") == 0  # never loaded
    registry.get("ton")
    assert registry.generation("ton") == 1
    _touch(model_dir / "ton.ndpsyn")
    registry.get("ton")
    assert registry.generation("ton") == 2
    registry.evict("ton")
    assert registry.generation("ton") == 2  # eviction does not reset
    registry.get("ton")
    assert registry.generation("ton") == 3  # re-load counts


def test_lease_returns_engine_with_generation(model_dir):
    registry = ModelRegistry(model_dir)
    engine, generation = registry.lease("ton", **ENGINE_OPTIONS)
    assert generation == 1
    again, generation2 = registry.lease("ton", **ENGINE_OPTIONS)
    assert again is engine and generation2 == 1  # cached per option set


def test_query_batch_reuses_cache_and_matches_run_batch(
    model_dir, direct_engine, workload
):
    service = _service(model_dir, batch_window=0.0, cache_answers=True)
    service.query("ton", workload[0])  # pre-populate one cache entry
    answers = service.query_batch("ton", workload)
    expected = direct_engine.run_batch(workload)
    for got, want in zip(answers, expected):
        assert answers_equal(got, want)
    assert service.cache.stats()["hits"] == 1  # the pre-populated entry


def test_validation_errors_surface_on_caller_not_batch(model_dir):
    service = _service(model_dir, batch_window=0.02, cache_answers=False)
    with pytest.raises(QueryValidationError):
        service.query("ton", marginal("nonexistent"))
    with pytest.raises(QueryValidationError):  # categorical histogram
        service.query("ton", histogram("proto", bins=4))
    with pytest.raises(ValueError):  # the taxonomy keeps ValueError call sites
        service.query("ton", count(), prefer="bogus")
    assert service.batcher.stats()["batches"] == 0  # nothing reached a batch


def test_unknown_model_raises_model_not_found(model_dir):
    service = _service(model_dir)
    with pytest.raises(ModelNotFound) as excinfo:
        service.query("nope", count())
    assert excinfo.value.http_status == 404
    assert "ton" in str(excinfo.value)  # lists what IS available
    with pytest.raises(LookupError):  # taxonomy keeps LookupError call sites
        service.model_info("nope")


# ------------------------------------------------------------- auth + quota
def test_token_bucket_refills_on_a_fake_clock():
    now = [0.0]
    bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
    assert bucket.take() == 0.0
    assert bucket.take() == 0.0
    retry = bucket.take()
    assert retry == pytest.approx(0.5)  # 1 token at 2/s = 0.5s away
    now[0] += 0.5
    assert bucket.take() == 0.0


def test_api_key_auth():
    auth = ApiKeyAuth([Tenant(name="ops", api_key="k1", rate=100.0)])
    assert auth.authenticate("k1").name == "ops"
    with pytest.raises(AuthenticationError):
        auth.authenticate(None)
    with pytest.raises(AuthenticationError):
        auth.authenticate("wrong")
    open_auth = ApiKeyAuth([Tenant(name="ops", api_key="k1")], allow_anonymous=True)
    assert open_auth.authenticate(None).name == "anonymous"
    with pytest.raises(ValueError, match="no api_key"):
        ApiKeyAuth([Tenant(name="keyless")])
    with pytest.raises(ValueError, match="duplicate"):
        ApiKeyAuth([Tenant(name="a", api_key="k"), Tenant(name="b", api_key="k")])


def test_quota_exceeded_carries_retry_after(model_dir):
    registry = ModelRegistry(model_dir)
    service = QueryService(
        registry,
        ServiceConfig(batch_window=0.0, engine_options=ENGINE_OPTIONS),
        authenticator=ApiKeyAuth([Tenant(name="slow", api_key="sk", rate=0.001, burst=1)]),
    )
    assert service.query("ton", count(), api_key="sk") is not None
    with pytest.raises(QuotaExceeded) as excinfo:
        service.query("ton", count(), api_key="sk")
    assert excinfo.value.http_status == 429
    assert excinfo.value.retry_after > 0
    assert excinfo.value.code == "quota_exceeded"


# ----------------------------------------------------------------- validation
def test_component_validation():
    with pytest.raises(ValueError):
        ServiceConfig(batch_window=-0.001)
    with pytest.raises(ValueError):
        MicroBatcher(window=-1, max_batch=4)
    with pytest.raises(ValueError):
        MicroBatcher(window=0.01, max_batch=0)
    with pytest.raises(ValueError):
        AnswerCache(max_entries=0)
    with pytest.raises(ValueError):
        Tenant(name="x", rate=0)
    with pytest.raises(ValueError):
        Tenant(name="x", rate=1.0, burst=0.5)
    with pytest.raises(QueryValidationError):
        ServiceConfig(default_prefer="everything")


def test_answer_cache_lru_eviction():
    cache = AnswerCache(max_entries=2)
    for i in range(3):
        cache.put(("m", 1, Prefer.AUTO, count(where={"p": i})), object())
    stats = cache.stats()
    assert stats["entries"] == 2 and stats["evictions"] == 1
    assert cache.get(("m", 1, Prefer.AUTO, count(where={"p": 0}))) is None  # LRU gone


def test_parse_tenant_cli_spec():
    tenant = _parse_tenant("ops:secret:50:100")
    assert (tenant.name, tenant.api_key, tenant.rate, tenant.burst) == (
        "ops",
        "secret",
        50.0,
        100.0,
    )
    assert _parse_tenant("ops:secret").rate is None
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        _parse_tenant("justaname")
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_tenant("ops:key:fast")


# ------------------------------------------------------------- HTTP end-to-end
@pytest.fixture()
def served(model_dir):
    service = _service(model_dir, batch_window=0.002, cache_answers=True)
    server, _thread = serve_in_thread(service)
    conn = HTTPConnection(*server.server_address[:2])
    yield server, service, conn
    conn.close()
    server.shutdown()
    server.server_close()


def _get(conn, path, headers=None):
    conn.request("GET", path, headers=headers or {})
    response = conn.getresponse()
    return response.status, json.loads(response.read()), response


def _post(conn, path, payload, headers=None):
    base = {"Content-Type": "application/json"}
    base.update(headers or {})
    conn.request("POST", path, body=json.dumps(payload), headers=base)
    response = conn.getresponse()
    return response.status, json.loads(response.read()), response


def test_http_query_bit_identical_to_direct_engine(served, direct_engine, workload):
    _server, _service_, conn = served
    for query in workload:
        status, payload, _ = _post(
            conn, "/v1/models/ton/query", {"query": query_to_wire(query)}
        )
        assert status == 200, payload
        assert answers_equal(answer_from_wire(payload), direct_engine.run(query))


def test_http_batch_endpoint(served, direct_engine, workload):
    _server, _service_, conn = served
    status, payload, _ = _post(
        conn,
        "/v1/models/ton/batch",
        {"queries": [query_to_wire(q) for q in workload]},
    )
    assert status == 200, payload
    assert len(payload["answers"]) == len(workload)
    for wire, query in zip(payload["answers"], workload):
        assert answers_equal(answer_from_wire(wire), direct_engine.run(query))


def test_http_error_matrix(served):
    _server, _service_, conn = served
    cases = [
        ("POST", "/v1/models/ton/query", {"query": {"kind": "count", "atrs": []}}, 400, "invalid_query"),
        ("POST", "/v1/models/ton/query", {"nope": 1}, 400, "invalid_query"),
        ("POST", "/v1/models/ton/query", {"query": {"kind": "count", "schema_version": 9}}, 400, "unsupported_schema_version"),
        ("POST", "/v1/models/ton/query", {"query": {"kind": "count"}, "prefer": "psychic"}, 400, "invalid_query"),
        ("POST", "/v1/models/ghost/query", {"query": {"kind": "count"}}, 404, "model_not_found"),
        ("GET", "/v1/ghosts", None, 404, "model_not_found"),
    ]
    for method, path, payload, want_status, want_code in cases:
        if method == "GET":
            status, body, _ = _get(conn, path)
        else:
            status, body, _ = _post(conn, path, payload)
        assert status == want_status, (path, body)
        assert body["error"]["code"] == want_code, (path, body)
    # Invalid JSON body:
    conn.request(
        "POST",
        "/v1/models/ton/query",
        body="{not json",
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    body = json.loads(response.read())
    assert response.status == 400 and body["error"]["code"] == "invalid_query"


def test_http_auth_and_quota(model_dir):
    service = QueryService(
        ModelRegistry(model_dir),
        ServiceConfig(batch_window=0.0, engine_options=ENGINE_OPTIONS),
        authenticator=ApiKeyAuth(
            [Tenant(name="slow", api_key="sk", rate=0.001, burst=1)]
        ),
    )
    server, _thread = serve_in_thread(service)
    conn = HTTPConnection(*server.server_address[:2])
    try:
        body = {"query": query_to_wire(count())}
        status, payload, _ = _post(conn, "/v1/models/ton/query", body)
        assert status == 401 and payload["error"]["code"] == "invalid_api_key"
        status, payload, _ = _post(
            conn, "/v1/models/ton/query", body, headers={API_KEY_HEADER: "sk"}
        )
        assert status == 200, payload
        status, payload, response = _post(
            conn, "/v1/models/ton/query", body, headers={API_KEY_HEADER: "sk"}
        )
        assert status == 429 and payload["error"]["code"] == "quota_exceeded"
        assert float(response.headers["Retry-After"]) > 0
        assert payload["error"]["details"]["retry_after"] > 0
    finally:
        conn.close()
        server.shutdown()
        server.server_close()


def test_http_models_info_stats_health(served, model):
    _server, _service_, conn = served
    status, payload, _ = _get(conn, "/healthz")
    assert (status, payload) == (200, {"status": "ok"})

    status, payload, _ = _get(conn, "/v1/models")
    assert status == 200
    assert [m["name"] for m in payload["models"]] == ["ton"]

    status, payload, _ = _get(conn, "/v1/models/ton")
    assert status == 200 and payload["generation"] == 1
    assert set(payload["attrs"]) == set(model.plan().attrs)
    assert all(meta["bins"] >= 1 for meta in payload["attrs"].values())

    _post(conn, "/v1/models/ton/query", {"query": query_to_wire(count())})
    status, payload, _ = _get(conn, "/v1/stats")
    assert status == 200
    assert payload["requests"] >= 1
    assert {"cache", "batcher", "registry"} <= set(payload)


def test_stats_uptime_immune_to_wall_clock_steps(model_dir, monkeypatch):
    """``uptime_seconds`` is monotonic-clock based: an NTP step (or any
    wall-clock jump) must not produce a huge or negative uptime."""
    import repro.serving.service as service_module

    service = _service(model_dir)
    real_time = time.time
    # Wall clock leaps a year backwards, then forwards, mid-lifetime.
    for step in (-365 * 86400.0, +365 * 86400.0):
        monkeypatch.setattr(
            service_module.time, "time", lambda step=step: real_time() + step
        )
        uptime = service.stats()["uptime_seconds"]
        assert 0 <= uptime < 60, uptime


def test_http_stale_answer_invalidated_end_to_end(served, model_b):
    server, service, conn = served
    body = {"query": query_to_wire(count())}
    _, first, _ = _post(conn, "/v1/models/ton/query", body)
    _, again, _ = _post(conn, "/v1/models/ton/query", body)
    assert first == again  # byte-identical wire answers from the cache

    path = service.registry.root / "ton.ndpsyn"
    model_b.save(path)
    _touch(path)

    status, after, _ = _post(conn, "/v1/models/ton/query", body)
    assert status == 200
    assert after["value"] != first["value"]
    expected = QueryEngine(model_b, **ENGINE_OPTIONS).run(count())
    assert answer_from_wire(after).value == expected.value
