"""Unit tests for the numpy neural-net substrate, incl. DP-SGD."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    DpSgdOptimizer,
    LeakyReLU,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    Tanh,
    bce_with_logits,
    mse_loss,
    softmax_cross_entropy,
)

RNG = np.random.default_rng(0)


def _numeric_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestLayers:
    def test_dense_shapes(self):
        layer = Dense(3, 5, RNG)
        out = layer.forward(np.zeros((7, 3)))
        assert out.shape == (7, 5)

    def test_dense_gradient_check(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(6, 4))
        target = rng.normal(size=(6, 3))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        out = layer.forward(x)
        layer.backward(out - target)
        num_gW = _numeric_grad(loss, layer.W)
        assert np.allclose(layer.gW, num_gW, atol=1e-4)
        num_gb = _numeric_grad(loss, layer.b)
        assert np.allclose(layer.gb, num_gb, atol=1e-4)

    def test_per_example_grads_sum_to_batch_grad(self):
        rng = np.random.default_rng(2)
        layer = Dense(4, 2, rng)
        x = rng.normal(size=(5, 4))
        layer.forward(x)
        grad_out = rng.normal(size=(5, 2))
        layer.backward(grad_out)
        pex = layer.per_example_grads()
        assert np.allclose(pex["W"].sum(axis=0), layer.gW)
        assert np.allclose(pex["b"].sum(axis=0), layer.gb)

    @pytest.mark.parametrize("activation", [ReLU(), LeakyReLU(), Tanh(), Sigmoid()])
    def test_activation_gradient_check(self, activation):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 3)) + 0.1  # avoid ReLU kinks at 0

        def loss():
            return np.sum(activation.forward(x.copy()) ** 2)

        out = activation.forward(x.copy())
        grad = activation.backward(2 * out)
        num = _numeric_grad(loss, x)
        assert np.allclose(grad, num, atol=1e-4)


class TestLosses:
    def test_softmax_ce_gradient_check(self):
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(5, 3))
        labels = rng.integers(0, 3, 5)

        def loss():
            return softmax_cross_entropy(logits, labels)[0]

        _, grad = softmax_cross_entropy(logits, labels)
        num = _numeric_grad(loss, logits)
        assert np.allclose(grad, num, atol=1e-5)

    def test_bce_gradient_check(self):
        rng = np.random.default_rng(5)
        logits = rng.normal(size=(6, 1))
        targets = rng.integers(0, 2, 6).astype(float)

        def loss():
            return bce_with_logits(logits, targets)[0]

        _, grad = bce_with_logits(logits, targets)
        num = _numeric_grad(loss, logits)
        assert np.allclose(grad.reshape(-1), num.reshape(-1), atol=1e-5)

    def test_mse(self):
        loss, grad = mse_loss(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(2.5)
        assert np.allclose(grad, [1.0, 2.0])


class TestTraining:
    def _regression_net(self, rng):
        return Sequential([Dense(2, 16, rng), Tanh(), Dense(16, 1, rng)])

    def test_sgd_reduces_loss(self):
        rng = np.random.default_rng(6)
        net = self._regression_net(rng)
        opt = SGD(lr=0.05, momentum=0.9)
        X = rng.normal(size=(64, 2))
        y = (X[:, :1] * 2 - X[:, 1:] * 0.5)
        first = None
        for _ in range(100):
            out = net.forward(X)
            loss, grad = mse_loss(out, y)
            if first is None:
                first = loss
            net.backward(grad)
            opt.step(net.parameters(), net.gradients())
        assert loss < first * 0.1

    def test_adam_reduces_loss(self):
        rng = np.random.default_rng(7)
        net = self._regression_net(rng)
        opt = Adam(lr=0.01)
        X = rng.normal(size=(64, 2))
        y = np.sin(X[:, :1])
        losses = []
        for _ in range(150):
            out = net.forward(X)
            loss, grad = mse_loss(out, y)
            losses.append(loss)
            net.backward(grad)
            opt.step(net.parameters(), net.gradients())
        assert losses[-1] < losses[0] * 0.2

    def test_get_set_parameters(self):
        rng = np.random.default_rng(8)
        net = self._regression_net(rng)
        saved = net.get_parameters()
        for _, _, arr in net.parameters():
            arr += 1.0
        net.set_parameters(saved)
        for cur, old in zip(net.get_parameters(), saved):
            assert np.allclose(cur, old)


class TestDpSgd:
    def _setup(self, noise):
        rng = np.random.default_rng(9)
        net = Sequential([Dense(3, 4, rng), ReLU(), Dense(4, 1, rng)])
        opt = DpSgdOptimizer(
            SGD(lr=0.05),
            clip_norm=1.0,
            noise_multiplier=noise,
            sample_rate=0.1,
            rng=rng,
        )
        return net, opt, rng

    def test_clipping_bounds_update(self):
        net, opt, rng = self._setup(noise=0.0)
        X = rng.normal(size=(8, 3)) * 100  # huge inputs -> huge raw grads
        y = rng.normal(size=(8, 1)) * 100
        before = net.get_parameters()
        out = net.forward(X)
        _, grad = mse_loss(out, y)
        net.backward(grad)
        opt.step(net.parameters(), net.per_example_gradients())
        after = net.get_parameters()
        # Mean clipped gradient norm <= clip_norm / 1 -> update <= lr * C.
        total_change = np.sqrt(sum(((a - b) ** 2).sum() for a, b in zip(after, before)))
        assert total_change <= 0.05 * 1.0 + 1e-9

    def test_accounting_progresses(self):
        net, opt, rng = self._setup(noise=1.0)
        X = rng.normal(size=(4, 3))
        y = rng.normal(size=(4, 1))
        for _ in range(5):
            out = net.forward(X)
            _, grad = mse_loss(out, y)
            net.backward(grad)
            opt.step(net.parameters(), net.per_example_gradients())
        eps5 = opt.epsilon(1e-5)
        for _ in range(5):
            out = net.forward(X)
            _, grad = mse_loss(out, y)
            net.backward(grad)
            opt.step(net.parameters(), net.per_example_gradients())
        assert opt.epsilon(1e-5) > eps5

    def test_zero_noise_is_infinite_epsilon(self):
        net, opt, _ = self._setup(noise=0.0)
        assert opt.epsilon(1e-5) == float("inf")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DpSgdOptimizer(SGD(), clip_norm=0.0)
        with pytest.raises(ValueError):
            DpSgdOptimizer(SGD(), noise_multiplier=-1.0)
