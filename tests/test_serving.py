"""Serving layer tests: query algebra, dual-path answers, registry, threads."""

import os
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.experiments.serving import covered_pairs, uncovered_pairs
from repro.serving import (
    PROVENANCE_MARGINAL,
    PROVENANCE_SAMPLE,
    ModelRegistry,
    Query,
    QueryEngine,
    answers_equal,
    count,
    histogram,
    marginal,
    topk,
)

N_FIT = 2500
SAMPLE_RECORDS = 4000


@pytest.fixture(scope="module")
def model():
    table = load_dataset("ton", n_records=N_FIT, seed=3)
    config = SynthesisConfig(epsilon=2.0)
    config.gum.iterations = 10
    return NetDPSyn(config, rng=11).fit(table)


@pytest.fixture(scope="module")
def engine(model):
    return QueryEngine(model, sample_records=SAMPLE_RECORDS)


@pytest.fixture(scope="module")
def pairs(model):
    """Published pairs answerable by BOTH paths (tsdiff decodes away)."""
    return [p for p in covered_pairs(model.plan()) if "tsdiff" not in p]


# --------------------------------------------------------------------- algebra
def test_query_validation():
    with pytest.raises(ValueError):
        Query(kind="mystery")
    with pytest.raises(ValueError):
        Query(kind="marginal")  # no attrs
    with pytest.raises(ValueError):
        count(where={"proto": []})
    with pytest.raises(ValueError):
        topk("dstport", k=0)
    with pytest.raises(ValueError):
        histogram("byt", bins=0)
    with pytest.raises(ValueError):
        marginal("proto", where={"proto": "TCP"})  # target and filter overlap
    with pytest.raises(ValueError):
        Query(kind="count", attrs=("proto",))
    with pytest.raises(ValueError):
        Query(kind="topk", attrs=("a", "b"))
    with pytest.raises(ValueError):
        marginal("proto", "proto")  # duplicate targets


def test_where_normalization_makes_equal_queries():
    a = count(where={"proto": ["TCP", "UDP"], "service": "http"})
    b = count(where={"service": ("http",), "proto": ["UDP", "TCP", "UDP"]})
    assert a == b and hash(a) == hash(b)
    assert a.needed_attrs == ("proto", "service")


def test_unknown_attribute_raises(engine):
    with pytest.raises(KeyError):
        engine.run(marginal("nonexistent"))
    with pytest.raises(KeyError):
        engine.run(count(where={"nope": 1}))
    with pytest.raises(ValueError):
        engine.run(count(), prefer="bogus")


# ------------------------------------------------------------------ provenance
def test_pair_marginals_answered_without_sampling(engine, pairs):
    """The acceptance criterion: published pairs never touch the sample path."""
    for pair in pairs:
        answer = engine.run(marginal(*pair))
        assert answer.provenance == PROVENANCE_MARGINAL
        assert set(pair) <= set(answer.source)
        assert np.asarray(answer.value).shape == engine._domain.shape(pair)
    # No sample was ever synthesized for marginal-path answers.
    assert engine._sample_cache is None


def test_uncovered_pair_uses_sample_path(engine, model):
    fallback = uncovered_pairs(model.plan())
    assert fallback, "expected at least one unpublished pair at this scale"
    answer = engine.run(marginal(*fallback[0]))
    assert answer.provenance == PROVENANCE_SAMPLE
    assert answer.source is None
    # Sample-path counts are rescaled to the release's record count.
    total = float(np.sum(answer.value))
    assert total == pytest.approx(model.plan().default_n, rel=1e-6)


def test_prefer_marginal_raises_when_uncovered(engine, model):
    fallback = uncovered_pairs(model.plan())
    with pytest.raises(LookupError):
        engine.run(marginal(*fallback[0]), prefer="marginal")


def test_count_tracks_release_total(engine, model):
    answer = engine.run(count())
    assert answer.provenance == PROVENANCE_MARGINAL
    # Published marginals disagree about the total only by their noise.
    assert answer.value == pytest.approx(model.plan().default_n, rel=0.05)


def test_filtered_count_decomposes(engine, model):
    """Filtered counts over a partition sum back to the unfiltered count."""
    categories = model.plan().codecs["proto"].base.categories
    parts = [engine.run(count(where={"proto": c})) for c in categories]
    whole = engine.run(count(where={"proto": list(categories)}))
    assert sum(p.value for p in parts) == pytest.approx(whole.value, rel=1e-9)


def test_histogram_and_topk_shapes(engine):
    hist = engine.run(histogram("byt", bins=7))
    assert hist.value["counts"].shape == (7,)
    assert hist.value["edges"].shape == (8,)
    ranked = engine.run(topk("dstport", k=4))
    counts = [row["count"] for row in ranked.value]
    assert counts == sorted(counts, reverse=True)
    assert len(ranked.value) == 4
    assert all(isinstance(row["label"], str) for row in ranked.value)


def test_histogram_rejects_categorical(engine):
    with pytest.raises(ValueError):
        engine.run(histogram("proto"))


# ------------------------------------------------- dual-path noise agreement
@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_paths_agree_within_noise(engine, pairs, data):
    """Marginal-path and sample-path marginals are close in TV distance.

    Both estimate the same released distribution — one by projecting the
    published table, one by counting a GUM-synthesized sample — so they
    differ only by synthesis + sampling error.  Measured worst-case TV at
    this scale is ~0.11; the 0.25 bound leaves noise margin without letting
    a broken path (wrong axis order, bad rescale) through.
    """
    pair = data.draw(st.sampled_from(pairs))
    query = marginal(*pair)
    via_marginal = np.clip(np.asarray(engine.run(query).value), 0, None)
    via_sample = np.asarray(engine.run(query, prefer="sample").value)
    pa = via_marginal / via_marginal.sum()
    pb = via_sample / via_sample.sum()
    tv = 0.5 * float(np.abs(pa - pb).sum())
    assert tv < 0.25, f"paths diverged on {pair}: TV={tv:.3f}"


# ------------------------------------------------------------ batch execution
def _query_strategy(pairs, fallback, categories):
    filters = st.sampled_from([None, {"proto": categories[0]}, {"proto": list(categories[:2])}])
    return st.one_of(
        st.builds(lambda w: count(where=w), filters),
        st.builds(lambda p: marginal(*p), st.sampled_from(pairs + fallback)),
        st.builds(
            lambda k, w: topk("dstport", k=k, where=w), st.integers(1, 8), filters
        ),
        st.builds(lambda b: histogram("byt", bins=b), st.integers(1, 12)),
    )


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_batch_bit_identical_to_serial(engine, model, pairs, data):
    plan = model.plan()
    categories = list(plan.codecs["proto"].base.categories)
    fallback = [p for p in uncovered_pairs(plan)[:3]]
    queries = data.draw(
        st.lists(_query_strategy(pairs, fallback, categories), min_size=1, max_size=12)
    )
    serial = [engine.run(q) for q in queries]
    batched = engine.run_batch(queries)
    assert len(serial) == len(batched)
    for s, b in zip(serial, batched):
        assert answers_equal(s, b)


def test_run_batch_empty(engine):
    assert engine.run_batch([]) == []


# -------------------------------------------------------------------- registry
@pytest.fixture()
def model_dir(tmp_path, model):
    for name in ("alpha", "beta", "gamma"):
        model.save(tmp_path / f"{name}.ndpsyn")
    return tmp_path


def _touch(path, bump_ns: int = 5_000_000) -> None:
    stat = path.stat()
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + bump_ns))


def test_registry_loads_and_hits(model_dir):
    registry = ModelRegistry(model_dir)
    assert registry.list_models() == ["alpha", "beta", "gamma"]
    first = registry.get("alpha")
    again = registry.get("alpha")
    assert first is again
    assert registry.stats.hits == 1 and registry.stats.misses == 1
    # Suffix-qualified names address the same entry.
    assert registry.get("alpha.ndpsyn") is first
    assert registry.stats.hits == 2


def test_registry_lru_eviction(model_dir):
    size = (model_dir / "alpha.ndpsyn").stat().st_size
    registry = ModelRegistry(model_dir, byte_budget=2 * size + size // 2)
    registry.get("alpha")
    registry.get("beta")
    registry.get("alpha")  # alpha is now most-recently used
    registry.get("gamma")  # exceeds budget: beta (LRU) must go
    assert registry.cached_models == ["alpha", "gamma"]
    assert registry.stats.evictions == 1
    assert registry.total_bytes <= registry.byte_budget


def test_registry_keeps_newest_even_over_budget(model_dir):
    registry = ModelRegistry(model_dir, byte_budget=1)
    model = registry.get("alpha")
    assert registry.cached_models == ["alpha"]
    registry.get("beta")
    assert registry.cached_models == ["beta"]
    assert model.plan() is not None  # evicted models stay usable by holders


def test_registry_hot_reload_on_mtime_change(model_dir):
    registry = ModelRegistry(model_dir)
    before = registry.get("alpha")
    engine_before = registry.engine("alpha")
    _touch(model_dir / "alpha.ndpsyn")
    after = registry.get("alpha")
    assert after is not before
    assert registry.stats.reloads == 1
    # The engine cache is invalidated together with its model.
    engine_after = registry.engine("alpha")
    assert engine_after is not engine_before
    assert engine_after._model is after


def test_registry_engine_cached_per_options(model_dir):
    registry = ModelRegistry(model_dir)
    a = registry.engine("alpha")
    b = registry.engine("alpha")
    c = registry.engine("alpha", sample_records=123)
    assert a is b and c is not a
    assert c.sample_records == 123


def test_registry_missing_model(model_dir):
    registry = ModelRegistry(model_dir)
    with pytest.raises(FileNotFoundError):
        registry.get("missing")
    registry.get("alpha")
    (model_dir / "alpha.ndpsyn").unlink()
    with pytest.raises(FileNotFoundError):
        registry.get("alpha")  # stale cache must not serve a deleted release
    assert "alpha" not in registry.cached_models


def test_registry_validation(model_dir):
    with pytest.raises(ValueError):
        ModelRegistry(model_dir, byte_budget=0)


def test_registry_concurrent_cold_load_deduplicates(model_dir):
    """N racing first requests produce exactly one load; the rest are hits."""
    registry = ModelRegistry(model_dir)
    barrier = threading.Barrier(6)
    seen = []
    errors = []

    def worker():
        try:
            barrier.wait()
            seen.append(registry.get("alpha"))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert registry.stats.misses == 1 and registry.stats.reloads == 0
    assert registry.stats.hits == 5
    assert all(m is seen[0] for m in seen)


# ------------------------------------------------------------------ threading
def test_concurrent_queries_and_registry_access(model_dir, model):
    """Threads hammering the registry + one engine agree with serial answers."""
    registry = ModelRegistry(model_dir)
    engine = registry.engine("alpha", sample_records=1500)
    plan = model.plan()
    fallback = uncovered_pairs(plan)
    queries = [
        count(),
        marginal(*covered_pairs(plan)[0]),
        topk("dstport", k=3),
        marginal(*fallback[0]),  # forces the lazy sample build under race
        count(where={"proto": "TCP"}),
    ]
    expected = [engine.run(q) for q in queries]
    errors = []
    results = {}

    def worker(tid):
        try:
            registry.get("alpha")
            answers = [engine.run(q) for q in queries]
            batched = engine.run_batch(queries)
            results[tid] = (answers, batched)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(results) == 8
    for answers, batched in results.values():
        for got, want in zip(answers, expected):
            assert answers_equal(got, want)
        for got, want in zip(batched, expected):
            assert answers_equal(got, want)


def test_engine_validation(model):
    with pytest.raises(ValueError):
        QueryEngine(model, sample_records=0)


def test_filter_bin_cache_is_bounded(model, monkeypatch):
    import repro.serving.engine as engine_mod

    monkeypatch.setattr(engine_mod, "MAX_FILTER_CACHE", 4)
    engine = QueryEngine(model, sample_records=100)
    ports = [80, 443, 22, 53, 8080, 445, 21, 123]
    for port in ports:
        engine.run(count(where={"dstport": port}))
    assert len(engine._filter_bins_cache) <= 4
    # Answers stay correct across the wholesale cache drop.
    a = engine.run(count(where={"dstport": 80}))
    b = engine.run(count(where={"dstport": 80}))
    assert a.value == b.value


def test_labels_and_metadata(engine, model):
    plan = model.plan()
    proto_labels = engine.labels("proto")
    assert len(proto_labels) == plan.domain.size("proto")
    assert all(isinstance(label, str) for label in proto_labels)
    # Every label is built from real category names.
    categories = set(plan.codecs["proto"].base.categories)
    for label in proto_labels:
        assert set(label.split("|")) <= categories
    assert engine.labels("proto") is proto_labels  # memoized
    assert engine.attrs == plan.attrs
    with pytest.raises(KeyError):
        engine.labels("nonexistent")
