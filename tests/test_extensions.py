"""Tests for the paper's extension directions: copula baseline, user-level DP."""

import numpy as np
import pytest

from repro.baselines import CopulaConfig, GaussianCopulaSynthesizer
from repro.core import NetDPSyn, SynthesisConfig, UserLevelNetDPSyn
from repro.datasets import load_dataset
from repro.dp.user_level import (
    bound_user_contributions,
    record_rho_for_user_level,
    user_level_rho,
)
from repro.metrics import jensen_shannon_divergence


@pytest.fixture(scope="module")
def ton():
    return load_dataset("ton", n_records=2000, seed=41)


class TestGaussianCopula:
    @pytest.fixture(scope="class")
    def fitted(self, ton):
        return GaussianCopulaSynthesizer(CopulaConfig(epsilon=2.0), rng=1).fit(ton)

    def test_schema_preserved(self, fitted, ton):
        syn = fitted.sample(800)
        assert syn.schema.names == ton.schema.names
        assert syn.n_records == 800

    def test_budget_exactly_spent(self, fitted):
        assert fitted.ledger.remaining == pytest.approx(0.0, abs=1e-9)

    def test_correlation_matrix_valid(self, fitted):
        corr = fitted.correlation
        assert np.allclose(corr, corr.T)
        assert np.allclose(np.diag(corr), 1.0)
        eigvals = np.linalg.eigvalsh(corr)
        assert eigvals.min() > -1e-9

    def test_marginals_roughly_preserved(self, fitted, ton):
        syn = fitted.sample(2000)
        jsd = jensen_shannon_divergence(ton.column("proto"), syn.column("proto"))
        assert jsd < 0.2

    def test_paper_finding_copula_weaker_than_netdpsyn(self, ton):
        """§2.3: the Gaussian copula's joint fidelity is 'unsatisfactory'.

        Measured by the downstream task the paper cares about: a classifier
        trained on the synthetic output and tested on fresh raw flows.  The
        copula carries only monotone pairwise dependence, so it loses the
        multi-modal port↔label structure GUM preserves.
        """
        import numpy as np

        from repro.datasets import load_dataset
        from repro.ml import DecisionTreeClassifier, accuracy_score

        test = load_dataset("ton", n_records=1000, seed=99)

        def downstream_accuracy(train_table):
            X, _ = train_table.feature_matrix(exclude=("type",))
            y = np.asarray(train_table.column("type"))
            X_test, _ = test.feature_matrix(exclude=("type",))
            y_test = np.asarray(test.column("type"))
            model = DecisionTreeClassifier(max_depth=12, rng=0)
            model.fit(X, y)
            return accuracy_score(y_test, model.predict(X_test))

        config = SynthesisConfig(epsilon=2.0)
        config.gum.iterations = 15
        ours = NetDPSyn(config, rng=2).synthesize(ton)
        copula = GaussianCopulaSynthesizer(CopulaConfig(epsilon=2.0), rng=2).synthesize(ton)
        assert downstream_accuracy(ours) > downstream_accuracy(copula) + 0.05

    def test_sample_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianCopulaSynthesizer().sample()


class TestContributionBounding:
    def test_cap_enforced(self, ton):
        bounded = bound_user_contributions(ton, "srcip", max_records=3, rng=0)
        groups = bounded.group_ids(["srcip"])
        assert np.bincount(groups).max() <= 3

    def test_users_preserved(self, ton):
        bounded = bound_user_contributions(ton, "srcip", max_records=3, rng=0)
        assert set(np.unique(bounded.column("srcip"))) == set(
            np.unique(ton.column("srcip"))
        )

    def test_large_cap_is_identity(self, ton):
        bounded = bound_user_contributions(ton, "srcip", max_records=10**6, rng=0)
        assert bounded.n_records == ton.n_records

    def test_invalid_cap(self, ton):
        with pytest.raises(ValueError):
            bound_user_contributions(ton, "srcip", max_records=0)

    def test_single_member_groups_are_identity(self, ton):
        # Degenerate grouping: every record its own user -> nothing to bound,
        # whatever the cap.
        unique = ton.head(200)
        keys = ["srcip", "dstip", "srcport", "dstport", "ts"]
        if len(np.unique(unique.group_ids(keys))) < unique.n_records:
            pytest.skip("fixture rows not unique under the 5-tuple key")
        bounded = bound_user_contributions(unique, keys, max_records=1, rng=0)
        assert bounded.n_records == unique.n_records

    def test_cap_of_one_keeps_one_record_per_user(self, ton):
        bounded = bound_user_contributions(ton, "srcip", max_records=1, rng=0)
        assert bounded.n_records == len(np.unique(ton.column("srcip")))
        assert np.bincount(bounded.group_ids(["srcip"])).max() == 1

    def test_empty_table_passes_through(self, ton):
        empty = ton.filter(np.zeros(ton.n_records, dtype=bool))
        bounded = bound_user_contributions(empty, "srcip", max_records=3, rng=0)
        assert bounded.n_records == 0

    def test_deterministic_under_pinned_rng(self, ton):
        a = bound_user_contributions(ton, "srcip", max_records=2, rng=7)
        b = bound_user_contributions(ton, "srcip", max_records=2, rng=7)
        assert a.content_digest() == b.content_digest()

    def test_composite_user_key(self, ton):
        bounded = bound_user_contributions(ton, ["srcip", "dstip"], max_records=2, rng=0)
        assert np.bincount(bounded.group_ids(["srcip", "dstip"])).max() <= 2


class TestGroupPrivacyArithmetic:
    def test_roundtrip(self):
        rho = record_rho_for_user_level(0.8, 4)
        assert rho == pytest.approx(0.05)
        assert user_level_rho(rho, 4) == pytest.approx(0.8)

    def test_k1_is_identity(self):
        assert record_rho_for_user_level(0.3, 1) == pytest.approx(0.3)


class TestUserLevelNetDPSyn:
    def test_end_to_end(self, ton):
        config = SynthesisConfig(epsilon=4.0)
        config.gum.iterations = 5
        synth = UserLevelNetDPSyn(config, max_contribution=4, rng=3)
        out = synth.synthesize(ton, n=600)
        assert out.n_records == 600
        assert out.schema.names == ton.schema.names

    def test_record_epsilon_smaller_than_user_epsilon(self):
        synth = UserLevelNetDPSyn(SynthesisConfig(epsilon=4.0), max_contribution=4)
        assert synth.record_level_epsilon < 4.0

    def test_contribution_bound_applied(self, ton):
        config = SynthesisConfig(epsilon=4.0)
        config.gum.iterations = 2
        synth = UserLevelNetDPSyn(config, max_contribution=2, rng=3)
        synth.fit(ton)
        assert synth.bounded_records < ton.n_records

    def test_inner_ledger_spent(self, ton):
        config = SynthesisConfig(epsilon=4.0)
        config.gum.iterations = 2
        synth = UserLevelNetDPSyn(config, max_contribution=3, rng=3)
        synth.fit(ton)
        assert synth.inner.ledger.remaining == pytest.approx(0.0, abs=1e-9)

    def test_sample_before_fit(self):
        with pytest.raises(RuntimeError):
            UserLevelNetDPSyn().sample()

    def test_invalid_contribution(self):
        with pytest.raises(ValueError):
            UserLevelNetDPSyn(max_contribution=0)
