"""Tests for the pluggable GUM kernel subsystem.

Three contracts are enforced here:

1. **Parity** — every kernel, on every backend, for every shard count and
   legacy update_mode pin, produces a trace digest identical to the
   reference kernel's (the hypothesis sweep).
2. **Resolution** — the registry's ``auto`` order is fused -> numba ->
   vectorized -> reference, degrades gracefully when numba is not
   importable, and rejects unknown names everywhere (registry,
   ``EngineConfig``, ``run_gum``).
3. **Persistence** — ``EngineConfig.override`` and model ``save``/``load``
   round-trip the ``kernel`` field, and a model pinned to an unavailable
   kernel still samples (with a warning), byte-identically.
"""

import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.engine import BACKENDS, EngineConfig
from repro.synthesis.gum import GumConfig, run_gum
from repro.synthesis.kernels import (
    AUTO_ORDER,
    FusedKernel,
    GumKernel,
    NumbaKernel,
    ReferenceKernel,
    VectorizedKernel,
    _MarginalState,
    available_kernels,
    get_kernel,
    kernel_names,
    register_kernel,
    resolve_kernel_name,
)
from repro.synthesis.kernels import numba_kernel as numba_mod
from repro.synthesis.kernels.numba_kernel import (
    _group_rows_py,
    _patch_rows_py,
    _strides_for,
)

HAVE_NUMBA = numba_mod.numba_available()


@pytest.fixture(scope="module")
def fitted():
    table = load_dataset("ton", n_records=1200, seed=17)
    config = SynthesisConfig(epsilon=2.0)
    config.gum.iterations = 8
    return NetDPSyn(config, rng=5).fit(table)


@pytest.fixture(scope="module")
def reference_digests(fitted):
    """Golden digests per shard count, captured on the reference kernel."""
    return {
        shards: fitted.sample(400, rng=9, shards=shards, kernel="reference")
        .content_digest()
        for shards in (1, 2, 3)
    }


class TestKernelParity:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        kernel=st.sampled_from(["auto", "fused", "vectorized", "reference"]),
        backend=st.sampled_from(BACKENDS),
        shards=st.sampled_from([1, 2, 3]),
        update_mode=st.sampled_from(["auto", "fused", "vectorized", "reference"]),
    )
    def test_kernel_backend_shards_mode_digest_equality(
        self, fitted, reference_digests, kernel, backend, shards, update_mode
    ):
        """Kernel/backend/mode choice may never change a single byte."""
        gum = fitted.config.gum
        original = gum.update_mode
        gum.update_mode = update_mode
        try:
            digest = fitted.sample(
                400, rng=9, shards=shards, backend=backend, kernel=kernel
            ).content_digest()
        finally:
            gum.update_mode = original
        assert digest == reference_digests[shards]

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_numba_kernel_digest_equality(self, fitted, reference_digests, shards):
        digest = fitted.sample(400, rng=9, shards=shards, kernel="numba")
        assert digest.content_digest() == reference_digests[shards]

    def test_gum_result_records_kernel(self, fitted):
        fitted.sample(200, rng=3, kernel="reference")
        assert fitted.gum_result.kernel == "reference"
        fitted.sample(200, rng=3, kernel="vectorized")
        assert fitted.gum_result.kernel == "vectorized"
        fitted.sample(200, rng=3)  # auto resolves to a concrete name
        assert fitted.gum_result.kernel in AUTO_ORDER

    def test_streaming_paths_record_kernel(self, fitted):
        parts = list(fitted.sample_stream(300, chunk=100, rng=4, shards=3))
        assert sum(p.n_records for p in parts) == 300
        assert fitted.gum_result.kernel in AUTO_ORDER


class TestRegistry:
    def test_always_available_kernels(self):
        names = available_kernels()
        assert "reference" in names and "vectorized" in names
        assert set(names) <= set(kernel_names())

    def test_auto_resolves_to_fused(self):
        """``fused`` heads the auto order and is available everywhere."""
        assert AUTO_ORDER[0] == "fused"
        assert resolve_kernel_name("auto") == "fused"

    def test_auto_order_numba_precedes_vectorized(self):
        assert AUTO_ORDER.index("numba") < AUTO_ORDER.index("vectorized")

    def test_numba_unavailability_does_not_change_auto(self, monkeypatch):
        monkeypatch.setattr(numba_mod, "numba_available", lambda: False)
        assert resolve_kernel_name("auto") == "fused"
        assert "numba" not in available_kernels()
        # The name stays *valid* even while unavailable.
        assert "numba" in kernel_names()

    def test_unavailable_kernel_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setattr(numba_mod, "numba_available", lambda: False)
        with pytest.warns(RuntimeWarning, match="not available"):
            assert resolve_kernel_name("numba") == "fused"

    def test_unknown_kernel_rejected_everywhere(self):
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel_name("magic")
        with pytest.raises(ValueError, match="kernel"):
            EngineConfig(kernel="magic")
        with pytest.raises(ValueError, match="update_mode"):
            GumConfig(update_mode="magic")

    def test_get_kernel_returns_fresh_instances(self):
        a, b = get_kernel("vectorized"), get_kernel("vectorized")
        assert isinstance(a, VectorizedKernel) and a is not b

    def test_register_rejects_bad_kernels(self):
        with pytest.raises(TypeError):
            register_kernel(object)
        with pytest.raises(ValueError):
            register_kernel(type("Bad", (ReferenceKernel,), {"name": "auto"}))

    def test_registered_classes(self):
        assert isinstance(get_kernel("reference"), ReferenceKernel)
        assert NumbaKernel.name in kernel_names()


class TestRunGumKernelSelection:
    def _workload(self, n=600, seed=2):
        from repro.data.domain import Domain
        from repro.marginals.marginal import Marginal

        rng = np.random.default_rng(seed)
        domain = Domain({"a": 5, "b": 4, "c": 3})
        data = np.stack(
            [rng.integers(0, 5, n), rng.integers(0, 4, n), rng.integers(0, 3, n)],
            axis=1,
        ).astype(np.int32)
        target_ab = Marginal(("a", "b"), rng.random((5, 4)) * n)
        target_bc = Marginal(("b", "c"), rng.random((4, 3)) * n)
        return data, [target_ab, target_bc], ("a", "b", "c"), domain

    def test_explicit_kernel_equals_reference(self):
        data, targets, attrs, domain = self._workload()
        config = GumConfig(iterations=10)
        out = {}
        for kernel in ("reference", "vectorized"):
            out[kernel] = run_gum(
                data.copy(), targets, attrs, domain, config, rng=7, kernel=kernel
            )
        assert np.array_equal(out["reference"].data, out["vectorized"].data)
        assert out["reference"].errors == out["vectorized"].errors
        assert out["reference"].kernel == "reference"
        assert out["vectorized"].kernel == "vectorized"

    def test_kernel_instance_accepted(self):
        data, targets, attrs, domain = self._workload()
        config = GumConfig(iterations=5)
        a = run_gum(
            data.copy(), targets, attrs, domain, config, rng=3, kernel=VectorizedKernel()
        )
        b = run_gum(data.copy(), targets, attrs, domain, config, rng=3, kernel="auto")
        assert np.array_equal(a.data, b.data)

    def test_invalid_kernel_name_raises(self):
        data, targets, attrs, domain = self._workload(n=50)
        with pytest.raises(ValueError, match="kernel"):
            run_gum(data, targets, attrs, domain, GumConfig(), rng=1, kernel="magic")


class TestNumbaTwins:
    """The njit sources are plain Python: parity is provable without numba."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_group_rows_matches_stable_argsort(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 500))
        size = int(rng.integers(1, 60))
        codes = rng.integers(0, size, size=n)
        perm = rng.permutation(n)
        cp = codes[perm]
        order = np.argsort(cp, kind="stable")
        rows, sorted_codes = _group_rows_py(codes, perm, size)
        assert np.array_equal(rows, perm[order])
        assert np.array_equal(sorted_codes, cp[order])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_patch_rows_matches_marginal_state(self, seed):
        rng = np.random.default_rng(seed)
        n, k = 300, 4
        shape = (5, 3)
        axes = np.array([0, 2], dtype=np.int64)
        data = rng.integers(0, 3, size=(n, k)).astype(np.int32)
        data[:, 0] = rng.integers(0, 5, size=n)
        state = _MarginalState(axes, shape, np.zeros(15))
        state.target = np.zeros(15)
        state.init_cache(data)
        twin_codes = state.codes.copy()
        twin_counts = state.counts.copy()

        rows = rng.choice(n, size=40, replace=False).astype(np.int64)
        new_vals = np.column_stack(
            [rng.integers(0, 5, 40), rng.integers(0, 3, 40), rng.integers(0, 3, 40),
             rng.integers(0, 3, 40)]
        ).astype(np.int32)
        data[rows] = new_vals

        state.apply_row_updates(rows, data[rows])
        _patch_rows_py(
            data, rows, axes, _strides_for(shape), twin_codes, twin_counts
        )
        assert np.array_equal(twin_codes, state.codes)
        assert np.array_equal(twin_counts, state.counts)

    def test_strides_match_ravel(self):
        shape = (7, 3, 5)
        strides = _strides_for(shape)
        idx = np.array([[6, 2, 4], [0, 0, 0], [3, 1, 2]])
        expected = np.ravel_multi_index(tuple(idx.T), shape)
        assert np.array_equal(idx @ strides, expected)


class TestFusedKernel:
    """The fused kernel's three single-pass tricks, each pinned to its twin.

    Bit-identity of the full kernel is already covered by the parity sweep;
    these tests pin the *individual* stream/ordering contracts the fusion
    relies on, so a regression points at the exact trick that broke.
    """

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_broadcast_dup_draw_matches_sequential(self, seed):
        """One bounds-broadcast ``integers`` call == per-cell calls: same
        values AND same post-call generator state."""
        rng = np.random.default_rng(seed)
        n_cells = int(rng.integers(1, 24))
        match = rng.integers(1, 2**40, size=n_cells)
        n_dup = rng.integers(0, 6, size=n_cells)
        n_dup[int(rng.integers(0, n_cells))] = max(1, int(n_dup[0]))
        dup_idx = np.nonzero(n_dup > 0)[0]
        rng_a = np.random.default_rng(seed ^ 0x5EED)
        rng_b = np.random.default_rng(seed ^ 0x5EED)
        seq = VectorizedKernel()._dup_offsets(rng_a, match, n_dup, dup_idx)
        fused = FusedKernel()._dup_offsets(rng_b, match, n_dup, dup_idx)
        assert np.array_equal(seq, fused)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_radix_grouping_matches_stable_argsort(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 500))
        size = int(rng.integers(1, 3000))
        codes = rng.integers(0, size, size=n)
        perm = rng.permutation(n)
        kernel = FusedKernel()
        kernel._jit = False
        rows, sorted_codes = kernel._group_rows(codes, perm, size)
        order = np.argsort(codes[perm], kind="stable")
        assert np.array_equal(rows, perm[order])
        assert np.array_equal(sorted_codes, codes[perm][order])

    def test_grouping_beyond_radix_range_still_stable(self):
        size = 70_000  # > uint16 range: must take the int64 branch, same result
        rng = np.random.default_rng(3)
        codes = rng.integers(0, size, size=400)
        perm = rng.permutation(400)
        kernel = FusedKernel()
        kernel._jit = False
        rows, sorted_codes = kernel._group_rows(codes, perm, size)
        order = np.argsort(codes[perm], kind="stable")
        assert np.array_equal(rows, perm[order])
        assert np.array_equal(sorted_codes, codes[perm][order])

    def _states(self, data):
        specs = [
            (np.array([0, 2], dtype=np.int64), (5, 3)),
            (np.array([1], dtype=np.int64), (4,)),
            (np.array([0, 1, 3], dtype=np.int64), (5, 4, 3)),
        ]
        states = []
        for axes, shape in specs:
            size = int(np.prod(shape))
            state = _MarginalState(axes, shape, np.zeros(size))
            state.target = np.zeros(size)
            states.append(state)
        return states

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_fused_apply_updates_matches_marginal_state(self, seed):
        """One matmul + one bincount == per-marginal ``apply_row_updates``."""
        rng = np.random.default_rng(seed)
        n, k = 300, 4
        data = np.column_stack(
            [
                rng.integers(0, 5, n),
                rng.integers(0, 4, n),
                rng.integers(0, 3, n),
                rng.integers(0, 3, n),
            ]
        ).astype(np.int32)
        states = self._states(data)
        twins = self._states(data)
        for twin in twins:
            twin.init_cache(data)

        kernel = FusedKernel()
        kernel.prepare(data, states)
        kernel._jit = False  # pin the numpy fusion even on numba hosts
        for state, twin in zip(states, twins):
            assert np.array_equal(state.codes, twin.codes)
            assert np.array_equal(state.counts, twin.counts)

        rows = rng.choice(n, size=40, replace=False).astype(np.int64)
        data[rows, 0] = rng.integers(0, 5, 40)
        data[rows, 1] = rng.integers(0, 4, 40)
        data[rows, 2] = rng.integers(0, 3, 40)
        data[rows, 3] = rng.integers(0, 3, 40)

        kernel._apply_updates(data, states, rows)
        for twin in twins:
            twin.apply_row_updates(rows, data[rows])
        for state, twin in zip(states, twins):
            assert np.array_equal(state.codes, twin.codes)
            assert np.array_equal(state.counts, twin.counts)

    def test_fused_digest_equality(self, fitted, reference_digests):
        for shards in (1, 2, 3):
            digest = fitted.sample(400, rng=9, shards=shards, kernel="fused")
            assert digest.content_digest() == reference_digests[shards]


class TestKernelConfigPersistence:
    def test_override_round_trips_kernel(self):
        config = EngineConfig(kernel="vectorized", shards=2)
        assert config.override().kernel == "vectorized"
        assert config.override(kernel="reference").kernel == "reference"
        assert config.override(shards=4).kernel == "vectorized"
        assert config.kernel == "vectorized"  # original untouched

    def test_save_load_round_trips_kernel(self, fitted, tmp_path):
        fitted.config.engine = fitted.config.engine.override(kernel="vectorized")
        fitted._plan = None  # rebuild the plan with the pinned kernel
        path = tmp_path / "model.ndpsyn"
        fitted.save(path)
        loaded = NetDPSyn.load(path)
        assert loaded.plan().kernel == "vectorized"
        assert loaded.config.engine.kernel == "vectorized"
        assert (
            loaded.sample(300, rng=11).content_digest()
            == fitted.sample(300, rng=11).content_digest()
        )

    def test_model_pinned_to_unavailable_kernel_still_samples(
        self, fitted, tmp_path, monkeypatch
    ):
        """A numba-host model must sample identically on a numpy-only host."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            expected = fitted.sample(250, rng=13).content_digest()
            fitted.config.engine = fitted.config.engine.override(kernel="numba")
            fitted._plan = None
            path = tmp_path / "numba-model.ndpsyn"
            fitted.save(path)
        loaded = NetDPSyn.load(path)
        assert loaded.plan().kernel == "numba"
        monkeypatch.setattr(numba_mod, "numba_available", lambda: False)
        with pytest.warns(RuntimeWarning, match="not available"):
            digest = loaded.sample(250, rng=13).content_digest()
        assert digest == expected

    def test_plan_without_kernel_field_defaults_to_auto(self, fitted):
        """Plans unpickled from pre-kernel model files keep working."""
        plan = fitted.plan()
        delattr(plan, "kernel")
        try:
            assert plan.resolved_kernel() == "auto"
            shard = plan.run_shard(50, rng=1)
            assert shard.n_records == 50
        finally:
            plan.kernel = "auto"
            fitted._plan = None

    def test_custom_kernel_registers_and_runs(self, fitted):
        calls = []

        class ProbeKernel(VectorizedKernel):
            name = "probe"

            def step(self, data, states, k, alpha, config, rng):
                calls.append(k)
                return super().step(data, states, k, alpha, config, rng)

        register_kernel(ProbeKernel)
        try:
            out = fitted.sample(150, rng=21, kernel="probe")
            assert calls, "custom kernel was never stepped"
            assert (
                out.content_digest()
                == fitted.sample(150, rng=21, kernel="reference").content_digest()
            )
        finally:
            from repro.synthesis.kernels.registry import _REGISTRY

            _REGISTRY.pop("probe", None)


def test_kernel_protocol_is_abstract():
    with pytest.raises(TypeError):
        GumKernel()
