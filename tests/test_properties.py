"""Cross-cutting property-based tests and failure injection.

These complement the per-module suites with randomized invariants on the
privacy-critical paths: budget conservation, projection feasibility, GUM
row-count preservation, encoder round-trip containment.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import make_consistent, norm_sub
from repro.core import NetDPSyn, SynthesisConfig
from repro.data.domain import Domain
from repro.data.schema import FieldKind, FieldSpec, Schema
from repro.data.table import TraceTable
from repro.datasets import load_dataset
from repro.dp.accountant import BudgetLedger
from repro.marginals.marginal import Marginal
from repro.synthesis import GumConfig, run_gum

RNG = np.random.default_rng(0)


class TestBudgetConservationProperty:
    @given(
        st.lists(st.floats(min_value=0.01, max_value=0.2), min_size=1, max_size=8)
    )
    @settings(max_examples=50)
    def test_ledger_never_overdraws(self, spends):
        ledger = BudgetLedger(1.0)
        total = 0.0
        for amount in spends:
            if total + amount <= 1.0:
                ledger.spend(amount)
                total += amount
            else:
                with pytest.raises(RuntimeError):
                    ledger.spend(1.1 - total + amount)
                break
        assert ledger.spent <= ledger.total * (1 + 1e-9)

    def test_bad_stage_split_rejected_by_pipeline(self):
        table = load_dataset("ton", n_records=300, seed=0)
        config = SynthesisConfig(epsilon=2.0, stage_split={"binning": 0.5, "selection": 0.6, "publish": 0.2})
        with pytest.raises(ValueError):
            NetDPSyn(config, rng=0).fit(table)


class TestGumProperties:
    @given(
        st.integers(min_value=50, max_value=400),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_row_count_and_domain_preserved(self, n, size_x, size_y, seed):
        rng = np.random.default_rng(seed)
        domain = Domain({"x": size_x, "y": size_y})
        target = rng.random((size_x, size_y)) + 0.1
        target = target / target.sum() * n
        data = np.stack(
            [rng.integers(0, size_x, n), rng.integers(0, size_y, n)], axis=1
        ).astype(np.int32)
        result = run_gum(
            data, [Marginal(("x", "y"), target)], ("x", "y"), domain,
            GumConfig(iterations=5), rng=rng,
        )
        assert result.data.shape == (n, 2)
        assert result.data[:, 0].min() >= 0 and result.data[:, 0].max() < size_x
        assert result.data[:, 1].min() >= 0 and result.data[:, 1].max() < size_y

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_error_trace_monotone_tendency(self, seed):
        rng = np.random.default_rng(seed)
        n = 500
        domain = Domain({"x": 4, "y": 4})
        target = np.diag([1.0, 1.0, 1.0, 1.0]) * n / 4
        data = np.stack(
            [rng.integers(0, 4, n), rng.integers(0, 4, n)], axis=1
        ).astype(np.int32)
        result = run_gum(
            data, [Marginal(("x", "y"), target)], ("x", "y"), domain,
            GumConfig(iterations=15), rng=rng,
        )
        assert result.errors[-1] <= result.errors[0]


class TestConsistencyProperties:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40)
    def test_make_consistent_output_valid(self, a, b, seed):
        rng = np.random.default_rng(seed)
        marginals = [
            Marginal(("x",), rng.normal(10, 8, size=a), rho=0.1, sigma=1.0),
            Marginal(("x", "y"), rng.normal(10, 8, size=(a, b)), rho=0.1, sigma=2.0),
        ]
        out = make_consistent(marginals, rounds=2)
        for m in out:
            assert (m.counts >= -1e-9).all()
        assert out[0].total == pytest.approx(out[1].total, rel=1e-6)

    @given(
        st.lists(st.floats(min_value=-50, max_value=50), min_size=2, max_size=30),
        st.floats(min_value=0.1, max_value=500),
    )
    @settings(max_examples=60)
    def test_norm_sub_idempotent(self, values, target):
        once = norm_sub(np.array(values), target)
        twice = norm_sub(once, target)
        assert np.allclose(once, twice, atol=1e-8)


class TestEncoderRoundTripProperty:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_reencode_is_identity_on_decoded(self, seed):
        table = load_dataset("ugr16", n_records=300, seed=seed % 100)
        from repro.binning import DatasetEncoder, EncoderConfig

        encoder = DatasetEncoder(EncoderConfig()).fit(table, rho=0.05, rng=seed)
        encoded = encoder.encode(table)
        decoded = encoder.decode(encoded, rng=seed)
        recoded = encoder.encode(decoded)
        for j, attr in enumerate(encoded.attrs):
            spec = encoder.schema[attr]
            if spec.kind is FieldKind.IP:
                # Group decoding can emit unobserved addresses that snap to
                # the nearest observed bin — the re-encoded bin's observed
                # value range must lie within a /30 block of the sample.
                original = np.asarray(decoded.column(attr), dtype=np.float64)
                lo, hi = encoder.codecs[attr].bin_bounds()
                codes = recoded.data[:, j]
                assert (original >= lo[codes] - 4).all()
                assert (original <= hi[codes] + 4).all()
            else:
                assert np.array_equal(recoded.data[:, j], encoded.data[:, j]), attr


class TestEdgeCases:
    def _tiny_schema(self):
        return Schema(
            fields=(
                FieldSpec("srcip", FieldKind.IP),
                FieldSpec("dstport", FieldKind.PORT),
                FieldSpec("proto", FieldKind.CATEGORICAL, categories=("TCP", "UDP")),
                FieldSpec("pkt", FieldKind.NUMERIC),
                FieldSpec(
                    "label", FieldKind.CATEGORICAL, categories=("a", "b"), is_label=True
                ),
            ),
            kind="flow",
            flow_key=("srcip", "dstport", "proto"),
        )

    def test_pipeline_on_tiny_table(self):
        rng = np.random.default_rng(0)
        n = 60
        table = TraceTable(
            self._tiny_schema(),
            {
                "srcip": rng.integers(1, 20, n),
                "dstport": rng.choice([80, 443], n),
                "proto": rng.choice(np.array(["TCP", "UDP"], dtype=object), n),
                "pkt": rng.integers(1, 50, n),
                "label": rng.choice(np.array(["a", "b"], dtype=object), n),
            },
        )
        config = SynthesisConfig(epsilon=4.0)
        config.gum.iterations = 3
        syn = NetDPSyn(config, rng=1).synthesize(table, n=50)
        assert syn.n_records == 50
        assert set(syn.column("proto")) <= {"TCP", "UDP"}

    def test_single_record_per_class(self):
        table = TraceTable(
            self._tiny_schema(),
            {
                "srcip": np.array([1, 2]),
                "dstport": np.array([80, 443]),
                "proto": np.array(["TCP", "UDP"], dtype=object),
                "pkt": np.array([5, 9]),
                "label": np.array(["a", "b"], dtype=object),
            },
        )
        config = SynthesisConfig(epsilon=8.0)
        config.gum.iterations = 2
        syn = NetDPSyn(config, rng=1).synthesize(table, n=10)
        assert syn.n_records == 10

    def test_requested_zero_epsilon_rejected_everywhere(self):
        with pytest.raises(ValueError):
            SynthesisConfig(epsilon=-1.0)
        with pytest.raises(ValueError):
            BudgetLedger(0.0)
