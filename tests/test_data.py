"""Unit tests for the data model (schema, table, domain, io)."""

import numpy as np
import pytest

from repro.data import Domain, FieldKind, FieldSpec, Schema, TraceTable, read_csv, write_csv


@pytest.fixture
def flow_schema():
    return Schema(
        fields=(
            FieldSpec("srcip", FieldKind.IP),
            FieldSpec("dstport", FieldKind.PORT),
            FieldSpec("proto", FieldKind.CATEGORICAL, categories=("TCP", "UDP")),
            FieldSpec("ts", FieldKind.TIMESTAMP),
            FieldSpec("pkt", FieldKind.NUMERIC),
            FieldSpec("label", FieldKind.CATEGORICAL, categories=("a", "b"), is_label=True),
        ),
        kind="flow",
    )


@pytest.fixture
def small_table(flow_schema):
    return TraceTable(
        flow_schema,
        {
            "srcip": np.array([1, 2, 1, 3]),
            "dstport": np.array([80, 443, 80, 53]),
            "proto": np.array(["TCP", "TCP", "TCP", "UDP"], dtype=object),
            "ts": np.array([0.0, 1.0, 2.0, 3.0]),
            "pkt": np.array([5, 1, 9, 2]),
            "label": np.array(["a", "b", "a", "a"], dtype=object),
        },
    )


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema(fields=(FieldSpec("x", FieldKind.NUMERIC), FieldSpec("x", FieldKind.NUMERIC)))

    def test_categorical_requires_categories(self):
        with pytest.raises(ValueError):
            FieldSpec("c", FieldKind.CATEGORICAL)

    def test_non_categorical_rejects_categories(self):
        with pytest.raises(ValueError):
            FieldSpec("n", FieldKind.NUMERIC, categories=(1, 2))

    def test_label_field(self, flow_schema):
        assert flow_schema.label_field.name == "label"

    def test_contains_getitem(self, flow_schema):
        assert "srcip" in flow_schema
        assert flow_schema["pkt"].kind is FieldKind.NUMERIC
        with pytest.raises(KeyError):
            flow_schema["nope"]

    def test_with_without_field(self, flow_schema):
        extended = flow_schema.with_field(FieldSpec("extra", FieldKind.NUMERIC))
        assert "extra" in extended
        shrunk = extended.without_field("extra")
        assert "extra" not in shrunk

    def test_effective_flow_key_subset(self, flow_schema):
        assert flow_schema.effective_flow_key() == ("srcip", "dstport", "proto")

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Schema(fields=(FieldSpec("x", FieldKind.NUMERIC),), kind="stream")


class TestTraceTable:
    def test_length_and_columns(self, small_table):
        assert len(small_table) == 4
        assert np.array_equal(small_table["dstport"], [80, 443, 80, 53])

    def test_ragged_columns_rejected(self, flow_schema):
        with pytest.raises(ValueError):
            TraceTable(flow_schema, {n: np.arange(3 + i) for i, n in enumerate(flow_schema.names)})

    def test_missing_column_rejected(self, flow_schema, small_table):
        cols = small_table.columns()
        del cols["pkt"]
        with pytest.raises(ValueError):
            TraceTable(flow_schema, cols)

    def test_filter_take(self, small_table):
        subset = small_table.filter(np.array([True, False, True, False]))
        assert len(subset) == 2
        assert np.array_equal(subset["srcip"], [1, 1])

    def test_with_column_replace(self, small_table):
        replaced = small_table.with_column("pkt", np.array([1, 1, 1, 1]))
        assert replaced["pkt"].sum() == 4
        assert small_table["pkt"].sum() == 17  # original untouched

    def test_with_new_column_requires_spec(self, small_table):
        with pytest.raises(ValueError):
            small_table.with_column("new", np.zeros(4))
        added = small_table.with_column(
            "new", np.zeros(4), FieldSpec("new", FieldKind.NUMERIC)
        )
        assert "new" in added.schema

    def test_sort_by(self, small_table):
        ordered = small_table.sort_by("pkt")
        assert list(ordered["pkt"]) == [1, 2, 5, 9]

    def test_concat(self, small_table):
        doubled = small_table.concat(small_table)
        assert len(doubled) == 8

    def test_group_ids_mixed_types(self, small_table):
        ids = small_table.group_ids(["srcip", "proto"])
        assert ids[0] == ids[2]  # same (1, TCP)
        assert ids[0] != ids[1]

    def test_group_ids_count(self, small_table):
        ids = small_table.group_ids(["srcip"])
        assert len(np.unique(ids)) == 3

    def test_feature_matrix_encodes_categoricals(self, small_table):
        X, names = small_table.feature_matrix(exclude=("label",))
        assert X.shape == (4, 5)
        assert "label" not in names
        proto_col = X[:, names.index("proto")]
        assert set(proto_col) <= {0.0, 1.0}

    def test_head_shuffle(self, small_table):
        assert len(small_table.head(2)) == 2
        shuffled = small_table.shuffle(np.random.default_rng(0))
        assert sorted(shuffled["pkt"]) == sorted(small_table["pkt"])


class TestDomain:
    def test_basic(self):
        d = Domain({"a": 3, "b": 4})
        assert d.size("a") == 3
        assert d.shape(("b", "a")) == (4, 3)
        assert d.cells(("a", "b")) == 12
        assert d.total_size() == 7

    def test_project_and_eq(self):
        d = Domain({"a": 3, "b": 4, "c": 2})
        assert d.project(["a", "c"]) == Domain({"a": 3, "c": 2})

    def test_rejects_empty_size(self):
        with pytest.raises(ValueError):
            Domain({"a": 0})


class TestCsvIo:
    def test_roundtrip(self, small_table, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(small_table, path)
        loaded = read_csv(path, small_table.schema)
        assert len(loaded) == len(small_table)
        assert np.array_equal(loaded["dstport"], small_table["dstport"])
        assert list(loaded["proto"]) == list(small_table["proto"])
        assert np.allclose(loaded["ts"], small_table["ts"])

    def test_header_mismatch_rejected(self, small_table, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(small_table, path)
        other_schema = small_table.schema.without_field("pkt")
        with pytest.raises(ValueError):
            read_csv(path, other_schema)
