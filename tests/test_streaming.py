"""Streaming engine tests: sharded decode, chunked sampling, sinks, shm pool."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NetDPSyn, SynthesisConfig, load_dataset
from repro.data.io import read_csv
from repro.data.sinks import (
    SINK_FORMATS,
    NullSink,
    open_sink,
    read_jsonl,
)
from repro.data.table import TraceTable
from repro.engine import (
    BACKENDS,
    EngineConfig,
    SharedMemoryBackend,
    execute_plan_decoded,
    get_backend,
)
from repro.engine.executor import _merge_errors
from repro.engine.plan import ShardResult
from repro.engine.shm import export_result, import_result
from repro.utils.memory import peak_rss_bytes

#: Backends exercised by the digest-equality property tests (thread is
#: covered by the engine suite; these are the streaming acceptance trio).
STREAM_BACKENDS = ("serial", "process", "shared")


def digest(table) -> str:
    return table.content_digest()


def _shm_segments() -> set:
    import os

    # "psm_" is the stdlib's random prefix; "nds" is the engine's
    # deterministic parent-worker-seq naming (repro.engine.shm).
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(("psm_", "nds"))
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _big_array_task(shared, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100, size=(400, 80), dtype=np.int32)  # > 64 KiB


def _failing_task(shared, seed):
    if seed == 1:
        raise RuntimeError("task boom")
    return _big_array_task(shared, seed)


def _make_mixed_table(seed: int, n: int = 6000) -> TraceTable:
    """A >64 KiB table with raw and dictionary-encodable columns."""
    from repro.data.schema import FieldKind, FieldSpec, Schema

    rng = np.random.default_rng(seed)
    schema = Schema(
        (
            FieldSpec("a", FieldKind.NUMERIC),
            FieldSpec("b", FieldKind.NUMERIC),
            FieldSpec("proto", FieldKind.CATEGORICAL, categories=("tcp", "udp", "icmp")),
        ),
        "flow",
    )
    protos = np.array(["tcp", "udp", "icmp"], dtype=object)
    return TraceTable(
        schema,
        {
            "a": rng.integers(0, 2**40, size=n),
            "b": rng.standard_normal(n),
            "proto": protos[rng.integers(0, 3, size=n)],
        },
    )


def _table_task(shared, seed):
    """Worker task returning a whole TraceTable (exercises the arena path)."""
    return _make_mixed_table(seed)


def _export_then_die(shared, seed):
    """Park a segment like a mid-export worker, then die without handing off."""
    import os
    import signal

    from repro.engine import shm as shm_mod

    seg = shm_mod._create_segment(1 << 16)
    registered = getattr(seg, "_name", seg.name)
    seg.close()
    shm_mod._unregister(registered)
    os.kill(os.getpid(), signal.SIGKILL)


@pytest.fixture(scope="module")
def ton():
    return load_dataset("ton", n_records=2000, seed=13)


@pytest.fixture(scope="module")
def fitted(ton):
    config = SynthesisConfig(epsilon=2.0)
    config.gum.iterations = 8
    return NetDPSyn(config, rng=3).fit(ton)


class TestStreamEquality:
    """sample_stream() re-slices the sharded run without changing content."""

    @pytest.mark.parametrize("backend", STREAM_BACKENDS)
    def test_chunks_concat_to_sample(self, fitted, backend):
        expected = digest(fitted.sample(900, rng=5, shards=3, backend=backend))
        chunks = list(
            fitted.sample_stream(900, chunk=250, rng=5, shards=3, backend=backend)
        )
        assert [c.n_records for c in chunks] == [250, 250, 250, 150]
        assert digest(TraceTable.concat_all(chunks)) == expected

    def test_chunk_size_does_not_change_content(self, fitted):
        digests = set()
        for chunk in (100, 333, 900, 5000):
            parts = list(fitted.sample_stream(900, chunk=chunk, rng=7, shards=3))
            digests.add(digest(TraceTable.concat_all(parts)))
        assert len(digests) == 1

    def test_single_shard_stream_matches_legacy_sample(self, fitted):
        expected = digest(fitted.sample(600, rng=11))
        parts = list(fitted.sample_stream(600, chunk=200, rng=11, shards=1))
        assert digest(TraceTable.concat_all(parts)) == expected

    def test_default_shards_derived_from_chunk(self, fitted):
        parts = list(fitted.sample_stream(800, chunk=200, rng=2))
        assert sum(p.n_records for p in parts) == 800
        assert fitted.gum_result.shards == 4
        assert fitted.gum_result.n_records == 800
        assert fitted.gum_result.data is None

    def test_stream_metadata_recorded_after_exhaustion(self, fitted):
        stream = fitted.sample_stream(600, chunk=300, rng=4, shards=2)
        fitted.gum_result = None
        list(stream)
        result = fitted.gum_result
        assert result is not None
        assert len(result.shard_results) == 2
        assert all(r.data is None for r in result.shard_results)
        assert result.errors and result.iterations_run >= 1

    def test_invalid_arguments_raise_at_call_time(self, fitted):
        # Eager validation: the error surfaces where the mistake was made,
        # not at the first next() on the returned generator.
        with pytest.raises(ValueError, match="chunk"):
            fitted.sample_stream(100, chunk=0, rng=1)
        with pytest.raises(ValueError, match="n must be"):
            fitted.sample_stream(0, rng=1)


class TestSampleTo:
    @pytest.mark.parametrize("fmt", ["csv", "jsonl"])
    @pytest.mark.parametrize("backend", STREAM_BACKENDS)
    def test_round_trip_digest_equal(self, fitted, tmp_path, fmt, backend):
        expected = fitted.sample(700, rng=9, shards=2, backend=backend)
        path = tmp_path / f"trace.{fmt}"
        report = fitted.sample_to(
            path, n=700, chunk=173, rng=9, shards=2, backend=backend
        )
        assert report.n_records == 700
        assert report.n_chunks == 5  # ceil(700 / 173)
        assert report.format == fmt
        reader = read_csv if fmt == "csv" else read_jsonl
        assert digest(reader(path, expected.schema)) == digest(expected)

    def test_parquet_round_trip(self, fitted, tmp_path):
        pytest.importorskip("pyarrow")
        from repro.data.sinks import read_parquet

        expected = fitted.sample(400, rng=9, shards=2)
        path = tmp_path / "trace.parquet"
        fitted.sample_to(path, n=400, chunk=150, rng=9, shards=2)
        assert digest(read_parquet(path, expected.schema)) == digest(expected)

    def test_parquet_without_pyarrow_raises(self, fitted, tmp_path):
        try:
            import pyarrow  # noqa: F401
        except ImportError:
            with pytest.raises(RuntimeError, match="pyarrow"):
                fitted.sample_to(tmp_path / "t.parquet", n=10, rng=0)

    def test_null_sink_counts_only(self, fitted, tmp_path):
        report = fitted.sample_to(
            tmp_path / "t.devnull", n=500, format="null", chunk=200, rng=1
        )
        assert report.n_records == 500
        assert report.records_per_second > 0
        assert report.peak_rss_bytes > 0
        assert not (tmp_path / "t.devnull").exists()

    def test_report_as_dict(self, fitted, tmp_path):
        report = fitted.sample_to(tmp_path / "t.csv", n=100, rng=1)
        payload = report.as_dict()
        assert payload["n_records"] == 100 and payload["format"] == "csv"

    def test_format_inference_and_errors(self, fitted, tmp_path, ton):
        schema = ton.schema
        assert open_sink(tmp_path / "x.ndjson", schema).format == "jsonl"
        assert isinstance(open_sink(tmp_path / "x.bin", schema, "null"), NullSink)
        with pytest.raises(ValueError, match="cannot infer sink format"):
            open_sink(tmp_path / "x.bin", schema)
        with pytest.raises(ValueError, match="format must be one of"):
            open_sink(tmp_path / "x.csv", schema, format="xml")
        assert set(SINK_FORMATS) == {"csv", "jsonl", "parquet", "null"}

    def test_sink_rejects_schema_mismatch_and_closed_writes(self, fitted, tmp_path, ton):
        trace = fitted.sample(50, rng=1)
        sink = open_sink(tmp_path / "x.csv", trace.schema)
        sink.write(trace)
        mismatched = ton.head(5).without_column(ton.schema.names[0])
        with pytest.raises(ValueError, match="do not match sink"):
            sink.write(mismatched)
        sink.close()
        with pytest.raises(RuntimeError, match="closed"):
            sink.write(trace)


class TestSharedBackend:
    def test_registered(self):
        assert "shared" in BACKENDS
        assert isinstance(get_backend("shared"), SharedMemoryBackend)

    def test_shm_round_trip_large_and_small(self):
        rng = np.random.default_rng(0)
        big = rng.integers(0, 100, size=(300, 80), dtype=np.int32)  # > 64 KiB
        small = np.arange(5, dtype=np.int64)
        strings = np.array(["a", "bb"], dtype=object)
        payload = {"big": big, "nested": [small, (strings, 3.5)], "plain": "x"}
        out = import_result(export_result(payload))
        assert np.array_equal(out["big"], big)
        assert np.array_equal(out["nested"][0], small)
        assert list(out["nested"][1][0]) == ["a", "bb"]
        assert out["nested"][1][1] == 3.5 and out["plain"] == "x"

    def test_shard_result_round_trip(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 9, size=(400, 60), dtype=np.int32)
        shard = ShardResult(index=2, data=data, errors=[0.5, 0.4], n_records=400)
        out = import_result(export_result(shard))
        assert out.index == 2 and out.errors == [0.5, 0.4]
        assert np.array_equal(out.data, data)

    def test_fit_with_shared_executor_is_bit_identical(self, ton):
        def build(fit_engine):
            config = SynthesisConfig(epsilon=2.0)
            config.gum.iterations = 6
            config.fit_engine = fit_engine
            return NetDPSyn(config, rng=17).fit(ton)

        inline = build(None)
        shared = build(EngineConfig(backend="shared", max_workers=2))
        assert digest(shared.sample(300, rng=5)) == digest(inline.sample(300, rng=5))

    def test_persistent_pool_reuse_matches_fresh_pools(self, fitted):
        fresh = digest(fitted.sample(500, rng=21, shards=2, backend="shared"))
        with fitted.pool(backend="shared", max_workers=2):
            a = digest(fitted.sample(500, rng=21, shards=2, backend="shared"))
            b = digest(fitted.sample(500, rng=21, shards=2, backend="shared"))
        after = digest(fitted.sample(500, rng=21, shards=2, backend="shared"))
        assert fresh == a == b == after

    def test_pool_ignored_for_other_backends(self, fitted):
        with fitted.pool(backend="shared", max_workers=2):
            out = fitted.sample(300, rng=1, shards=2, backend="serial")
        assert fitted.gum_result.backend == "serial"
        assert out.n_records == 300

    def test_pool_is_default_backend_for_calls_under_it(self, fitted):
        # The documented usage omits per-call backend=; the open pool must
        # actually serve those calls, not sit idle.
        expected = digest(fitted.sample(400, rng=6, shards=2, backend="shared"))
        with fitted.pool(backend="shared", max_workers=2):
            got = digest(fitted.sample(400, rng=6, shards=2))
            assert fitted.gum_result.backend == "shared"
        assert got == expected

    def test_abandoned_stream_leaks_no_shm_segments(self, fitted):
        before = _shm_segments()
        stream = fitted.sample_stream(1200, chunk=100, rng=3, shards=4, backend="shared")
        next(stream)
        stream.close()
        assert _shm_segments() == before

    def test_failed_task_leaks_no_shm_segments(self):
        before = _shm_segments()
        runner = get_backend("shared", max_workers=2)
        with pytest.raises(RuntimeError, match="task boom"):
            runner.run_tasks(_failing_task, [(0,), (1,), (2,), (3,)])
        out = runner.run_tasks(_big_array_task, [(5,)])
        assert np.array_equal(out[0], _big_array_task(None, 5))
        assert _shm_segments() == before


class TestArenaDescriptorTransport:
    """Tables cross the shared backend as (segment, slots) descriptors."""

    def test_cross_process_table_round_trip(self):
        import gc

        from repro.data.arena import copy_stats

        before = _shm_segments()
        copy_stats.reset()
        runner = get_backend("shared", max_workers=2)
        out = runner.run_tasks(_table_task, [(7,), (8,)])
        digests = [table.content_digest() for table in out]
        assert digests == [
            _make_mixed_table(seed).content_digest() for seed in (7, 8)
        ]
        # Raw columns and dict codes crossed as one segment each: no column
        # ever traveled through pickle.
        assert copy_stats.snapshot()["pickled_array_bytes"] == 0
        del out
        gc.collect()
        assert _shm_segments() == before

    def test_export_import_round_trip_in_process(self):
        import gc

        from repro.engine.shm import ShmTableArenaRef, export_table, import_table

        before = _shm_segments()
        table = _make_mixed_table(11)
        ref = export_table(table)
        assert isinstance(ref, ShmTableArenaRef)
        assert ref.pickled_bytes == 0
        # Handoff pending: the segment exists and survives the export side.
        assert ref.name in _shm_segments() - before
        out = import_table(ref)
        assert out.content_digest() == table.content_digest()
        # Deferred unlink: views alias the mapping, so the segment lives
        # exactly as long as the imported table does.
        assert ref.name in _shm_segments()
        del out
        gc.collect()
        assert ref.name not in _shm_segments()

    def test_small_table_pickles_through_whole(self):
        from repro.engine.shm import export_table

        small = _make_mixed_table(3, n=20)
        assert export_table(small) is small

    def test_killed_worker_segments_are_swept(self):
        before = _shm_segments()
        runner = get_backend("shared", max_workers=1)
        with pytest.raises(Exception):  # noqa: B017 - BrokenProcessPool
            runner.run_tasks(_export_then_die, [(0,)])
        runner.close()
        assert _shm_segments() == before

    def test_sweep_spares_live_workers_segments(self):
        import os
        import subprocess
        from multiprocessing import shared_memory

        from repro.engine.shm import _unregister, sweep_orphan_segments

        me = os.getpid()
        proc = subprocess.Popen(["true"])
        proc.wait()  # reaped: its pid no longer exists
        names = {
            "live": f"nds{me:x}-{me:x}-aaa1",
            "dead": f"nds{me:x}-{proc.pid:x}-aaa1",
        }
        for name in names.values():
            seg = shared_memory.SharedMemory(name=name, create=True, size=1024)
            registered = getattr(seg, "_name", seg.name)
            seg.close()
            _unregister(registered)
        try:
            assert sweep_orphan_segments() >= 1
            segments = _shm_segments()
            assert names["live"] in segments
            assert names["dead"] not in segments
        finally:
            try:
                os.unlink(f"/dev/shm/{names['live']}")
            except FileNotFoundError:
                pass

    def test_segment_names_carry_boot_unique_token(self):
        import os

        from repro.engine.shm import _boot_token, _proc_start_token, _segment_name

        name = _segment_name(5)
        parts = name[len(f"nds{os.getppid():x}-") :].split("-")
        assert parts == [f"{os.getpid():x}", _boot_token(), "5"]
        # The token is the kernel's start time for this pid: a recycled pid
        # would get a different one, so names cannot collide across
        # incarnations (and the sweep can tell owner from impostor).
        assert _boot_token() == _proc_start_token(os.getpid())

    def test_sweep_unpins_segment_held_by_recycled_pid(self):
        """A live pid whose start-time token mismatches the segment name is a
        *recycled* pid, not the owner: the segment must be swept, not pinned.

        Before the token scheme, pid liveness alone spared these forever."""
        import os
        from multiprocessing import shared_memory

        from repro.engine.shm import (
            _proc_start_token,
            _unregister,
            sweep_orphan_segments,
        )

        me = os.getpid()
        token = _proc_start_token(me)
        names = {
            # Owner incarnation alive: token matches -> spared.
            "owner": f"nds{me:x}-{me:x}-{token}-1",
            # Pid alive but token from a previous boot/incarnation -> swept.
            "recycled": f"nds{me:x}-{me:x}-deadbeef-2",
        }
        for name in names.values():
            seg = shared_memory.SharedMemory(name=name, create=True, size=1024)
            registered = getattr(seg, "_name", seg.name)
            seg.close()
            _unregister(registered)
        try:
            assert sweep_orphan_segments() >= 1
            segments = _shm_segments()
            assert names["owner"] in segments
            assert names["recycled"] not in segments
        finally:
            try:
                os.unlink(f"/dev/shm/{names['owner']}")
            except FileNotFoundError:
                pass

    def test_sharded_shared_sampling_ships_zero_pickled_column_bytes(self, fitted):
        from repro.data.arena import copy_stats

        # 1200-row shards keep each decoded table's arena above SHM_MIN_BYTES,
        # so every shard must take the descriptor path.
        expected = digest(fitted.sample(4800, rng=19, shards=4, backend="serial"))
        copy_stats.reset()
        got = digest(fitted.sample(4800, rng=19, shards=4, backend="shared"))
        assert got == expected
        snap = copy_stats.snapshot()
        assert snap["pickled_array_bytes"] == 0
        assert snap["arena_bytes_peak"] > 0


class TestExecutePlanDecoded:
    def test_direct_call(self, fitted):
        out = execute_plan_decoded(
            fitted.plan(), EngineConfig(backend="thread", shards=2), n=400, rng=3
        )
        assert out.table.n_records == 400
        assert out.gum.data is None and out.gum.n_records == 400
        assert len(out.gum.shard_results) == 2

    def test_matches_sample(self, fitted):
        out = execute_plan_decoded(
            fitted.plan(), EngineConfig(shards=3), n=600, rng=8
        )
        assert digest(out.table) == digest(fitted.sample(600, rng=8, shards=3))


class TestChunkBufferProperty:
    """The pure re-slicing layer preserves rows, order, and chunk exactness."""

    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=8),
        chunk=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_chunks_are_exact_and_order_preserving(self, sizes, chunk):
        from repro.data.schema import FieldKind, FieldSpec, Schema
        from repro.engine.streaming import _ChunkBuffer

        schema = Schema((FieldSpec("x", FieldKind.NUMERIC),), "flow")
        total = sum(sizes)
        values = np.arange(total, dtype=np.int64)
        parts, start = [], 0
        for size in sizes:
            parts.append(TraceTable(schema, {"x": values[start : start + size]}))
            start += size

        buffer = _ChunkBuffer()
        out = []
        for part in parts:
            buffer.push(part)
            while buffer.rows >= chunk:
                out.append(buffer.pop(chunk))
        while buffer.rows:
            out.append(buffer.pop(chunk))

        assert all(c.n_records == chunk for c in out[:-1])
        assert buffer.rows == 0
        merged = (
            np.concatenate([c.column("x") for c in out])
            if out
            else np.zeros(0, dtype=np.int64)
        )
        assert np.array_equal(merged, values)


class TestMergeErrors:
    @staticmethod
    def reference(results, sizes):
        longest = max((len(r.errors) for r in results), default=0)
        if longest == 0:
            return []
        total = float(sum(sizes))
        merged = []
        for t in range(longest):
            num = 0.0
            for result, size in zip(results, sizes):
                if not result.errors:
                    continue
                err = result.errors[min(t, len(result.errors) - 1)]
                num += err * size
            merged.append(num / total if total > 0 else 0.0)
        return merged

    def _shards(self, curves):
        return [ShardResult(index=i, data=None, errors=c) for i, c in enumerate(curves)]

    def test_matches_reference_on_ragged_curves(self):
        rng = np.random.default_rng(42)
        for _ in range(20):
            k = int(rng.integers(1, 6))
            curves = [list(rng.random(int(rng.integers(0, 7)))) for _ in range(k)]
            sizes = [int(rng.integers(0, 500)) for _ in range(k)]
            results = self._shards(curves)
            assert np.allclose(
                _merge_errors(results, sizes), self.reference(results, sizes)
            )

    def test_empty_and_zero_weight_edges(self):
        assert _merge_errors(self._shards([[], []]), [10, 20]) == []
        assert _merge_errors(self._shards([[1.0], []]), [0, 0]) == [0.0]
        out = _merge_errors(self._shards([[0.4, 0.2], [0.6]]), [100, 100])
        assert np.allclose(out, [0.5, 0.4])


class TestPeakRss:
    def test_positive_and_monotonic(self):
        first = peak_rss_bytes()
        assert first > 0
        assert peak_rss_bytes() >= first
