"""Legacy setup shim: enables `pip install -e .` without the wheel package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "NetDPSyn reproduction: differentially private synthesis of network "
        "traces (IMC 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
