"""Legacy setup shim: project metadata lives in pyproject.toml."""

from setuptools import setup

setup()
