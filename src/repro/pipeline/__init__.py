"""The staged fit pipeline: the private phase as explicit, instrumented stages.

``NetDPSyn.fit()`` runs a :class:`FitPipeline` — Binning → Selection →
Combine → Publish → Consistency — threading one
:class:`~repro.pipeline.context.FitContext` through the
:class:`~repro.pipeline.stages.FitStage` objects instead of mutating
synthesizer attributes inline.  The pipeline times every stage
(:class:`~repro.pipeline.context.FitReport` surfaces the breakdown as
``synth.fit_report``).

Reproducibility contract: exact-count work (pair marginals for InDif, the
published contingency tables) is deterministic and may run on any
:class:`~repro.engine.backends.Backend` executor; every Gaussian noise draw
happens serially on the single fit stream in a fixed order.  Serial and
parallel fits are therefore bit-identical — pinned by the golden digest in
``tests/test_pipeline.py`` and re-checked by ``benchmarks/bench_fit_scaling``.
See ``docs/pipeline.md``.
"""

from repro.pipeline.context import FitContext, FitReport
from repro.pipeline.runner import FitPipeline
from repro.pipeline.stages import (
    BinningStage,
    CombineStage,
    ConsistencyStage,
    FitStage,
    PublishStage,
    SelectionStage,
    default_stages,
    resolve_key_attr,
)

__all__ = [
    "BinningStage",
    "CombineStage",
    "ConsistencyStage",
    "FitContext",
    "FitPipeline",
    "FitReport",
    "FitStage",
    "PublishStage",
    "SelectionStage",
    "default_stages",
    "resolve_key_attr",
]
