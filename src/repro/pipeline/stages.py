"""The five fit stages: Binning → Selection → Combine → Publish → Consistency.

Each stage implements the :class:`FitStage` protocol — a ``name`` and a
``run(ctx)`` that reads its inputs from and writes its outputs to the shared
:class:`~repro.pipeline.context.FitContext`.  Together they are paper
Algorithm 1 steps 1–8; everything after Publish is post-processing.

Budget is spent exactly once per private stage, on entry, through the
context's :class:`~repro.dp.accountant.BudgetLedger` — so the ledger's audit
log doubles as a record of the stage order (0.1 binning / 0.1 selection /
0.8 publication by default).
"""

from __future__ import annotations

from itertools import combinations
from typing import Protocol, runtime_checkable

import numpy as np

from repro.binning.encoder import DatasetEncoder
from repro.consistency.engine import postprocess_marginals
from repro.consistency.rules import build_default_rules
from repro.data.schema import FieldKind
from repro.marginals.combine import combine_attr_sets, cover_all_attributes
from repro.marginals.indif import noisy_indif_scores
from repro.marginals.publish import publish_marginals
from repro.marginals.selection import select_pairs
from repro.pipeline.context import FitContext


@runtime_checkable
class FitStage(Protocol):
    """One step of the private phase: reads and writes a :class:`FitContext`."""

    name: str

    def run(self, ctx: FitContext) -> None: ...


class BinningStage:
    """Steps 1–4: type-dependent codecs, tsdiff, noisy 1-ways, bin merging."""

    name = "binning"

    def run(self, ctx: FitContext) -> None:
        rho = ctx.ledger.spend(
            ctx.stage_budgets["binning"], "frequency-dependent binning"
        )
        ctx.encoder = DatasetEncoder(ctx.config.encoder).fit(ctx.table, rho, ctx.rng)
        ctx.encoded = ctx.encoder.encode(ctx.table)
        ctx.template = ctx.encoded.replace_data(
            np.empty((0, len(ctx.encoded.attrs)), dtype=np.int32)
        )


class SelectionStage:
    """Step 5: noisy InDif over all pairs, then greedy DenseMarg selection."""

    name = "selection"

    def run(self, ctx: FitContext) -> None:
        rho = ctx.ledger.spend(ctx.stage_budgets["selection"], "marginal selection")
        ctx.pairs = list(combinations(ctx.encoded.attrs, 2))
        shared = ctx.exact_payload() if ctx.executor is not None else None
        ctx.indif = noisy_indif_scores(
            ctx.encoded, rho, ctx.rng, pairs=ctx.pairs,
            executor=ctx.executor, shared=shared,
        )
        cells = {pair: ctx.encoded.domain.cells(pair) for pair in ctx.pairs}
        ctx.selection = select_pairs(
            ctx.indif, cells, ctx.stage_budgets["publish"],
            max_pairs=ctx.config.max_pairs,
        )


class CombineStage:
    """Step 6: merge small overlapping marginals; cover every attribute."""

    name = "combine"

    def run(self, ctx: FitContext) -> None:
        attr_sets = combine_attr_sets(
            ctx.selection.pairs,
            ctx.encoded.domain,
            max_cells=ctx.config.max_combined_cells,
        )
        ctx.attr_sets = cover_all_attributes(attr_sets, ctx.encoded.domain)


class PublishStage:
    """Step 7: noisy publication of the combined marginals (0.8·rho)."""

    name = "publish"

    def run(self, ctx: FitContext) -> None:
        rho = ctx.ledger.spend(ctx.stage_budgets["publish"], "marginal publication")
        shared = ctx.exact_payload() if ctx.executor is not None else None
        ctx.raw_published = publish_marginals(
            ctx.encoded,
            ctx.attr_sets,
            rho,
            ctx.rng,
            weighted=ctx.config.weighted_allocation,
            executor=ctx.executor,
            shared=shared,
        )


class ConsistencyStage:
    """Step 8: consistency + protocol rules (free post-processing)."""

    name = "consistency"

    def run(self, ctx: FitContext) -> None:
        cfg = ctx.config
        rules = cfg.rules if cfg.rules is not None else build_default_rules(
            ctx.encoder.schema, tau=cfg.tau
        )
        ctx.rules = rules
        ctx.published = postprocess_marginals(
            ctx.raw_published, ctx.encoder.codecs, rules, rounds=cfg.consistency_rounds
        )
        ctx.key_attr = resolve_key_attr(cfg, ctx.encoder.schema)


def resolve_key_attr(config, schema) -> str:
    """The GUMMI anchor: configured key, else the label, else a category."""
    if config.key_attr is not None:
        return config.key_attr
    label = schema.label_field
    if label is not None:
        return label.name
    for spec in schema:
        if spec.kind is FieldKind.CATEGORICAL:
            return spec.name
    return schema.names[0]


def default_stages() -> tuple:
    """The paper's stage order; ``FitPipeline`` runs these unless overridden."""
    return (
        BinningStage(),
        SelectionStage(),
        CombineStage(),
        PublishStage(),
        ConsistencyStage(),
    )
