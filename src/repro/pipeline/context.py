"""FitContext and FitReport: explicit state threaded through the fit stages.

The private phase used to mutate ``NetDPSyn`` attributes inline; the staged
pipeline instead passes one :class:`FitContext` object from stage to stage so
every input and output of a stage is visible in one place — and so stages can
be tested, reordered, or replaced without touching the synthesizer class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from repro.core.config import SynthesisConfig
    from repro.data.table import TraceTable
    from repro.dp.accountant import BudgetLedger
    from repro.engine.backends import Backend


@dataclass
class FitContext:
    """All state of one ``fit()`` run, threaded through the stages.

    ``rng`` is **the** fit noise stream: every Gaussian draw of the private
    phase happens on it, serially, in a fixed order (attribute order during
    binning, pair order during selection, publication order during publish).
    Exact-count work may run on ``executor`` because it is deterministic —
    that split is the pipeline's reproducibility contract.
    """

    table: "TraceTable"
    config: "SynthesisConfig"
    rng: np.random.Generator
    ledger: "BudgetLedger"
    #: Task executor for exact-count fan-out; ``None`` = inline reference path.
    executor: "Backend | None" = None
    #: Per-stage zCDP budgets (:func:`repro.dp.allocation.split_budget`).
    stage_budgets: dict = field(default_factory=dict)
    #: Per-stage wall-clock seconds, filled by :class:`FitPipeline`.
    timings: dict = field(default_factory=dict)

    # Stage outputs (filled in pipeline order).
    encoder: Any = None
    encoded: Any = None
    template: Any = None
    pairs: list | None = None
    indif: dict | None = None
    selection: Any = None
    attr_sets: list | None = None
    raw_published: list | None = None
    published: list | None = None
    rules: list | None = None
    key_attr: str | None = None
    _exact_payload: Any = None

    @property
    def original_schema(self):
        """The raw input schema synthesized records are restored to."""
        return self.table.schema

    def exact_payload(self):
        """The exact-count worker payload, built once per fit.

        On first use with a live executor this also :meth:`opens
        <repro.engine.backends.Backend.open>` a persistent worker pool bound
        to the payload, so the selection and publish stages share one worker
        startup; :class:`~repro.pipeline.runner.FitPipeline` closes it.
        """
        from repro.marginals.compute import exact_count_payload

        if self._exact_payload is None:
            self._exact_payload = exact_count_payload(self.encoded)
            if self.executor is not None:
                self.executor.open(self._exact_payload)
        return self._exact_payload


@dataclass(frozen=True)
class FitReport:
    """Per-stage instrumentation of one ``fit()`` run (pure observability)."""

    #: Stage name -> wall-clock seconds, in execution order.
    stage_seconds: dict
    #: End-to-end ``fit()`` wall-clock seconds (>= sum of the stages).
    total_seconds: float
    #: Executor backend name for exact-count work; ``None`` = inline serial.
    backend: str | None
    #: Executor worker count; ``None`` = inline serial.
    workers: int | None
    n_records: int
    n_pairs: int
    n_marginals: int

    def as_dict(self) -> dict:
        """Plain-dict rendering (JSON-friendly, used by benchmarks)."""
        return {
            "stage_seconds": dict(self.stage_seconds),
            "total_seconds": self.total_seconds,
            "backend": self.backend,
            "workers": self.workers,
            "n_records": self.n_records,
            "n_pairs": self.n_pairs,
            "n_marginals": self.n_marginals,
        }

    def lines(self) -> list[str]:
        """Human-readable per-stage breakdown (experiments verbose mode)."""
        where = "inline" if self.backend is None else f"{self.backend}x{self.workers}"
        out = [
            f"fit: {self.total_seconds:.3f}s total on {where} "
            f"({self.n_records} records, {self.n_pairs} pairs, "
            f"{self.n_marginals} marginals)"
        ]
        for name, seconds in self.stage_seconds.items():
            out.append(f"  {name:<12s} {seconds:8.3f}s")
        return out
