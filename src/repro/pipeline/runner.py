"""FitPipeline: run the fit stages in order, timing each one."""

from __future__ import annotations

from repro.pipeline.context import FitContext
from repro.pipeline.stages import default_stages
from repro.utils.timer import Timer


class FitPipeline:
    """Runs :class:`~repro.pipeline.stages.FitStage` objects over a context.

    Stages execute strictly in order (later stages read earlier outputs from
    the context); each stage's wall-clock seconds land in ``ctx.timings``
    under the stage's ``name``.  Custom stage lists let experiments swap or
    wrap individual stages without forking the synthesizer.
    """

    def __init__(self, stages=None) -> None:
        self.stages = tuple(stages) if stages is not None else default_stages()
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")

    def run(self, ctx: FitContext) -> FitContext:
        """Execute every stage; returns the same (mutated) context.

        Any persistent worker pool the stages opened on ``ctx.executor``
        (see :meth:`FitContext.exact_payload`) is closed on the way out.
        """
        try:
            for stage in self.stages:
                timer = Timer()
                timer.start()
                stage.run(ctx)
                ctx.timings[stage.name] = timer.stop()
        finally:
            if ctx.executor is not None:
                ctx.executor.close()
        return ctx
