"""CryptoPAn-style prefix-preserving IP anonymization (Xu et al., 2002).

The conventional redaction approach the paper contrasts with synthesis
(§2.1): addresses are rewritten so that two addresses sharing a k-bit prefix
still share a k-bit prefix afterwards.  Each output bit is the input bit
XORed with a keyed PRF of the preceding prefix — we use SHA-256 as the PRF
instead of AES, which preserves the structural property exactly.

Included to support the comparison example and to document why the paper
moves beyond it: prefix structure itself leaks institution-level activity
(Imana et al., cited in §2.1).
"""

from __future__ import annotations

import hashlib

import numpy as np


class CryptoPan:
    """Deterministic, keyed, prefix-preserving IPv4 anonymizer."""

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self._key = bytes(key)
        self._cache: dict[int, int] = {}

    def _prf_bit(self, prefix: int, length: int) -> int:
        """One pseudorandom bit from the (prefix, length) pair."""
        digest = hashlib.sha256(
            self._key + length.to_bytes(1, "big") + prefix.to_bytes(4, "big")
        ).digest()
        return digest[0] & 1

    def anonymize_int(self, address: int) -> int:
        """Anonymize one integer IPv4 address."""
        if not 0 <= address <= 2**32 - 1:
            raise ValueError(f"not an IPv4 integer: {address}")
        cached = self._cache.get(address)
        if cached is not None:
            return cached
        result = 0
        for i in range(32):
            shift = 31 - i
            prefix = (address >> (shift + 1)) << (shift + 1) if i > 0 else 0
            flip = self._prf_bit(prefix >> (shift + 1) if i > 0 else 0, i)
            bit = (address >> shift) & 1
            result |= (bit ^ flip) << shift
        self._cache[address] = result
        return result

    def anonymize(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized anonymization of an integer address array."""
        flat = np.asarray(addresses, dtype=np.int64).ravel()
        out = np.array([self.anonymize_int(int(a)) for a in flat], dtype=np.int64)
        return out.reshape(np.asarray(addresses).shape)
