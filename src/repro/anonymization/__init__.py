"""Classical trace anonymization (the §2.1 baseline NetDPSyn improves upon)."""

from repro.anonymization.cryptopan import CryptoPan

__all__ = ["CryptoPan"]
