"""Marginal tables: computation, selection (DenseMarg), and DP publication."""

from repro.marginals.combine import combine_attr_sets, cover_all_attributes
from repro.marginals.compute import cell_codes, compute_marginal, marginal_counts
from repro.marginals.indif import (
    exact_indif_scores,
    independent_difference,
    noisy_indif_scores,
)
from repro.marginals.marginal import Marginal
from repro.marginals.publish import exact_marginals, publish_marginals
from repro.marginals.selection import SelectionResult, select_pairs

__all__ = [
    "Marginal",
    "SelectionResult",
    "cell_codes",
    "combine_attr_sets",
    "compute_marginal",
    "cover_all_attributes",
    "exact_indif_scores",
    "exact_marginals",
    "independent_difference",
    "marginal_counts",
    "noisy_indif_scores",
    "publish_marginals",
    "select_pairs",
]
