"""Noisy marginal publication with weighted budget allocation (paper §3.3)."""

from __future__ import annotations

import numpy as np

from repro.binning.encoder import EncodedDataset
from repro.dp.allocation import uniform_marginal_budgets, weighted_marginal_budgets
from repro.dp.mechanisms import gaussian_mechanism, gaussian_sigma
from repro.marginals.compute import compute_marginal
from repro.marginals.marginal import Marginal
from repro.utils.rng import ensure_rng

#: One record contributes one count to a marginal, so the L2 sensitivity of
#: the full count vector under add/remove-one-record is 1 (paper Theorem 6
#: reference to PrivSyn).
MARGINAL_SENSITIVITY = 1.0


def publish_marginals(
    encoded: EncodedDataset,
    attr_sets,
    rho: float | None,
    rng: np.random.Generator | int | None = None,
    weighted: bool = True,
) -> list:
    """Compute and publish marginals over each attribute set.

    ``rho`` is shared across all marginals — weighted by ``c^{2/3}`` by
    default (PrivSyn's optimal split), or uniformly.  ``rho=None`` publishes
    exact marginals (ablation/testing).
    """
    rng = ensure_rng(rng)
    attr_sets = [tuple(s) for s in attr_sets]
    if not attr_sets:
        return []
    cells = [encoded.domain.cells(s) for s in attr_sets]
    if rho is None:
        budgets = [None] * len(attr_sets)
    elif weighted:
        budgets = weighted_marginal_budgets(rho, cells)
    else:
        budgets = uniform_marginal_budgets(rho, len(attr_sets))

    published = []
    for attrs, rho_i in zip(attr_sets, budgets):
        exact = compute_marginal(encoded, attrs)
        if rho_i is None:
            published.append(exact)
            continue
        noisy = gaussian_mechanism(exact.counts, MARGINAL_SENSITIVITY, rho_i, rng)
        sigma = gaussian_sigma(MARGINAL_SENSITIVITY, rho_i)
        published.append(Marginal(attrs, noisy, rho=float(rho_i), sigma=sigma))
    return published
