"""Noisy marginal publication with weighted budget allocation (paper §3.3).

The exact contingency tables are deterministic, so they may be computed
serially or fanned out across an :class:`~repro.engine.backends.Backend`
executor (same cell-code kernel as :mod:`repro.marginals.indif`); the
Gaussian noise is then added serially on the caller's generator in the fixed
``attr_sets`` order, so published output is bit-identical regardless of how
the exact counts were produced.
"""

from __future__ import annotations

import numpy as np

from repro.binning.encoder import EncodedDataset
from repro.dp.allocation import uniform_marginal_budgets, weighted_marginal_budgets
from repro.dp.mechanisms import gaussian_mechanism, gaussian_sigma
from repro.engine.backends import Backend, scatter_map
from repro.marginals.compute import compute_marginal, exact_count_payload
from repro.marginals.marginal import Marginal
from repro.utils.rng import ensure_rng

#: One record contributes one count to a marginal, so the L2 sensitivity of
#: the full count vector under add/remove-one-record is 1 (paper Theorem 6
#: reference to PrivSyn).
MARGINAL_SENSITIVITY = 1.0


def _exact_counts_chunk(shared, idx_sets: list) -> list:
    """Executor task: exact counts for a chunk of attribute-index sets.

    ``shared`` is the :func:`~repro.marginals.compute.exact_count_payload`
    ``(data, sizes)``; each set's rows are flattened to cell codes by
    successive ``codes * size + column`` folds (identical integers to
    ``ravel_multi_index``) and histogrammed with ``bincount``.  Codes stay
    int32 while the folded domain fits (combined marginals are capped at a
    few thousand cells, so they always do in practice).
    """
    data, sizes = shared
    out = []
    for idx_set in idx_sets:
        n_cells = 1
        for j in idx_set:
            n_cells *= int(sizes[j])
        codes = data[:, idx_set[0]]
        if n_cells >= 2**31:
            codes = codes.astype(np.int64)
        for j in idx_set[1:]:
            codes = codes * int(sizes[j]) + data[:, j]
        counts = np.bincount(codes, minlength=n_cells).astype(np.float64)
        out.append(counts)
    return out


def exact_marginals(
    encoded: EncodedDataset,
    attr_sets,
    executor: Backend | None = None,
    shared: tuple | None = None,
) -> list:
    """Exact :class:`Marginal` per attribute set, in ``attr_sets`` order.

    ``executor=None`` is the reference :func:`compute_marginal` loop; a
    backend computes the same counts via the batched cell-code kernel.
    ``shared`` is an optional prebuilt
    :func:`~repro.marginals.compute.exact_count_payload` (pass the same
    object across calls to reuse an opened worker pool).
    """
    attr_sets = [tuple(s) for s in attr_sets]
    if executor is None:
        return [compute_marginal(encoded, attrs) for attrs in attr_sets]
    if shared is None:
        shared = exact_count_payload(encoded)
    index = {name: j for j, name in enumerate(encoded.attrs)}
    idx_sets = [tuple(index[a] for a in attrs) for attrs in attr_sets]
    flats = scatter_map(executor, _exact_counts_chunk, idx_sets, shared=shared)
    return [
        Marginal(attrs, flat.reshape(encoded.domain.shape(attrs)))
        for attrs, flat in zip(attr_sets, flats)
    ]


def publish_marginals(
    encoded: EncodedDataset,
    attr_sets,
    rho: float | None,
    rng: np.random.Generator | int | None = None,
    weighted: bool = True,
    executor: Backend | None = None,
    shared: tuple | None = None,
) -> list:
    """Compute and publish marginals over each attribute set.

    ``rho`` is shared across all marginals — weighted by ``c^{2/3}`` by
    default (PrivSyn's optimal split), or uniformly.  ``rho=None`` publishes
    exact marginals (ablation/testing).  Noise is drawn per marginal in
    ``attr_sets`` order on the single ``rng`` stream whatever the executor.
    """
    rng = ensure_rng(rng)
    attr_sets = [tuple(s) for s in attr_sets]
    if not attr_sets:
        return []
    cells = [encoded.domain.cells(s) for s in attr_sets]
    if rho is None:
        budgets = [None] * len(attr_sets)
    elif weighted:
        budgets = weighted_marginal_budgets(rho, cells)
    else:
        budgets = uniform_marginal_budgets(rho, len(attr_sets))

    exacts = exact_marginals(encoded, attr_sets, executor=executor, shared=shared)
    published = []
    for exact, rho_i in zip(exacts, budgets):
        if rho_i is None:
            published.append(exact)
            continue
        noisy = gaussian_mechanism(exact.counts, MARGINAL_SENSITIVITY, rho_i, rng)
        sigma = gaussian_sigma(MARGINAL_SENSITIVITY, rho_i)
        published.append(Marginal(exact.attrs, noisy, rho=float(rho_i), sigma=sigma))
    return published
