"""InDif: the pairwise dependency measure behind DenseMarg (PrivSyn §4.1).

``InDif(a, b) = || M_ab - M_a ⊗ M_b / n ||_1`` — the L1 gap between the
observed 2-way marginal and the product of its 1-way marginals.  Independent
attributes score ~0; strongly correlated attributes score up to 2n.  One
record changes InDif by at most 4, so noisy publication uses the Gaussian
mechanism with sensitivity 4.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.binning.encoder import EncodedDataset
from repro.dp.mechanisms import gaussian_mechanism
from repro.marginals.compute import compute_marginal
from repro.utils.rng import ensure_rng

INDIF_SENSITIVITY = 4.0


def independent_difference(encoded: EncodedDataset, a: str, b: str) -> float:
    """Exact InDif between attributes ``a`` and ``b``."""
    joint = compute_marginal(encoded, (a, b)).counts
    n = joint.sum()
    if n == 0:
        return 0.0
    row = joint.sum(axis=1, keepdims=True)
    col = joint.sum(axis=0, keepdims=True)
    independent = row * col / n
    return float(np.abs(joint - independent).sum())


def noisy_indif_scores(
    encoded: EncodedDataset,
    rho: float,
    rng: np.random.Generator | int | None = None,
    pairs: list | None = None,
) -> dict:
    """Publish noisy InDif for every attribute pair under budget ``rho``.

    The budget is split uniformly across the ``d(d-1)/2`` scores; each gets
    Gaussian noise with sensitivity 4.  ``rho=None`` (no DP) returns exact
    scores — ablation use only.
    """
    rng = ensure_rng(rng)
    if pairs is None:
        pairs = list(combinations(encoded.attrs, 2))
    if not pairs:
        return {}
    scores = {}
    rho_each = None if rho is None else rho / len(pairs)
    for a, b in pairs:
        exact = independent_difference(encoded, a, b)
        if rho_each is None:
            scores[(a, b)] = exact
        else:
            noisy = gaussian_mechanism(
                np.array([exact]), INDIF_SENSITIVITY, rho_each, rng
            )[0]
            scores[(a, b)] = float(max(noisy, 0.0))
    return scores
