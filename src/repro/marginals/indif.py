"""InDif: the pairwise dependency measure behind DenseMarg (PrivSyn §4.1).

``InDif(a, b) = || M_ab - M_a ⊗ M_b / n ||_1`` — the L1 gap between the
observed 2-way marginal and the product of its 1-way marginals.  Independent
attributes score ~0; strongly correlated attributes score up to 2n.  One
record changes InDif by at most 4, so noisy publication uses the Gaussian
mechanism with sensitivity 4.

Reproducibility contract (shared with :mod:`repro.marginals.publish`): the
exact pair marginals are deterministic, so they may be computed serially or
fanned out across an :class:`~repro.engine.backends.Backend` executor — the
executor path builds each pair marginal from per-attribute cell codes
(``codes_a * |b| + codes_b`` + bincount), which yields the same integer
counts as :func:`~repro.marginals.compute.compute_marginal` without a
per-pair column-projection copy.  All Gaussian noise is then drawn in **one
vectorized call on the caller's generator in the fixed pair order** — NumPy
``Generator.normal`` fills element-by-element, so this consumes the stream
exactly like the historical one-draw-per-pair loop and the published scores
are bit-identical to it (pinned by ``tests/test_pipeline.py``).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.binning.encoder import EncodedDataset
from repro.dp.mechanisms import gaussian_mechanism
from repro.engine.backends import Backend, scatter_map
from repro.marginals.compute import compute_marginal, exact_count_payload
from repro.utils.rng import ensure_rng

INDIF_SENSITIVITY = 4.0


def _indif_from_joint(joint: np.ndarray) -> float:
    """InDif of a 2-way count table against its independent approximation."""
    n = joint.sum()
    if n == 0:
        return 0.0
    row = joint.sum(axis=1, keepdims=True)
    col = joint.sum(axis=0, keepdims=True)
    return float(np.abs(joint - row * col / n).sum())


def independent_difference(encoded: EncodedDataset, a: str, b: str) -> float:
    """Exact InDif between attributes ``a`` and ``b`` (reference path)."""
    return _indif_from_joint(compute_marginal(encoded, (a, b)).counts)


def _exact_indif_chunk(shared, pairs: list) -> list:
    """Executor task: exact InDif for a chunk of attribute-index pairs.

    ``shared`` is the :func:`~repro.marginals.compute.exact_count_payload`
    ``(data, sizes)``.  Pair codes stay in the data's native int32 when the
    joint domain fits (it always does for 2-way marginals of binned
    attributes), halving the memory traffic of the fold.
    """
    data, sizes = shared
    out = []
    for ia, ib in pairs:
        sa, sb = int(sizes[ia]), int(sizes[ib])
        col_a, col_b = data[:, ia], data[:, ib]
        if sa * sb >= 2**31:
            col_a = col_a.astype(np.int64)
        codes = col_a * sb + col_b
        joint = np.bincount(codes, minlength=sa * sb).astype(np.float64)
        out.append(_indif_from_joint(joint.reshape(sa, sb)))
    return out


def exact_indif_scores(
    encoded: EncodedDataset,
    pairs: list,
    executor: Backend | None = None,
    shared: tuple | None = None,
) -> dict:
    """Exact InDif for every pair; executor choice cannot change the values.

    ``executor=None`` runs the reference per-pair loop in-process; a backend
    runs the batched cell-code kernel across its workers.  Both return the
    same floats because exact counts are deterministic integers.  ``shared``
    is an optional prebuilt :func:`~repro.marginals.compute.exact_count_payload`
    (pass the same object across calls to reuse an opened worker pool).
    """
    if executor is None:
        return {(a, b): independent_difference(encoded, a, b) for a, b in pairs}
    if shared is None:
        shared = exact_count_payload(encoded)
    index = {name: j for j, name in enumerate(encoded.attrs)}
    pair_idx = [(index[a], index[b]) for a, b in pairs]
    values = scatter_map(executor, _exact_indif_chunk, pair_idx, shared=shared)
    return {pair: value for pair, value in zip(pairs, values)}


def noisy_indif_scores(
    encoded: EncodedDataset,
    rho: float,
    rng: np.random.Generator | int | None = None,
    pairs: list | None = None,
    executor: Backend | None = None,
    shared: tuple | None = None,
) -> dict:
    """Publish noisy InDif for every attribute pair under budget ``rho``.

    The budget is split uniformly across the ``d(d-1)/2`` scores; the noise
    for all pairs is one vectorized Gaussian draw in pair order (see the
    module docstring for why that is stream-identical to per-pair draws).
    ``rho=None`` (no DP) returns exact scores — ablation use only.
    """
    rng = ensure_rng(rng)
    if pairs is None:
        pairs = list(combinations(encoded.attrs, 2))
    if not pairs:
        return {}
    exact = exact_indif_scores(encoded, pairs, executor=executor, shared=shared)
    if rho is None:
        return {pair: exact[pair] for pair in pairs}
    rho_each = rho / len(pairs)
    values = np.array([exact[pair] for pair in pairs])
    noisy = gaussian_mechanism(values, INDIF_SENSITIVITY, rho_each, rng)
    return {pair: float(max(value, 0.0)) for pair, value in zip(pairs, noisy)}
