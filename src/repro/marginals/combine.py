"""Combining overlapping small marginals into multi-way tables (paper §3.3).

DenseMarg merges selected 2-way marginals that share attributes when the
combined table stays small: one k-way table carries strictly more correlation
information than its 2-way projections at the same publication budget.  We
greedily merge the pair of attribute sets with the smallest combined cell
count until no merge fits under ``max_cells``.
"""

from __future__ import annotations

from repro.data.domain import Domain


def combine_attr_sets(pairs, domain: Domain, max_cells: int = 10_000) -> list:
    """Merge overlapping attribute sets while the union stays under ``max_cells``.

    Parameters
    ----------
    pairs:
        Selected 2-way attribute pairs (tuples).
    domain:
        Encoded domain (for cell counts).
    max_cells:
        Upper bound on the cell count of a combined marginal.

    Returns
    -------
    list of attribute tuples (each ordered by domain attribute order),
    deduplicated, no set a subset of another.
    """
    sets = [frozenset(p) for p in pairs]
    changed = True
    while changed:
        changed = False
        best = None  # (cells, i, j)
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                if not sets[i] & sets[j]:
                    continue
                union = sets[i] | sets[j]
                cells = domain.cells(union)
                if cells <= max_cells and (best is None or cells < best[0]):
                    best = (cells, i, j)
        if best is not None:
            _, i, j = best
            union = sets[i] | sets[j]
            sets = [s for k, s in enumerate(sets) if k not in (i, j)]
            sets.append(union)
            changed = True

    # Drop subsets and duplicates.  Dedupe preserves list order (the merge
    # history is deterministic) and the size sort is stable, so the result
    # never depends on set-iteration order — i.e. on per-process hash
    # randomization, which used to reorder ties and silently change which
    # noise draw each published marginal received from run to run.
    seen: set = set()
    deduped: list = []
    for s in sets:
        if s not in seen:
            seen.add(s)
            deduped.append(s)
    unique: list = []
    for s in sorted(deduped, key=len, reverse=True):
        if not any(s < u for u in unique):
            unique.append(s)

    order = {name: k for k, name in enumerate(domain.names)}
    return [tuple(sorted(s, key=order.__getitem__)) for s in unique]


def cover_all_attributes(attr_sets: list, domain: Domain) -> list:
    """Append 1-way marginals for attributes not covered by any set.

    Every attribute must appear in at least one published marginal or the
    synthesizer would have no signal for it.
    """
    covered = set()
    for s in attr_sets:
        covered.update(s)
    out = list(attr_sets)
    for name in domain.names:
        if name not in covered:
            out.append((name,))
    return out
