"""The Marginal object: a (possibly noisy) contingency table over attributes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Marginal:
    """A contingency table over an ordered attribute tuple.

    Parameters
    ----------
    attrs:
        Attribute names, one per axis of ``counts``.
    counts:
        Cell counts, shape = per-attribute domain sizes.  Noisy marginals may
        hold negative/fractional values until post-processed.
    rho:
        zCDP budget spent publishing this marginal (``None`` = exact).
    sigma:
        Gaussian noise scale used at publication (``None`` = exact); the
        weighted-average consistency step weights marginals by ``1/sigma^2``.
    """

    attrs: tuple
    counts: np.ndarray
    rho: float | None = None
    sigma: float | None = None

    def __post_init__(self) -> None:
        self.attrs = tuple(self.attrs)
        self.counts = np.asarray(self.counts, dtype=np.float64)
        if self.counts.ndim != len(self.attrs):
            raise ValueError(
                f"counts ndim {self.counts.ndim} != number of attrs {len(self.attrs)}"
            )

    # ------------------------------------------------------------- properties
    @property
    def shape(self) -> tuple:
        return self.counts.shape

    @property
    def n_cells(self) -> int:
        return int(self.counts.size)

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    @property
    def is_noisy(self) -> bool:
        return self.rho is not None

    # ------------------------------------------------------------- operations
    def flat(self) -> np.ndarray:
        """1-D view of the counts (shared memory)."""
        return self.counts.reshape(-1)

    def normalized(self) -> np.ndarray:
        """Counts rescaled to a probability table (requires positive total)."""
        total = self.total
        if total <= 0:
            raise ValueError("cannot normalize a marginal with non-positive total")
        return self.counts / total

    def project(self, attrs) -> "Marginal":
        """Marginalize out all attributes not in ``attrs`` (order preserved)."""
        attrs = tuple(attrs)
        missing = [a for a in attrs if a not in self.attrs]
        if missing:
            raise KeyError(f"attributes not in marginal: {missing}")
        keep_axes = [self.attrs.index(a) for a in attrs]
        drop_axes = tuple(i for i in range(len(self.attrs)) if i not in keep_axes)
        counts = self.counts.sum(axis=drop_axes) if drop_axes else self.counts
        # Reorder the kept axes to match the requested order.
        current = [a for a in self.attrs if a in attrs]
        perm = [current.index(a) for a in attrs]
        counts = np.transpose(counts, perm)
        return Marginal(attrs, counts.copy(), rho=self.rho, sigma=self.sigma)

    def scale_to(self, total: float) -> "Marginal":
        """Rescale counts to the given total (used to match record counts)."""
        current = self.total
        if current <= 0:
            raise ValueError("cannot rescale a marginal with non-positive total")
        return Marginal(self.attrs, self.counts * (total / current), rho=self.rho, sigma=self.sigma)

    def copy(self) -> "Marginal":
        return Marginal(self.attrs, self.counts.copy(), rho=self.rho, sigma=self.sigma)

    def l1_distance(self, other: "Marginal") -> float:
        """Total-variation style L1 distance between two aligned marginals."""
        if other.attrs != self.attrs or other.shape != self.shape:
            raise ValueError("marginals are not aligned")
        return float(np.abs(self.counts - other.counts).sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "noisy" if self.is_noisy else "exact"
        return f"Marginal({'x'.join(self.attrs)}, cells={self.n_cells}, {tag})"
