"""DenseMarg marginal selection (paper Eq. 2, PrivSyn Algorithm 1).

Selecting a 2-way marginal trades its *dependency error* (the InDif mass you
would lose by not publishing it) against *noise error* (the Gaussian noise a
publication must carry).  With PrivSyn's weighted budget allocation
(``rho_i ∝ c_i^{2/3}``), the total expected L1 noise error of a selected set
``S`` has the closed form

    noise(S) = sqrt(2/pi) * sqrt(W / (2 rho)) * W,   W = Σ_{i∈S} c_i^{2/3}

so the greedy can evaluate a candidate in O(1).  We greedily add the pair
with the best (most negative) marginal change in total error and stop when
no pair improves it — exactly the structure of Eq. 2's binary program.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass
class SelectionResult:
    """Outcome of DenseMarg selection."""

    pairs: list
    dependency_error: float
    noise_error: float
    considered: int

    @property
    def total_error(self) -> float:
        return self.dependency_error + self.noise_error


def _noise_error(weight_sum: float, rho: float) -> float:
    """Expected total L1 noise error for cumulative weight ``W = Σ c^{2/3}``."""
    if weight_sum <= 0:
        return 0.0
    sigma_base = math.sqrt(weight_sum / (2.0 * rho))
    return math.sqrt(2.0 / math.pi) * sigma_base * weight_sum


def select_pairs(
    indif: dict,
    cells: dict,
    rho_publish: float,
    max_pairs: int | None = None,
) -> SelectionResult:
    """Greedy DenseMarg selection.

    Parameters
    ----------
    indif:
        Noisy InDif score per candidate pair ``(a, b)``.
    cells:
        Cell count of each candidate 2-way marginal.
    rho_publish:
        Budget that will be available for publication (0.8·rho); determines
        the noise error of a hypothetical selected set.
    max_pairs:
        Optional hard cap on the number of selected pairs.
    """
    if rho_publish <= 0:
        raise ValueError("rho_publish must be positive")
    candidates = list(indif)
    missing = [p for p in candidates if p not in cells]
    if missing:
        raise KeyError(f"cell counts missing for pairs: {missing[:3]}")

    phi = np.array([max(indif[p], 0.0) for p in candidates])  # dependency errors
    weights = np.array([float(cells[p]) ** (2.0 / 3.0) for p in candidates])

    selected: list = []
    selected_mask = np.zeros(len(candidates), dtype=bool)
    weight_sum = 0.0
    current_noise = 0.0

    while True:
        if max_pairs is not None and len(selected) >= max_pairs:
            break
        remaining = ~selected_mask
        if not remaining.any():
            break
        idx = np.nonzero(remaining)[0]
        # Change in total error if pair i is added: noise grows, dependency
        # error phi_i disappears.
        new_noise = np.array([_noise_error(weight_sum + weights[i], rho_publish) for i in idx])
        delta = (new_noise - current_noise) - phi[idx]
        best = int(np.argmin(delta))
        if delta[best] >= 0:
            break
        chosen = idx[best]
        selected_mask[chosen] = True
        selected.append(candidates[chosen])
        weight_sum += weights[chosen]
        current_noise = _noise_error(weight_sum, rho_publish)

    dependency = float(phi[~selected_mask].sum())
    return SelectionResult(
        pairs=selected,
        dependency_error=dependency,
        noise_error=current_noise,
        considered=len(candidates),
    )
