"""Exact marginal computation from an encoded dataset."""

from __future__ import annotations

import numpy as np

from repro.binning.encoder import EncodedDataset
from repro.marginals.marginal import Marginal


def cell_codes(data: np.ndarray, shape: tuple) -> np.ndarray:
    """Flat cell index of every row: ``data`` is (n, k) ints over ``shape``.

    The shared primitive under marginal computation and the GUM engine's
    incremental count maintenance (``ravel_multi_index`` over the row block).
    """
    data = np.asarray(data)
    if data.ndim != 2 or data.shape[1] != len(shape):
        raise ValueError(f"data shape {data.shape} incompatible with domain {shape}")
    if data.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    return np.ravel_multi_index(tuple(data.T), shape)


def marginal_counts(data: np.ndarray, shape: tuple) -> np.ndarray:
    """Histogram of joint codes: ``data`` is (n, k) ints, shape the domain.

    Implemented as :func:`cell_codes` + ``bincount`` — the fast path that
    both marginal publication and the GUM inner loop rely on.
    """
    if np.asarray(data).shape[0] == 0:
        # Validate the shape contract even for the empty fast path.
        cell_codes(data, shape)
        return np.zeros(shape, dtype=np.float64)
    flat = cell_codes(data, shape)
    counts = np.bincount(flat, minlength=int(np.prod(shape)))
    return counts.reshape(shape).astype(np.float64)


def compute_marginal(encoded: EncodedDataset, attrs) -> Marginal:
    """Exact marginal of ``encoded`` over ``attrs``."""
    attrs = tuple(attrs)
    shape = encoded.domain.shape(attrs)
    counts = marginal_counts(encoded.project(attrs), shape)
    return Marginal(attrs, counts)


def exact_count_payload(encoded: EncodedDataset) -> tuple:
    """The shared payload of the exact-count executor tasks.

    ``(data, sizes)`` — the encoded int32 matrix plus per-column domain
    sizes.  The matrix is converted to Fortran order once (column slices
    become contiguous, which is what the cell-code kernels stream over),
    then shipped to workers once (fork inheritance or pool initializer) and
    reused by both the InDif scan and marginal publication; see
    :meth:`repro.engine.backends.Backend.open`.
    """
    sizes = tuple(int(encoded.domain.size(name)) for name in encoded.attrs)
    return (np.asfortranarray(encoded.data), sizes)
