"""Exact marginal computation from an encoded dataset."""

from __future__ import annotations

import numpy as np

from repro.binning.encoder import EncodedDataset
from repro.marginals.marginal import Marginal


def marginal_counts(data: np.ndarray, shape: tuple) -> np.ndarray:
    """Histogram of joint codes: ``data`` is (n, k) ints, shape the domain.

    Implemented as ``ravel_multi_index`` + ``bincount`` — the fast path that
    both marginal publication and the GUM inner loop rely on.
    """
    data = np.asarray(data)
    if data.ndim != 2 or data.shape[1] != len(shape):
        raise ValueError(f"data shape {data.shape} incompatible with domain {shape}")
    if data.shape[0] == 0:
        return np.zeros(shape, dtype=np.float64)
    flat = np.ravel_multi_index(tuple(data.T), shape)
    counts = np.bincount(flat, minlength=int(np.prod(shape)))
    return counts.reshape(shape).astype(np.float64)


def compute_marginal(encoded: EncodedDataset, attrs) -> Marginal:
    """Exact marginal of ``encoded`` over ``attrs``."""
    attrs = tuple(attrs)
    shape = encoded.domain.shape(attrs)
    counts = marginal_counts(encoded.project(attrs), shape)
    return Marginal(attrs, counts)
