"""Privacy attacks: membership and attribute inference against releases.

The modules here are the *measurement* side of the privacy story — the
acceptance suite (``tests/test_privacy_acceptance.py``) and the ``privacy``
experiment run these attacks per-PR so a refactor can never silently trade
leakage for speed.  Threat model and protocol in ``docs/privacy.md``.
"""

from repro.attacks.attribute import (
    AttributeInferenceResult,
    attribute_inference_attack,
)
from repro.attacks.mia import (
    MiaResult,
    loss_threshold_mia,
    membership_auc,
    user_level_mia,
)

__all__ = [
    "AttributeInferenceResult",
    "MiaResult",
    "attribute_inference_attack",
    "loss_threshold_mia",
    "membership_auc",
    "user_level_mia",
]
