"""Privacy attacks for the Appendix G analysis."""

from repro.attacks.mia import MiaResult, loss_threshold_mia

__all__ = ["MiaResult", "loss_threshold_mia"]
