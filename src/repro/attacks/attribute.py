"""Attribute inference against synthetic releases (Tran et al.'s framing).

The adversary holds a victim record with one **sensitive attribute**
redacted, plus the released synthetic trace.  They train a model *on the
synthetic data* to predict the sensitive attribute from everything else and
apply it to the victim.  Some accuracy is legitimate — the release is
*supposed* to teach population-level structure — so raw accuracy is not
leakage.  The leakage metric is the **advantage**:

    advantage = accuracy(training members) - accuracy(held-out non-members)

Both groups come from the same population, so any gap is signal the release
carries about the *specific records behind it* beyond what it teaches about
the population.  A DP release should pin the advantage near zero; the
acceptance suite (``tests/test_privacy_acceptance.py``) gates exactly that,
and ``docs/privacy.md`` documents the threat model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import TraceTable
from repro.utils.rng import ensure_rng


@dataclass
class AttributeInferenceResult:
    """Outcome of one attribute-inference run."""

    sensitive: str
    member_accuracy: float
    non_member_accuracy: float
    #: member_accuracy - non_member_accuracy; ~0 means the release teaches
    #: the population, not the members.
    advantage: float
    #: Majority-class rate of the sensitive attribute in the synthetic
    #: release — the no-model floor both accuracies should beat to show the
    #: attack (and hence the gate) has power.
    majority_accuracy: float


def _features_and_target(table: TraceTable, sensitive: str):
    X, _ = table.feature_matrix(exclude=(sensitive,))
    return X, np.asarray(table.column(sensitive))


def attribute_inference_attack(
    synthetic: TraceTable,
    members: TraceTable,
    non_members: TraceTable,
    sensitive: str,
    model=None,
    rng: np.random.Generator | int | None = None,
) -> AttributeInferenceResult:
    """Train on ``synthetic``, infer ``sensitive`` for members vs non-members.

    ``members`` are the raw records the release was synthesized from;
    ``non_members`` are held-out records from the same population.  All
    three tables must share the schema (the attack featurizes every
    non-sensitive column identically across them).  ``model`` is any
    unfitted :class:`repro.ml.base.Classifier`; the default is a depth-12
    decision tree, deterministic given ``rng``.

    Raises ``ValueError`` on an empty candidate set — advantage over zero
    members or zero non-members is undefined, and returning 0.0 would make
    a broken harness read as "no leakage".
    """
    if sensitive not in synthetic.schema.names:
        raise ValueError(f"sensitive attribute {sensitive!r} not in the schema")
    if members.n_records == 0 or non_members.n_records == 0:
        raise ValueError("attribute inference requires non-empty member and non-member sets")
    rng = ensure_rng(rng)
    if model is None:
        from repro.ml import DecisionTreeClassifier

        model = DecisionTreeClassifier(max_depth=12, rng=int(rng.integers(2**31)))

    X_syn, y_syn = _features_and_target(synthetic, sensitive)
    model.fit(X_syn, y_syn)

    X_mem, y_mem = _features_and_target(members, sensitive)
    X_non, y_non = _features_and_target(non_members, sensitive)
    member_accuracy = float(np.mean(model.predict(X_mem) == y_mem))
    non_member_accuracy = float(np.mean(model.predict(X_non) == y_non))

    _, counts = np.unique(y_syn, return_counts=True)
    majority_accuracy = float(counts.max() / counts.sum()) if counts.size else 0.0

    return AttributeInferenceResult(
        sensitive=sensitive,
        member_accuracy=member_accuracy,
        non_member_accuracy=non_member_accuracy,
        advantage=member_accuracy - non_member_accuracy,
        majority_accuracy=majority_accuracy,
    )
