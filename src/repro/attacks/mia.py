"""Membership inference: the Yeom et al. loss-threshold attack (App. G).

The attacker observes a model's per-sample loss and guesses "member" when
the loss is below the average training loss — models overfit members, so
their losses are lower.  Applied to a classifier trained on raw data the
attack succeeds well above chance; trained on DP-synthesized data the signal
collapses, which is the paper's Appendix G finding (64% raw → ~56% at eps=2
→ ~41% at eps=0.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng


@dataclass
class MiaResult:
    """Outcome of one attack run."""

    accuracy: float
    threshold: float
    member_mean_loss: float
    non_member_mean_loss: float


def _per_sample_loss(model, X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Cross-entropy of the true label under the model's predicted probs."""
    probs = model.predict_proba(X)
    class_index = {c: i for i, c in enumerate(model.classes_)}
    idx = np.array([class_index.get(v, -1) for v in y])
    safe = idx >= 0
    p = np.full(len(y), 1e-12)
    p[safe] = np.clip(probs[np.arange(len(y))[safe], idx[safe]], 1e-12, 1.0)
    return -np.log(p)


def loss_threshold_mia(
    model,
    X_members: np.ndarray,
    y_members: np.ndarray,
    X_non_members: np.ndarray,
    y_non_members: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> MiaResult:
    """Run the Yeom attack against a fitted classifier.

    ``X_members`` are the records the *target model's training data* was
    built from (for synthetic-data targets: the raw records behind the
    synthesis); ``X_non_members`` are held-out records.  Balanced accuracy
    over an equal number of members and non-members is reported.
    """
    rng = ensure_rng(rng)
    member_loss = _per_sample_loss(model, X_members, y_members)
    non_member_loss = _per_sample_loss(model, X_non_members, y_non_members)

    # Balance the two populations for a chance level of exactly 0.5.
    k = min(len(member_loss), len(non_member_loss))
    member_loss = rng.permutation(member_loss)[:k]
    non_member_loss = rng.permutation(non_member_loss)[:k]

    threshold = float(member_loss.mean())
    true_positives = float((member_loss <= threshold).sum())
    true_negatives = float((non_member_loss > threshold).sum())
    accuracy = (true_positives + true_negatives) / (2.0 * k)
    return MiaResult(
        accuracy=float(accuracy),
        threshold=threshold,
        member_mean_loss=float(member_loss.mean()),
        non_member_mean_loss=float(non_member_loss.mean()),
    )
