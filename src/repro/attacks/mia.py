"""Membership inference: the Yeom et al. loss-threshold attack (App. G).

The attacker observes a model's per-sample loss and guesses "member" when
the loss is below the average training loss — models overfit members, so
their losses are lower.  Applied to a classifier trained on raw data the
attack succeeds well above chance; trained on DP-synthesized data the signal
collapses, which is the paper's Appendix G finding (64% raw → ~56% at eps=2
→ ~41% at eps=0.1).

Two granularities ship here, both used by the per-PR privacy acceptance
suite (``tests/test_privacy_acceptance.py``, protocol in ``docs/privacy.md``):

- :func:`loss_threshold_mia` — **record-level**: one record is the unit the
  attacker tries to place inside/outside the training data.
- :func:`user_level_mia` — **user-level**: records are grouped by a user key
  (e.g. ``srcip``) and the attacker scores whole users by their mean loss.
  This is the stronger adversary when one user contributes many records,
  and the granularity :mod:`repro.dp.user_level` bounds.

Every attack reports both a thresholded balanced accuracy and a
threshold-free **AUC** (:func:`membership_auc`): AUC integrates over all
thresholds, so it cannot be gamed by a lucky cutoff and is the metric the
acceptance ceilings gate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng


@dataclass
class MiaResult:
    """Outcome of one attack run."""

    accuracy: float
    threshold: float
    member_mean_loss: float
    non_member_mean_loss: float
    #: Threshold-free attack strength: probability a random member scores
    #: more member-like than a random non-member.  0.5 is chance.
    auc: float = 0.5


def membership_auc(member_scores, non_member_scores) -> float:
    """AUC of the rule "higher score ⇒ member" (Mann-Whitney statistic).

    Ties receive average ranks, so constant scores give exactly 0.5 — an
    attack with no signal can never look better (or worse) than chance.
    Raises ``ValueError`` when either candidate set is empty: an AUC over
    zero members or zero non-members is undefined, and silently returning
    0.5 would make a broken attack pipeline look private.
    """
    members = np.asarray(member_scores, dtype=np.float64).ravel()
    non_members = np.asarray(non_member_scores, dtype=np.float64).ravel()
    if members.size == 0 or non_members.size == 0:
        raise ValueError("membership_auc requires non-empty member and non-member scores")
    combined = np.concatenate([members, non_members])
    # Average ranks (1-based) with exact tie handling: every equal value
    # shares the mean of the rank block it occupies.
    _, inverse, counts = np.unique(combined, return_inverse=True, return_counts=True)
    block_end = np.cumsum(counts).astype(np.float64)
    average_rank = block_end - (counts - 1) / 2.0
    member_rank_sum = float(average_rank[inverse[: members.size]].sum())
    m, n = float(members.size), float(non_members.size)
    return float((member_rank_sum - m * (m + 1) / 2.0) / (m * n))


def _per_sample_loss(model, X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Cross-entropy of the true label under the model's predicted probs."""
    probs = model.predict_proba(X)
    class_index = {c: i for i, c in enumerate(model.classes_)}
    idx = np.array([class_index.get(v, -1) for v in y])
    safe = idx >= 0
    p = np.full(len(y), 1e-12)
    p[safe] = np.clip(probs[np.arange(len(y))[safe], idx[safe]], 1e-12, 1.0)
    return -np.log(p)


def _threshold_attack(
    member_loss: np.ndarray,
    non_member_loss: np.ndarray,
    rng: np.random.Generator,
) -> MiaResult:
    """Score two loss populations: AUC on everything, accuracy balanced."""
    if member_loss.size == 0 or non_member_loss.size == 0:
        raise ValueError("the attack requires non-empty member and non-member sets")
    # Lower loss ⇒ more member-like, so the AUC score is the negated loss.
    auc = membership_auc(-member_loss, -non_member_loss)

    # Balance the two populations for a chance level of exactly 0.5.
    k = min(len(member_loss), len(non_member_loss))
    member_loss = rng.permutation(member_loss)[:k]
    non_member_loss = rng.permutation(non_member_loss)[:k]

    threshold = float(member_loss.mean())
    true_positives = float((member_loss <= threshold).sum())
    true_negatives = float((non_member_loss > threshold).sum())
    accuracy = (true_positives + true_negatives) / (2.0 * k)
    return MiaResult(
        accuracy=float(accuracy),
        threshold=threshold,
        member_mean_loss=float(member_loss.mean()),
        non_member_mean_loss=float(non_member_loss.mean()),
        auc=auc,
    )


def loss_threshold_mia(
    model,
    X_members: np.ndarray,
    y_members: np.ndarray,
    X_non_members: np.ndarray,
    y_non_members: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> MiaResult:
    """Run the Yeom attack against a fitted classifier.

    ``X_members`` are the records the *target model's training data* was
    built from (for synthetic-data targets: the raw records behind the
    synthesis); ``X_non_members`` are held-out records.  Balanced accuracy
    over an equal number of members and non-members is reported; the
    ``auc`` field is computed over the full (unbalanced) populations, since
    AUC is insensitive to class balance.
    """
    rng = ensure_rng(rng)
    member_loss = _per_sample_loss(model, X_members, y_members)
    non_member_loss = _per_sample_loss(model, X_non_members, y_non_members)
    return _threshold_attack(member_loss, non_member_loss, rng)


def _per_user_mean_loss(losses: np.ndarray, users: np.ndarray) -> np.ndarray:
    """Mean loss per user; a single-record user's score is its record loss."""
    users = np.asarray(users)
    if users.shape[0] != losses.shape[0]:
        raise ValueError("user ids must align with the loss vector")
    if users.shape[0] == 0:
        return np.empty(0, dtype=np.float64)
    _, inverse = np.unique(users, return_inverse=True)
    sums = np.bincount(inverse, weights=losses)
    counts = np.bincount(inverse)
    return sums / counts


def user_level_mia(
    model,
    X_members: np.ndarray,
    y_members: np.ndarray,
    member_users: np.ndarray,
    X_non_members: np.ndarray,
    y_non_members: np.ndarray,
    non_member_users: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> MiaResult:
    """The Yeom attack at **user** granularity.

    Records are grouped by their user id (``member_users`` /
    ``non_member_users``, e.g. the ``srcip`` column) and each user is scored
    by the mean loss over their records — averaging concentrates the
    membership signal of users who contribute many records, which is
    exactly the adversary user-level DP (:mod:`repro.dp.user_level`)
    defends against.  Degenerate single-record users are fine: their score
    is the record's loss.  ``accuracy`` balances *users*, not records.
    """
    rng = ensure_rng(rng)
    member_loss = _per_user_mean_loss(_per_sample_loss(model, X_members, y_members), member_users)
    non_member_loss = _per_user_mean_loss(
        _per_sample_loss(model, X_non_members, y_non_members), non_member_users
    )
    return _threshold_attack(member_loss, non_member_loss, rng)
