"""The sampling engine: pluggable execution for the post-fit synthesis phase.

Record synthesis (paper §3.4, Algorithm 1 steps 9-11) is pure
post-processing of the published noisy marginals, so it can be sharded and
parallelized freely without touching the DP accounting.  This package
provides:

- :class:`SynthesisPlan` — a picklable capture of everything ``sample()``
  needs after ``fit()``;
- serial / thread / process / shared-memory :mod:`backends
  <repro.engine.backends>` exposing a generic map-style
  :meth:`~repro.engine.backends.Backend.run_tasks` (used by the fit
  pipeline's exact-count fan-out), the streaming
  :meth:`~repro.engine.backends.Backend.imap_tasks`, and the shard runner
  that splits the record budget with independent ``SeedSequence``-spawned
  streams;
- :func:`execute_plan` — the executor that runs a plan under an
  :class:`EngineConfig` and merges encoded shard outputs;
- :func:`execute_plan_decoded` / :func:`execute_plan_stream` — the streaming
  execution plane (:mod:`repro.engine.streaming`): decoding happens inside
  the shards and results arrive as finished trace tables, in bulk or as
  bounded-memory chunks.
"""

from repro.engine.backends import (
    Backend,
    ProcessBackend,
    SerialBackend,
    SharedMemoryBackend,
    ThreadBackend,
    get_backend,
    scatter_map,
)
from repro.engine.config import (
    ALL_BACKENDS,
    BACKENDS,
    DISTRIBUTED_BACKENDS,
    EngineConfig,
)
from repro.engine.executor import ExecutionResult, execute_plan
from repro.engine.plan import DecodedShard, ShardResult, SynthesisPlan, shard_sizes
from repro.engine.streaming import (
    DEFAULT_CHUNK,
    DecodedResult,
    execute_plan_decoded,
    execute_plan_stream,
)
from repro.reliability import ShardTaskError

__all__ = [
    "ALL_BACKENDS",
    "BACKENDS",
    "Backend",
    "DISTRIBUTED_BACKENDS",
    "DEFAULT_CHUNK",
    "DecodedResult",
    "DecodedShard",
    "EngineConfig",
    "ExecutionResult",
    "ProcessBackend",
    "SerialBackend",
    "ShardResult",
    "ShardTaskError",
    "SharedMemoryBackend",
    "SynthesisPlan",
    "ThreadBackend",
    "execute_plan",
    "execute_plan_decoded",
    "execute_plan_stream",
    "get_backend",
    "scatter_map",
    "shard_sizes",
]
