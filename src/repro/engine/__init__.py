"""The sampling engine: pluggable execution for the post-fit synthesis phase.

Record synthesis (paper §3.4, Algorithm 1 steps 9-11) is pure
post-processing of the published noisy marginals, so it can be sharded and
parallelized freely without touching the DP accounting.  This package
provides:

- :class:`SynthesisPlan` — a picklable capture of everything ``sample()``
  needs after ``fit()``;
- serial / thread / process :mod:`backends <repro.engine.backends>` exposing
  a generic map-style :meth:`~repro.engine.backends.Backend.run_tasks` (used
  by the fit pipeline's exact-count fan-out) plus the shard runner that
  splits the record budget with independent ``SeedSequence``-spawned streams;
- :func:`execute_plan` — the executor that runs a plan under an
  :class:`EngineConfig` and merges shard outputs.
"""

from repro.engine.backends import (
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    scatter_map,
)
from repro.engine.config import BACKENDS, EngineConfig
from repro.engine.executor import ExecutionResult, execute_plan
from repro.engine.plan import ShardResult, SynthesisPlan, shard_sizes

__all__ = [
    "BACKENDS",
    "Backend",
    "EngineConfig",
    "ExecutionResult",
    "ProcessBackend",
    "SerialBackend",
    "ShardResult",
    "SynthesisPlan",
    "ThreadBackend",
    "execute_plan",
    "get_backend",
    "scatter_map",
    "shard_sizes",
]
