"""SynthesisPlan: the picklable post-``fit()`` state of a NetDPSyn run.

Everything record synthesis (paper Algorithm 1 steps 9-11) needs is pure
post-processing data: the published noisy marginals, the encoded domain, the
per-attribute codecs, the protocol rules, and the GUMMI key attribute.  A
:class:`SynthesisPlan` captures exactly that as a plain picklable object so
the sampling phase can be shipped to worker processes (or, in principle,
other machines) without re-running any private computation — the released
records satisfy the same ``(epsilon, delta)``-DP as the published marginals
regardless of how many shards generate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.domain import Domain
from repro.data.schema import Schema
from repro.data.table import TraceTable
from repro.synthesis.decode import decode_encoded
from repro.synthesis.gum import GumConfig, run_gum
from repro.synthesis.initialization import (
    marginal_initialization,
    random_initialization,
)
from repro.synthesis.timestamps import TSDIFF, reconstruct_timestamps
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer


@dataclass
class ShardResult:
    """Output of one independent GUM loop over a slice of the record budget."""

    index: int
    #: Encoded rows; the executor drops this reference (sets ``None``) once
    #: the shard has been merged, so per-shard payloads never outlive the
    #: concatenated result — only the metadata below is kept.
    data: np.ndarray | None
    errors: list = field(default_factory=list)
    iterations_run: int = 0
    #: Wall-clock seconds of this shard (initialization + GUM).
    seconds: float = 0.0
    #: The shard's generator, returned so a single-shard run can continue the
    #: exact same stream into decoding (bit-compatibility with the
    #: pre-engine ``sample()``); pickling round-trips the state intact.
    rng: np.random.Generator | None = None
    #: Row count of this shard; survives after ``data`` is dropped.
    n_records: int = 0


@dataclass
class DecodedShard:
    """Output of one shard that synthesized *and decoded* its own rows.

    The streaming execution plane ships these instead of encoded matrices:
    the encoded rows never leave the worker, only the finished
    :class:`~repro.data.table.TraceTable` slice does.
    """

    index: int
    table: TraceTable
    errors: list = field(default_factory=list)
    iterations_run: int = 0
    #: Wall-clock seconds of this shard (initialization + GUM + decode).
    seconds: float = 0.0
    n_records: int = 0

    def meta(self) -> ShardResult:
        """The shard's payload-free metadata, for ``GumResult.shard_results``."""
        return ShardResult(
            index=self.index,
            data=None,
            errors=self.errors,
            iterations_run=self.iterations_run,
            seconds=self.seconds,
            n_records=self.n_records,
        )


@dataclass
class SynthesisPlan:
    """All inputs of the sampling phase, frozen after ``fit()``.

    Instances are self-contained: :meth:`run_shard` synthesizes encoded rows
    and :meth:`finalize` decodes them into a raw trace, so a pickled plan is
    enough to generate records anywhere.
    """

    attrs: tuple
    domain: Domain
    #: Post-processed published marginals (consistency + rules applied).
    published: list
    #: Per-attribute 1-way counts projected from the published marginals.
    one_way: dict
    codecs: dict
    #: Encoded schema (includes auxiliary attributes such as ``tsdiff``).
    schema: Schema
    #: The raw input schema records are restored to after decoding.
    original_schema: Schema
    rules: list
    key_attr: str
    gum: GumConfig = field(default_factory=GumConfig)
    initialization: str = "gummi"
    n_init_marginals: int = 8
    #: GUM kernel preference frozen at fit time (``EngineConfig.kernel``).
    #: ``"auto"`` resolves on the executing host, so a persisted plan samples
    #: on whatever kernel that host has available — output is identical
    #: either way (all kernels are bit-exact).
    kernel: str = "auto"

    @property
    def default_n(self) -> int:
        """The DP estimate of the record count (noisy consensus total)."""
        return max(int(round(self.published[0].total)), 1)

    def resolved_kernel(self) -> str:
        """This plan's kernel preference (possibly still ``"auto"``).

        A non-auto legacy ``gum.update_mode`` pin wins over the engine-level
        :attr:`kernel` field; ``getattr`` guards plans unpickled from files
        saved before the field existed.
        """
        mode = self.gum.update_mode
        if mode != "auto":
            return mode
        return getattr(self, "kernel", "auto")

    # ------------------------------------------------------------- synthesis
    def run_shard(
        self,
        n: int,
        rng: np.random.Generator | int | None = None,
        index: int = 0,
        update_mode: str | None = None,
        kernel: str | None = None,
    ) -> ShardResult:
        """Initialize and GUM-synthesize ``n`` encoded records.

        ``kernel`` overrides the update-step kernel for this run (the engine
        ships a concrete, pre-resolved name to every shard); when omitted,
        the plan's frozen :attr:`kernel` preference applies.  ``update_mode``
        is the pre-kernel-registry spelling of the same override, kept for
        backward compatibility.  Kernel choice never changes the output.
        """
        rng = ensure_rng(rng)
        timer = Timer()
        timer.start()
        if self.initialization == "gummi":
            data = marginal_initialization(
                self.published,
                self.one_way,
                self.attrs,
                self.domain,
                n,
                key_attr=self.key_attr,
                n_init=self.n_init_marginals,
                rng=rng,
            )
        else:
            data = random_initialization(self.one_way, self.attrs, n, rng)
        if kernel is None:
            kernel = update_mode if update_mode is not None else self.resolved_kernel()
        result = run_gum(
            data, self.published, self.attrs, self.domain, self.gum, rng, kernel=kernel
        )
        return ShardResult(
            index=index,
            data=result.data,
            errors=result.errors,
            iterations_run=result.iterations_run,
            seconds=timer.stop(),
            rng=rng,
            n_records=int(result.data.shape[0]),
        )

    def run_shard_decoded(
        self,
        n: int,
        rng: np.random.Generator | int | None = None,
        decode_rng: np.random.Generator | int | None = None,
        index: int = 0,
        update_mode: str | None = None,
        kernel: str | None = None,
    ) -> DecodedShard:
        """Synthesize ``n`` records and decode them in one worker-side step.

        ``decode_rng`` drives the shard's own decode stream (the engine
        derives it as ``SeedSequence`` child ``shards + index``); the encoded
        matrix stays local to the worker, only the decoded trace slice is
        returned.
        """
        timer = Timer()
        timer.start()
        shard = self.run_shard(n, rng, index=index, update_mode=update_mode, kernel=kernel)
        table = self.finalize(shard.data, decode_rng)
        return DecodedShard(
            index=index,
            table=table,
            errors=shard.errors,
            iterations_run=shard.iterations_run,
            seconds=timer.stop(),
            n_records=table.n_records,
        )

    # -------------------------------------------------------------- decoding
    def finalize(
        self, data: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> TraceTable:
        """Decode encoded rows, reconstruct timestamps, restore the schema."""
        rng = ensure_rng(rng)
        table = decode_encoded(
            data, self.attrs, self.codecs, self.schema, rng, rules=self.rules
        )
        if TSDIFF in table.schema:
            tsdiff_codes = data[:, self.attrs.index(TSDIFF)]
            table = reconstruct_timestamps(
                table,
                tsdiff_codes=tsdiff_codes,
                tsdiff_codec=self.codecs[TSDIFF],
                rng=rng,
            )
        columns = {name: table.column(name) for name in self.original_schema.names}
        return TraceTable(self.original_schema, columns)


def shard_sizes(n: int, shards: int) -> list[int]:
    """Balanced split of ``n`` records over ``shards`` (sizes differ by <= 1)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    base, remainder = divmod(n, shards)
    return [base + (1 if i < remainder else 0) for i in range(shards)]
