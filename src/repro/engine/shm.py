"""Shared-memory transport for ndarray-bearing task results.

The process backend pays one pickle + pipe round trip per task result; for
shard outputs (the (n, k) encoded matrix, or the decoded columns of a
:class:`~repro.data.table.TraceTable`) that serialization dominates the IPC
cost.  The ``shared`` backend instead has the **worker** park large results
in :mod:`multiprocessing.shared_memory` segments and ship only name-sized
handles through the pipe:

- a bare numeric ndarray travels as a :class:`ShmArrayRef` (one segment, one
  worker-side memcpy, parent materializes and unlinks);
- a whole :class:`TraceTable` travels as a :class:`ShmTableArenaRef` — the
  worker lays the table out as a single contiguous
  :mod:`~repro.data.arena` arena built **directly inside** the segment
  (columns are copied exactly once, straight to their final home) and the
  descriptor carries only ``(segment name, slots, dictionaries)``.  The
  parent maps the segment and reconstructs every raw column as a zero-copy
  view: **zero pickled column bytes** cross the pipe, and nothing is copied
  on import at all.

Ownership protocol (POSIX): the creating worker unregisters the segment from
its resource tracker right away and never unlinks.  For arrays the parent
attaches, copies, and unlinks within the round trip.  For table arenas the
parent's column views alias the mapping, so the unlink is *deferred*: the
imported table holds a capsule whose finalizer closes the mapping and
unlinks the segment when the last table using it is collected (an unlink
only removes the name — live mappings stay valid).  Every segment is still
unlinked exactly once, by the parent.

Segments carry deterministic names —
``nds{parent:x}-{worker:x}-{token}-{seq:x}``, where ``token`` is the
worker's boot-unique incarnation token (its ``/proc`` start time) — so the
parent can *sweep* leftovers: if a worker dies between exporting a segment
and the parent importing it, the handle is lost but the name is
reconstructable.  :func:`sweep_orphan_segments` scans ``/dev/shm`` for this
parent's prefix and unlinks segments whose creating worker *incarnation* no
longer exists — a recycled pid with a different start-time token does not
pin a dead worker's segments (pid liveness alone once did exactly that);
the shared backend runs it after every drain and on ``close()``, so a
killed worker cannot leak ``/dev/shm`` space past the run that lost it.

Only values of at least :data:`SHM_MIN_BYTES` travel through segments; small
arrays and tables, plus every other value, pickle through the pipe as usual
(the parent charges those bytes to the :data:`~repro.data.arena.copy_stats`
ledger, which is how the ``bytes_copied_per_record`` benchmark probe keeps
the zero-pickled-column-bytes invariant honest), so results round-trip
unchanged for arbitrary task functions.
"""

from __future__ import annotations

import itertools
import os
import weakref
from dataclasses import dataclass, replace

import numpy as np

from repro.data.arena import (
    SLOT_PICKLE,
    TableArena,
    copy_stats,
    pickled_nbytes,
    plan_layout,
    track_arena,
    write_layout,
)
from repro.data.table import TraceTable

#: Values smaller than this (bytes) are pickled instead of exported: below a
#: few pipe buffers the segment setup costs more than the copy it saves.
SHM_MIN_BYTES = 1 << 16

#: Where POSIX shared memory is visible as files (the sweep scans it).
_SHM_DIR = "/dev/shm"

#: Per-process sequence for deterministic segment names.
_SEQ = itertools.count()

#: (pid, token) of the last :func:`_boot_token` computation; recomputed after
#: a fork (the pid changes), so children never inherit the parent's token.
_TOKEN_CACHE: tuple[int, str] | None = None


@dataclass
class ShmArrayRef:
    """A pickle-sized handle to one ndarray parked in shared memory."""

    name: str
    dtype: str
    shape: tuple


@dataclass
class ShmTableArenaRef:
    """A :class:`TraceTable` parked in shared memory as one arena segment.

    ``slots`` is the arena's wire-form layout (offsets + dtypes into the
    segment); ``extras`` carries the out-of-band payloads (dictionary values
    for dict slots, whole columns for pickle slots).  ``pickled_bytes`` is
    the worker-computed pickle size of the pickle-slot payloads — the only
    column bytes that did not travel zero-copy — which the importing parent
    charges to the copy ledger.
    """

    name: str
    schema: object
    slots: tuple
    extras: dict
    nbytes: int
    pickled_bytes: int = 0


def _unregister(name: str) -> None:
    """Drop this process's resource-tracker claim on segment ``name``.

    Safe to call for names the tracker does not know (unregister is a cache
    discard); no-op on platforms without the POSIX tracker.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(name, "shared_memory")
    except Exception:
        pass


def _proc_start_token(pid: int) -> str | None:
    """A boot-unique incarnation token for ``pid``: its kernel start time.

    Field 22 of ``/proc/<pid>/stat`` (``starttime``, clock ticks since boot)
    changes every time a pid is handed to a new process, which is exactly
    the property pid liveness alone lacks: two incarnations of the same pid
    get different tokens.  ``None`` when the pid is gone or ``/proc`` is not
    available (non-Linux hosts).
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as fh:
            stat = fh.read()
        # The comm field is parenthesised and may contain spaces/digits;
        # everything after the *last* ')' is fixed-position.
        fields = stat[stat.rindex(b")") + 2 :].split()
        return f"{int(fields[19]):x}"
    except (OSError, ValueError, IndexError):
        return None


def _boot_token() -> str:
    """This process's own incarnation token (cached per pid).

    Falls back to a random token when ``/proc`` is unavailable — still
    unique per incarnation, just not verifiable by the sweep (which then
    treats the segment's worker pid-liveness as the best available signal,
    the pre-token behaviour).
    """
    global _TOKEN_CACHE
    pid = os.getpid()
    if _TOKEN_CACHE is not None and _TOKEN_CACHE[0] == pid:
        return _TOKEN_CACHE[1]
    token = _proc_start_token(pid)
    if token is None:  # pragma: no cover - non-Linux host
        token = os.urandom(8).hex()
    _TOKEN_CACHE = (pid, token)
    return token


def _segment_name(seq: int) -> str:
    """Deterministic segment name: parent pid, this pid + its boot-unique
    incarnation token, per-process sequence.

    The token is what makes the name safe against pid reuse: a recycled pid
    cannot collide with (or be mistaken for the owner of) a previous
    incarnation's segments.
    """
    return f"nds{os.getppid():x}-{os.getpid():x}-{_boot_token()}-{seq:x}"


def _create_segment(size: int):
    """Create a fresh segment under this process's deterministic name series.

    Skips over names that already exist (a previous incarnation of this pid
    may have leaked one mid-crash) instead of failing.
    """
    from multiprocessing import shared_memory

    for seq in _SEQ:
        try:
            return shared_memory.SharedMemory(
                name=_segment_name(seq), create=True, size=size
            )
        except FileExistsError:  # pragma: no cover - stale name from a crash
            continue
    raise RuntimeError("unreachable")  # pragma: no cover


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid recycled by another user
        return True
    return True


def sweep_orphan_segments() -> int:
    """Unlink segments created for this process by workers that have died.

    Scans :data:`_SHM_DIR` for ``nds{this pid:x}-`` names, parses the
    creating worker's pid **and incarnation token** out of the name, and
    unlinks the segment when that worker incarnation no longer exists —
    either the pid is gone, or the pid is alive but its current start-time
    token differs from the one baked into the name (the pid was recycled by
    an unrelated process, which must not keep a dead worker's segment
    pinned).  Segments of live, token-matching workers are left alone — they
    are either in flight (the parent will import and unlink them) or about
    to be handed over.  Legacy two-part names (``nds{parent}-{pid}-{seq}``,
    pre-token) fall back to pid liveness alone, as do tokens the sweep
    cannot recompute (no ``/proc``).  Returns the number of segments removed.
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-POSIX host
        return 0
    prefix = f"nds{os.getpid():x}-"
    swept = 0
    for entry in os.listdir(_SHM_DIR):
        if not entry.startswith(prefix):
            continue
        parts = entry[len(prefix) :].split("-")
        try:
            worker = int(parts[0], 16)
        except (ValueError, IndexError):  # pragma: no cover - foreign name
            continue
        if _pid_alive(worker):
            if len(parts) >= 3:
                live_token = _proc_start_token(worker)
                if live_token is None or live_token == parts[1]:
                    # Same incarnation (or unverifiable): genuinely in use.
                    continue
                # Alive pid, different start time: the name's owner is dead
                # and the pid was recycled — the segment is an orphan.
            else:
                # Legacy name without a token: liveness is all we have.
                continue
        try:
            os.unlink(os.path.join(_SHM_DIR, entry))
            swept += 1
        except FileNotFoundError:  # pragma: no cover - concurrent sweep
            pass
    return swept


class _ArenaCapsule:
    """Keeps a parent-side segment mapping alive for the tables viewing it."""

    __slots__ = ("name", "__weakref__")

    def __init__(self, name: str) -> None:
        self.name = name


def _release_mapped(shm) -> None:
    """Finalizer for an imported arena segment: close the mapping, unlink.

    ``close()`` raises ``BufferError`` when column views torn from the table
    still alias the mapping (they do not hold the capsule); the mapping then
    simply stays alive until the process exits, while ``unlink()`` still
    removes the name so the segment cannot outlive this run on disk.
    """
    try:
        shm.close()
    except BufferError:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - swept or double-unlink
        pass


def export_array(arr: np.ndarray) -> ShmArrayRef:
    """Copy ``arr`` into a fresh shared-memory segment and return its handle.

    The caller-side mapping is closed before returning; the segment itself
    stays alive (the importer unlinks it).
    """
    arr = np.ascontiguousarray(arr)
    shm = _create_segment(arr.nbytes)
    try:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        ref = ShmArrayRef(name=shm.name, dtype=arr.dtype.str, shape=arr.shape)
        del view
    finally:
        # Hand ownership to the importer: this process must neither unlink
        # the segment nor let its tracker believe it still owns it.
        registered = getattr(shm, "_name", shm.name)
        shm.close()
        _unregister(registered)
    return ref


def import_array(ref: ShmArrayRef) -> np.ndarray:
    """Materialize the array behind ``ref`` and destroy the segment."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=ref.name)
    try:
        view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)
        out = view.copy()
        del view
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-unlink race
            pass
    return out


def release_array(ref) -> None:
    """Destroy the segment behind a ref without materializing it.

    Used when an exported result will never be imported (a consumer abandoned
    the stream, or a sibling task failed): attaching and unlinking keeps the
    register/unregister ledger balanced exactly like :func:`import_array`.
    """
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=ref.name)
    except FileNotFoundError:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - double-unlink race
        pass


def export_table(table: TraceTable):
    """Park a table in one shm segment as a contiguous arena; return its ref.

    The arena is laid out **directly inside the segment** — plan first, then
    write each column straight to its final offset — so export costs exactly
    one copy per column and the descriptor that crosses the pipe carries no
    array bytes at all (dictionary values and un-encodable object columns
    ride in ``extras``; the latter are measured into ``pickled_bytes``).

    Tables whose arena would be smaller than :data:`SHM_MIN_BYTES` are
    returned unchanged and pickle through the pipe whole.
    """
    slots, nbytes, arrays, extras = plan_layout(table)
    if nbytes < SHM_MIN_BYTES:
        return table
    shm = _create_segment(nbytes)
    try:
        write_layout(slots, arrays, shm.buf)
        ref = ShmTableArenaRef(
            name=shm.name,
            schema=table.schema,
            slots=slots,
            extras=extras,
            nbytes=nbytes,
            pickled_bytes=sum(
                pickled_nbytes(extras[slot.name])
                for slot in slots
                if slot.kind == SLOT_PICKLE
            ),
        )
    finally:
        registered = getattr(shm, "_name", shm.name)
        shm.close()
        _unregister(registered)
    return ref


def import_table(ref: ShmTableArenaRef) -> TraceTable:
    """Map the arena behind ``ref``; every raw column is a zero-copy view.

    The returned table's capsule owns the mapping: the segment is unlinked
    by the capsule's finalizer once the table (and every table sharing the
    capsule) is garbage, not eagerly — see :func:`_release_mapped`.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=ref.name)
    capsule = _ArenaCapsule(shm.name)
    weakref.finalize(capsule, _release_mapped, shm)
    track_arena(capsule, ref.nbytes)
    if ref.pickled_bytes:
        copy_stats.count_pickled(ref.pickled_bytes)
    arena = TableArena(
        ref.schema, ref.slots, shm.buf, ref.extras, ref.nbytes, owner=capsule
    )
    return arena.to_table()


def _exportable(value) -> bool:
    return (
        isinstance(value, np.ndarray)
        and value.dtype != object
        and value.nbytes >= SHM_MIN_BYTES
    )


def export_result(obj):
    """Recursively swap large payloads in a task result for shm handles.

    Understands the engine's result shapes — bare arrays, ``ShardResult`` /
    ``DecodedShard`` payloads, whole :class:`TraceTable` results (which
    travel as single-segment arenas) — plus plain dict/list/tuple
    containers.  Everything else passes through untouched (and is pickled by
    the pool as usual).
    """
    from repro.engine.plan import DecodedShard, ShardResult

    if _exportable(obj):
        return export_array(obj)
    if isinstance(obj, TraceTable):
        return export_table(obj)
    if isinstance(obj, ShardResult):
        return replace(obj, data=export_result(obj.data))
    if isinstance(obj, DecodedShard):
        return replace(obj, table=export_result(obj.table))
    if isinstance(obj, dict):
        return {key: export_result(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [export_result(value) for value in obj]
    if isinstance(obj, tuple):
        return tuple(export_result(value) for value in obj)
    return obj


def _charge_pickled_table(table: TraceTable) -> None:
    """Charge a pipe-pickled table's array payload to the copy ledger."""
    for name in table.schema.names:
        col = table.column(name)
        if isinstance(col, np.ndarray) and col.dtype != object:
            copy_stats.count_pickled(col.nbytes)


def import_result(obj):
    """Inverse of :func:`export_result`: reattach views, account stragglers.

    Payloads that arrive *without* a handle went through pickle; their array
    bytes are charged to :data:`~repro.data.arena.copy_stats` here, on the
    importing side, so the benchmark copy probe observes every byte that
    crossed the pipe regardless of which branch it took.
    """
    from repro.engine.plan import DecodedShard, ShardResult

    if isinstance(obj, ShmArrayRef):
        return import_array(obj)
    if isinstance(obj, ShmTableArenaRef):
        return import_table(obj)
    if isinstance(obj, TraceTable):
        _charge_pickled_table(obj)
        return obj
    if isinstance(obj, np.ndarray):
        if obj.dtype != object:
            copy_stats.count_pickled(obj.nbytes)
        return obj
    if isinstance(obj, ShardResult):
        return replace(obj, data=import_result(obj.data))
    if isinstance(obj, DecodedShard):
        return replace(obj, table=import_result(obj.table))
    if isinstance(obj, dict):
        return {key: import_result(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [import_result(value) for value in obj]
    if isinstance(obj, tuple):
        return tuple(import_result(value) for value in obj)
    return obj


def release_result(obj) -> None:
    """Destroy every segment in an exported result that won't be imported."""
    from repro.engine.plan import DecodedShard, ShardResult

    if isinstance(obj, (ShmArrayRef, ShmTableArenaRef)):
        release_array(obj)
    elif isinstance(obj, ShardResult):
        release_result(obj.data)
    elif isinstance(obj, DecodedShard):
        release_result(obj.table)
    elif isinstance(obj, dict):
        for value in obj.values():
            release_result(value)
    elif isinstance(obj, (list, tuple)):
        for value in obj:
            release_result(value)
