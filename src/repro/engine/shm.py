"""Shared-memory transport for ndarray-bearing task results.

The process backend pays one pickle + pipe round trip per task result; for
shard outputs (the (n, k) encoded matrix, or the decoded numeric columns of a
:class:`~repro.data.table.TraceTable`) that serialization dominates the IPC
cost.  The ``shared`` backend instead has the **worker** copy every large
numeric array into a :mod:`multiprocessing.shared_memory` segment and ship
only a tiny :class:`ShmArrayRef` through the pipe; the parent attaches a view
on the segment, materializes it, and unlinks the segment immediately — one
memcpy instead of pickle-encode → pipe chunks → pickle-decode.

Ownership protocol (POSIX): the creating worker unregisters the segment from
its resource tracker right away and never unlinks; the parent attaches (which
re-registers on Python <= 3.12), copies, and calls ``unlink()`` (which
unregisters again).  Every segment is therefore unlinked exactly once, by the
parent, within the task round trip — no tracker warnings, no ``/dev/shm``
leaks on a clean exit, and a crash before import leaks at most the in-flight
segments.

Only arrays of at least :data:`SHM_MIN_BYTES` travel this way; small arrays,
object arrays (strings cannot be memory-mapped), and every other value pickle
through the pipe as usual, so results round-trip unchanged for arbitrary task
functions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.data.table import TraceTable

#: Arrays smaller than this (bytes) are pickled instead of exported: below a
#: few pipe buffers the segment setup costs more than the copy it saves.
SHM_MIN_BYTES = 1 << 16


@dataclass
class ShmArrayRef:
    """A pickle-sized handle to one ndarray parked in shared memory."""

    name: str
    dtype: str
    shape: tuple


@dataclass
class ShmTableRef:
    """A :class:`TraceTable` whose numeric columns are parked in shared memory."""

    schema: object
    columns: dict


def _unregister(name: str) -> None:
    """Drop this process's resource-tracker claim on segment ``name``.

    Safe to call for names the tracker does not know (unregister is a cache
    discard); no-op on platforms without the POSIX tracker.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(name, "shared_memory")
    except Exception:
        pass


def export_array(arr: np.ndarray) -> ShmArrayRef:
    """Copy ``arr`` into a fresh shared-memory segment and return its handle.

    The caller-side mapping is closed before returning; the segment itself
    stays alive (the importer unlinks it).
    """
    from multiprocessing import shared_memory

    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
    try:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        ref = ShmArrayRef(name=shm.name, dtype=arr.dtype.str, shape=arr.shape)
        del view
    finally:
        # Hand ownership to the importer: this process must neither unlink
        # the segment nor let its tracker believe it still owns it.
        registered = getattr(shm, "_name", shm.name)
        shm.close()
        _unregister(registered)
    return ref


def import_array(ref: ShmArrayRef) -> np.ndarray:
    """Materialize the array behind ``ref`` and destroy the segment."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=ref.name)
    try:
        view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)
        out = view.copy()
        del view
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-unlink race
            pass
    return out


def release_array(ref: ShmArrayRef) -> None:
    """Destroy the segment behind ``ref`` without materializing it.

    Used when an exported result will never be imported (a consumer abandoned
    the stream, or a sibling task failed): attaching and unlinking keeps the
    register/unregister ledger balanced exactly like :func:`import_array`.
    """
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=ref.name)
    except FileNotFoundError:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - double-unlink race
        pass


def _exportable(value) -> bool:
    return (
        isinstance(value, np.ndarray)
        and value.dtype != object
        and value.nbytes >= SHM_MIN_BYTES
    )


def export_result(obj):
    """Recursively swap large ndarrays in a task result for shm handles.

    Understands the engine's result shapes — bare arrays, ``ShardResult`` /
    ``DecodedShard`` payloads, :class:`TraceTable` columns — plus plain
    dict/list/tuple containers.  Everything else passes through untouched
    (and is pickled by the pool as usual).
    """
    from repro.engine.plan import DecodedShard, ShardResult

    if _exportable(obj):
        return export_array(obj)
    if isinstance(obj, TraceTable):
        return ShmTableRef(
            schema=obj.schema,
            columns={name: export_result(obj.column(name)) for name in obj.schema.names},
        )
    if isinstance(obj, ShardResult):
        return replace(obj, data=export_result(obj.data))
    if isinstance(obj, DecodedShard):
        return replace(obj, table=export_result(obj.table))
    if isinstance(obj, dict):
        return {key: export_result(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [export_result(value) for value in obj]
    if isinstance(obj, tuple):
        return tuple(export_result(value) for value in obj)
    return obj


def import_result(obj):
    """Inverse of :func:`export_result`: reattach, copy, and unlink handles."""
    from repro.engine.plan import DecodedShard, ShardResult

    if isinstance(obj, ShmArrayRef):
        return import_array(obj)
    if isinstance(obj, ShmTableRef):
        return TraceTable(
            obj.schema, {name: import_result(col) for name, col in obj.columns.items()}
        )
    if isinstance(obj, ShardResult):
        return replace(obj, data=import_result(obj.data))
    if isinstance(obj, DecodedShard):
        return replace(obj, table=import_result(obj.table))
    if isinstance(obj, dict):
        return {key: import_result(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [import_result(value) for value in obj]
    if isinstance(obj, tuple):
        return tuple(import_result(value) for value in obj)
    return obj


def release_result(obj) -> None:
    """Destroy every segment in an exported result that won't be imported."""
    from repro.engine.plan import DecodedShard, ShardResult

    if isinstance(obj, ShmArrayRef):
        release_array(obj)
    elif isinstance(obj, ShmTableRef):
        for col in obj.columns.values():
            release_result(col)
    elif isinstance(obj, ShardResult):
        release_result(obj.data)
    elif isinstance(obj, DecodedShard):
        release_result(obj.table)
    elif isinstance(obj, dict):
        for value in obj.values():
            release_result(value)
    elif isinstance(obj, (list, tuple)):
        for value in obj:
            release_result(value)
