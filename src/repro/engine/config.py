"""Execution configuration of the sampling engine."""

from __future__ import annotations

from dataclasses import dataclass

#: Names of the available execution backends.
BACKENDS = ("serial", "thread", "process")


@dataclass
class EngineConfig:
    """How the post-fit sampling phase executes.

    Record synthesis is pure post-processing (paper §3.4): once the noisy
    marginals are published, no additional privacy budget is spent, so the
    ``n``-record budget can be split into shards and generated on parallel
    workers without touching the DP accounting.
    """

    #: ``"serial"`` (in-process loop), ``"thread"`` (ThreadPoolExecutor) or
    #: ``"process"`` (ProcessPoolExecutor; the plan is pickled to workers).
    backend: str = "serial"
    #: Number of independent GUM shards the record budget is split into.
    shards: int = 1
    #: Worker cap for the thread/process backends (default: one per shard).
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")

    def override(
        self, shards: int | None = None, backend: str | None = None
    ) -> "EngineConfig":
        """A copy with per-call overrides applied (``None`` keeps the field)."""
        return EngineConfig(
            backend=self.backend if backend is None else backend,
            shards=self.shards if shards is None else shards,
            max_workers=self.max_workers,
        )
