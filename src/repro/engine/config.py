"""Execution configuration of the sampling engine."""

from __future__ import annotations

import numbers
from dataclasses import dataclass

#: Names of the self-contained in-process execution backends — usable with
#: no setup beyond ``EngineConfig``; generic parity suites iterate these.
BACKENDS = ("serial", "thread", "process", "shared")

#: Backends that need external infrastructure before they can run: ``fleet``
#: dispatches shards to the active :class:`repro.fleet.LocalCluster`
#: (multi-worker, crash-tolerant) and fails fast without one.
DISTRIBUTED_BACKENDS = ("fleet",)

#: Every backend name ``EngineConfig``/``get_backend`` accept.
ALL_BACKENDS = BACKENDS + DISTRIBUTED_BACKENDS


def _positive_int(name: str, value) -> int:
    """Validate an engine count parameter eagerly, with a usable message.

    Rejecting bad values here — instead of letting ``shards=0`` surface as an
    opaque failure deep inside ``shard_sizes`` on a worker — is the contract
    ``EngineConfig.__post_init__`` (and thus ``override`` and every
    ``sample(shards=...)`` call) relies on.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ValueError(
            f"{name} must be an integer >= 1, got {value!r} ({type(value).__name__})"
        )
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be an integer >= 1, got {value}")
    return value


@dataclass
class EngineConfig:
    """How the post-fit sampling phase executes.

    Record synthesis is pure post-processing (paper §3.4): once the noisy
    marginals are published, no additional privacy budget is spent, so the
    ``n``-record budget can be split into shards and generated on parallel
    workers without touching the DP accounting.
    """

    #: ``"serial"`` (in-process loop), ``"thread"`` (ThreadPoolExecutor),
    #: ``"process"`` (ProcessPoolExecutor; results pickled per task) or
    #: ``"shared"`` (process pool returning large arrays through
    #: ``multiprocessing.shared_memory`` instead of the result pipe).
    backend: str = "serial"
    #: Number of independent GUM shards the record budget is split into.
    shards: int = 1
    #: Worker cap for the thread/process/shared backends (default: one per
    #: shard).
    max_workers: int | None = None
    #: GUM update kernel: a registered kernel name (``"reference"``,
    #: ``"vectorized"``, ``"numba"``, ``"fused"``) or ``"auto"`` (fastest
    #: available, resolved fused -> numba -> vectorized -> reference at
    #: execution time).  Every
    #: kernel is bit-identical, so this only changes speed, never output —
    #: which is also why a persisted model carrying ``kernel="numba"`` can
    #: sample on a host without numba (resolution falls back).
    kernel: str = "auto"
    #: Per-task result timeout (seconds) for the process/shared backends; a
    #: shard that exceeds it is treated as a hung worker and resubmitted.
    #: ``None`` (default) waits indefinitely.
    task_timeout: float | None = None
    #: How many times a shard may be resubmitted after a *transient* fault
    #: (dead worker, task timeout, vanished shm segment).  Resubmission
    #: re-runs the shard on its original ``SeedSequence`` child, so retried
    #: runs stay bit-identical to fault-free ones.  ``0`` disables retry.
    max_task_retries: int = 2

    def __post_init__(self) -> None:
        if self.backend not in ALL_BACKENDS:
            raise ValueError(
                f"backend must be one of {ALL_BACKENDS}, got {self.backend!r}"
            )
        # Imported lazily: the kernel registry lives under repro.synthesis,
        # whose package init reaches back into the engine backends.
        from repro.synthesis.kernels import valid_kernel_names

        valid = valid_kernel_names()
        if self.kernel not in valid:
            raise ValueError(f"kernel must be one of {valid}, got {self.kernel!r}")
        self.shards = _positive_int("shards", self.shards)
        if self.max_workers is not None:
            self.max_workers = _positive_int("max_workers", self.max_workers)
        if self.task_timeout is not None:
            timeout = float(self.task_timeout)
            if timeout <= 0:
                raise ValueError(f"task_timeout must be > 0, got {self.task_timeout}")
            self.task_timeout = timeout
        retries = self.max_task_retries
        if isinstance(retries, bool) or not isinstance(retries, numbers.Integral):
            raise ValueError(
                f"max_task_retries must be an integer >= 0, got {retries!r}"
            )
        self.max_task_retries = int(retries)
        if self.max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be an integer >= 0, got {retries}"
            )

    def override(
        self,
        shards: int | None = None,
        backend: str | None = None,
        max_workers: int | None = None,
        kernel: str | None = None,
        task_timeout: float | None = None,
        max_task_retries: int | None = None,
    ) -> "EngineConfig":
        """A validated copy with per-call overrides applied (``None`` keeps
        the field)."""
        return EngineConfig(
            backend=self.backend if backend is None else backend,
            shards=self.shards if shards is None else shards,
            max_workers=self.max_workers if max_workers is None else max_workers,
            kernel=self.kernel if kernel is None else kernel,
            task_timeout=self.task_timeout if task_timeout is None else task_timeout,
            max_task_retries=(
                self.max_task_retries if max_task_retries is None else max_task_retries
            ),
        )
