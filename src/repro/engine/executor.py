"""The engine executor: shard the record budget, run backends, merge results.

RNG policy (reproducibility contract):

- ``shards=1``: the caller's generator is used directly for initialization,
  GUM, and (continuing the same stream) decoding — with the serial backend
  and the reference GUM update this reproduces the pre-engine ``sample()``
  bit for bit.
- ``shards>1``: per-shard streams are spawned from a
  :class:`numpy.random.SeedSequence` (children ``0..shards-1``; child
  ``shards`` drives decoding), so shard outputs are independent of the
  backend and of each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.backends import get_backend
from repro.engine.config import EngineConfig
from repro.engine.plan import ShardResult, SynthesisPlan, shard_sizes
from repro.synthesis.gum import GumResult
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer


@dataclass
class ExecutionResult:
    """Merged engine output: the aggregate GumResult plus the decode stream."""

    gum: GumResult
    decode_rng: np.random.Generator


def _derive_streams(
    rng, shards: int
) -> tuple[list[np.random.Generator], np.random.Generator | None]:
    """Per-shard generators plus the decode generator.

    Returns ``decode_rng=None`` for single-shard runs: the shard's generator
    itself (after synthesis) continues into decoding, preserving the legacy
    single-stream behavior.
    """
    if shards == 1:
        if isinstance(rng, np.random.SeedSequence):
            return [np.random.default_rng(rng)], None
        return [ensure_rng(rng)], None
    if isinstance(rng, np.random.SeedSequence):
        seq = rng
    elif rng is None:
        seq = np.random.SeedSequence()
    elif isinstance(rng, (int, np.integer)):
        seq = np.random.SeedSequence(int(rng))
    else:
        # A caller-owned generator: draw one entropy word (deterministic in
        # the generator's state) to root the shard tree.
        seq = np.random.SeedSequence(int(ensure_rng(rng).integers(0, 2**63 - 1)))
    children = seq.spawn(shards + 1)
    shard_rngs = [np.random.default_rng(child) for child in children[:shards]]
    return shard_rngs, np.random.default_rng(children[shards])


def _merge_errors(results: list[ShardResult], sizes: list[int]) -> list[float]:
    """Record-weighted mean error curve; shorter shards hold their last value."""
    longest = max((len(r.errors) for r in results), default=0)
    if longest == 0:
        return []
    total = float(sum(sizes))
    merged = []
    for t in range(longest):
        num = 0.0
        for result, size in zip(results, sizes):
            if not result.errors:
                continue
            err = result.errors[min(t, len(result.errors) - 1)]
            num += err * size
        merged.append(num / total if total > 0 else 0.0)
    return merged


def execute_plan(
    plan: SynthesisPlan,
    config: EngineConfig | None = None,
    n: int | None = None,
    rng=None,
) -> ExecutionResult:
    """Synthesize ``n`` encoded records under ``config``.

    The returned :class:`ExecutionResult` carries the merged
    :class:`~repro.synthesis.gum.GumResult` (shard rows concatenated in shard
    order, per-shard results attached, wall-clock timings filled in) and the
    generator the caller should decode with.
    """
    config = config or EngineConfig()
    if n is None:
        n = plan.default_n
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    sizes = shard_sizes(n, config.shards)
    # Single-shard runs keep the original per-cell update so existing seeds
    # reproduce the pre-engine output exactly on every backend (the backend
    # may only move work, never change it); sharded runs use the vectorized
    # update — new streams, no compatibility to preserve.
    legacy = config.shards == 1
    update_mode = plan.gum.resolved_mode("reference" if legacy else "vectorized")

    shard_rngs, decode_rng = _derive_streams(rng, config.shards)
    backend = get_backend(config.backend, config.max_workers)

    timer = Timer()
    timer.start()
    results = backend.run(plan, sizes, shard_rngs, update_mode)
    data = (
        results[0].data
        if len(results) == 1
        else np.concatenate([r.data for r in results], axis=0)
    )
    merged = GumResult(
        data=data,
        errors=_merge_errors(results, sizes),
        iterations_run=max((r.iterations_run for r in results), default=0),
        seconds=timer.stop(),
        backend=config.backend,
        shards=config.shards,
        shard_results=results,
    )
    if decode_rng is None:
        # Continue the single shard's stream (round-tripped through pickling
        # for the process backend, so the state is exactly the post-GUM one).
        decode_rng = results[0].rng
        if isinstance(rng, np.random.Generator) and decode_rng is not rng:
            # Process backend advanced a pickled copy; fold the state back
            # into the caller's generator so every backend mutates it
            # identically (callers may keep drawing from it afterwards).
            rng.bit_generator.state = decode_rng.bit_generator.state
            decode_rng = rng
    return ExecutionResult(gum=merged, decode_rng=decode_rng)
