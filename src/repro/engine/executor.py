"""The engine executor: shard the record budget, run backends, merge results.

RNG policy (reproducibility contract):

- ``shards=1``: the caller's generator is used directly for initialization,
  GUM, and (continuing the same stream) decoding — with the serial backend
  and the reference GUM update this reproduces the pre-engine ``sample()``
  bit for bit.
- ``shards>1``: per-shard streams are spawned from a
  :class:`numpy.random.SeedSequence`.  GUM shards use children
  ``0..shards-1``; decoding uses children ``shards..2*shards-1`` (one decode
  stream per shard, for in-shard decoding) — the merged-decode child
  ``shards`` of the legacy encoded path is shard 0's decode stream.  Either
  way shard outputs are independent of the backend and of each other.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.engine.backends import Backend, get_backend
from repro.engine.config import EngineConfig
from repro.engine.plan import ShardResult, SynthesisPlan, shard_sizes
from repro.synthesis.gum import GumResult
from repro.synthesis.kernels import resolve_kernel_name
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer


@dataclass
class ExecutionResult:
    """Merged engine output: the aggregate GumResult plus the decode stream."""

    gum: GumResult
    decode_rng: np.random.Generator


def _root_sequence(rng) -> np.random.SeedSequence:
    """The seed-sequence root of a sharded run's RNG tree."""
    if isinstance(rng, np.random.SeedSequence):
        return rng
    if rng is None:
        return np.random.SeedSequence()
    if isinstance(rng, (int, np.integer)):
        return np.random.SeedSequence(int(rng))
    # A caller-owned generator: draw one entropy word (deterministic in
    # the generator's state) to root the shard tree.
    return np.random.SeedSequence(int(ensure_rng(rng).integers(0, 2**63 - 1)))


def _derive_streams(
    rng, shards: int, decode_per_shard: bool = False
) -> tuple[list[np.random.Generator], object]:
    """Per-shard generators plus the decode generator(s).

    Returns ``decode=None`` for single-shard runs: the shard's generator
    itself (after synthesis) continues into decoding, preserving the legacy
    single-stream behavior.  For sharded runs, ``decode`` is one generator
    (child ``shards``, the legacy merged-decode stream) or — with
    ``decode_per_shard`` — a list of ``shards`` generators (children
    ``shards..2*shards-1``).  The GUM children ``0..shards-1`` are identical
    in both modes, so the encoded shard outputs never depend on the decode
    layout.
    """
    if shards == 1:
        if isinstance(rng, np.random.SeedSequence):
            return [np.random.default_rng(rng)], None
        return [ensure_rng(rng)], None
    seq = _root_sequence(rng)
    children = seq.spawn(2 * shards if decode_per_shard else shards + 1)
    shard_rngs = [np.random.default_rng(child) for child in children[:shards]]
    if decode_per_shard:
        return shard_rngs, [np.random.default_rng(child) for child in children[shards:]]
    return shard_rngs, np.random.default_rng(children[shards])


def _merge_errors(results: list, sizes: list[int]) -> list[float]:
    """Record-weighted mean error curve; shorter shards hold their last value.

    Vectorized: curves are edge-padded into one ``(shards, longest)`` matrix
    and reduced with a single weighted matrix-vector product instead of the
    former per-iteration/per-shard Python loops.  Shards with no error curve
    contribute zero to the numerator but their records still count in the
    denominator, matching the reference semantics.
    """
    curves = [np.asarray(r.errors, dtype=np.float64) for r in results]
    longest = max((c.size for c in curves), default=0)
    if longest == 0:
        return []
    total = float(sum(sizes))
    if total <= 0:
        return [0.0] * longest
    padded = np.zeros((len(curves), longest), dtype=np.float64)
    weights = np.zeros(len(curves), dtype=np.float64)
    for i, (curve, size) in enumerate(zip(curves, sizes)):
        if curve.size:
            padded[i] = np.pad(curve, (0, longest - curve.size), mode="edge")
            weights[i] = size
    return list(weights @ padded / total)


def _strip_payloads(results: list[ShardResult]) -> list[ShardResult]:
    """Payload-free copies: keep timings/errors/iterations, drop the arrays.

    The merged matrix already holds every row, so keeping the per-shard
    ``data`` references alive inside ``GumResult.shard_results`` would double
    peak RSS for the lifetime of the result object.
    """
    return [replace(r, data=None, rng=None) for r in results]


def resolve_run_kernel(plan: SynthesisPlan, config: EngineConfig) -> str:
    """The concrete kernel name one engine run ships to every shard.

    Precedence: an explicit per-call/engine ``config.kernel`` beats the
    plan's frozen preference (which itself honors a legacy
    ``gum.update_mode`` pin); ``"auto"`` then resolves to the fastest kernel
    available on *this* host.  Resolution happens once, in the parent, so
    every shard of a run executes the same kernel — though any choice would
    produce the same bytes, since kernels are bit-identical.
    """
    name = getattr(config, "kernel", "auto")
    if name == "auto":
        name = plan.resolved_kernel()
    return resolve_kernel_name(name)


def resolve_record_count(plan: SynthesisPlan, n: int | None) -> int:
    """Validate and default the record budget of one engine run."""
    if n is None:
        n = plan.default_n
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return int(n)


def execute_plan(
    plan: SynthesisPlan,
    config: EngineConfig | None = None,
    n: int | None = None,
    rng=None,
    backend: Backend | None = None,
) -> ExecutionResult:
    """Synthesize ``n`` encoded records under ``config``.

    The returned :class:`ExecutionResult` carries the merged
    :class:`~repro.synthesis.gum.GumResult` (shard rows concatenated in shard
    order, payload-free per-shard results attached, wall-clock timings filled
    in) and the generator the caller should decode with.  ``backend`` may be
    a pre-built (possibly pool-holding) instance; by default one is created
    from the config per call.
    """
    config = config or EngineConfig()
    n = resolve_record_count(plan, n)
    sizes = shard_sizes(n, config.shards)
    # Every kernel consumes the stream identically (bit-exact parity is
    # pinned by the golden digests), so even the legacy single-shard path is
    # free to run the fastest kernel available.
    kernel = resolve_run_kernel(plan, config)

    shard_rngs, decode_rng = _derive_streams(rng, config.shards)
    if backend is None:
        backend = get_backend(
            config.backend,
            config.max_workers,
            task_timeout=config.task_timeout,
            retry=config.max_task_retries,
        )

    timer = Timer()
    timer.start()
    results = backend.run(plan, sizes, shard_rngs, kernel)
    data = (
        results[0].data
        if len(results) == 1
        else np.concatenate([r.data for r in results], axis=0)
    )
    if decode_rng is None:
        # Continue the single shard's stream (round-tripped through pickling
        # for the process backends, so the state is exactly the post-GUM one).
        decode_rng = results[0].rng
        if isinstance(rng, np.random.Generator) and decode_rng is not rng:
            # Process backend advanced a pickled copy; fold the state back
            # into the caller's generator so every backend mutates it
            # identically (callers may keep drawing from it afterwards).
            rng.bit_generator.state = decode_rng.bit_generator.state
            decode_rng = rng
    merged = GumResult(
        data=data,
        errors=_merge_errors(results, sizes),
        iterations_run=max((r.iterations_run for r in results), default=0),
        seconds=timer.stop(),
        backend=config.backend,
        shards=config.shards,
        kernel=kernel,
        shard_results=_strip_payloads(results),
        n_records=int(data.shape[0]),
    )
    return ExecutionResult(gum=merged, decode_rng=decode_rng)
