"""Execution backends: a generic map-style task executor, serial to shared-memory.

Every backend implements :meth:`Backend.run_tasks` — run a module-level
function over a list of argument tuples, returning results in task order —
plus the streaming :meth:`Backend.imap_tasks` (results yielded in task order
with a bounded submission window, the memory bound behind the streaming
synthesis API) and the shard-oriented :meth:`Backend.run` used by the
sampling engine.  Because every task result is a pure function of its
inputs, all backends produce identical results for the same inputs; the only
thing that changes is where the work runs and how results travel back.

A ``shared`` payload (e.g. the encoded data matrix, or the synthesis plan)
is passed to every task as its first argument.  The process backends ship it
to workers **once per pool** — via fork inheritance where the start method
allows it, or via the pool initializer otherwise — instead of pickling it
per task; :meth:`Backend.open` binds a persistent pool to one payload so the
shipment happens once per pool *lifetime* across many calls.

The ``shared`` backend additionally returns large ndarray results through
:mod:`multiprocessing.shared_memory` segments (see :mod:`repro.engine.shm`)
instead of the pickled result pipe.
"""

from __future__ import annotations

import abc
import multiprocessing
import threading
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.config import ALL_BACKENDS
from repro.engine.shm import (
    export_result,
    import_result,
    release_result,
    sweep_orphan_segments,
)
from repro.reliability import (
    FaultError,
    RetryPolicy,
    ShardTaskError,
    remote_traceback_of,
)
from repro.reliability.faults import (
    KIND_DROP_SHM,
    SITE_SHARD,
    SITE_SHM_EXPORT,
    maybe_fire,
)

if TYPE_CHECKING:  # import would cycle through plan -> synthesis -> marginals
    from repro.engine.plan import ShardResult, SynthesisPlan

#: Worker-side shared payload for :meth:`ProcessBackend.run_tasks` under the
#: fork start method: workers fork during ``submit`` and inherit the value
#: (spawn/forkserver ship it via the pool initializer instead).  The parent
#: only mutates it — and only submits, since that is where forks happen —
#: while holding :data:`_TASK_SHARED_LOCK`, so concurrent pools on different
#: threads can never fork a worker carrying another pool's payload.
_TASK_SHARED = None
_TASK_SHARED_LOCK = threading.Lock()


def _set_task_shared(value) -> None:
    global _TASK_SHARED
    _TASK_SHARED = value


def _call_task(fn, args):
    """Invoke one task against the worker's shared payload.

    Module-level so the process backend can pickle it; ``fn`` itself must be
    a module-level callable for the same reason.
    """
    return fn(_TASK_SHARED, *args)


def _call_task_shm(fn, args):
    """Like :func:`_call_task`, but park large array results in shared memory."""
    out = export_result(fn(_TASK_SHARED, *args))
    # Chaos hook: a ``drop_shm`` fault simulates the segment vanishing
    # between the worker's export and the parent's import — the handles
    # still travel, but the import raises FileNotFoundError (the real
    # symptom), which the parent treats as transient and retries.
    spec = maybe_fire(SITE_SHM_EXPORT)
    if spec is not None and spec.kind == KIND_DROP_SHM:
        release_result(out)
    return out


def _run_shard_task(
    plan: SynthesisPlan,
    n: int,
    rng: np.random.Generator,
    index: int,
    kernel: str,
) -> ShardResult:
    """GUM shard synthesis as a ``run_tasks`` task; ``shared`` is the plan."""
    maybe_fire(SITE_SHARD, index=index)
    return plan.run_shard(n, rng, index=index, kernel=kernel)


def _run_decoded_shard_task(
    plan: SynthesisPlan,
    n: int,
    rng: np.random.Generator,
    decode_rng: np.random.Generator,
    index: int,
    kernel: str,
):
    """Shard synthesis *plus decode* as one task (the streaming hot path)."""
    maybe_fire(SITE_SHARD, index=index)
    return plan.run_shard_decoded(n, rng, decode_rng, index=index, kernel=kernel)


class Backend(abc.ABC):
    """A strategy for running independent, order-indexed jobs.

    ``task_timeout`` bounds how long the caller waits on any one task
    result; ``retry`` is the :class:`~repro.reliability.RetryPolicy`
    governing resubmission after *transient* faults (worker death, task
    timeout, vanished shm segment).  Because every task is a pure function
    of its arguments — engine shard tasks carry their own pre-spawned
    ``SeedSequence``-child generator in the task tuple — a resubmitted task
    reproduces its original result bit-for-bit, so retrying never changes
    what a run computes, only whether it survives.  Both knobs only bind on
    the process-pool backends; in-process backends have no worker to lose.
    """

    name: str = "abstract"

    def __init__(
        self,
        max_workers: int | None = None,
        task_timeout: float | None = None,
        retry: "RetryPolicy | int | None" = None,
    ) -> None:
        self.max_workers = max_workers
        self.task_timeout = task_timeout
        if retry is None:
            retry = RetryPolicy()
        elif not isinstance(retry, RetryPolicy):
            retry = RetryPolicy(max_retries=int(retry))
        self.retry = retry

    @abc.abstractmethod
    def run_tasks(self, fn, tasks: list[tuple], shared=None) -> list:
        """Map ``fn(shared, *task)`` over ``tasks``; results in task order.

        ``fn`` must be a module-level (picklable) callable and every task a
        tuple of picklable arguments.  ``shared`` is a read-only payload each
        task receives as its first argument.
        """

    def imap_tasks(self, fn, tasks: list[tuple], shared=None, window: int | None = None):
        """Yield ``fn(shared, *task)`` results lazily, in task order.

        At most ``window`` tasks are in flight at once (default: worker count
        plus one), so a consumer that processes results as they arrive keeps
        bounded memory regardless of the task count.  The default
        implementation is eager; the concrete backends override it.
        """
        yield from self.run_tasks(fn, list(tasks), shared=shared)

    def open(self, shared=None) -> None:
        """Bind a persistent worker pool to ``shared`` (optional).

        Subsequent ``run_tasks(..., shared=<the same object>)`` calls reuse
        the pool instead of paying startup per call; other payloads still get
        a per-call pool.  Callers that ``open()`` must ``close()`` (the fit
        pipeline and ``NetDPSyn.pool()`` do both).  No-op for in-process
        backends.
        """

    def close(self) -> None:
        """Tear down the persistent pool opened by :meth:`open`, if any."""

    def run(
        self,
        plan: SynthesisPlan,
        sizes: list[int],
        rngs: list[np.random.Generator],
        kernel: str,
    ) -> list[ShardResult]:
        """Run one GUM shard per ``(size, rng)`` pair; results in shard order.

        ``kernel`` is the concrete (pre-resolved) GUM kernel name every
        shard executes with.
        """
        tasks = [
            (n, rng, index, kernel) for index, (n, rng) in enumerate(zip(sizes, rngs))
        ]
        return self.run_tasks(_run_shard_task, tasks, shared=plan)

    def _workers(self, n_tasks: int) -> int:
        limit = self.max_workers if self.max_workers is not None else n_tasks
        return max(1, min(limit, n_tasks))

    def _window(self, window: int | None) -> int:
        if window is not None:
            return max(1, int(window))
        return (self.max_workers or multiprocessing.cpu_count() or 1) + 1


class SerialBackend(Backend):
    """Run every task in the calling thread, one after another."""

    name = "serial"

    def run_tasks(self, fn, tasks, shared=None):
        return [fn(shared, *task) for task in tasks]

    def imap_tasks(self, fn, tasks, shared=None, window=None):
        # Fully lazy: one task runs per result consumed, so a streaming
        # consumer holds at most one task output at a time.
        for task in tasks:
            yield fn(shared, *task)


class ThreadBackend(Backend):
    """Run tasks on a thread pool.

    NumPy releases the GIL inside the heavy kernels (sort, bincount,
    gather), so threads overlap part of the work without any pickling cost;
    the process backends are the stronger choice for CPU-bound scaling.
    """

    name = "thread"

    def run_tasks(self, fn, tasks, shared=None):
        if not tasks:
            return []
        with ThreadPoolExecutor(max_workers=self._workers(len(tasks))) as pool:
            futures = [pool.submit(fn, shared, *task) for task in tasks]
            return [f.result() for f in futures]

    def imap_tasks(self, fn, tasks, shared=None, window=None):
        tasks = list(tasks)
        if not tasks:
            return
        window = self._window(window)
        with ThreadPoolExecutor(max_workers=self._workers(len(tasks))) as pool:
            pending: deque = deque()
            for task in tasks:
                pending.append(pool.submit(fn, shared, *task))
                while len(pending) >= window:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()


class ProcessBackend(Backend):
    """Run tasks on a process pool.

    Task arguments and results are pickled per task; the ``shared`` payload
    travels once per pool — by fork inheritance under the (Linux-default)
    fork start method, through the pool initializer otherwise.  Sidesteps
    the GIL entirely.  :meth:`open` binds a persistent pool to one payload so
    consecutive ``run_tasks`` calls (e.g. the fit pipeline's selection and
    publish stages, or every chunk of one streaming ``sample_to``) share a
    single worker startup and a single payload shipment.
    """

    name = "process"

    #: Worker-side wrapper each task is submitted through; the shared-memory
    #: subclass swaps in the shm-exporting variant.  Must be module-level so
    #: the pool can pickle it.
    _caller = staticmethod(_call_task)

    def __init__(
        self,
        max_workers: int | None = None,
        task_timeout: float | None = None,
        retry: "RetryPolicy | int | None" = None,
    ) -> None:
        super().__init__(max_workers, task_timeout=task_timeout, retry=retry)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_shared = None

    @staticmethod
    def _forking() -> bool:
        return multiprocessing.get_start_method() == "fork"

    def _finish(self, raw):
        """Post-process one raw future result (hook for the shm subclass)."""
        return raw

    def _discard(self, raw) -> None:
        """Dispose of a raw result that will never be finished (shm hook)."""

    def _drain(self, futures) -> None:
        """Consume and discard unfinished futures so no result leaks.

        Called on every teardown path — early generator exit, a failed
        sibling task — because the shared-memory subclass parks results in
        ``/dev/shm`` segments that only die when imported or released.
        """
        for future in futures:
            try:
                raw = future.result()
            except BaseException:
                continue
            try:
                self._discard(raw)
            except BaseException:  # pragma: no cover - best-effort cleanup
                pass

    def _make_pool(self, workers: int, shared) -> ProcessPoolExecutor:
        """A pool whose (lazily forked) workers will carry ``shared``.

        Under fork, :meth:`_submit_one` re-asserts the module global around
        every submit (forks happen synchronously inside ``submit``); under
        spawn/forkserver the initializer pickles the payload once per worker.
        """
        if self._forking():
            return ProcessPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(
            max_workers=workers, initializer=_set_task_shared, initargs=(shared,)
        )

    def _submit_one(self, pool: ProcessPoolExecutor, shared, fn, task):
        """Submit one task; under fork, pin the payload global meanwhile.

        Worker processes are forked inside ``submit`` when the pool is below
        its worker cap, so holding the lock across the call guarantees each
        fork inherits this pool's payload even with concurrent pools on
        other threads.
        """
        if not self._forking():
            return pool.submit(self._caller, fn, task)
        with _TASK_SHARED_LOCK:
            _set_task_shared(shared)
            try:
                return pool.submit(self._caller, fn, task)
            finally:
                _set_task_shared(None)

    def open(self, shared=None) -> None:
        self.close()
        workers = self.max_workers or (multiprocessing.cpu_count() or 1)
        self._pool = self._make_pool(workers, shared)
        self._pool_shared = shared

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_shared = None

    def _pool_for(self, shared, n_tasks: int) -> tuple[ProcessPoolExecutor, bool]:
        """The persistent pool when it carries ``shared``, else a fresh one.

        A persistent pool that broke under a previous call (a worker died
        and the failure escaped past recovery) is rebuilt in place before
        reuse, so one faulted run never poisons the next.
        """
        if self._pool is not None and shared is self._pool_shared:
            if getattr(self._pool, "_broken", False):
                self._kill_pool(self._pool)
                self._after_failure()
                workers = self.max_workers or (multiprocessing.cpu_count() or 1)
                self._pool = self._make_pool(workers, shared)
            return self._pool, True
        return self._make_pool(self._workers(n_tasks), shared), False

    # -------------------------------------------------------------- recovery
    @staticmethod
    def _transient(exc: BaseException) -> bool:
        """Failures worth resubmitting: the *worker* died, stalled, or lost a
        result in transit — never the task function raising, which would
        deterministically raise again."""
        return isinstance(exc, (TimeoutError, BrokenExecutor, FaultError))

    def _shard_error(
        self, index: int, exc: BaseException, attempts: int, transient: bool = False
    ) -> ShardTaskError:
        kind = "transient fault" if transient else "failure"
        return ShardTaskError(
            f"task {index} failed after {attempts} attempt(s) "
            f"({kind}: {type(exc).__name__}: {exc})",
            index=index,
            attempts=attempts,
            transient=transient,
            remote_traceback=remote_traceback_of(exc),
        )

    def _kill_pool(self, pool: ProcessPoolExecutor) -> None:
        """Tear down a broken or hung pool without waiting for its tasks."""
        procs = list((getattr(pool, "_processes", None) or {}).values())
        for proc in procs:
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - process already reaped
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM was ignored
                proc.kill()
                proc.join(timeout=1.0)

    def _after_failure(self) -> None:
        """Post-teardown hook (the shm subclass sweeps orphan segments)."""

    def _rebuild(
        self, pool: ProcessPoolExecutor, reuse: bool, shared, n_tasks: int
    ) -> tuple[ProcessPoolExecutor, bool]:
        """Kill a faulted pool, reclaim its leftovers, stand up a successor.

        A persistent pool is replaced *as* the persistent pool (still bound
        to its payload), so recovery is invisible to ``open()``/``close()``
        callers.
        """
        self._kill_pool(pool)
        self._after_failure()
        if reuse:
            workers = self.max_workers or (multiprocessing.cpu_count() or 1)
            self._pool = self._make_pool(workers, shared)
            self._pool_shared = shared
            return self._pool, True
        return self._make_pool(self._workers(n_tasks), shared), False

    def _dispose(self, pool: ProcessPoolExecutor, reuse: bool) -> None:
        """Final teardown after giving up on a faulted pool."""
        self._kill_pool(pool)
        self._after_failure()
        if reuse:
            self._pool = None
            self._pool_shared = None

    def _consume(self, futures: list, results: list, tries: dict):
        """Wait for every submitted ``(index, future)`` pair, in index order.

        Successful results are finished (shm handles imported) here,
        *before* any pool teardown — the recovery path's orphan sweep would
        otherwise destroy completed-but-unimported segments.  Returns
        ``(failed_indices, (index, cause))`` on transient faults (the listed
        tasks must be resubmitted); raises :class:`ShardTaskError` outright
        when a task function failed deterministically.
        """
        failed: list[int] = []
        cause = None
        salvage = False
        for pos, (idx, future) in enumerate(futures):
            if salvage and not future.done():
                # Already giving up on this pool; whatever is still running
                # dies with it and reruns on the successor.
                failed.append(idx)
                continue
            try:
                raw = future.result(timeout=self.task_timeout)
            except Exception as exc:
                if self._transient(exc):
                    if cause is None:
                        cause = (idx, exc)
                    failed.append(idx)
                    salvage = True
                    continue
                self._drain(f for _, f in futures[pos + 1 :])
                raise self._shard_error(idx, exc, tries[idx]) from exc
            try:
                results[idx] = self._finish(raw)
            except FileNotFoundError as exc:
                # The segment behind a completed task vanished before import:
                # rerun just that task.
                if cause is None:
                    cause = (idx, exc)
                failed.append(idx)
        return failed, cause

    def run_tasks(self, fn, tasks, shared=None):
        if not tasks:
            return []
        pool, reuse = self._pool_for(shared, len(tasks))
        results = [None] * len(tasks)
        remaining = list(range(len(tasks)))
        tries = dict.fromkeys(remaining, 0)
        round_no = 0
        try:
            while remaining:
                futures = []
                submit_exc = None
                for idx in remaining:
                    try:
                        futures.append(
                            (idx, self._submit_one(pool, shared, fn, tasks[idx]))
                        )
                    except BrokenExecutor as exc:
                        # The pool died while the round was still being fed;
                        # everything unsubmitted joins the retry round.
                        submit_exc = exc
                        break
                    tries[idx] += 1
                failed, cause = self._consume(futures, results, tries)
                if submit_exc is not None:
                    failed = failed + remaining[len(futures) :]
                    if cause is None:
                        cause = (remaining[len(futures)], submit_exc)
                if not failed:
                    break
                index, exc = cause
                round_no += 1
                if not self.retry.retryable(round_no):
                    self._dispose(pool, reuse)
                    raise self._shard_error(
                        index, exc, tries[index], transient=True
                    ) from exc
                pool, reuse = self._rebuild(pool, reuse, shared, len(failed))
                self.retry.sleep(round_no)
                remaining = failed
            return results
        finally:
            if not reuse:
                pool.shutdown()

    def imap_tasks(self, fn, tasks, shared=None, window=None):
        tasks = list(tasks)
        if not tasks:
            return
        window = self._window(window)
        pool, reuse = self._pool_for(shared, len(tasks))
        pending: deque = deque()  # (index, future), always in index order
        ready: dict = {}  # results recovered ahead of their emission turn
        tries: dict[int, int] = {}
        emit = 0
        submit = 0
        round_no = 0
        try:
            while emit < len(tasks):
                if emit in ready:
                    yield ready.pop(emit)
                    emit += 1
                    continue
                fault = None  # (index, exc) of this turn's transient fault
                try:
                    # Fill the window.  A submit-time BrokenExecutor means a
                    # worker died while the pool was still being fed; it is
                    # recovered exactly like a mid-task death.
                    while submit < len(tasks) and len(pending) < window:
                        future = self._submit_one(pool, shared, fn, tasks[submit])
                        tries[submit] = tries.get(submit, 0) + 1
                        pending.append((submit, future))
                        submit += 1
                except BrokenExecutor as exc:
                    tries.setdefault(submit, 0)
                    fault = (submit, exc)
                if fault is None:
                    idx, future = pending[0]
                    try:
                        raw = future.result(timeout=self.task_timeout)
                    except Exception as exc:
                        if not self._transient(exc):
                            pending.popleft()
                            raise self._shard_error(idx, exc, tries[idx]) from exc
                        fault = (idx, exc)
                    else:
                        pending.popleft()
                        try:
                            ready[idx] = self._finish(raw)
                            continue
                        except FileNotFoundError as exc:
                            # The segment behind the head result vanished
                            # before import; requeue its future so the
                            # salvage pass below classifies it for rerun.
                            pending.appendleft((idx, future))
                            fault = (idx, exc)
                # Transient fault: salvage in-window siblings that finished
                # before the fault (importing their shm results *pre-sweep*),
                # then rerun everything else on a fresh pool.
                index, exc = fault
                round_no += 1
                if not self.retry.retryable(round_no):
                    pending.clear()
                    self._dispose(pool, reuse)
                    raise self._shard_error(
                        index, exc, tries.get(index, 1), transient=True
                    ) from exc
                refire: list[int] = []
                for j, f in pending:
                    if f.done():
                        try:
                            ready[j] = self._finish(f.result())
                            continue
                        except Exception:
                            pass
                    refire.append(j)
                pending.clear()
                pool, reuse = self._rebuild(pool, reuse, shared, max(len(refire), 1))
                self.retry.sleep(round_no)
                for j in refire:
                    tries[j] += 1
                    pending.append((j, self._submit_one(pool, shared, fn, tasks[j])))
        finally:
            # Runs when the consumer abandons the generator (GeneratorExit)
            # or a task raises: the in-flight futures must still be reaped so
            # exported shm results are released, not leaked.
            self._drain(f for _, f in pending)
            if not reuse:
                pool.shutdown()


class SharedMemoryBackend(ProcessBackend):
    """A process pool whose large array results bypass the result pipe.

    Identical task semantics to :class:`ProcessBackend` — the payload still
    ships once per pool, results still arrive in task order — but any result
    containing big numeric ndarrays (shard matrices, decoded trace columns)
    comes back as :mod:`multiprocessing.shared_memory` segments: the worker
    copies the array into a segment and sends a name-sized handle; the
    parent attaches a view, materializes it, and unlinks.  One memcpy
    replaces the pickle-encode/pipe/pickle-decode round trip, which is what
    the per-shard serialization cost is mostly made of.  See
    :mod:`repro.engine.shm` for the ownership protocol.
    """

    name = "shared"

    _caller = staticmethod(_call_task_shm)

    def _finish(self, raw):
        return import_result(raw)

    def _discard(self, raw):
        release_result(raw)

    def _drain(self, futures) -> None:
        """Reap futures, then sweep segments orphaned by dead workers.

        A worker killed between exporting a segment and the parent importing
        it leaves no handle to release — every future it touched raises —
        but its segment names are reconstructable (they embed this pid and
        the worker's), so the sweep reclaims them here, on every teardown
        path.  Live workers' segments are never touched.
        """
        super()._drain(futures)
        sweep_orphan_segments()

    def _after_failure(self) -> None:
        """Recovery hook: reclaim segments orphaned by the workers that just
        died.  Runs strictly after :meth:`_consume` imported the survivors,
        so only results nobody will ever import are destroyed."""
        sweep_orphan_segments()

    def close(self) -> None:
        super().close()
        sweep_orphan_segments()


def scatter_map(executor: Backend, fn, items: list, shared=None, n_chunks=None) -> list:
    """Chunked map: run ``fn(shared, chunk)`` per chunk, return per-item results.

    Items are dealt round-robin into ``n_chunks`` chunks (default: one per
    executor worker, falling back to the core count when the executor has no
    worker cap), so heterogeneous per-item costs spread evenly.  ``fn``
    receives a list of items and must return one result per item, in order;
    the per-item results are reassembled into the original item order.
    """
    if not items:
        return []
    if n_chunks is None:
        n_chunks = executor.max_workers or (multiprocessing.cpu_count() or 1)
    k = max(1, min(int(n_chunks), len(items)))
    chunks = [items[i::k] for i in range(k)]
    chunk_results = executor.run_tasks(fn, [(chunk,) for chunk in chunks], shared=shared)
    out = [None] * len(items)
    for i, results in enumerate(chunk_results):
        if len(results) != len(chunks[i]):
            raise RuntimeError(
                f"task returned {len(results)} results for {len(chunks[i])} items"
            )
        for j, value in enumerate(results):
            out[i + j * k] = value
    return out


_BACKEND_CLASSES = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
    SharedMemoryBackend.name: SharedMemoryBackend,
}


def get_backend(
    name: str,
    max_workers: int | None = None,
    *,
    task_timeout: float | None = None,
    retry: "RetryPolicy | int | None" = None,
) -> Backend:
    """Instantiate a backend by name (``serial``, ``thread``, ``process``,
    ``shared``, ``fleet``).

    ``task_timeout`` bounds the wait on any single task result;
    ``retry`` (a :class:`~repro.reliability.RetryPolicy`, or an int for
    ``max_retries``) governs resubmission after transient worker faults.
    The ``fleet`` backend dispatches to the active
    :class:`repro.fleet.LocalCluster` context (imported lazily: the fleet
    package depends on this module).
    """
    if name == "fleet":
        from repro.fleet.backend import FleetBackend

        return FleetBackend(
            max_workers=max_workers, task_timeout=task_timeout, retry=retry
        )
    try:
        cls = _BACKEND_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"backend must be one of {ALL_BACKENDS}, got {name!r}"
        ) from None
    return cls(max_workers=max_workers, task_timeout=task_timeout, retry=retry)
