"""Execution backends: serial, thread, and process shard runners.

Every backend receives the same ``(plan, sizes, rngs, update_mode)`` inputs
and must return shard results in shard order.  Because each shard's output is
a pure function of ``(plan, size, generator state)``, all backends produce
bit-identical results for the same seeds — the only thing that changes is
where the work runs.
"""

from __future__ import annotations

import abc
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.engine.config import BACKENDS
from repro.engine.plan import ShardResult, SynthesisPlan


def _run_shard(
    plan: SynthesisPlan,
    n: int,
    rng: np.random.Generator,
    index: int,
    update_mode: str,
) -> ShardResult:
    """Module-level shard worker (must be picklable for the process pool)."""
    return plan.run_shard(n, rng, index=index, update_mode=update_mode)


class Backend(abc.ABC):
    """A strategy for running independent shard synthesis jobs."""

    name: str = "abstract"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers

    @abc.abstractmethod
    def run(
        self,
        plan: SynthesisPlan,
        sizes: list[int],
        rngs: list[np.random.Generator],
        update_mode: str,
    ) -> list[ShardResult]:
        """Run one shard per ``(size, rng)`` pair; results in shard order."""

    def _workers(self, n_shards: int) -> int:
        limit = self.max_workers if self.max_workers is not None else n_shards
        return max(1, min(limit, n_shards))


class SerialBackend(Backend):
    """Run every shard in the calling thread, one after another."""

    name = "serial"

    def run(self, plan, sizes, rngs, update_mode):
        return [
            _run_shard(plan, n, rng, index, update_mode)
            for index, (n, rng) in enumerate(zip(sizes, rngs))
        ]


class ThreadBackend(Backend):
    """Run shards on a thread pool.

    NumPy releases the GIL inside the heavy kernels (sort, bincount,
    gather), so threads overlap part of the work without any pickling cost;
    the process backend is the stronger choice for CPU-bound scaling.
    """

    name = "thread"

    def run(self, plan, sizes, rngs, update_mode):
        with ThreadPoolExecutor(max_workers=self._workers(len(sizes))) as pool:
            futures = [
                pool.submit(_run_shard, plan, n, rng, index, update_mode)
                for index, (n, rng) in enumerate(zip(sizes, rngs))
            ]
            return [f.result() for f in futures]


class ProcessBackend(Backend):
    """Run shards on a process pool.

    The plan and each shard's generator are pickled to the workers; results
    (including the advanced generator state) are pickled back.  Sidesteps the
    GIL entirely, at the cost of per-task serialization of the plan.
    """

    name = "process"

    def run(self, plan, sizes, rngs, update_mode):
        with ProcessPoolExecutor(max_workers=self._workers(len(sizes))) as pool:
            futures = [
                pool.submit(_run_shard, plan, n, rng, index, update_mode)
                for index, (n, rng) in enumerate(zip(sizes, rngs))
            ]
            return [f.result() for f in futures]


_BACKEND_CLASSES = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def get_backend(name: str, max_workers: int | None = None) -> Backend:
    """Instantiate a backend by name (``serial``, ``thread``, ``process``)."""
    try:
        cls = _BACKEND_CLASSES[name]
    except KeyError:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}") from None
    return cls(max_workers=max_workers)
