"""Execution backends: a generic map-style task executor, serial/thread/process.

Every backend implements :meth:`Backend.run_tasks` — run a module-level
function over a list of argument tuples, returning results in task order —
plus the shard-oriented :meth:`Backend.run` used by the sampling engine,
which is a thin wrapper over ``run_tasks``.  Because every task result is a
pure function of its inputs, all backends produce identical results for the
same inputs; the only thing that changes is where the work runs.

A ``shared`` payload (e.g. the encoded data matrix, or the synthesis plan)
is passed to every task as its first argument.  The process backend ships it
to workers **once** — via fork inheritance where the start method allows it,
or via the pool initializer otherwise — instead of pickling it per task.
"""

from __future__ import annotations

import abc
import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.config import BACKENDS

if TYPE_CHECKING:  # import would cycle through plan -> synthesis -> marginals
    from repro.engine.plan import ShardResult, SynthesisPlan

#: Worker-side shared payload for :meth:`ProcessBackend.run_tasks` under the
#: fork start method: workers fork during ``submit`` and inherit the value
#: (spawn/forkserver ship it via the pool initializer instead).  The parent
#: only mutates it — and only submits, since that is where forks happen —
#: while holding :data:`_TASK_SHARED_LOCK`, so concurrent pools on different
#: threads can never fork a worker carrying another pool's payload.
_TASK_SHARED = None
_TASK_SHARED_LOCK = threading.Lock()


def _set_task_shared(value) -> None:
    global _TASK_SHARED
    _TASK_SHARED = value


def _call_task(fn, args):
    """Invoke one task against the worker's shared payload.

    Module-level so the process backend can pickle it; ``fn`` itself must be
    a module-level callable for the same reason.
    """
    return fn(_TASK_SHARED, *args)


def _run_shard_task(
    plan: SynthesisPlan,
    n: int,
    rng: np.random.Generator,
    index: int,
    update_mode: str,
) -> ShardResult:
    """GUM shard synthesis as a ``run_tasks`` task; ``shared`` is the plan."""
    return plan.run_shard(n, rng, index=index, update_mode=update_mode)


class Backend(abc.ABC):
    """A strategy for running independent, order-indexed jobs."""

    name: str = "abstract"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers

    @abc.abstractmethod
    def run_tasks(self, fn, tasks: list[tuple], shared=None) -> list:
        """Map ``fn(shared, *task)`` over ``tasks``; results in task order.

        ``fn`` must be a module-level (picklable) callable and every task a
        tuple of picklable arguments.  ``shared`` is a read-only payload each
        task receives as its first argument.
        """

    def open(self, shared=None) -> None:
        """Bind a persistent worker pool to ``shared`` (optional).

        Subsequent ``run_tasks(..., shared=<the same object>)`` calls reuse
        the pool instead of paying startup per call; other payloads still get
        a per-call pool.  Callers that ``open()`` must ``close()`` (the fit
        pipeline does both).  No-op for in-process backends.
        """

    def close(self) -> None:
        """Tear down the persistent pool opened by :meth:`open`, if any."""

    def run(
        self,
        plan: SynthesisPlan,
        sizes: list[int],
        rngs: list[np.random.Generator],
        update_mode: str,
    ) -> list[ShardResult]:
        """Run one GUM shard per ``(size, rng)`` pair; results in shard order."""
        tasks = [
            (n, rng, index, update_mode)
            for index, (n, rng) in enumerate(zip(sizes, rngs))
        ]
        return self.run_tasks(_run_shard_task, tasks, shared=plan)

    def _workers(self, n_tasks: int) -> int:
        limit = self.max_workers if self.max_workers is not None else n_tasks
        return max(1, min(limit, n_tasks))


class SerialBackend(Backend):
    """Run every task in the calling thread, one after another."""

    name = "serial"

    def run_tasks(self, fn, tasks, shared=None):
        return [fn(shared, *task) for task in tasks]


class ThreadBackend(Backend):
    """Run tasks on a thread pool.

    NumPy releases the GIL inside the heavy kernels (sort, bincount,
    gather), so threads overlap part of the work without any pickling cost;
    the process backend is the stronger choice for CPU-bound scaling.
    """

    name = "thread"

    def run_tasks(self, fn, tasks, shared=None):
        if not tasks:
            return []
        with ThreadPoolExecutor(max_workers=self._workers(len(tasks))) as pool:
            futures = [pool.submit(fn, shared, *task) for task in tasks]
            return [f.result() for f in futures]


class ProcessBackend(Backend):
    """Run tasks on a process pool.

    Task arguments and results are pickled per task; the ``shared`` payload
    travels once per pool — by fork inheritance under the (Linux-default)
    fork start method, through the pool initializer otherwise.  Sidesteps
    the GIL entirely.  :meth:`open` binds a persistent pool to one payload so
    consecutive ``run_tasks`` calls (e.g. the fit pipeline's selection and
    publish stages) share a single worker startup.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__(max_workers)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_shared = None

    @staticmethod
    def _forking() -> bool:
        return multiprocessing.get_start_method() == "fork"

    def _make_pool(self, workers: int, shared) -> ProcessPoolExecutor:
        """A pool whose (lazily forked) workers will carry ``shared``.

        Under fork, :meth:`_submit_all` re-asserts the module global before
        every submit batch (forks happen synchronously inside ``submit``);
        under spawn/forkserver the initializer pickles the payload once per
        worker.
        """
        if self._forking():
            return ProcessPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(
            max_workers=workers, initializer=_set_task_shared, initargs=(shared,)
        )

    def _submit_all(self, pool: ProcessPoolExecutor, shared, fn, tasks) -> list:
        """Submit every task; under fork, pin the payload global meanwhile.

        Worker processes are forked inside ``submit`` when the pool is below
        its worker cap, so holding the lock across the submit loop guarantees
        each fork inherits this pool's payload even with concurrent pools on
        other threads.
        """
        if not self._forking():
            return [pool.submit(_call_task, fn, task) for task in tasks]
        with _TASK_SHARED_LOCK:
            _set_task_shared(shared)
            try:
                return [pool.submit(_call_task, fn, task) for task in tasks]
            finally:
                _set_task_shared(None)

    def open(self, shared=None) -> None:
        self.close()
        workers = self.max_workers or (multiprocessing.cpu_count() or 1)
        self._pool = self._make_pool(workers, shared)
        self._pool_shared = shared

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_shared = None

    def run_tasks(self, fn, tasks, shared=None):
        if not tasks:
            return []
        if self._pool is not None and shared is self._pool_shared:
            futures = self._submit_all(self._pool, shared, fn, tasks)
            return [f.result() for f in futures]
        pool = self._make_pool(self._workers(len(tasks)), shared)
        try:
            futures = self._submit_all(pool, shared, fn, tasks)
            return [f.result() for f in futures]
        finally:
            pool.shutdown()


def scatter_map(executor: Backend, fn, items: list, shared=None, n_chunks=None) -> list:
    """Chunked map: run ``fn(shared, chunk)`` per chunk, return per-item results.

    Items are dealt round-robin into ``n_chunks`` chunks (default: one per
    executor worker, falling back to the core count when the executor has no
    worker cap), so heterogeneous per-item costs spread evenly.  ``fn``
    receives a list of items and must return one result per item, in order;
    the per-item results are reassembled into the original item order.
    """
    if not items:
        return []
    if n_chunks is None:
        n_chunks = executor.max_workers or (multiprocessing.cpu_count() or 1)
    k = max(1, min(int(n_chunks), len(items)))
    chunks = [items[i::k] for i in range(k)]
    chunk_results = executor.run_tasks(fn, [(chunk,) for chunk in chunks], shared=shared)
    out = [None] * len(items)
    for i, results in enumerate(chunk_results):
        if len(results) != len(chunks[i]):
            raise RuntimeError(
                f"task returned {len(results)} results for {len(chunks[i])} items"
            )
        for j, value in enumerate(results):
            out[i + j * k] = value
    return out


_BACKEND_CLASSES = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def get_backend(name: str, max_workers: int | None = None) -> Backend:
    """Instantiate a backend by name (``serial``, ``thread``, ``process``)."""
    try:
        cls = _BACKEND_CLASSES[name]
    except KeyError:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}") from None
    return cls(max_workers=max_workers)
