"""Streaming execution plane: decode in the shards, emit bounded-size chunks.

The legacy release path funnels every shard's encoded rows back into one
process, decodes the whole matrix on a single stream, and holds the full
trace in RAM.  This module pushes :meth:`SynthesisPlan.finalize` into the
shards — each shard decodes its own rows with its own spawned decode stream
(``SeedSequence`` children ``shards..2*shards-1``) — and exposes the result
two ways:

- :func:`execute_plan_decoded` — the in-memory path ``sample()`` uses for
  sharded runs: decoded shard tables are concatenated in shard order, the
  encoded matrices never leave the workers;
- :func:`execute_plan_stream` — a generator of decoded
  :class:`~repro.data.table.TraceTable` chunks with a bounded number of
  shards in flight (``Backend.imap_tasks``), so a loaded model can emit
  arbitrarily many records at bounded RSS.

Both paths share the GUM children ``0..shards-1`` with the encoded path, so
for a given ``(seed, shards)`` the synthesized rows are identical everywhere;
only where decoding happens differs.  ``shards=1`` keeps the legacy
single-stream synthesize-then-decode behavior bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.table import TraceTable
from repro.engine.backends import Backend, _run_decoded_shard_task, get_backend
from repro.engine.config import EngineConfig
from repro.engine.executor import (
    _derive_streams,
    _merge_errors,
    execute_plan,
    resolve_record_count,
    resolve_run_kernel,
)
from repro.engine.plan import SynthesisPlan, shard_sizes
from repro.synthesis.gum import GumResult
from repro.utils.timer import Timer

#: Default rows per streamed chunk (and per auto-derived shard).
DEFAULT_CHUNK = 100_000


@dataclass
class DecodedResult:
    """A fully decoded engine run: the trace plus the merged GUM metadata."""

    table: TraceTable
    gum: GumResult


class _ChunkBuffer:
    """Re-slice decoded shard tables into exact chunk-sized tables.

    Holds at most ``chunk + max_shard_size`` rows at a time: shards are
    pushed as they complete and popped row-exactly, preserving shard order,
    so the stream's concatenation is identical to the in-memory merge.

    Popped chunks are stitched into fresh arenas (``concat_all``), never
    views over the shard tables, so a shard table pushed here dies — and its
    shm arena capsule unlinks the backing segment — as soon as its last row
    is popped, keeping the stream's ``/dev/shm`` footprint bounded by the
    in-flight window exactly like its RSS.
    """

    def __init__(self) -> None:
        self._parts: list[TraceTable] = []
        self.rows = 0

    def push(self, table: TraceTable) -> None:
        if table.n_records:
            self._parts.append(table)
            self.rows += table.n_records

    def pop(self, k: int) -> TraceTable:
        """The next ``min(k, rows)`` buffered rows as one table."""
        take: list[TraceTable] = []
        need = min(k, self.rows)
        taken = need
        while need:
            head = self._parts[0]
            if head.n_records <= need:
                take.append(self._parts.pop(0))
                need -= head.n_records
            else:
                take.append(head.take(np.arange(need)))
                self._parts[0] = head.take(np.arange(need, head.n_records))
                need = 0
        self.rows -= taken
        return TraceTable.concat_all(take)


@dataclass
class _ShardAccumulator:
    """Collects per-shard metadata while tables stream past."""

    sizes: list
    kernel: str = ""
    metas: list = field(default_factory=list)

    def add(self, decoded) -> TraceTable:
        self.metas.append(decoded.meta())
        return decoded.table

    def merged(self, config: EngineConfig, seconds: float, n: int) -> GumResult:
        return GumResult(
            data=None,
            errors=_merge_errors(self.metas, self.sizes),
            iterations_run=max((m.iterations_run for m in self.metas), default=0),
            seconds=seconds,
            backend=config.backend,
            shards=config.shards,
            kernel=self.kernel,
            shard_results=self.metas,
            n_records=n,
        )


def _decoded_tasks(plan: SynthesisPlan, config: EngineConfig, n: int, rng):
    """The per-shard (task list, sizes) for an in-shard-decode run."""
    sizes = shard_sizes(n, config.shards)
    kernel = resolve_run_kernel(plan, config)
    shard_rngs, decode_rngs = _derive_streams(rng, config.shards, decode_per_shard=True)
    tasks = [
        (size, shard_rng, decode_rng, index, kernel)
        for index, (size, shard_rng, decode_rng) in enumerate(
            zip(sizes, shard_rngs, decode_rngs)
        )
    ]
    return tasks, sizes, kernel


def _legacy_decoded(
    plan: SynthesisPlan,
    config: EngineConfig,
    n: int,
    rng,
    backend: Backend | None,
) -> DecodedResult:
    """``shards=1``: the golden synthesize-then-decode single stream."""
    out = execute_plan(plan, config, n=n, rng=rng, backend=backend)
    table = plan.finalize(out.gum.data, out.decode_rng)
    return DecodedResult(table=table, gum=out.gum)


def execute_plan_decoded(
    plan: SynthesisPlan,
    config: EngineConfig | None = None,
    n: int | None = None,
    rng=None,
    backend: Backend | None = None,
) -> DecodedResult:
    """Synthesize and decode ``n`` records, decoding inside the shards.

    For ``shards=1`` this is exactly the legacy path (same golden digests);
    for sharded runs each worker returns a finished trace slice and the
    slices are concatenated in shard order — the merged encoded matrix is
    never materialized (``gum.data is None``).
    """
    config = config or EngineConfig()
    n = resolve_record_count(plan, n)
    if config.shards == 1:
        return _legacy_decoded(plan, config, n, rng, backend)
    if backend is None:
        backend = get_backend(
            config.backend,
            config.max_workers,
            task_timeout=config.task_timeout,
            retry=config.max_task_retries,
        )
    tasks, sizes, kernel = _decoded_tasks(plan, config, n, rng)
    timer = Timer()
    timer.start()
    acc = _ShardAccumulator(sizes=sizes, kernel=kernel)
    tables = [
        acc.add(decoded)
        for decoded in backend.run_tasks(_run_decoded_shard_task, tasks, shared=plan)
    ]
    table = TraceTable.concat_all(tables)
    return DecodedResult(table=table, gum=acc.merged(config, timer.stop(), n))


def execute_plan_stream(
    plan: SynthesisPlan,
    config: EngineConfig | None = None,
    n: int | None = None,
    rng=None,
    chunk: int = DEFAULT_CHUNK,
    backend: Backend | None = None,
    window: int | None = None,
    on_complete=None,
):
    """Yield the decoded trace as chunks of exactly ``chunk`` rows.

    The concatenation of the yielded chunks is digest-identical to
    :func:`execute_plan_decoded` (and, for ``shards=1``, to the legacy
    ``sample()``) for the same ``(n, rng, shards)`` — chunking only re-slices
    the shard stream, it never changes content.  At most ``window`` shards
    (default: worker count + 1) are in flight, so peak memory is bounded by
    the shard and chunk sizes, not by ``n``.  ``on_complete`` (if given)
    receives the merged :class:`~repro.synthesis.gum.GumResult` after the
    last chunk is yielded.

    Arguments are validated eagerly, at call time: a bad ``n`` or ``chunk``
    raises here, not at the first ``next()`` on the returned generator.
    """
    config = config or EngineConfig()
    n = resolve_record_count(plan, n)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    return _stream_chunks(plan, config, n, rng, chunk, backend, window, on_complete)


def _stream_chunks(
    plan: SynthesisPlan,
    config: EngineConfig,
    n: int,
    rng,
    chunk: int,
    backend: Backend | None,
    window: int | None,
    on_complete,
):
    if config.shards == 1:
        out = _legacy_decoded(plan, config, n, rng, backend)
        for start in range(0, n, chunk):
            yield out.table.take(np.arange(start, min(start + chunk, n)))
        if on_complete is not None:
            on_complete(out.gum)
        return

    own_backend = backend is None
    if own_backend:
        backend = get_backend(
            config.backend,
            config.max_workers,
            task_timeout=config.task_timeout,
            retry=config.max_task_retries,
        )
    tasks, sizes, kernel = _decoded_tasks(plan, config, n, rng)
    timer = Timer()
    timer.start()
    acc = _ShardAccumulator(sizes=sizes, kernel=kernel)
    buffer = _ChunkBuffer()
    try:
        for decoded in backend.imap_tasks(
            _run_decoded_shard_task, tasks, shared=plan, window=window
        ):
            buffer.push(acc.add(decoded))
            while buffer.rows >= chunk:
                yield buffer.pop(chunk)
        while buffer.rows:
            yield buffer.pop(chunk)
    finally:
        if own_backend:
            backend.close()
    if on_complete is not None:
        on_complete(acc.merged(config, timer.stop(), n))
