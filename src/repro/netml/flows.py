"""Packet-to-flow aggregation (IP 5-tuple), as NetML performs it."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import TraceTable


@dataclass
class Flow:
    """One aggregated flow: sorted packet timestamps and sizes."""

    timestamps: np.ndarray
    sizes: np.ndarray

    @property
    def n_packets(self) -> int:
        return len(self.timestamps)

    @property
    def duration(self) -> float:
        return float(self.timestamps[-1] - self.timestamps[0])

    @property
    def iats(self) -> np.ndarray:
        """Inter-arrival times (length n_packets - 1)."""
        return np.diff(self.timestamps)


def build_flows(
    table: TraceTable,
    min_packets: int = 2,
    size_field: str = "pkt_len",
) -> list:
    """Group a packet trace into flows with at least ``min_packets`` packets.

    NetML only accepts flows with two or more packets (paper §4.3); traces
    whose synthesis destroyed flow structure can legitimately produce an
    empty list — the caller surfaces that as the paper's "NaN".
    """
    if size_field not in table.schema:
        raise KeyError(f"packet table lacks {size_field!r}")
    key = table.schema.effective_flow_key()
    if not key:
        raise ValueError("schema has no flow key fields")
    groups = table.group_ids(key)
    ts = np.asarray(table.column("ts"), dtype=np.float64)
    sizes = np.asarray(table.column(size_field), dtype=np.float64)

    order = np.lexsort((ts, groups))
    g_sorted = groups[order]
    ts_sorted = ts[order]
    sz_sorted = sizes[order]
    boundaries = np.nonzero(np.diff(g_sorted))[0] + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(g_sorted)]])

    flows = []
    for lo, hi in zip(starts, ends):
        if hi - lo >= min_packets:
            flows.append(Flow(ts_sorted[lo:hi].copy(), sz_sorted[lo:hi].copy()))
    return flows
