"""OCSVM anomaly-ratio pipeline over NetML features (paper §4.3, Fig. 4)."""

from __future__ import annotations

import numpy as np

from repro.data.table import TraceTable
from repro.ml.ocsvm import OneClassSVM
from repro.netml.features import flow_features
from repro.netml.flows import build_flows
from repro.utils.rng import ensure_rng

#: Paper Fig. 4 x-axis, with the figure's abbreviations.
NETML_MODES = ("IAT", "SIZE", "IAT_SIZE", "STATS", "SAMP_NUM", "SAMP_SIZE")


def netml_feature_matrix(table: TraceTable, mode: str, size_field: str = "pkt_len"):
    """Stacked flow-feature matrix for one mode (may be empty)."""
    flows = build_flows(table, min_packets=2, size_field=size_field)
    if not flows:
        return np.empty((0, 1))
    return np.vstack([flow_features(f, mode) for f in flows])


def netml_anomaly_ratio(
    table: TraceTable,
    mode: str,
    nu: float = 0.1,
    rng: np.random.Generator | int | None = None,
    size_field: str = "pkt_len",
) -> float:
    """Fraction of flows OCSVM flags anomalous, or NaN when no flows exist.

    The NaN path reproduces the paper's observation that PGM's CAIDA output
    contains almost no multi-packet flows, making NetML inapplicable.
    """
    rng = ensure_rng(rng)
    features = netml_feature_matrix(table, mode, size_field=size_field)
    if features.shape[0] < 10:
        return float("nan")
    model = OneClassSVM(nu=nu, epochs=20, rng=rng)
    model.fit(features)
    return model.anomaly_ratio(features)
