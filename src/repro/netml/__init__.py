"""NetML re-implementation: flow representations for novelty detection (§4.3).

Mirrors the open-source NetML library the paper uses: packets are grouped
into flows (>= 2 packets), each flow is embedded by one of six feature modes
(IAT, SIZE, IAT_SIZE, STATS, SAMP-NUM, SAMP-SIZE), and a one-class SVM flags
anomalous flows.
"""

from repro.netml.anomaly import NETML_MODES, netml_anomaly_ratio
from repro.netml.features import flow_features
from repro.netml.flows import Flow, build_flows

__all__ = ["Flow", "NETML_MODES", "build_flows", "flow_features", "netml_anomaly_ratio"]
