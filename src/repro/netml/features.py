"""NetML's six flow-representation modes.

* ``IAT``       — order statistics of inter-arrival times;
* ``SIZE``      — order statistics of packet sizes;
* ``IAT_SIZE``  — concatenation of the two (the paper's "IS");
* ``STATS``     — 10 aggregate statistics (duration, rates, size moments);
* ``SAMP_NUM``  — packet counts in equal-width time windows ("SN");
* ``SAMP_SIZE`` — byte counts in the same windows ("SS").
"""

from __future__ import annotations

import numpy as np

from repro.netml.flows import Flow

_QUANTILES = (0.0, 0.25, 0.5, 0.75, 1.0)


def _order_stats(values: np.ndarray) -> np.ndarray:
    """mean, std, then the 5-point quantile summary."""
    if len(values) == 0:
        return np.zeros(2 + len(_QUANTILES))
    qs = np.quantile(values, _QUANTILES)
    return np.concatenate([[values.mean(), values.std()], qs])


def _iat_features(flow: Flow) -> np.ndarray:
    return _order_stats(flow.iats)


def _size_features(flow: Flow) -> np.ndarray:
    return _order_stats(flow.sizes)


def _stats_features(flow: Flow) -> np.ndarray:
    """NetML's STATS: 10 aggregate flow statistics."""
    duration = max(flow.duration, 1e-9)
    n_pkts = flow.n_packets
    n_bytes = float(flow.sizes.sum())
    iats = flow.iats
    return np.array(
        [
            duration,
            n_pkts,
            n_bytes,
            n_pkts / duration,            # packets per second
            n_bytes / duration,           # bytes per second
            flow.sizes.mean(),
            flow.sizes.std(),
            flow.sizes.min(),
            flow.sizes.max(),
            iats.mean() if len(iats) else 0.0,
        ]
    )


def _sampled_series(flow: Flow, n_windows: int, weights: np.ndarray | None) -> np.ndarray:
    """Per-window aggregation over the flow's active interval."""
    duration = max(flow.duration, 1e-9)
    rel = (flow.timestamps - flow.timestamps[0]) / duration
    bins = np.clip((rel * n_windows).astype(np.int64), 0, n_windows - 1)
    return np.bincount(bins, weights=weights, minlength=n_windows).astype(np.float64)


def flow_features(flow: Flow, mode: str, n_windows: int = 10) -> np.ndarray:
    """Feature vector of one flow under the given NetML mode."""
    mode = mode.upper().replace("-", "_")
    if mode == "IAT":
        return _iat_features(flow)
    if mode == "SIZE":
        return _size_features(flow)
    if mode in ("IAT_SIZE", "IS"):
        return np.concatenate([_iat_features(flow), _size_features(flow)])
    if mode == "STATS":
        return _stats_features(flow)
    if mode in ("SAMP_NUM", "SN"):
        return _sampled_series(flow, n_windows, None)
    if mode in ("SAMP_SIZE", "SS"):
        return _sampled_series(flow, n_windows, flow.sizes)
    raise KeyError(f"unknown NetML mode {mode!r}")
