"""DP mechanisms: Gaussian (for marginals/InDif) and exponential (PGM baseline).

The Gaussian mechanism under zCDP: releasing ``f(D) + N(0, sigma^2 I)`` where
``f`` has L2 sensitivity ``Delta`` satisfies ``Delta^2 / (2 sigma^2)``-zCDP.
Equivalently, a target budget ``rho`` dictates ``sigma = sqrt(Delta^2/(2 rho))``
— the paper's ``N(0, 1/(2 rho) I)`` for a marginal with ``Delta = 1``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


def gaussian_sigma(sensitivity: float, rho: float) -> float:
    """Noise scale for the Gaussian mechanism at budget ``rho``-zCDP."""
    check_positive("sensitivity", sensitivity)
    check_positive("rho", rho)
    return math.sqrt(sensitivity * sensitivity / (2.0 * rho))


def gaussian_mechanism(
    values: np.ndarray,
    sensitivity: float,
    rho: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Release ``values + N(0, sigma^2 I)`` satisfying ``rho``-zCDP.

    ``values`` is any-dimensional; the same sigma applies to every cell
    because the sensitivity is measured in L2 over the whole vector.
    """
    rng = ensure_rng(rng)
    sigma = gaussian_sigma(sensitivity, rho)
    values = np.asarray(values, dtype=np.float64)
    return values + rng.normal(0.0, sigma, size=values.shape)


def exponential_mechanism(
    scores: np.ndarray,
    sensitivity: float,
    rho: float,
    rng: np.random.Generator | int | None = None,
) -> int:
    """Select an index with probability ``∝ exp(eps * score / (2 * Delta))``.

    The zCDP budget is converted with the standard bound
    ``eps = sqrt(8 * rho)`` (the exponential mechanism satisfies
    ``eps^2/8``-zCDP).  Used by the PGM baseline's structure selection.
    """
    rng = ensure_rng(rng)
    check_positive("sensitivity", sensitivity)
    check_positive("rho", rho)
    epsilon = math.sqrt(8.0 * rho)
    scores = np.asarray(scores, dtype=np.float64)
    logits = epsilon * scores / (2.0 * sensitivity)
    logits -= logits.max()  # stabilize
    probs = np.exp(logits)
    probs /= probs.sum()
    return int(rng.choice(len(scores), p=probs))
