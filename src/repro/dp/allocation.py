"""Privacy-budget allocation policies.

NetDPSyn splits the total ``rho`` 0.1 / 0.1 / 0.8 across data-dependent
binning, marginal selection, and marginal publication (paper §3.3).  Within
the publication stage, PrivSyn's *weighted* allocation gives marginal ``i``
with ``c_i`` cells a share ``rho_i ∝ c_i^{2/3}`` — the closed-form minimizer
of the total expected L1 noise error  ``sum_i c_i * sigma_i``  subject to
``sum_i 1/(2 sigma_i^2) = rho``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.utils.validation import check_positive

#: The paper's stage split: binning / selection / publication.
DEFAULT_STAGE_SPLIT = {"binning": 0.1, "selection": 0.1, "publish": 0.8}


def split_budget(
    rho: float, fractions: Mapping[str, float] | None = None
) -> dict[str, float]:
    """Split ``rho`` across named stages by ``fractions`` (must sum to 1)."""
    check_positive("rho", rho)
    fractions = dict(fractions if fractions is not None else DEFAULT_STAGE_SPLIT)
    total = sum(fractions.values())
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"stage fractions must sum to 1, got {total}")
    if any(f <= 0 for f in fractions.values()):
        raise ValueError("stage fractions must be positive")
    return {name: rho * frac for name, frac in fractions.items()}


def weighted_marginal_budgets(rho: float, cell_counts: Iterable[int]) -> np.ndarray:
    """Allocate ``rho`` across marginals with ``rho_i ∝ c_i^{2/3}``.

    Returns one budget per marginal, summing to ``rho`` exactly.  With this
    allocation the per-cell noise scale grows only as ``c_i^{1/3}``, so large
    marginals do not drown in noise while small ones are not over-charged.
    """
    check_positive("rho", rho)
    cells = np.asarray(list(cell_counts), dtype=np.float64)
    if cells.size == 0:
        return np.empty(0)
    if (cells < 1).any():
        raise ValueError("cell counts must be >= 1")
    weights = np.power(cells, 2.0 / 3.0)
    return rho * weights / weights.sum()


def uniform_marginal_budgets(rho: float, count: int) -> np.ndarray:
    """Allocate ``rho`` uniformly across ``count`` marginals."""
    check_positive("rho", rho)
    if count < 1:
        raise ValueError("count must be >= 1")
    return np.full(count, rho / count)
