"""User-level DP via contribution bounding + group privacy (App. G future work).

The paper's synthesis is record-level: one packet/flow is the protected
unit, which "might not offer practical privacy guarantee" when one user
emits thousands of packets.  The standard upgrade path, implemented here:

1. **bound contributions** — keep at most ``k`` records per user (the user
   key is typically ``srcip`` or the flow 5-tuple), sampled uniformly;
2. **group privacy** — a mechanism that is ``rho``-zCDP for neighboring
   datasets differing in one *record* is ``k^2 · rho``-zCDP for datasets
   differing in one *user* once users contribute at most ``k`` records.

So to honor a user-level budget ``rho_user``, run the record-level pipeline
at ``rho_user / k^2``.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import TraceTable
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


def bound_user_contributions(
    table: TraceTable,
    user_key,
    max_records: int,
    rng: np.random.Generator | int | None = None,
) -> TraceTable:
    """Subsample so no user (group over ``user_key``) exceeds ``max_records``.

    Sampling is uniform within each user's records, so the kept subset is
    representative of that user's traffic mix.
    """
    if max_records < 1:
        raise ValueError("max_records must be >= 1")
    rng = ensure_rng(rng)
    key = [user_key] if isinstance(user_key, str) else list(user_key)
    groups = table.group_ids(key)
    keep = np.zeros(table.n_records, dtype=bool)
    order = rng.permutation(table.n_records)
    taken = np.zeros(groups.max() + 1 if len(groups) else 0, dtype=np.int64)
    for row in order:
        g = groups[row]
        if taken[g] < max_records:
            taken[g] += 1
            keep[row] = True
    return table.filter(keep)


def record_rho_for_user_level(rho_user: float, max_records: int) -> float:
    """Record-level budget that yields ``rho_user``-zCDP at the user level.

    zCDP group privacy: a ``rho``-zCDP mechanism is ``k^2 rho``-zCDP for
    groups of ``k`` records, hence ``rho = rho_user / k^2``.
    """
    check_positive("rho_user", rho_user)
    if max_records < 1:
        raise ValueError("max_records must be >= 1")
    return rho_user / (max_records * max_records)


def user_level_rho(record_rho: float, max_records: int) -> float:
    """The user-level guarantee implied by a record-level ``rho``."""
    check_positive("record_rho", record_rho)
    if max_records < 1:
        raise ValueError("max_records must be >= 1")
    return record_rho * max_records * max_records
