"""Differential-privacy primitives: zCDP accounting, mechanisms, allocation."""

from repro.dp.accountant import (
    BudgetLedger,
    eps_delta_to_rho,
    rho_to_eps,
)
from repro.dp.allocation import split_budget, weighted_marginal_budgets
from repro.dp.mechanisms import (
    gaussian_mechanism,
    gaussian_sigma,
    exponential_mechanism,
)
from repro.dp.rdp import RdpAccountant

__all__ = [
    "BudgetLedger",
    "RdpAccountant",
    "eps_delta_to_rho",
    "exponential_mechanism",
    "gaussian_mechanism",
    "gaussian_sigma",
    "rho_to_eps",
    "split_budget",
    "weighted_marginal_budgets",
]
