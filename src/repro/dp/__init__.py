"""Differential-privacy primitives: zCDP accounting, mechanisms, allocation.

``user_level`` carries the contribution-bounding + group-privacy upgrade
path from record- to user-level guarantees; its empirical counterpart is
:func:`repro.attacks.user_level_mia` (see ``docs/privacy.md``).
"""

from repro.dp.accountant import (
    BudgetLedger,
    eps_delta_to_rho,
    rho_to_eps,
)
from repro.dp.allocation import split_budget, weighted_marginal_budgets
from repro.dp.mechanisms import (
    gaussian_mechanism,
    gaussian_sigma,
    exponential_mechanism,
)
from repro.dp.rdp import RdpAccountant
from repro.dp.user_level import (
    bound_user_contributions,
    record_rho_for_user_level,
    user_level_rho,
)

__all__ = [
    "BudgetLedger",
    "RdpAccountant",
    "bound_user_contributions",
    "eps_delta_to_rho",
    "exponential_mechanism",
    "gaussian_mechanism",
    "gaussian_sigma",
    "record_rho_for_user_level",
    "rho_to_eps",
    "split_budget",
    "user_level_rho",
    "weighted_marginal_budgets",
]
