"""Renyi-DP accountant for DP-SGD (NetShare baseline substrate).

NetShare hardens its GAN with DP-SGD: per-example gradient clipping plus
Gaussian noise on every optimizer step.  Composing thousands of subsampled
Gaussian steps is what forces NetShare to huge epsilon (24.24-108 in the
paper).  This module reproduces that accounting with a standard RDP
accountant:

* one Gaussian step at noise multiplier ``sigma`` has RDP
  ``eps(alpha) = alpha / (2 sigma^2)``;
* Poisson subsampling at rate ``q`` amplifies via the first dominant term of
  Mironov et al.'s bound for integer orders:
  ``eps'(alpha) <= log(1 + C(alpha,2) q^2 min(4 (e^{1/sigma^2} - 1),
  2 e^{1/sigma^2})) / (alpha - 1)`` — the widely used upper bound that is
  tight in the small-``q`` regime DP-SGD operates in;
* steps compose additively in RDP; conversion to ``(eps, delta)`` takes the
  minimum over orders of ``eps(alpha) + log(1/delta)/(alpha - 1)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_fraction, check_positive

DEFAULT_ORDERS = tuple([1.5, 2, 3, 4, 5, 6, 8, 10, 16, 24, 32, 48, 64, 128, 256])


class RdpAccountant:
    """Tracks cumulative RDP across DP-SGD steps and converts to (eps, delta)."""

    def __init__(self, orders: tuple = DEFAULT_ORDERS) -> None:
        if any(a <= 1 for a in orders):
            raise ValueError("RDP orders must be > 1")
        self.orders = tuple(float(a) for a in orders)
        self._rdp = np.zeros(len(self.orders))
        self.steps = 0

    def step(self, noise_multiplier: float, sample_rate: float, num_steps: int = 1) -> None:
        """Account for ``num_steps`` subsampled-Gaussian steps.

        ``noise_multiplier`` is sigma relative to the clipping norm;
        ``sample_rate`` is the Poisson subsampling probability q.
        """
        check_positive("noise_multiplier", noise_multiplier)
        check_fraction("sample_rate", sample_rate)
        if num_steps < 1:
            raise ValueError("num_steps must be >= 1")
        per_step = np.array(
            [
                self._subsampled_gaussian_rdp(a, noise_multiplier, sample_rate)
                for a in self.orders
            ]
        )
        self._rdp += per_step * num_steps
        self.steps += num_steps

    @staticmethod
    def _subsampled_gaussian_rdp(alpha: float, sigma: float, q: float) -> float:
        """RDP of one Poisson-subsampled Gaussian step at order ``alpha``."""
        if q == 0.0:
            return 0.0
        if q == 1.0:
            return alpha / (2.0 * sigma * sigma)
        if 1.0 / (sigma * sigma) > 500.0:
            # exp(1/sigma^2) would overflow; with noise this small the
            # unamplified Gaussian bound is the sane (conservative) answer.
            return alpha / (2.0 * sigma * sigma)
        # First dominant term of the ternary expansion (Mironov et al. 2019):
        # tight for q << 1, conservative cap at the unamplified value.
        exp_term = math.expm1(1.0 / (sigma * sigma))  # e^{1/sigma^2} - 1
        bound = min(4.0 * exp_term, 2.0 * math.exp(1.0 / (sigma * sigma)))
        comb = alpha * (alpha - 1.0) / 2.0
        inner = 1.0 + comb * q * q * bound
        amplified = math.log(inner) / (alpha - 1.0)
        return min(amplified, alpha / (2.0 * sigma * sigma))

    def get_epsilon(self, delta: float) -> float:
        """Best (eps, delta) conversion over the tracked orders."""
        check_positive("delta", delta)
        if delta >= 1:
            raise ValueError("delta must be < 1")
        log_inv = math.log(1.0 / delta)
        candidates = [
            rdp + log_inv / (alpha - 1.0)
            for alpha, rdp in zip(self.orders, self._rdp)
        ]
        return float(min(candidates))

    @staticmethod
    def noise_multiplier_for(
        target_epsilon: float,
        delta: float,
        sample_rate: float,
        num_steps: int,
    ) -> float:
        """Binary-search the sigma achieving ``target_epsilon`` after ``num_steps``.

        This is the inverse problem NetShare solves when configuring DP-SGD:
        a small epsilon at realistic step counts forces a large sigma — the
        root cause of its fidelity collapse.
        """
        check_positive("target_epsilon", target_epsilon)
        lo, hi = 1e-2, 1e4
        for _ in range(80):
            mid = math.sqrt(lo * hi)
            acct = RdpAccountant()
            acct.step(mid, sample_rate, num_steps)
            if acct.get_epsilon(delta) > target_epsilon:
                lo = mid
            else:
                hi = mid
        return hi
