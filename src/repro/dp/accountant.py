"""Zero-concentrated differential privacy (zCDP) accounting.

NetDPSyn (following PrivSyn) converts the user-facing ``(epsilon, delta)``
budget into a zCDP budget ``rho`` (Bun & Steinke, TCC 2016), splits ``rho``
across pipeline stages, and composes additively: the sum of the ``rho``
values consumed by all Gaussian-mechanism invocations never exceeds the
total.  :class:`BudgetLedger` enforces that invariant at runtime.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive


def rho_to_eps(rho: float, delta: float) -> float:
    """Convert a ``rho``-zCDP guarantee to ``(epsilon, delta)``-DP.

    Uses the standard bound  ``eps = rho + 2 * sqrt(rho * log(1/delta))``
    (Bun & Steinke, Proposition 1.3).
    """
    check_positive("rho", rho)
    check_positive("delta", delta)
    if delta >= 1:
        raise ValueError(f"delta must be < 1, got {delta}")
    return rho + 2.0 * math.sqrt(rho * math.log(1.0 / delta))


def eps_delta_to_rho(epsilon: float, delta: float) -> float:
    """Convert an ``(epsilon, delta)``-DP target to the largest safe zCDP ``rho``.

    Inverts :func:`rho_to_eps` exactly: solving
    ``rho + 2 sqrt(rho L) = eps`` with ``L = log(1/delta)`` for ``sqrt(rho)``
    gives ``sqrt(rho) = sqrt(eps + L) - sqrt(L)``.
    """
    check_positive("epsilon", epsilon)
    check_positive("delta", delta)
    if delta >= 1:
        raise ValueError(f"delta must be < 1, got {delta}")
    log_inv_delta = math.log(1.0 / delta)
    sqrt_rho = math.sqrt(epsilon + log_inv_delta) - math.sqrt(log_inv_delta)
    return sqrt_rho * sqrt_rho


class BudgetLedger:
    """Tracks zCDP budget consumption across pipeline stages.

    The ledger is created with a total ``rho``; components call
    :meth:`spend` (which raises when overdrawn) and the synthesizer can
    assert :attr:`remaining` is non-negative at the end — zCDP composes
    additively, so this check *is* the privacy proof of the pipeline.
    """

    def __init__(self, rho: float) -> None:
        check_positive("rho", rho)
        self.total = float(rho)
        self._spent = 0.0
        self._entries: list[tuple[str, float]] = []

    @classmethod
    def from_eps_delta(cls, epsilon: float, delta: float) -> "BudgetLedger":
        """Build a ledger holding the zCDP equivalent of ``(epsilon, delta)``."""
        return cls(eps_delta_to_rho(epsilon, delta))

    @property
    def spent(self) -> float:
        """Total ``rho`` consumed so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return self.total - self._spent

    def spend(self, rho: float, purpose: str = "") -> float:
        """Consume ``rho`` from the ledger; raises if overdrawn.

        A tiny tolerance absorbs floating-point drift from repeated splits.
        """
        check_positive("rho", rho)
        if self._spent + rho > self.total * (1 + 1e-9) + 1e-12:
            raise RuntimeError(
                f"privacy budget exceeded: spent {self._spent:.6g} + {rho:.6g} "
                f"> total {self.total:.6g} ({purpose})"
            )
        self._spent += rho
        self._entries.append((purpose, rho))
        return rho

    def entries(self) -> list[tuple[str, float]]:
        """Audit log of ``(purpose, rho)`` expenditures."""
        return list(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BudgetLedger(total={self.total:.4g}, spent={self._spent:.4g})"
