"""Sketch plumbing: vectorized 2-universal hashing and the common interface.

All sketches hash integer keys (IPv4 addresses, ports, flow ids) with
multiply-shift hashing: ``h_a(x) = (a * x) >> (64 - log2(w))`` with random
odd ``a`` is 2-universal onto power-of-two ranges, and the uint64 wraparound
*is* the mod-2^64 arithmetic the scheme requires — no big-int slowdowns.
"""

from __future__ import annotations

import abc

import numpy as np



def _round_pow2(width: int) -> int:
    """Smallest power of two >= width."""
    if width < 2:
        return 2
    return 1 << int(np.ceil(np.log2(width)))


class MultiplyShiftHasher:
    """A bank of ``depth`` independent multiply-shift hash functions."""

    def __init__(self, depth: int, width: int, rng: np.random.Generator) -> None:
        self.width = _round_pow2(width)
        self.depth = depth
        self._shift = np.uint64(64 - int(np.log2(self.width)))
        # Random odd multipliers (one per row) for the index hash, and a
        # second bank for sign hashes.
        self._a = (rng.integers(1, 2**63, size=depth, dtype=np.uint64) << np.uint64(1)) | np.uint64(1)
        self._b = (rng.integers(1, 2**63, size=depth, dtype=np.uint64) << np.uint64(1)) | np.uint64(1)

    def index(self, keys: np.ndarray) -> np.ndarray:
        """(depth, n) bucket indices."""
        keys = np.asarray(keys, dtype=np.uint64)
        with np.errstate(over="ignore"):
            prod = self._a[:, None] * keys[None, :]
        return (prod >> self._shift).astype(np.int64)

    def sign(self, keys: np.ndarray) -> np.ndarray:
        """(depth, n) ±1 signs."""
        keys = np.asarray(keys, dtype=np.uint64)
        with np.errstate(over="ignore"):
            prod = self._b[:, None] * keys[None, :]
        bit = (prod >> np.uint64(63)).astype(np.int64)
        return 2 * bit - 1


class Sketch(abc.ABC):
    """Streaming frequency sketch over integer keys."""

    @abc.abstractmethod
    def update(self, keys: np.ndarray, counts: np.ndarray | None = None) -> None:
        """Process a batch of key observations (``counts`` defaults to 1s)."""

    @abc.abstractmethod
    def estimate(self, keys: np.ndarray) -> np.ndarray:
        """Estimated frequencies for ``keys``."""

    def process(self, keys: np.ndarray) -> "Sketch":
        """Convenience: update with unit counts and return self."""
        self.update(keys)
        return self
