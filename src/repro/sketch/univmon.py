"""UnivMon (Liu et al., SIGCOMM 2016): universal streaming via level sampling.

Keys are recursively subsampled across ``levels`` substreams (level ``l``
keeps a key iff ``l`` independent hash bits are all 1); each substream is
summarized by a Count Sketch plus a heavy-hitter candidate set.  Any
G-sum statistic is then estimated bottom-up with the standard recursion
``Y_l = 2 Y_{l+1} + sum_{HH at level l} (1 - 2·[in level l+1]) g(w_i)``.
For the paper's experiment only per-key frequency estimates are needed, but
the full structure (levels, HH tracking, G-sum) is implemented.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.base import MultiplyShiftHasher, Sketch
from repro.sketch.count_sketch import CountSketch
from repro.utils.rng import ensure_rng, spawn_rngs


class UnivMon(Sketch):
    """Multi-level Count-Sketch hierarchy with top-k tracking per level."""

    def __init__(
        self,
        levels: int = 8,
        width: int = 1024,
        depth: int = 5,
        top_k: int = 64,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        rng = ensure_rng(rng)
        child_rngs = spawn_rngs(rng, levels + 1)
        self.levels = levels
        self.top_k = top_k
        self.sketches = [
            CountSketch(width=max(width >> min(lvl, 4), 64), depth=depth, rng=child_rngs[lvl])
            for lvl in range(levels)
        ]
        # One sampling hash per level transition.
        self._samplers = MultiplyShiftHasher(levels, 2, child_rngs[-1])
        self._candidates: list[dict] = [dict() for _ in range(levels)]

    def _level_mask(self, keys: np.ndarray, level: int) -> np.ndarray:
        """Keys surviving the first ``level`` subsampling bits."""
        mask = np.ones(len(keys), dtype=bool)
        for lvl in range(level):
            bit = self._samplers.index(keys)[lvl] & 1
            mask &= bit.astype(bool)
        return mask

    def update(self, keys: np.ndarray, counts: np.ndarray | None = None) -> None:
        keys = np.asarray(keys)
        if counts is None:
            counts = np.ones(len(keys))
        counts = np.asarray(counts, dtype=np.float64)
        for level in range(self.levels):
            mask = self._level_mask(keys, level)
            if not mask.any():
                break
            sub_keys = keys[mask]
            sub_counts = counts[mask]
            sketch = self.sketches[level]
            sketch.update(sub_keys, sub_counts)
            self._track_candidates(level, sub_keys)

    def _track_candidates(self, level: int, keys: np.ndarray) -> None:
        """Maintain a bounded candidate set of likely heavy keys per level."""
        cand = self._candidates[level]
        uniq = np.unique(keys)
        estimates = self.sketches[level].estimate(uniq)
        for key, est in zip(uniq.tolist(), estimates.tolist()):
            cand[key] = est
        if len(cand) > 4 * self.top_k:
            keep = sorted(cand.items(), key=lambda kv: kv[1], reverse=True)[: self.top_k]
            self._candidates[level] = dict(keep)

    def estimate(self, keys: np.ndarray) -> np.ndarray:
        """Frequency estimates from the level-0 Count Sketch."""
        return self.sketches[0].estimate(keys)

    def heavy_hitters(self, level: int = 0) -> dict:
        """Current heavy-hitter candidates at a level (key -> estimate)."""
        cand = self._candidates[level]
        keep = sorted(cand.items(), key=lambda kv: kv[1], reverse=True)[: self.top_k]
        return dict(keep)

    def gsum(self, g) -> float:
        """Estimate ``sum_i g(f_i)`` with the UnivMon recursion."""
        y_next = 0.0
        for level in reversed(range(self.levels)):
            hh = self.heavy_hitters(level)
            if not hh:
                continue
            keys = np.fromiter(hh.keys(), dtype=np.int64)
            freqs = np.clip(self.sketches[level].estimate(keys), 0.0, None)
            if level + 1 < self.levels:
                in_next = self._level_mask(keys, level + 1).astype(np.float64)
            else:
                in_next = np.zeros(len(keys))
            contrib = float(np.sum((1.0 - 2.0 * in_next) * g(freqs)))
            y_next = 2.0 * y_next + contrib
        return y_next
