"""Count-Min Sketch (Cormode & Muthukrishnan, 2005)."""

from __future__ import annotations

import numpy as np

from repro.sketch.base import MultiplyShiftHasher, Sketch
from repro.utils.rng import ensure_rng


class CountMinSketch(Sketch):
    """Min-of-rows frequency estimator; never underestimates.

    ``conservative=True`` enables conservative update: an arriving key only
    raises the counters that currently equal its minimum estimate, sharply
    reducing overestimation on skewed streams.
    """

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        conservative: bool = False,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        rng = ensure_rng(rng)
        self.hasher = MultiplyShiftHasher(depth, width, rng)
        self.table = np.zeros((depth, self.hasher.width), dtype=np.float64)
        self.conservative = conservative
        self.total = 0.0

    def update(self, keys: np.ndarray, counts: np.ndarray | None = None) -> None:
        keys = np.asarray(keys)
        if counts is None:
            counts = np.ones(len(keys))
        counts = np.asarray(counts, dtype=np.float64)
        self.total += float(counts.sum())
        # Aggregate duplicate keys first: equivalent for plain CMS and the
        # standard batch approximation for conservative update.
        uniq, inverse = np.unique(keys, return_inverse=True)
        agg = np.bincount(inverse, weights=counts)
        idx = self.hasher.index(uniq)
        if not self.conservative:
            for row in range(idx.shape[0]):
                np.add.at(self.table[row], idx[row], agg)
            return
        current = np.stack([self.table[r, idx[r]] for r in range(idx.shape[0])])
        new_floor = current.min(axis=0) + agg
        for row in range(idx.shape[0]):
            # maximum.at handles several keys landing in one bucket; plain
            # fancy assignment would keep only the last write.
            np.maximum.at(self.table[row], idx[row], new_floor)

    def estimate(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys)
        if len(keys) == 0:
            return np.empty(0)
        idx = self.hasher.index(keys)
        rows = np.stack([self.table[r, idx[r]] for r in range(idx.shape[0])])
        return rows.min(axis=0)
