"""NitroSketch (Liu et al., SIGCOMM 2019): sampled Count-Sketch updates.

NitroSketch accelerates software sketching by updating each row with
probability ``p`` and compensating with increments of ``1/p``; estimates
remain unbiased while per-packet cost drops by ~1/p.  We reproduce the
always-line-rate variant with uniform row sampling.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.base import MultiplyShiftHasher, Sketch
from repro.utils.rng import ensure_rng


class NitroSketch(Sketch):
    """Count Sketch with per-row sampled updates at rate ``sample_rate``."""

    def __init__(
        self,
        width: int = 1024,
        depth: int = 5,
        sample_rate: float = 0.25,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0 < sample_rate <= 1:
            raise ValueError("sample_rate must be in (0, 1]")
        rng = ensure_rng(rng)
        self.hasher = MultiplyShiftHasher(depth, width, rng)
        self.table = np.zeros((depth, self.hasher.width), dtype=np.float64)
        self.sample_rate = sample_rate
        self._rng = rng
        self.total = 0.0

    def update(self, keys: np.ndarray, counts: np.ndarray | None = None) -> None:
        keys = np.asarray(keys)
        if counts is None:
            counts = np.ones(len(keys))
        counts = np.asarray(counts, dtype=np.float64)
        self.total += float(counts.sum())
        idx = self.hasher.index(keys)
        sign = self.hasher.sign(keys)
        p = self.sample_rate
        for row in range(idx.shape[0]):
            chosen = self._rng.random(len(keys)) < p
            if not chosen.any():
                continue
            np.add.at(
                self.table[row],
                idx[row][chosen],
                sign[row][chosen] * counts[chosen] / p,
            )

    def estimate(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys)
        if len(keys) == 0:
            return np.empty(0)
        idx = self.hasher.index(keys)
        sign = self.hasher.sign(keys)
        rows = np.stack(
            [sign[r] * self.table[r, idx[r]] for r in range(idx.shape[0])]
        )
        return np.median(rows, axis=0)
