"""Count Sketch (Charikar et al.): signed counters, median estimator."""

from __future__ import annotations

import numpy as np

from repro.sketch.base import MultiplyShiftHasher, Sketch
from repro.utils.rng import ensure_rng


class CountSketch(Sketch):
    """Unbiased frequency estimator via random signs + median of rows."""

    def __init__(
        self,
        width: int = 1024,
        depth: int = 5,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        rng = ensure_rng(rng)
        self.hasher = MultiplyShiftHasher(depth, width, rng)
        self.table = np.zeros((depth, self.hasher.width), dtype=np.float64)
        self.total = 0.0

    def update(self, keys: np.ndarray, counts: np.ndarray | None = None) -> None:
        keys = np.asarray(keys)
        if counts is None:
            counts = np.ones(len(keys))
        counts = np.asarray(counts, dtype=np.float64)
        self.total += float(counts.sum())
        uniq, inverse = np.unique(keys, return_inverse=True)
        agg = np.bincount(inverse, weights=counts)
        idx = self.hasher.index(uniq)
        sign = self.hasher.sign(uniq)
        for row in range(idx.shape[0]):
            np.add.at(self.table[row], idx[row], sign[row] * agg)

    def estimate(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys)
        if len(keys) == 0:
            return np.empty(0)
        idx = self.hasher.index(keys)
        sign = self.hasher.sign(keys)
        rows = np.stack(
            [sign[r] * self.table[r, idx[r]] for r in range(idx.shape[0])]
        )
        return np.median(rows, axis=0)
