"""Heavy-hitter harness and the fidelity metric of the paper's Fig. 2.

The experiment: find the raw stream's heavy hitters (frequency above a
threshold fraction), measure each sketch's average relative estimation error
on them (``err_raw``), repeat on the synthesized stream (``err_syn``), and
report ``|err_syn - err_raw| / err_raw`` — i.e. *does synthetic data stress
the sketch the way real data does?*
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng, spawn_rngs


def exact_counts(keys: np.ndarray) -> tuple:
    """``(unique_keys, counts)`` of a stream."""
    keys = np.asarray(keys)
    uniq, counts = np.unique(keys, return_counts=True)
    return uniq, counts


def exact_heavy_hitters(keys: np.ndarray, threshold: float = 0.001) -> tuple:
    """Keys whose frequency exceeds ``threshold`` of the stream length."""
    if not 0 < threshold < 1:
        raise ValueError("threshold must be in (0, 1)")
    uniq, counts = exact_counts(keys)
    cut = threshold * len(np.asarray(keys))
    mask = counts > cut
    return uniq[mask], counts[mask]


def exact_top_k(keys: np.ndarray, k: int) -> tuple:
    """The k most frequent keys and their exact counts."""
    uniq, counts = exact_counts(keys)
    order = np.argsort(counts)[::-1][:k]
    return uniq[order], counts[order]


def heavy_hitter_are(
    sketch, keys: np.ndarray, threshold: float = 0.001, min_hitters: int = 5
) -> float:
    """Average relative error of a sketch on the stream's heavy hitters.

    Heavy hitters are keys above ``threshold`` of the stream; when a stream
    is too flat to have any (synthetic outputs sometimes are), the top
    ``min_hitters`` keys stand in so the metric stays defined.
    """
    hh_keys, hh_counts = exact_heavy_hitters(keys, threshold)
    if len(hh_keys) < min_hitters:
        hh_keys, hh_counts = exact_top_k(keys, min_hitters)
    if len(hh_keys) == 0:
        return float("nan")
    sketch.update(np.asarray(keys))
    estimates = sketch.estimate(hh_keys)
    return float(np.mean(np.abs(estimates - hh_counts) / hh_counts))


#: Floor on the raw estimation error when normalizing: sketches sized
#: generously can drive err_raw to ~0, where the ratio is pure seed noise.
RAW_ERROR_FLOOR = 0.01


def sketch_fidelity_error(
    sketch_factory,
    raw_keys: np.ndarray,
    syn_keys: np.ndarray,
    threshold: float = 0.001,
    trials: int = 10,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Paper Fig. 2 metric: ``|err_syn - err_raw| / err_raw``, mean of trials.

    ``sketch_factory(rng)`` builds a fresh sketch per trial (sketches are
    randomized, hence the 10-trial averaging in the paper).
    """
    rng = ensure_rng(rng)
    errors = []
    for raw_rng, syn_rng in zip(*[iter(spawn_rngs(rng, 2 * trials))] * 2):
        err_raw = heavy_hitter_are(sketch_factory(raw_rng), raw_keys, threshold)
        err_syn = heavy_hitter_are(sketch_factory(syn_rng), syn_keys, threshold)
        if np.isnan(err_raw) or np.isnan(err_syn):
            continue
        # The floor applies to the denominator only: |err_syn - err_raw|
        # stays the honest numerator even when the raw error is ~0.
        errors.append(abs(err_syn - err_raw) / max(err_raw, RAW_ERROR_FLOOR))
    return float(np.mean(errors)) if errors else float("nan")
