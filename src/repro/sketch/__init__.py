"""Sketching algorithms for the data-sketching evaluation (paper §4.2)."""

from repro.sketch.base import MultiplyShiftHasher, Sketch
from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch
from repro.sketch.heavy_hitters import (
    exact_counts,
    exact_heavy_hitters,
    heavy_hitter_are,
    sketch_fidelity_error,
)
from repro.sketch.nitrosketch import NitroSketch
from repro.sketch.univmon import UnivMon

__all__ = [
    "CountMinSketch",
    "CountSketch",
    "MultiplyShiftHasher",
    "NitroSketch",
    "Sketch",
    "UnivMon",
    "exact_counts",
    "exact_heavy_hitters",
    "heavy_hitter_are",
    "sketch_fidelity_error",
]
