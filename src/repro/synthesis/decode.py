"""Decoding synthesized encoded records back to raw trace values (paper §3.4).

Most fields decode by uniform sampling within their bin (the codecs own that
logic, including network validity like ports < 65536).  Record-level
comparison constraints (``byt >= pkt``) are enforced after sampling by
clamping, mirroring "we also consider the network-related constraints to
avoid sampling invalid values".
"""

from __future__ import annotations

import numpy as np

from repro.binning.encoder import DatasetEncoder, EncodedDataset, decode_columns
from repro.consistency.rules import ComparisonRule
from repro.data.schema import Schema
from repro.data.table import TraceTable


def apply_comparison_rules(table: TraceTable, rules: list | None) -> TraceTable:
    """Clamp record-level comparison constraints (e.g. ``byt >= pkt``)."""
    for rule in rules or []:
        if not isinstance(rule, ComparisonRule):
            continue
        if rule.left not in table.schema or rule.right not in table.schema:
            continue
        left = np.asarray(table.column(rule.left), dtype=np.float64)
        right = np.asarray(table.column(rule.right), dtype=np.float64)
        if rule.op == ">=":
            fixed = np.maximum(left, right)
        else:
            fixed = np.minimum(left, right)
        spec = table.schema[rule.left]
        if spec.integral:
            fixed = fixed.astype(np.int64)
        table = table.with_column(rule.left, fixed)
    return table


def decode_encoded(
    data: np.ndarray,
    attrs: tuple,
    codecs: dict,
    schema: Schema,
    rng: np.random.Generator | int | None = None,
    rules: list | None = None,
) -> TraceTable:
    """Decode an encoded matrix given codecs directly (no encoder object).

    This is the path :class:`repro.engine.SynthesisPlan` uses after sharded
    synthesis: the plan carries ``codecs``/``schema`` without the fitted
    :class:`~repro.binning.encoder.DatasetEncoder`.  Shares the decode loop
    with :meth:`DatasetEncoder.decode`, so the random-stream consumption is
    identical by construction.
    """
    columns = decode_columns(data, attrs, codecs, rng)
    return apply_comparison_rules(TraceTable(schema, columns), rules)


def decode_records(
    encoded: EncodedDataset,
    encoder: DatasetEncoder,
    rng: np.random.Generator | int | None = None,
    rules: list | None = None,
) -> TraceTable:
    """Decode every record, then enforce record-level comparison rules."""
    if encoder.schema is None:
        raise RuntimeError("encoder not fitted")
    return decode_encoded(
        encoded.data, encoded.attrs, encoder.codecs, encoder.schema, rng, rules
    )
