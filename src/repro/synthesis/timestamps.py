"""Timestamp reconstruction from the auxiliary tsdiff attribute (paper §3.4).

Synthesized rows are clustered by their flow identifier; within each group
the first (earliest-window) record anchors the group and subsequent records
are placed at ``previous_ts + tsdiff``.  tsdiff values are re-sampled inside
their bin under a (truncated) Gaussian, per the paper, rather than reusing
the uniform decode.
"""

from __future__ import annotations

import numpy as np

from repro.binning.base import AttributeCodec
from repro.data.table import TraceTable
from repro.utils.rng import ensure_rng

TSDIFF = "tsdiff"


def _gaussian_in_bin(
    codes: np.ndarray, codec: AttributeCodec, rng: np.random.Generator
) -> np.ndarray:
    """Sample one value per code, Gaussian within the bin's [lo, hi) range."""
    bounds = codec.bin_bounds()
    if bounds is None:
        raise ValueError("tsdiff codec must expose numeric bin bounds")
    lo_all, hi_all = bounds
    codes = np.asarray(codes, dtype=np.int64)
    lo = lo_all[codes]
    hi = hi_all[codes]
    mid = (lo + hi) / 2.0
    sd = np.maximum((hi - lo) / 4.0, 1e-12)
    samples = rng.normal(mid, sd)
    return np.clip(samples, lo, np.nextafter(hi, lo))


def reconstruct_timestamps(
    table: TraceTable,
    tsdiff_codes: np.ndarray | None = None,
    tsdiff_codec: AttributeCodec | None = None,
    flow_key=None,
    rng: np.random.Generator | int | None = None,
) -> TraceTable:
    """Rebuild ``ts`` from group anchors plus accumulated ``tsdiff``.

    Parameters
    ----------
    table:
        Decoded synthetic trace containing ``ts`` and ``tsdiff`` columns.
    tsdiff_codes, tsdiff_codec:
        When provided, tsdiff values are re-sampled Gaussian-within-bin from
        the encoded codes; otherwise the decoded tsdiff column is used as-is.
    flow_key:
        Grouping key; defaults to the schema's effective flow key.

    Returns the table with ``ts`` replaced and ``tsdiff`` dropped.
    """
    rng = ensure_rng(rng)
    if TSDIFF not in table.schema or "ts" not in table.schema:
        return table
    if flow_key is None:
        flow_key = table.schema.effective_flow_key()
    if not flow_key:
        return table.without_column(TSDIFF)

    ts = np.asarray(table.column("ts"), dtype=np.float64)
    if tsdiff_codes is not None and tsdiff_codec is not None:
        tsdiff = _gaussian_in_bin(tsdiff_codes, tsdiff_codec, rng)
    else:
        tsdiff = np.asarray(table.column(TSDIFF), dtype=np.float64)
    tsdiff = np.clip(tsdiff, 0.0, None)

    groups = table.group_ids(flow_key)
    order = np.lexsort((ts, groups))
    g_sorted = groups[order]
    ts_sorted = ts[order]
    tsd_sorted = tsdiff[order]

    heads = np.empty(len(order), dtype=bool)
    heads[0] = True
    heads[1:] = g_sorted[1:] != g_sorted[:-1]
    head_idx = np.nonzero(heads)[0]

    # Cumulative tsdiff within each group, zeroed at the group head.
    cum = np.cumsum(tsd_sorted)
    cum_at_head = np.repeat(cum[head_idx], np.diff(np.append(head_idx, len(order))))
    head_ts = np.repeat(ts_sorted[head_idx], np.diff(np.append(head_idx, len(order))))
    new_sorted = head_ts + (cum - cum_at_head)

    new_ts = np.empty_like(ts)
    new_ts[order] = new_sorted
    return table.with_column("ts", new_ts).without_column(TSDIFF)
