"""Record synthesis: GUM / GUMMI, bin decoding, timestamp reconstruction."""

from repro.synthesis.gum import GumConfig, GumResult, run_gum
from repro.synthesis.kernels import (
    GumKernel,
    available_kernels,
    get_kernel,
    kernel_names,
    register_kernel,
    resolve_kernel_name,
)
from repro.synthesis.initialization import (
    marginal_initialization,
    random_initialization,
    weighted_pearson,
)
from repro.synthesis.decode import decode_records
from repro.synthesis.timestamps import reconstruct_timestamps

__all__ = [
    "GumConfig",
    "GumKernel",
    "GumResult",
    "available_kernels",
    "decode_records",
    "get_kernel",
    "kernel_names",
    "marginal_initialization",
    "random_initialization",
    "reconstruct_timestamps",
    "register_kernel",
    "resolve_kernel_name",
    "run_gum",
    "weighted_pearson",
]
