"""Record synthesis: GUM / GUMMI, bin decoding, timestamp reconstruction."""

from repro.synthesis.gum import GumConfig, GumResult, run_gum
from repro.synthesis.initialization import (
    marginal_initialization,
    random_initialization,
    weighted_pearson,
)
from repro.synthesis.decode import decode_records
from repro.synthesis.timestamps import reconstruct_timestamps

__all__ = [
    "GumConfig",
    "GumResult",
    "decode_records",
    "marginal_initialization",
    "random_initialization",
    "reconstruct_timestamps",
    "run_gum",
    "weighted_pearson",
]
