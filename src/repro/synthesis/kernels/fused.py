"""The fused GUM kernel: one pass over precomputed cell codes per step.

Extends :class:`~repro.synthesis.kernels.vectorized.VectorizedKernel` — the
RNG-consuming orchestration is inherited, so the bit-identity contract holds
by construction — and collapses the three remaining per-step passes (row
grouping, the per-cell duplication draws, the per-marginal cache patch) into
fused single-pass forms:

- **grouping** — cell codes are cast to ``uint16`` whenever the marginal has
  at most :data:`RADIX_MAX_CELLS` cells (every NetDPSyn marginal does: the
  largest ToN marginal has ~2.7k cells), which flips numpy's stable
  ``argsort`` onto its O(n) radix path — ~6x faster than the int64
  comparison sort and bit-identical, since casting in-range codes preserves
  order exactly.  With numba present the compiled O(n + cells) counting sort
  from PR 4 is used instead, with its scratch reused across steps;
- **duplication draws** — the reference consumes one
  ``rng.integers(0, match, size=n_dup)`` call per refilled cell; a single
  ``rng.integers(0, bounds)`` call with the per-cell bounds repeated
  per-slot consumes the *identical* stream (PCG64 draws one bounded word per
  element either way — pinned by the parity suite against future numpy
  changes) at ~1/100th of the Python dispatch cost;
- **cache patch** — instead of re-coding the freed rows once per marginal,
  all marginal codes live in one ``(M, n)`` matrix and all counts in one
  flat arena with per-marginal offsets.  The new codes of the freed rows for
  *every* marginal come from one BLAS matmul against an
  ``(attrs, M)`` stride matrix (float64 products of in-domain codes are
  < 2^53, so the round-trip through float is exact), and the counts patch is
  ONE signed-weight ``bincount`` over offset-shifted codes instead of M of
  them.  With numba present the per-marginal ``@njit(nogil=True)`` patch
  loop (PR 4's twin) is used instead.

``fused`` is the new head of the ``auto`` resolution order.  Like every
kernel it is bit-identical to ``reference``; on the 50k-record ToN workload
it runs >= 3x faster single-core (the benchmark gate in
``benchmarks/bench_engine_scaling.py``).
"""

from __future__ import annotations

import numpy as np

from repro.synthesis.kernels.base import cell_codes
from repro.synthesis.kernels.numba_kernel import (
    _compiled,
    _group_rows_py,
    _patch_rows_py,
    _strides_for,
    numba_available,
)
from repro.synthesis.kernels.vectorized import VectorizedKernel

#: Largest marginal size (cells) that still groups via uint16 radix sort.
RADIX_MAX_CELLS = int(np.iinfo(np.uint16).max)


class FusedKernel(VectorizedKernel):
    """Single-pass grouping + draws + cache patch over fused per-run state."""

    name = "fused"
    uses_cache = True

    def prepare(self, data, states):
        """Build the fused per-run state: code matrix, counts arena, strides.

        Each marginal's ``codes``/``counts`` are re-bound to views into the
        fused storage, so the inherited ``step`` orchestration (which reads
        ``state.codes``/``state.counts``) sees exactly the per-marginal
        caches it expects while the patch below updates them all at once.
        """
        n, n_attrs = data.shape
        m = len(states)
        sizes = np.array([state.target.size for state in states], dtype=np.int64)
        offsets = np.zeros(m, dtype=np.int64)
        np.cumsum(sizes[:-1], out=offsets[1:])
        total = int(sizes.sum())
        codes = np.empty((m, n), dtype=np.int64)
        counts = np.zeros(total, dtype=np.float64)
        strides = np.zeros((n_attrs, m), dtype=np.float64)
        for k, state in enumerate(states):
            codes[k] = cell_codes(data[:, state.axes], state.shape)
            view = counts[offsets[k] : offsets[k] + sizes[k]]
            view[...] = np.bincount(codes[k], minlength=int(sizes[k]))
            state.codes = codes[k]
            state.counts = view
            strides[state.axes, k] = _strides_for(state.shape)
        self._codes = codes
        self._counts = counts
        self._offsets = offsets
        self._strides = strides
        self._total = total
        self._m = m
        self._jit = numba_available()
        if self._jit:
            self._axes = [
                np.ascontiguousarray(state.axes, dtype=np.int64) for state in states
            ]
            self._int_strides = [_strides_for(state.shape) for state in states]

    def _group_rows(self, codes, perm, size):
        if self._jit:
            group = _compiled("group_rows", _group_rows_py)
            return group(codes, perm, np.int64(size))
        cp = codes[perm]
        if size <= RADIX_MAX_CELLS:
            # uint16 keys take numpy's O(n) radix path; in-range casting is
            # order-preserving, so the stable grouping is bit-identical.
            order = np.argsort(cp.astype(np.uint16), kind="stable")
        else:  # pragma: no cover - no shipped marginal exceeds 65535 cells
            order = np.argsort(cp, kind="stable")
        return perm[order], cp[order]

    def _dup_offsets(self, rng, match, n_dup, dup_idx):
        """All per-cell duplication draws as one bounds-broadcast call.

        ``Generator.integers`` with an array of highs draws exactly one
        bounded word per element in element order — the same words, in the
        same order, as the reference's per-cell calls, leaving the generator
        in the identical state (pinned by ``tests/test_kernels.py``).
        """
        return rng.integers(0, np.repeat(match[dup_idx], n_dup[dup_idx]))

    def _apply_updates(self, data, states, freed):
        k = freed.shape[0]
        if k == 0:
            return
        if self._jit:
            patch = _compiled("patch_rows", _patch_rows_py)
            rows = np.ascontiguousarray(freed, dtype=np.int64)
            for state, axes, strides in zip(states, self._axes, self._int_strides):
                patch(data, rows, axes, strides, state.codes, state.counts)
            return
        m = self._m
        # One matmul re-codes the freed rows for every marginal: exact,
        # because every product and partial sum is an integer < 2^53.
        new_codes = (data[freed].astype(np.float64) @ self._strides).astype(np.int64)
        off = self._offsets[:, None]
        flat = np.empty((2, m, k), dtype=np.int64)
        np.add(new_codes.T, off, out=flat[0])
        np.add(self._codes[:, freed], off, out=flat[1])
        weights = np.empty(2 * m * k, dtype=np.float64)
        weights[: m * k] = 1.0
        weights[m * k :] = -1.0
        self._counts += np.bincount(flat.ravel(), weights=weights, minlength=self._total)
        self._codes[:, freed] = new_codes.T
