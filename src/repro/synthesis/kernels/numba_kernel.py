"""The numba GUM kernel: JIT-compiled, nogil cache maintenance.

Extends :class:`~repro.synthesis.kernels.vectorized.VectorizedKernel` — the
RNG-consuming orchestration is inherited unchanged, so bit-identity with the
reference kernel is preserved by construction — and replaces the
per-marginal cache patch (the only remaining allocation-heavy pass) with an
``@njit(nogil=True, cache=True)`` loop:

- the numpy patch allocates a ``bincount`` array of the full marginal size
  per marginal per step just to apply ``len(freed)`` deltas; the compiled
  loop applies them in place, touching ``O(len(freed))`` cells;
- the reference/vectorized row grouping is a stable ``argsort`` —
  ``O(n log n)`` per step and the single largest cost in the profile; the
  compiled kernel replaces it with an ``O(n + cells)`` counting sort that
  produces the bit-identical grouping (stable counting sort *is* a stable
  sort);
- the compiled regions release the GIL, so thread-backend shards overlap
  their update passes instead of serializing on the interpreter.

numba is strictly optional: the kernel registers itself in the registry
unconditionally (so ``kernel="numba"`` is always a *valid* name) but reports
itself unavailable when numba cannot be imported, and ``auto`` resolution
falls through to ``vectorized``.  Compilation happens lazily on first use
and is cached on disk (``cache=True``), so only the first shard of the first
run pays the JIT cost.

The compiled function's pure-Python twin (:func:`_patch_rows_py`) is the
source of truth — the njit wrapper is applied to it at first use — so the
parity tests can verify the update logic against the numpy implementation
even on hosts without numba.
"""

from __future__ import annotations

import numpy as np

from repro.synthesis.kernels.vectorized import VectorizedKernel

#: Cached result of the one real ``import numba`` probe (None = not probed).
_NUMBA_OK: bool | None = None


def numba_available() -> bool:
    """Whether numba actually imports (probed once, result cached).

    A real import, not ``find_spec``: an installed-but-broken numba (e.g. a
    numba/numpy ABI mismatch) must make the kernel report *unavailable* so
    ``auto`` resolution falls back to ``vectorized``, rather than passing
    the probe and then crashing on the first compiled call mid-run.
    """
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401

            _NUMBA_OK = True
        except Exception:
            _NUMBA_OK = False
    return _NUMBA_OK


def _patch_rows_py(data, rows, axes, strides, codes, counts):
    """Re-code ``rows`` of ``data`` for one marginal and patch its counts.

    The loop twin of :meth:`_MarginalState.apply_row_updates`: for each
    rewritten row, the new flat cell code is the stride-weighted sum of the
    row's values on the marginal's axes (exactly ``ravel_multi_index`` for
    in-domain values), the old code's count decremented, the new one
    incremented.  Integer deltas on float64 counts are exact, so the cached
    counts stay equal to a fresh ``bincount``.
    """
    for i in range(rows.shape[0]):
        r = rows[i]
        new = 0
        for j in range(axes.shape[0]):
            new += np.int64(data[r, axes[j]]) * strides[j]
        old = codes[r]
        counts[old] -= 1.0
        counts[new] += 1.0
        codes[r] = new


def _group_rows_py(codes, perm, size):
    """Stable counting sort of ``perm`` by ``codes[perm]``.

    The loop twin of ``argsort(codes[perm], kind="stable")``: returns the
    row indices grouped by cell (within-cell order following ``perm``) and
    the sorted cell codes — bit-identical to the numpy grouping, in
    ``O(n + size)`` instead of ``O(n log n)``.
    """
    n = perm.shape[0]
    counts = np.zeros(size + 1, dtype=np.int64)
    for i in range(n):
        counts[codes[perm[i]] + 1] += 1
    for c in range(size):
        counts[c + 1] += counts[c]
    rows_by_cell = np.empty(n, dtype=perm.dtype)
    sorted_codes = np.empty(n, dtype=codes.dtype)
    cursor = counts[:size].copy()
    for i in range(n):
        r = perm[i]
        c = codes[r]
        dest = cursor[c]
        rows_by_cell[dest] = r
        sorted_codes[dest] = c
        cursor[c] += 1
    return rows_by_cell, sorted_codes


#: Lazily compiled njit twins (filled on first use).
_JIT = {}


def _compiled(name, py_fn):
    fn = _JIT.get(name)
    if fn is None:
        import numba

        fn = _JIT[name] = numba.njit(nogil=True, cache=True)(py_fn)
    return fn


def _strides_for(shape: tuple) -> np.ndarray:
    """C-order ravel strides of a marginal's cell grid."""
    strides = np.ones(len(shape), dtype=np.int64)
    for j in range(len(shape) - 2, -1, -1):
        strides[j] = strides[j + 1] * shape[j + 1]
    return strides


class NumbaKernel(VectorizedKernel):
    """The vectorized kernel with a compiled, GIL-releasing cache patch."""

    name = "numba"
    uses_cache = True

    @classmethod
    def available(cls) -> bool:
        return numba_available()

    def prepare(self, data, states):
        super().prepare(data, states)
        # Precompute each marginal's ravel strides once per run; keyed by
        # state identity because _MarginalState is __slots__-frozen.
        self._strides = {id(state): _strides_for(state.shape) for state in states}

    def _group_rows(self, codes, perm, size):
        group = _compiled("group_rows", _group_rows_py)
        return group(codes, perm, np.int64(size))

    def _apply_updates(self, data, states, freed):
        patch = _compiled("patch_rows", _patch_rows_py)
        rows = np.ascontiguousarray(freed, dtype=np.int64)
        for state in states:
            strides = self._strides.get(id(state))
            if strides is None:
                strides = _strides_for(state.shape)
            patch(
                data,
                rows,
                np.ascontiguousarray(state.axes, dtype=np.int64),
                strides,
                state.codes,
                state.counts,
            )
