"""The vectorized GUM kernel: bulk gathers, cached codes, reference streams.

Restructures the reference per-cell loops into whole-step numpy operations —
pre-gathered marginal cell codes, fused free/refill passes, no per-record
Python dispatch — while consuming the random stream *exactly* like
:mod:`~repro.synthesis.kernels.reference` (see the RNG order contract in
:mod:`~repro.synthesis.kernels.base`), so its output is bit-identical.

What gets eliminated relative to the reference:

- the per-step ``ravel_multi_index`` + ``bincount`` recompute — each
  marginal's cell codes and counts are cached across iterations and patched
  only for the rows a step actually rewrites (integer deltas on float64
  counts are exact, so the cached counts equal a fresh ``bincount``);
- the per-cell ``searchsorted`` calls — one vectorized ``searchsorted`` per
  pass over the whole cell list;
- the per-cell free/refill slicing — one ``repeat``/``arange`` segment
  gather per pass;
- the per-cell attribute writes — one fancy-indexed write per pass.

The only surviving Python loop is the per-cell duplication draw
(``rng.integers(0, match, size=n_dup)``), which cannot be fused without
changing the stream; it runs over refilled cells, not records.

The free/refill writes commute with the reference's sequential per-cell
writes: freed rows come from over-full cells and duplication sources from
under-full cells, the two cell sets are disjoint (``excess > 0`` vs
``deficit > 0``), so no source row is ever written within a step and the
freed slots partition exactly.
"""

from __future__ import annotations

import numpy as np

from repro.synthesis.kernels.base import GumKernel, _segment_gather


class VectorizedKernel(GumKernel):
    """Whole-step numpy passes over cached per-marginal codes and counts."""

    name = "vectorized"
    uses_cache = True

    def prepare(self, data, states):
        for state in states:
            state.init_cache(data)

    def step(self, data, states, k, alpha, config, rng):
        state = states[k]
        n = data.shape[0]
        codes = state.codes
        diff = state.target - state.counts
        pre_error = float(np.abs(diff).sum()) / (2.0 * n)

        excess = np.clip(-diff, 0.0, None)
        deficit = np.clip(diff, 0.0, None)
        excess_total = excess.sum()
        deficit_total = deficit.sum()
        moves = int(round(alpha * min(excess_total, deficit_total)))
        if moves <= 0:
            return pre_error

        perm = rng.permutation(n)
        rows_by_cell, sorted_codes = self._group_rows(codes, perm, state.target.size)

        # --- free rows from over-represented cells (one pass) --------------
        over_cells = np.nonzero(excess > 0)[0]
        over_quota = rng.multinomial(moves, excess[over_cells] / excess_total)
        lo = np.searchsorted(sorted_codes, over_cells, side="left")
        hi = np.searchsorted(sorted_codes, over_cells, side="right")
        cap = np.where(
            excess[over_cells] >= 1.0,
            np.minimum(over_quota, np.floor(excess[over_cells]).astype(np.int64)),
            over_quota,
        )
        take = np.minimum(cap, hi - lo)
        if int(take.sum()) <= 0:
            return pre_error
        freed = rows_by_cell[_segment_gather(lo, take)]
        rng.shuffle(freed)

        # --- refill freed rows for under-represented cells (one pass) ------
        under_cells = np.nonzero(deficit > 0)[0]
        fill_quota = rng.multinomial(len(freed), deficit[under_cells] / deficit_total)
        nz = fill_quota > 0
        cells_nz = under_cells[nz]
        quota_nz = fill_quota[nz].astype(np.int64)
        lo_u = np.searchsorted(sorted_codes, cells_nz, side="left")
        hi_u = np.searchsorted(sorted_codes, cells_nz, side="right")
        match = hi_u - lo_u
        # round() and np.rint both round half to even, so the per-cell split
        # equals the reference's int(round(quota * fraction)).
        n_dup = np.where(
            match > 0,
            np.minimum(
                np.rint(quota_nz * config.duplicate_fraction).astype(np.int64), quota_nz
            ),
            0,
        )
        seg_start = np.cumsum(quota_nz) - quota_nz

        dup_slots = _segment_gather(seg_start, n_dup)
        if len(dup_slots):
            dup_idx = np.nonzero(n_dup > 0)[0]
            offsets = self._dup_offsets(rng, match, n_dup, dup_idx)
            lo_per = np.repeat(lo_u, n_dup)
            sources = rows_by_cell[lo_per + offsets]
            data[freed[dup_slots]] = data[sources]

        repl_slots = _segment_gather(seg_start + n_dup, quota_nz - n_dup)
        if len(repl_slots):
            cell_per = np.repeat(cells_nz, quota_nz - n_dup)
            coords = np.unravel_index(cell_per, state.shape)
            rows_repl = freed[repl_slots]
            for axis, values in zip(state.axes, coords):
                data[rows_repl, axis] = values

        # --- incremental count/code maintenance for every marginal ----------
        self._apply_updates(data, states, freed)
        return pre_error

    def _dup_offsets(self, rng, match, n_dup, dup_idx):
        """Within-cell source offsets for every duplication slot, in cell order.

        The draw bound varies per cell, so each cell's offsets come from its
        own ``rng.integers(0, bound, size=count)`` call (same calls, same
        order as the reference); the surrounding gathers and the write stay
        bulk.  ``tolist()`` feeds the draws plain Python ints — measurably
        less per-call overhead than numpy scalars in ``Generator.integers``.
        The fused kernel overrides this with a single bounds-broadcast draw
        that consumes the stream identically.
        """
        draw = rng.integers
        return np.concatenate(
            [
                draw(0, bound, size=count)
                for bound, count in zip(
                    match[dup_idx].tolist(), n_dup[dup_idx].tolist()
                )
            ]
        )

    def _group_rows(self, codes, perm, size):
        """Rows grouped by cell (stable in ``perm`` order) + their codes.

        Any stable grouping is bit-equivalent to the reference's
        ``argsort(codes[perm], kind="stable")``; the numba kernel overrides
        this with a compiled O(n) counting sort.
        """
        cp = codes[perm]
        sort_order = np.argsort(cp, kind="stable")
        return perm[sort_order], cp[sort_order]

    def _apply_updates(self, data, states, freed):
        """Patch every marginal's cached codes/counts for the rewritten rows.

        Split out as the numba kernel's override point: the orchestration
        above is RNG-consuming (must stay byte-for-byte shared), this pass is
        pure deterministic maintenance and free to be compiled.
        """
        new_rows = data[freed]
        for other in states:
            other.apply_row_updates(freed, new_rows)
