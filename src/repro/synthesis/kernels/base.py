"""The GUM kernel protocol and the state shared by every implementation.

A *kernel* is the record-update hot path of the GUM loop: one call applies a
single marginal's free/refill step to the encoded matrix (PrivSyn §6, paper
§3.4).  Kernels are interchangeable compute strategies, not semantic
variants — every registered kernel must consume the caller's random stream
identically to :class:`~repro.synthesis.kernels.reference.ReferenceKernel`
and write identical bytes, so the engine's reproducibility contract (the
pinned ``PRE_REFACTOR_GOLDEN`` digests, backend interchangeability, stream /
in-memory equality) holds no matter which kernel executes.  The parity
tests in ``tests/test_kernels.py`` enforce this bit for bit.

The RNG consumption order every kernel must reproduce per step:

1. ``rng.permutation(n)`` — the within-cell row order;
2. ``rng.multinomial(moves, p_over)`` — free quotas for over-full cells;
3. ``rng.shuffle(freed)`` — mix freed rows across source cells;
4. ``rng.multinomial(len(freed), p_under)`` — refill quotas;
5. one ``rng.integers(0, match, size=n_dup)`` per refilled cell that
   duplicates (ascending cell order, only when ``n_dup > 0``).

Steps 1-4 are single bulk draws, so kernels are free to restructure the
surrounding compute; step 5 is inherently per-cell (each draw's word
consumption depends on its bound), so even the fastest kernels keep that
small loop and vectorize everything around it.
"""

from __future__ import annotations

import abc

import numpy as np


def cell_codes(data: np.ndarray, shape: tuple) -> np.ndarray:
    """Flat cell index of every row (``ravel_multi_index`` over a row block).

    Local twin of :func:`repro.marginals.compute.cell_codes` — kernels must
    stay importable from :mod:`repro.engine.config` without dragging in the
    marginals package (whose init imports the engine backends back).
    """
    if data.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    return np.ravel_multi_index(tuple(data.T), shape)


class _MarginalState:
    """One target marginal plus its incrementally maintained current state."""

    __slots__ = ("axes", "shape", "target", "codes", "counts")

    def __init__(self, axes: np.ndarray, shape: tuple, target: np.ndarray) -> None:
        self.axes = axes
        self.shape = shape
        self.target = target
        self.codes: np.ndarray | None = None
        self.counts: np.ndarray | None = None

    def init_cache(self, data: np.ndarray) -> None:
        """Compute cell codes and counts once; steps update them in place."""
        self.codes = cell_codes(data[:, self.axes], self.shape)
        self.counts = np.bincount(self.codes, minlength=self.target.size).astype(
            np.float64
        )

    def apply_row_updates(self, rows: np.ndarray, new_rows: np.ndarray) -> None:
        """Re-code ``rows`` (now holding ``new_rows``) and patch the counts.

        One signed-weight bincount instead of two unsigned ones: same exact
        integer deltas (±1 in float64 is exact), half the cell-sized
        allocations per marginal per step.
        """
        new = cell_codes(new_rows[:, self.axes], self.shape)
        old = self.codes[rows]
        k = len(new)
        weights = np.empty(2 * k, dtype=np.float64)
        weights[:k] = 1.0
        weights[k:] = -1.0
        self.counts += np.bincount(
            np.concatenate([new, old]), weights=weights, minlength=self.target.size
        )
        self.codes[rows] = new


def _segment_gather(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i] + lengths[i])`` ranges, vectorized.

    The bulk equivalent of ``np.concatenate([arange(s, s + l) ...])`` built
    from ``np.repeat`` + one ``arange`` — the gather primitive behind the
    vectorized free/refill steps.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    seg_offsets = np.cumsum(lengths) - lengths
    base = np.repeat(np.asarray(starts, dtype=np.int64) - seg_offsets, lengths)
    return base + np.arange(total, dtype=np.int64)


class GumKernel(abc.ABC):
    """A compute strategy for the per-marginal GUM update step.

    Instances are stateless between runs (per-run state lives on the
    :class:`_MarginalState` list), so one registered instance serves every
    shard and thread.  Subclasses set :attr:`name` and implement
    :meth:`step`; cache-maintaining kernels set ``uses_cache = True`` so
    :func:`~repro.synthesis.gum.run_gum` calls :meth:`prepare` once before
    the iteration loop.
    """

    #: Registry key; also the value accepted by ``EngineConfig(kernel=...)``.
    name: str = "abstract"
    #: Whether :meth:`prepare` must run before the first :meth:`step`.
    uses_cache: bool = False

    @classmethod
    def available(cls) -> bool:
        """Whether this kernel can run in the current environment."""
        return True

    def prepare(self, data: np.ndarray, states: list) -> None:
        """Build per-marginal caches before the iteration loop (optional)."""

    @abc.abstractmethod
    def step(
        self,
        data: np.ndarray,
        states: list,
        k: int,
        alpha: float,
        config,
        rng: np.random.Generator,
    ) -> float:
        """Apply one update against marginal ``k``; return its pre-step error.

        ``data`` is modified in place.  ``config`` supplies
        ``duplicate_fraction``; ``states[k]`` the marginal being matched.
        """
