"""The GUM kernel registry: names, capability probes, ``auto`` resolution.

Kernels register *classes*; :func:`get_kernel` instantiates per call so any
per-run scratch a kernel keeps (e.g. the numba kernel's stride cache) never
leaks between concurrent shards.  A registered name is always *valid* —
``EngineConfig(kernel="numba")`` parses on every host — but only kernels
whose :meth:`~repro.synthesis.kernels.base.GumKernel.available` probe passes
are *usable*; requesting an unavailable kernel falls back down
:data:`AUTO_ORDER` (with a warning), which is safe because every kernel
produces bit-identical output.  That is what lets a model persisted on a
numba host sample on a plain-numpy host without changing a single byte.
"""

from __future__ import annotations

import warnings

from repro.synthesis.kernels.base import GumKernel

#: Resolution order of ``kernel="auto"``: fastest available wins.
AUTO_ORDER = ("fused", "numba", "vectorized", "reference")

#: The wildcard name resolved through :data:`AUTO_ORDER`.
KERNEL_AUTO = "auto"

_REGISTRY: dict[str, type[GumKernel]] = {}


def register_kernel(cls: type[GumKernel]) -> type[GumKernel]:
    """Register a kernel class under ``cls.name`` (idempotent; returns it)."""
    if not isinstance(cls, type) or not issubclass(cls, GumKernel):
        raise TypeError(f"kernel must be a GumKernel subclass, got {cls!r}")
    if not cls.name or cls.name == KERNEL_AUTO:
        raise ValueError(f"invalid kernel name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def kernel_names() -> tuple:
    """Every registered kernel name, available or not (the valid-name set)."""
    return tuple(_REGISTRY)


def available_kernels() -> tuple:
    """Names of the kernels usable in this environment, in AUTO_ORDER first."""
    ordered = [n for n in AUTO_ORDER if n in _REGISTRY]
    ordered += [n for n in _REGISTRY if n not in AUTO_ORDER]
    return tuple(n for n in ordered if _REGISTRY[n].available())


def resolve_kernel_name(name: str = KERNEL_AUTO) -> str:
    """Map a requested kernel name to the concrete one that will run.

    ``"auto"`` picks the first available name in :data:`AUTO_ORDER`.  A
    registered-but-unavailable name (e.g. ``"numba"`` without numba
    installed) falls back the same way — with a warning — instead of
    failing, because all kernels are output-identical.  An unregistered name
    raises ``ValueError``.
    """
    if name != KERNEL_AUTO and name not in _REGISTRY:
        valid = (KERNEL_AUTO,) + kernel_names()
        raise ValueError(f"kernel must be one of {valid}, got {name!r}")
    usable = available_kernels()
    if not usable:  # pragma: no cover - reference is always available
        raise RuntimeError("no GUM kernel is available")
    if name == KERNEL_AUTO:
        return usable[0]
    if name in usable:
        return name
    warnings.warn(
        f"GUM kernel {name!r} is not available on this host; "
        f"falling back to {usable[0]!r} (output is identical)",
        RuntimeWarning,
        stacklevel=2,
    )
    return usable[0]


def get_kernel(name: str = KERNEL_AUTO) -> GumKernel:
    """A fresh instance of the kernel ``name`` resolves to."""
    return _REGISTRY[resolve_kernel_name(name)]()


def valid_kernel_names() -> tuple:
    """The names ``EngineConfig(kernel=...)`` accepts (``auto`` + registered)."""
    return (KERNEL_AUTO,) + kernel_names()
