"""Pluggable GUM compute kernels: one update semantics, many speeds.

The GUM record-update hot path is expressed as a :class:`GumKernel` with
three registered implementations:

- ``reference`` — the original per-cell Python loop, kept verbatim as the
  golden oracle (:mod:`~repro.synthesis.kernels.reference`);
- ``vectorized`` — whole-step numpy passes over cached per-marginal codes
  and counts (:mod:`~repro.synthesis.kernels.vectorized`);
- ``numba`` — the vectorized kernel with an ``@njit(nogil=True)`` cache
  patch, registered as *available* only when numba imports
  (:mod:`~repro.synthesis.kernels.numba_kernel`);
- ``fused`` — one pass over a fused (marginals x records) code matrix per
  step: radix-sorted grouping, a single bounds-broadcast duplication draw,
  and a one-``bincount`` cache patch for every marginal at once, with
  compiled twins when numba is present
  (:mod:`~repro.synthesis.kernels.fused`).

All kernels consume the random stream identically and produce bit-identical
output (the parity suite proves it against the pinned golden digests), so
kernel choice — ``EngineConfig(kernel=...)``, resolved ``auto`` →
fused → numba → vectorized → reference — is purely a speed decision.
"""

from repro.synthesis.kernels.base import GumKernel, _MarginalState, _segment_gather
from repro.synthesis.kernels.fused import FusedKernel
from repro.synthesis.kernels.numba_kernel import NumbaKernel, numba_available
from repro.synthesis.kernels.reference import ReferenceKernel
from repro.synthesis.kernels.registry import (
    AUTO_ORDER,
    KERNEL_AUTO,
    available_kernels,
    get_kernel,
    kernel_names,
    register_kernel,
    resolve_kernel_name,
    valid_kernel_names,
)
from repro.synthesis.kernels.vectorized import VectorizedKernel

register_kernel(ReferenceKernel)
register_kernel(VectorizedKernel)
register_kernel(NumbaKernel)
register_kernel(FusedKernel)

__all__ = [
    "AUTO_ORDER",
    "KERNEL_AUTO",
    "FusedKernel",
    "GumKernel",
    "NumbaKernel",
    "ReferenceKernel",
    "VectorizedKernel",
    "available_kernels",
    "get_kernel",
    "kernel_names",
    "numba_available",
    "register_kernel",
    "resolve_kernel_name",
    "valid_kernel_names",
    "_MarginalState",
    "_segment_gather",
]
