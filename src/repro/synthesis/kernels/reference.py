"""The reference GUM kernel: the original per-cell Python loop, verbatim.

Kept as the golden oracle every other kernel is proved against — the pinned
``PRE_REFACTOR_GOLDEN`` digest was captured on this exact code path, and the
parity suite asserts the fast kernels reproduce its output bit for bit.
Never optimize this file; optimize a different kernel instead.
"""

from __future__ import annotations

import numpy as np

from repro.synthesis.kernels.base import GumKernel


class ReferenceKernel(GumKernel):
    """Per-cell loops, counts recomputed from scratch every step."""

    name = "reference"

    def step(self, data, states, k, alpha, config, rng):
        state = states[k]
        return _update_marginal(
            data, state.axes, state.shape, state.target, alpha, config, rng
        )


def _update_marginal(
    data: np.ndarray,
    axes: np.ndarray,
    shape: tuple,
    target: np.ndarray,
    alpha: float,
    config,
    rng: np.random.Generator,
) -> float:
    """One GUM step against one marginal; returns its pre-update L1 error.

    This is the reference implementation — per-cell loops, counts recomputed
    from scratch.  It must stay bit-identical to the pre-engine code: the
    compatibility tests pin its output digest.
    """
    n = data.shape[0]
    codes = np.ravel_multi_index(tuple(data[:, axes].T), shape)
    current = np.bincount(codes, minlength=target.size).astype(np.float64)
    diff = target - current
    pre_error = float(np.abs(diff).sum()) / (2.0 * n)

    excess = np.clip(-diff, 0.0, None)
    deficit = np.clip(diff, 0.0, None)
    excess_total = excess.sum()
    deficit_total = deficit.sum()
    moves = int(round(alpha * min(excess_total, deficit_total)))
    if moves <= 0:
        return pre_error

    # Group row indices by cell, in random within-cell order, for O(1) slicing.
    perm = rng.permutation(n)
    sort_order = np.argsort(codes[perm], kind="stable")
    rows_by_cell = perm[sort_order]
    sorted_codes = codes[perm][sort_order]

    # --- free rows from over-represented cells -----------------------------
    over_cells = np.nonzero(excess > 0)[0]
    over_quota = rng.multinomial(moves, excess[over_cells] / excess_total)
    freed_parts = []
    for cell, quota in zip(over_cells, over_quota):
        if quota == 0:
            continue
        lo = np.searchsorted(sorted_codes, cell, side="left")
        hi = np.searchsorted(sorted_codes, cell, side="right")
        take = min(quota, int(excess[cell]) if excess[cell] >= 1 else quota, hi - lo)
        if take > 0:
            freed_parts.append(rows_by_cell[lo : lo + take])
    if not freed_parts:
        return pre_error
    freed = np.concatenate(freed_parts)
    rng.shuffle(freed)

    # --- refill freed rows for under-represented cells ----------------------
    under_cells = np.nonzero(deficit > 0)[0]
    fill_quota = rng.multinomial(len(freed), deficit[under_cells] / deficit_total)
    ptr = 0
    for cell, quota in zip(under_cells, fill_quota):
        if quota == 0:
            continue
        slots = freed[ptr : ptr + quota]
        ptr += quota
        lo = np.searchsorted(sorted_codes, cell, side="left")
        hi = np.searchsorted(sorted_codes, cell, side="right")
        matching = rows_by_cell[lo:hi]
        n_dup = 0
        if len(matching) > 0:
            n_dup = min(int(round(len(slots) * config.duplicate_fraction)), len(slots))
        if n_dup > 0:
            sources = matching[rng.integers(0, len(matching), size=n_dup)]
            data[slots[:n_dup]] = data[sources]
        if n_dup < len(slots):
            coords = np.unravel_index(cell, shape)
            for axis, value in zip(axes, coords):
                data[slots[n_dup:], axis] = value
    return pre_error
