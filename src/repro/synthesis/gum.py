"""GUM: the Gradually Update Method record synthesizer (PrivSyn §6, paper §3.4).

GUM iteratively edits an encoded synthetic dataset so that its marginals
approach the published noisy targets.  For each target marginal it:

1. computes the current marginal and its signed gap to the target;
2. frees rows from over-represented cells (proportionally to their excess,
   damped by the update rate alpha);
3. refills the freed rows for under-represented cells — preferentially by
   *duplicating* an existing row that already matches the cell (preserving
   that row's joint distribution with the other attributes), otherwise by
   *replacing* just the marginal's attributes in the freed row.

The update rate decays geometrically so early iterations make large moves
and later ones fine-tune.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.domain import Domain
from repro.utils.rng import ensure_rng


@dataclass
class GumConfig:
    """Tuning knobs of the GUM loop."""

    iterations: int = 50
    alpha: float = 1.0
    alpha_decay: float = 0.98
    duplicate_fraction: float = 0.5
    #: Stop early when the mean marginal error improves by less than ``tol``
    #: for ``patience`` consecutive iterations.
    tol: float = 1e-4
    patience: int = 5


@dataclass
class GumResult:
    """Synthesized encoded rows plus the convergence trace."""

    data: np.ndarray
    errors: list = field(default_factory=list)
    iterations_run: int = 0


def run_gum(
    data: np.ndarray,
    targets: list,
    attrs: tuple,
    domain: Domain,
    config: GumConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> GumResult:
    """Run GUM starting from ``data`` (modified in place and returned).

    ``targets`` are post-processed noisy marginals; they are rescaled to the
    row count of ``data`` internally.
    """
    config = config or GumConfig()
    rng = ensure_rng(rng)
    data = np.asarray(data, dtype=np.int32)
    n = data.shape[0]
    if n == 0 or not targets:
        return GumResult(data=data, errors=[], iterations_run=0)

    prepared = []
    for m in targets:
        axes = np.array([attrs.index(a) for a in m.attrs])
        shape = domain.shape(m.attrs)
        flat_target = np.clip(m.flat(), 0.0, None)
        total = flat_target.sum()
        scale = n / total if total > 0 else 0.0
        prepared.append((axes, shape, flat_target * scale))

    errors: list[float] = []
    stall = 0
    best = np.inf
    iterations_run = 0
    for t in range(config.iterations):
        alpha = config.alpha * config.alpha_decay**t
        order = rng.permutation(len(prepared))
        iter_errors = []
        for k in order:
            axes, shape, target = prepared[k]
            err = _update_marginal(data, axes, shape, target, alpha, config, rng)
            iter_errors.append(err)
        mean_err = float(np.mean(iter_errors))
        errors.append(mean_err)
        iterations_run = t + 1
        if best - mean_err < config.tol:
            stall += 1
            if stall >= config.patience:
                break
        else:
            stall = 0
        best = min(best, mean_err)
    return GumResult(data=data, errors=errors, iterations_run=iterations_run)


def _update_marginal(
    data: np.ndarray,
    axes: np.ndarray,
    shape: tuple,
    target: np.ndarray,
    alpha: float,
    config: GumConfig,
    rng: np.random.Generator,
) -> float:
    """One GUM step against one marginal; returns its pre-update L1 error."""
    n = data.shape[0]
    codes = np.ravel_multi_index(tuple(data[:, axes].T), shape)
    current = np.bincount(codes, minlength=target.size).astype(np.float64)
    diff = target - current
    pre_error = float(np.abs(diff).sum()) / (2.0 * n)

    excess = np.clip(-diff, 0.0, None)
    deficit = np.clip(diff, 0.0, None)
    excess_total = excess.sum()
    deficit_total = deficit.sum()
    moves = int(round(alpha * min(excess_total, deficit_total)))
    if moves <= 0:
        return pre_error

    # Group row indices by cell, in random within-cell order, for O(1) slicing.
    perm = rng.permutation(n)
    sort_order = np.argsort(codes[perm], kind="stable")
    rows_by_cell = perm[sort_order]
    sorted_codes = codes[perm][sort_order]

    # --- free rows from over-represented cells -----------------------------
    over_cells = np.nonzero(excess > 0)[0]
    over_quota = rng.multinomial(moves, excess[over_cells] / excess_total)
    freed_parts = []
    for cell, quota in zip(over_cells, over_quota):
        if quota == 0:
            continue
        lo = np.searchsorted(sorted_codes, cell, side="left")
        hi = np.searchsorted(sorted_codes, cell, side="right")
        take = min(quota, int(excess[cell]) if excess[cell] >= 1 else quota, hi - lo)
        if take > 0:
            freed_parts.append(rows_by_cell[lo : lo + take])
    if not freed_parts:
        return pre_error
    freed = np.concatenate(freed_parts)
    rng.shuffle(freed)

    # --- refill freed rows for under-represented cells ----------------------
    under_cells = np.nonzero(deficit > 0)[0]
    fill_quota = rng.multinomial(len(freed), deficit[under_cells] / deficit_total)
    ptr = 0
    for cell, quota in zip(under_cells, fill_quota):
        if quota == 0:
            continue
        slots = freed[ptr : ptr + quota]
        ptr += quota
        lo = np.searchsorted(sorted_codes, cell, side="left")
        hi = np.searchsorted(sorted_codes, cell, side="right")
        matching = rows_by_cell[lo:hi]
        n_dup = 0
        if len(matching) > 0:
            n_dup = min(int(round(len(slots) * config.duplicate_fraction)), len(slots))
        if n_dup > 0:
            sources = matching[rng.integers(0, len(matching), size=n_dup)]
            data[slots[:n_dup]] = data[sources]
        if n_dup < len(slots):
            coords = np.unravel_index(cell, shape)
            for axis, value in zip(axes, coords):
                data[slots[n_dup:], axis] = value
    return pre_error
