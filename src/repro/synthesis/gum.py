"""GUM: the Gradually Update Method record synthesizer (PrivSyn §6, paper §3.4).

GUM iteratively edits an encoded synthetic dataset so that its marginals
approach the published noisy targets.  For each target marginal it:

1. computes the current marginal and its signed gap to the target;
2. frees rows from over-represented cells (proportionally to their excess,
   damped by the update rate alpha);
3. refills the freed rows for under-represented cells — preferentially by
   *duplicating* an existing row that already matches the cell (preserving
   that row's joint distribution with the other attributes), otherwise by
   *replacing* just the marginal's attributes in the freed row.

The update rate decays geometrically so early iterations make large moves
and later ones fine-tune.

The per-marginal update step is executed by a pluggable
:class:`~repro.synthesis.kernels.GumKernel` (see
:mod:`repro.synthesis.kernels`): ``reference`` (the original per-cell loop,
the golden oracle), ``vectorized`` (whole-step numpy passes over cached
codes/counts), ``numba`` (JIT-compiled nogil cache maintenance, available
only when numba imports), and ``fused`` (single pass over precomputed
per-marginal cell codes — radix grouping, broadcast refill draws, one
matmul-plus-bincount cache patch).  Every kernel consumes the random
stream identically and produces bit-identical output, so kernel choice is
purely a speed decision; ``"auto"`` resolves fused → numba → vectorized →
reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.domain import Domain
from repro.synthesis.kernels import (
    GumKernel,
    _MarginalState,
    _segment_gather,  # noqa: F401  (re-exported for backward compatibility)
    get_kernel,
    valid_kernel_names,
)
from repro.synthesis.kernels.reference import _update_marginal  # noqa: F401
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer

#: Valid values of :attr:`GumConfig.update_mode` at import time (``"auto"``
#: + every registered kernel name).  Validation queries the registry live,
#: so kernels registered later are accepted too; this constant is kept for
#: documentation and backward compatibility.
UPDATE_MODES = valid_kernel_names()


@dataclass
class GumConfig:
    """Tuning knobs of the GUM loop."""

    iterations: int = 50
    alpha: float = 1.0
    alpha_decay: float = 0.98
    duplicate_fraction: float = 0.5
    #: Stop early when the mean marginal error improves by less than ``tol``
    #: for ``patience`` consecutive iterations.
    tol: float = 1e-4
    patience: int = 5
    #: Which update-step kernel to use: a registered kernel name
    #: (``"vectorized"``, ``"reference"``, ``"numba"``) or ``"auto"`` (the
    #: fastest available kernel; all kernels are bit-identical, so this
    #: never changes output).  Engine callers normally select the kernel
    #: through ``EngineConfig(kernel=...)`` instead; a non-auto value here
    #: acts as a legacy pin that engine ``auto`` resolution honors.
    update_mode: str = "auto"

    def __post_init__(self) -> None:
        valid = valid_kernel_names()
        if self.update_mode not in valid:
            raise ValueError(
                f"update_mode must be one of {valid}, got {self.update_mode!r}"
            )

    def resolved_mode(self, default: str = "vectorized") -> str:
        """Resolve ``"auto"`` to the caller's preferred concrete mode."""
        if default == "auto" or default not in valid_kernel_names():
            raise ValueError(f"invalid default mode {default!r}")
        return default if self.update_mode == "auto" else self.update_mode


@dataclass
class GumResult:
    """Synthesized encoded rows plus the convergence trace and timings.

    Runs that decode inside the shards (the engine's sharded-decode and
    streaming paths) never materialize a merged encoded matrix; they carry
    ``data=None`` and record the row count in :attr:`n_records` instead.
    """

    data: np.ndarray | None
    errors: list = field(default_factory=list)
    iterations_run: int = 0
    #: Wall-clock seconds of the GUM loop; for engine runs this is the whole
    #: sampling phase (initialization + GUM across all shards, plus decode
    #: when the run decoded in-shard).
    seconds: float = 0.0
    #: Execution provenance (filled in by :mod:`repro.engine` for sharded runs).
    backend: str = "serial"
    shards: int = 1
    #: The concrete kernel that executed the update steps.
    kernel: str = ""
    #: Per-shard results when this result merges a sharded run (payload-free:
    #: the executor keeps timings/errors/iterations but drops the data arrays).
    shard_results: list = field(default_factory=list)
    #: Total synthesized rows; authoritative when ``data`` is ``None``.
    n_records: int | None = None

    @property
    def records_per_second(self) -> float:
        """Synthesis throughput (0 when the run was not timed)."""
        if self.seconds <= 0:
            return 0.0
        n = self.n_records
        if n is None:
            n = 0 if self.data is None else self.data.shape[0]
        return n / self.seconds


def run_gum(
    data: np.ndarray,
    targets: list,
    attrs: tuple,
    domain: Domain,
    config: GumConfig | None = None,
    rng: np.random.Generator | int | None = None,
    kernel: str | GumKernel | None = None,
) -> GumResult:
    """Run GUM starting from ``data`` (modified in place and returned).

    ``targets`` are post-processed noisy marginals; they are rescaled to the
    row count of ``data`` internally.  ``kernel`` overrides the update-step
    implementation for this run (a registered name, ``"auto"``, or a
    :class:`~repro.synthesis.kernels.GumKernel` instance); when omitted,
    ``config.update_mode`` decides.  Kernel choice never changes the output.
    """
    config = config or GumConfig()
    rng = ensure_rng(rng)
    data = np.asarray(data, dtype=np.int32)
    n = data.shape[0]
    if n == 0 or not targets:
        return GumResult(data=data, errors=[], iterations_run=0)
    if kernel is None:
        kernel = config.update_mode
    if not isinstance(kernel, GumKernel):
        kernel = get_kernel(kernel)

    timer = Timer()
    timer.start()
    states = []
    for m in targets:
        axes = np.array([attrs.index(a) for a in m.attrs])
        shape = domain.shape(m.attrs)
        flat_target = np.clip(m.flat(), 0.0, None)
        total = flat_target.sum()
        scale = n / total if total > 0 else 0.0
        states.append(_MarginalState(axes, shape, flat_target * scale))
    if kernel.uses_cache:
        kernel.prepare(data, states)

    errors: list[float] = []
    stall = 0
    best = np.inf
    iterations_run = 0
    for t in range(config.iterations):
        alpha = config.alpha * config.alpha_decay**t
        order = rng.permutation(len(states))
        iter_errors = []
        for k in order:
            iter_errors.append(kernel.step(data, states, k, alpha, config, rng))
        mean_err = float(np.mean(iter_errors))
        errors.append(mean_err)
        iterations_run = t + 1
        if best - mean_err < config.tol:
            stall += 1
            if stall >= config.patience:
                break
        else:
            stall = 0
        best = min(best, mean_err)
    return GumResult(
        data=data,
        errors=errors,
        iterations_run=iterations_run,
        seconds=timer.stop(),
        kernel=kernel.name,
    )


def _update_marginal_vectorized(
    data: np.ndarray,
    states: list,
    k: int,
    alpha: float,
    config: GumConfig,
    rng: np.random.Generator,
) -> float:
    """Backward-compatible wrapper: one vectorized-kernel step.

    Kept because pre-kernel callers and tests invoked the step function
    directly; new code should go through :func:`run_gum` or the registry.
    """
    from repro.synthesis.kernels.vectorized import VectorizedKernel

    return VectorizedKernel().step(data, states, k, alpha, config, rng)
