"""GUM: the Gradually Update Method record synthesizer (PrivSyn §6, paper §3.4).

GUM iteratively edits an encoded synthetic dataset so that its marginals
approach the published noisy targets.  For each target marginal it:

1. computes the current marginal and its signed gap to the target;
2. frees rows from over-represented cells (proportionally to their excess,
   damped by the update rate alpha);
3. refills the freed rows for under-represented cells — preferentially by
   *duplicating* an existing row that already matches the cell (preserving
   that row's joint distribution with the other attributes), otherwise by
   *replacing* just the marginal's attributes in the freed row.

The update rate decays geometrically so early iterations make large moves
and later ones fine-tune.

Two implementations of the per-marginal update step exist:

``reference``
    The original per-cell Python loop, kept verbatim.  Bit-identical to the
    pre-engine implementation for a fixed seed; the serial engine backend
    resolves ``update_mode="auto"`` to this path so existing seeds keep
    producing the exact same traces.
``vectorized``
    Bulk ``np.repeat``/``searchsorted`` gathers instead of per-cell loops,
    plus incremental marginal-count maintenance: each marginal's cell codes
    and counts are cached across iterations and updated only for the rows a
    step actually rewrites, instead of recomputing ``bincount`` over all
    rows on every visit.  Statistically equivalent to ``reference`` (same
    moves, same free/refill quotas, same duplicate/replace split per cell)
    but consumes the random stream in bulk, so outputs differ bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.domain import Domain
from repro.marginals.compute import cell_codes
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer

#: Valid values of :attr:`GumConfig.update_mode`.
UPDATE_MODES = ("auto", "vectorized", "reference")


@dataclass
class GumConfig:
    """Tuning knobs of the GUM loop."""

    iterations: int = 50
    alpha: float = 1.0
    alpha_decay: float = 0.98
    duplicate_fraction: float = 0.5
    #: Stop early when the mean marginal error improves by less than ``tol``
    #: for ``patience`` consecutive iterations.
    tol: float = 1e-4
    patience: int = 5
    #: Which update-step implementation to use: ``"vectorized"``,
    #: ``"reference"``, or ``"auto"`` (vectorized, except the engine's
    #: single-shard serial path which resolves to reference for bit-exact
    #: backward compatibility).
    update_mode: str = "auto"

    def __post_init__(self) -> None:
        if self.update_mode not in UPDATE_MODES:
            raise ValueError(
                f"update_mode must be one of {UPDATE_MODES}, got {self.update_mode!r}"
            )

    def resolved_mode(self, default: str = "vectorized") -> str:
        """Resolve ``"auto"`` to the caller's preferred concrete mode."""
        if default not in ("vectorized", "reference"):
            raise ValueError(f"invalid default mode {default!r}")
        return default if self.update_mode == "auto" else self.update_mode


@dataclass
class GumResult:
    """Synthesized encoded rows plus the convergence trace and timings.

    Runs that decode inside the shards (the engine's sharded-decode and
    streaming paths) never materialize a merged encoded matrix; they carry
    ``data=None`` and record the row count in :attr:`n_records` instead.
    """

    data: np.ndarray | None
    errors: list = field(default_factory=list)
    iterations_run: int = 0
    #: Wall-clock seconds of the GUM loop; for engine runs this is the whole
    #: sampling phase (initialization + GUM across all shards, plus decode
    #: when the run decoded in-shard).
    seconds: float = 0.0
    #: Execution provenance (filled in by :mod:`repro.engine` for sharded runs).
    backend: str = "serial"
    shards: int = 1
    #: Per-shard results when this result merges a sharded run (payload-free:
    #: the executor keeps timings/errors/iterations but drops the data arrays).
    shard_results: list = field(default_factory=list)
    #: Total synthesized rows; authoritative when ``data`` is ``None``.
    n_records: int | None = None

    @property
    def records_per_second(self) -> float:
        """Synthesis throughput (0 when the run was not timed)."""
        if self.seconds <= 0:
            return 0.0
        n = self.n_records
        if n is None:
            n = 0 if self.data is None else self.data.shape[0]
        return n / self.seconds


class _MarginalState:
    """One target marginal plus its incrementally maintained current state."""

    __slots__ = ("axes", "shape", "target", "codes", "counts")

    def __init__(self, axes: np.ndarray, shape: tuple, target: np.ndarray) -> None:
        self.axes = axes
        self.shape = shape
        self.target = target
        self.codes: np.ndarray | None = None
        self.counts: np.ndarray | None = None

    def init_cache(self, data: np.ndarray) -> None:
        """Compute cell codes and counts once; steps update them in place."""
        self.codes = cell_codes(data[:, self.axes], self.shape)
        self.counts = np.bincount(self.codes, minlength=self.target.size).astype(
            np.float64
        )

    def apply_row_updates(self, rows: np.ndarray, new_rows: np.ndarray) -> None:
        """Re-code ``rows`` (now holding ``new_rows``) and patch the counts."""
        new = cell_codes(new_rows[:, self.axes], self.shape)
        old = self.codes[rows]
        size = self.target.size
        self.counts += np.bincount(new, minlength=size) - np.bincount(old, minlength=size)
        self.codes[rows] = new


def run_gum(
    data: np.ndarray,
    targets: list,
    attrs: tuple,
    domain: Domain,
    config: GumConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> GumResult:
    """Run GUM starting from ``data`` (modified in place and returned).

    ``targets`` are post-processed noisy marginals; they are rescaled to the
    row count of ``data`` internally.
    """
    config = config or GumConfig()
    rng = ensure_rng(rng)
    data = np.asarray(data, dtype=np.int32)
    n = data.shape[0]
    if n == 0 or not targets:
        return GumResult(data=data, errors=[], iterations_run=0)
    mode = config.resolved_mode()

    timer = Timer()
    timer.start()
    states = []
    for m in targets:
        axes = np.array([attrs.index(a) for a in m.attrs])
        shape = domain.shape(m.attrs)
        flat_target = np.clip(m.flat(), 0.0, None)
        total = flat_target.sum()
        scale = n / total if total > 0 else 0.0
        states.append(_MarginalState(axes, shape, flat_target * scale))
    if mode == "vectorized":
        for state in states:
            state.init_cache(data)

    errors: list[float] = []
    stall = 0
    best = np.inf
    iterations_run = 0
    for t in range(config.iterations):
        alpha = config.alpha * config.alpha_decay**t
        order = rng.permutation(len(states))
        iter_errors = []
        for k in order:
            state = states[k]
            if mode == "reference":
                err = _update_marginal(
                    data, state.axes, state.shape, state.target, alpha, config, rng
                )
            else:
                err = _update_marginal_vectorized(data, states, k, alpha, config, rng)
            iter_errors.append(err)
        mean_err = float(np.mean(iter_errors))
        errors.append(mean_err)
        iterations_run = t + 1
        if best - mean_err < config.tol:
            stall += 1
            if stall >= config.patience:
                break
        else:
            stall = 0
        best = min(best, mean_err)
    return GumResult(
        data=data,
        errors=errors,
        iterations_run=iterations_run,
        seconds=timer.stop(),
    )


def _update_marginal(
    data: np.ndarray,
    axes: np.ndarray,
    shape: tuple,
    target: np.ndarray,
    alpha: float,
    config: GumConfig,
    rng: np.random.Generator,
) -> float:
    """One GUM step against one marginal; returns its pre-update L1 error.

    This is the reference implementation — per-cell loops, counts recomputed
    from scratch.  It must stay bit-identical to the pre-engine code: the
    compatibility tests pin its output digest.
    """
    n = data.shape[0]
    codes = np.ravel_multi_index(tuple(data[:, axes].T), shape)
    current = np.bincount(codes, minlength=target.size).astype(np.float64)
    diff = target - current
    pre_error = float(np.abs(diff).sum()) / (2.0 * n)

    excess = np.clip(-diff, 0.0, None)
    deficit = np.clip(diff, 0.0, None)
    excess_total = excess.sum()
    deficit_total = deficit.sum()
    moves = int(round(alpha * min(excess_total, deficit_total)))
    if moves <= 0:
        return pre_error

    # Group row indices by cell, in random within-cell order, for O(1) slicing.
    perm = rng.permutation(n)
    sort_order = np.argsort(codes[perm], kind="stable")
    rows_by_cell = perm[sort_order]
    sorted_codes = codes[perm][sort_order]

    # --- free rows from over-represented cells -----------------------------
    over_cells = np.nonzero(excess > 0)[0]
    over_quota = rng.multinomial(moves, excess[over_cells] / excess_total)
    freed_parts = []
    for cell, quota in zip(over_cells, over_quota):
        if quota == 0:
            continue
        lo = np.searchsorted(sorted_codes, cell, side="left")
        hi = np.searchsorted(sorted_codes, cell, side="right")
        take = min(quota, int(excess[cell]) if excess[cell] >= 1 else quota, hi - lo)
        if take > 0:
            freed_parts.append(rows_by_cell[lo : lo + take])
    if not freed_parts:
        return pre_error
    freed = np.concatenate(freed_parts)
    rng.shuffle(freed)

    # --- refill freed rows for under-represented cells ----------------------
    under_cells = np.nonzero(deficit > 0)[0]
    fill_quota = rng.multinomial(len(freed), deficit[under_cells] / deficit_total)
    ptr = 0
    for cell, quota in zip(under_cells, fill_quota):
        if quota == 0:
            continue
        slots = freed[ptr : ptr + quota]
        ptr += quota
        lo = np.searchsorted(sorted_codes, cell, side="left")
        hi = np.searchsorted(sorted_codes, cell, side="right")
        matching = rows_by_cell[lo:hi]
        n_dup = 0
        if len(matching) > 0:
            n_dup = min(int(round(len(slots) * config.duplicate_fraction)), len(slots))
        if n_dup > 0:
            sources = matching[rng.integers(0, len(matching), size=n_dup)]
            data[slots[:n_dup]] = data[sources]
        if n_dup < len(slots):
            coords = np.unravel_index(cell, shape)
            for axis, value in zip(axes, coords):
                data[slots[n_dup:], axis] = value
    return pre_error


def _segment_gather(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i] + lengths[i])`` ranges, vectorized.

    The bulk equivalent of ``np.concatenate([arange(s, s + l) ...])`` built
    from ``np.repeat`` + one ``arange`` — the gather primitive behind the
    vectorized free/refill steps.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    seg_offsets = np.cumsum(lengths) - lengths
    base = np.repeat(np.asarray(starts, dtype=np.int64) - seg_offsets, lengths)
    return base + np.arange(total, dtype=np.int64)


def _update_marginal_vectorized(
    data: np.ndarray,
    states: list,
    k: int,
    alpha: float,
    config: GumConfig,
    rng: np.random.Generator,
) -> float:
    """One GUM step against marginal ``k``, with bulk gathers everywhere.

    Semantically matches :func:`_update_marginal` (same quotas, same
    duplicate/replace split, same sequential-write semantics — freed rows and
    duplication sources are provably disjoint, so the all-at-once writes equal
    the reference's cell-by-cell writes) but touches every marginal's cached
    codes/counts instead of recomputing bincounts.
    """
    state = states[k]
    n = data.shape[0]
    codes = state.codes
    diff = state.target - state.counts
    pre_error = float(np.abs(diff).sum()) / (2.0 * n)

    excess = np.clip(-diff, 0.0, None)
    deficit = np.clip(diff, 0.0, None)
    excess_total = excess.sum()
    deficit_total = deficit.sum()
    moves = int(round(alpha * min(excess_total, deficit_total)))
    if moves <= 0:
        return pre_error

    perm = rng.permutation(n)
    sort_order = np.argsort(codes[perm], kind="stable")
    rows_by_cell = perm[sort_order]
    sorted_codes = codes[perm][sort_order]

    # --- free rows from over-represented cells (bulk) ----------------------
    over_cells = np.nonzero(excess > 0)[0]
    over_quota = rng.multinomial(moves, excess[over_cells] / excess_total)
    lo = np.searchsorted(sorted_codes, over_cells, side="left")
    hi = np.searchsorted(sorted_codes, over_cells, side="right")
    cap = np.where(
        excess[over_cells] >= 1.0,
        np.minimum(over_quota, np.floor(excess[over_cells]).astype(np.int64)),
        over_quota,
    )
    take = np.minimum(cap, hi - lo)
    if int(take.sum()) <= 0:
        return pre_error
    freed = rows_by_cell[_segment_gather(lo, take)]
    rng.shuffle(freed)

    # --- refill freed rows for under-represented cells (bulk) ---------------
    under_cells = np.nonzero(deficit > 0)[0]
    fill_quota = rng.multinomial(len(freed), deficit[under_cells] / deficit_total)
    nz = fill_quota > 0
    cells_nz = under_cells[nz]
    quota_nz = fill_quota[nz].astype(np.int64)
    lo_u = np.searchsorted(sorted_codes, cells_nz, side="left")
    hi_u = np.searchsorted(sorted_codes, cells_nz, side="right")
    match = hi_u - lo_u
    n_dup = np.where(
        match > 0,
        np.minimum(
            np.rint(quota_nz * config.duplicate_fraction).astype(np.int64), quota_nz
        ),
        0,
    )
    seg_start = np.cumsum(quota_nz) - quota_nz

    dup_slots = _segment_gather(seg_start, n_dup)
    if len(dup_slots):
        match_per = np.repeat(match, n_dup)
        lo_per = np.repeat(lo_u, n_dup)
        offsets = np.minimum(
            (rng.random(len(dup_slots)) * match_per).astype(np.int64), match_per - 1
        )
        sources = rows_by_cell[lo_per + offsets]
        data[freed[dup_slots]] = data[sources]

    repl_slots = _segment_gather(seg_start + n_dup, quota_nz - n_dup)
    if len(repl_slots):
        cell_per = np.repeat(cells_nz, quota_nz - n_dup)
        coords = np.unravel_index(cell_per, state.shape)
        rows_repl = freed[repl_slots]
        for axis, values in zip(state.axes, coords):
            data[rows_repl, axis] = values

    # --- incremental count/code maintenance for every marginal --------------
    new_rows = data[freed]
    for other in states:
        other.apply_row_updates(freed, new_rows)
    return pre_error
