"""Synthetic-dataset initialization: random vs GUMMI (paper §3.4).

GUM (PrivSyn) starts from an *independently sampled* dataset and iteratively
repairs marginals.  GUMMI instead seeds the dataset from the noisy multi-way
marginals that contain the key attribute (the classification label), ordered
by the Pearson correlation computed *on the noisy marginals* — no budget is
spent.  Feature↔label correlations are then present from iteration zero,
which is exactly why Fig. 8 shows GUMMI ≫ GUM at small iteration counts.
"""

from __future__ import annotations

import numpy as np

from repro.data.domain import Domain
from repro.marginals.marginal import Marginal
from repro.utils.rng import ensure_rng


def weighted_pearson(counts: np.ndarray) -> float:
    """Pearson correlation of the two index variables of a 2-D count table.

    Cell (i, j) contributes weight ``counts[i, j]`` to the joint sample of
    the bin indices.  Degenerate (zero-variance) tables score 0.
    """
    counts = np.clip(np.asarray(counts, dtype=np.float64), 0.0, None)
    total = counts.sum()
    if total <= 0:
        return 0.0
    i = np.arange(counts.shape[0], dtype=np.float64)
    j = np.arange(counts.shape[1], dtype=np.float64)
    pi = counts.sum(axis=1) / total
    pj = counts.sum(axis=0) / total
    mi = float(pi @ i)
    mj = float(pj @ j)
    vi = float(pi @ (i - mi) ** 2)
    vj = float(pj @ (j - mj) ** 2)
    if vi <= 0 or vj <= 0:
        return 0.0
    cov = float(((counts / total) * np.outer(i - mi, j - mj)).sum())
    return cov / np.sqrt(vi * vj)


def key_correlation_score(marginal: Marginal, key_attr: str) -> float:
    """Max |Pearson| between the key attribute and any co-attribute."""
    if key_attr not in marginal.attrs or len(marginal.attrs) < 2:
        return 0.0
    best = 0.0
    for other in marginal.attrs:
        if other == key_attr:
            continue
        pair = marginal.project((key_attr, other))
        best = max(best, abs(weighted_pearson(pair.counts)))
    return best


def _sample_joint(marginal: Marginal, n: int, rng: np.random.Generator) -> dict:
    """Sample n cell tuples from a marginal, returned as per-attr columns."""
    probs = np.clip(marginal.flat(), 0.0, None)
    total = probs.sum()
    if total <= 0:
        probs = np.ones_like(probs)
        total = probs.sum()
    flat = rng.choice(probs.size, size=n, p=probs / total)
    coords = np.unravel_index(flat, marginal.shape)
    return {a: c.astype(np.int32) for a, c in zip(marginal.attrs, coords)}


def _sample_conditional(
    marginal: Marginal,
    given_attr: str,
    given_col: np.ndarray,
    rng: np.random.Generator,
) -> dict:
    """Sample the remaining attrs of ``marginal`` conditioned on one column."""
    rest = tuple(a for a in marginal.attrs if a != given_attr)
    axis = marginal.attrs.index(given_attr)
    moved = np.moveaxis(np.clip(marginal.counts, 0.0, None), axis, 0)
    flat = moved.reshape(moved.shape[0], -1)
    rest_shape = moved.shape[1:]
    n = len(given_col)
    out_flat = np.empty(n, dtype=np.int64)
    for value in np.unique(given_col):
        idx = np.nonzero(given_col == value)[0]
        probs = flat[value]
        total = probs.sum()
        if total <= 0:
            probs = np.ones_like(probs)
            total = probs.sum()
        out_flat[idx] = rng.choice(probs.size, size=len(idx), p=probs / total)
    coords = np.unravel_index(out_flat, rest_shape)
    return {a: c.astype(np.int32) for a, c in zip(rest, coords)}


def random_initialization(
    one_way: dict,
    attrs: tuple,
    n: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Independent per-attribute sampling from (noisy) 1-way marginals."""
    rng = ensure_rng(rng)
    data = np.empty((n, len(attrs)), dtype=np.int32)
    for j, attr in enumerate(attrs):
        counts = np.clip(np.asarray(one_way[attr], dtype=np.float64), 0.0, None)
        total = counts.sum()
        if total <= 0:
            counts = np.ones_like(counts)
            total = counts.sum()
        data[:, j] = rng.choice(len(counts), size=n, p=counts / total)
    return data


def marginal_initialization(
    marginals: list,
    one_way: dict,
    attrs: tuple,
    domain: Domain,
    n: int,
    key_attr: str,
    n_init: int = 8,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """GUMMI initialization (paper §3.4).

    Selects up to ``n_init`` published marginals containing ``key_attr``,
    ordered by noisy-marginal Pearson correlation (high to low), and chains
    joint/conditional sampling so the initial dataset already carries the
    feature↔label correlations.  Attributes not reached fall back to their
    1-way marginals.
    """
    rng = ensure_rng(rng)
    if key_attr not in attrs:
        raise KeyError(f"key attribute {key_attr!r} not in dataset attributes")

    candidates = [m for m in marginals if key_attr in m.attrs and len(m.attrs) > 1]
    candidates.sort(key=lambda m: key_correlation_score(m, key_attr), reverse=True)
    chosen = candidates[:n_init]

    columns: dict[str, np.ndarray] = {}
    for m in chosen:
        assigned = [a for a in m.attrs if a in columns]
        if not assigned:
            sampled = _sample_joint(m, n, rng)
            columns.update(sampled)
        else:
            given = assigned[0]
            sampled = _sample_conditional(m, given, columns[given], rng)
            for a, col in sampled.items():
                if a not in columns:
                    columns[a] = col

    remaining = [a for a in attrs if a not in columns]
    if remaining:
        fallback = random_initialization(one_way, tuple(remaining), n, rng)
        for j, a in enumerate(remaining):
            columns[a] = fallback[:, j]

    data = np.empty((n, len(attrs)), dtype=np.int32)
    for j, a in enumerate(attrs):
        data[:, j] = columns[a]
    return data
