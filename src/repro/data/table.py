"""TraceTable: a numpy column-store for network traces.

A :class:`TraceTable` couples a :class:`~repro.data.schema.Schema` with one
numpy array per column.  It supports the handful of relational operations the
pipeline needs (select, filter, sort, group-by) without pulling in pandas.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.data.schema import FieldKind, Schema


class TraceTable:
    """Immutable-ish columnar table of trace records.

    Columns are stored as numpy arrays keyed by field name.  Mutating methods
    return new tables; the underlying arrays are shared where safe.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]) -> None:
        missing = [n for n in schema.names if n not in columns]
        if missing:
            raise ValueError(f"columns missing for fields: {missing}")
        extra = [n for n in columns if n not in schema.names]
        if extra:
            raise ValueError(f"columns not in schema: {extra}")
        lengths = {n: len(columns[n]) for n in schema.names}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns: {lengths}")
        self.schema = schema
        self._columns = {n: np.asarray(columns[n]) for n in schema.names}

    # ------------------------------------------------------------------ basic
    @property
    def n_records(self) -> int:
        """Number of records (rows)."""
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __len__(self) -> int:
        return self.n_records

    def column(self, name: str) -> np.ndarray:
        """Return the column array for field ``name`` (shared, do not mutate)."""
        return self._columns[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def columns(self) -> dict:
        """Shallow copy of the column mapping."""
        return dict(self._columns)

    # ------------------------------------------------------------- transforms
    def with_column(self, name: str, values: np.ndarray, spec=None) -> "TraceTable":
        """Return a new table with column ``name`` added or replaced.

        When adding a new column, ``spec`` (a :class:`FieldSpec`) is required
        so the schema stays authoritative.
        """
        values = np.asarray(values)
        if len(values) != self.n_records:
            raise ValueError(
                f"column length {len(values)} != table length {self.n_records}"
            )
        if name in self.schema:
            cols = dict(self._columns)
            cols[name] = values
            return TraceTable(self.schema, cols)
        if spec is None:
            raise ValueError(f"new column {name!r} requires a FieldSpec")
        if spec.name != name:
            raise ValueError(f"spec name {spec.name!r} != column name {name!r}")
        schema = self.schema.with_field(spec)
        cols = dict(self._columns)
        cols[name] = values
        return TraceTable(schema, cols)

    def without_column(self, name: str) -> "TraceTable":
        """Return a new table with column ``name`` dropped."""
        schema = self.schema.without_field(name)
        cols = {n: c for n, c in self._columns.items() if n != name}
        return TraceTable(schema, cols)

    def take(self, indices: np.ndarray) -> "TraceTable":
        """Row subset/permutation by integer indices."""
        indices = np.asarray(indices)
        cols = {n: c[indices] for n, c in self._columns.items()}
        return TraceTable(self.schema, cols)

    def filter(self, mask: np.ndarray) -> "TraceTable":
        """Row subset by boolean mask."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.n_records:
            raise ValueError("mask length mismatch")
        return self.take(np.nonzero(mask)[0])

    def head(self, n: int) -> "TraceTable":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self.n_records)))

    def sort_by(self, *names: str) -> "TraceTable":
        """Stable sort by one or more columns (last name is primary key)."""
        if not names:
            raise ValueError("sort_by requires at least one column")
        order = np.lexsort(tuple(self._columns[n] for n in names))
        return self.take(order)

    def shuffle(self, rng: np.random.Generator) -> "TraceTable":
        """Random row permutation."""
        return self.take(rng.permutation(self.n_records))

    def concat(self, other: "TraceTable") -> "TraceTable":
        """Vertically stack two tables with identical schemas."""
        return TraceTable.concat_all([self, other])

    @staticmethod
    def concat_all(tables: "list[TraceTable]") -> "TraceTable":
        """Vertically stack many tables in one pass (one copy per column).

        Unlike chaining :meth:`concat`, which re-copies every earlier row for
        each appended table, this concatenates each column exactly once — the
        merge primitive behind sharded decoding and chunk re-slicing.
        """
        if not tables:
            raise ValueError("concat_all requires at least one table")
        first = tables[0]
        if len(tables) == 1:
            return first
        for other in tables[1:]:
            if other.schema.names != first.schema.names:
                raise ValueError("schema mismatch in concat")
        cols = {
            n: np.concatenate([t._columns[n] for t in tables])
            for n in first.schema.names
        }
        return TraceTable(first.schema, cols)

    # --------------------------------------------------------------- grouping
    def group_ids(self, names: Iterable[str]) -> np.ndarray:
        """Assign a dense integer group id to each row, keyed by ``names``.

        Rows sharing the same value tuple over ``names`` get the same id.
        Used to group records by flow identifier for tsdiff computation.
        """
        names = list(names)
        if not names:
            raise ValueError("group_ids requires at least one column")
        # Densify each column to integer codes, then fold pairwise so the
        # combined key never overflows int64 (codes stay < n after each fold).
        ids = np.zeros(self.n_records, dtype=np.int64)
        for name in names:
            _, codes = np.unique(self._columns[name], return_inverse=True)
            codes = codes.astype(np.int64)
            _, ids = np.unique(ids * (codes.max() + 1) + codes, return_inverse=True)
            ids = ids.astype(np.int64)
        return ids

    def content_digest(self) -> str:
        """SHA-256 over column names, dtypes, lengths, and values, in schema order.

        A stable content fingerprint: equal digests mean bit-identical tables
        (same columns, dtypes, row counts, and values; object columns hash
        length-prefixed string renderings so values cannot alias separators).
        Used by the engine's reproducibility tests and benchmarks to compare
        synthesis outputs across backends.
        """
        import hashlib

        h = hashlib.sha256()
        for name in self.schema.names:
            col = self._columns[name]
            h.update(f"{name}|{col.dtype.str}|{len(col)}|".encode())
            if col.dtype == object or col.dtype.kind in "US":
                for value in col:
                    rendered = str(value).encode()
                    h.update(f"{len(rendered)}:".encode())
                    h.update(rendered)
            else:
                h.update(np.ascontiguousarray(col).tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------- conversion
    def to_records(self) -> list[dict]:
        """Materialize as a list of per-row dicts (small tables only)."""
        names = self.schema.names
        cols = [self._columns[n] for n in names]
        return [
            {n: col[i].item() if hasattr(col[i], "item") else col[i] for n, col in zip(names, cols)}
            for i in range(self.n_records)
        ]

    def feature_matrix(self, exclude: Iterable[str] = ()) -> tuple:
        """Return ``(X, names)`` — a float matrix of all non-excluded columns.

        Categorical string columns are integer-coded by their schema category
        order.  Used to feed the ML substrate.
        """
        exclude = set(exclude)
        names = [n for n in self.schema.names if n not in exclude]
        parts = []
        for name in names:
            spec = self.schema[name]
            col = self._columns[name]
            if spec.kind is FieldKind.CATEGORICAL and not np.issubdtype(
                np.asarray(col).dtype, np.number
            ):
                lookup = {c: i for i, c in enumerate(spec.categories)}
                col = np.array([lookup[v] for v in col], dtype=np.float64)
            parts.append(np.asarray(col, dtype=np.float64))
        if not parts:
            return np.empty((self.n_records, 0)), []
        return np.stack(parts, axis=1), names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceTable(kind={self.schema.kind!r}, n={self.n_records}, fields={list(self.schema.names)})"
