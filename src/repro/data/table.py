"""TraceTable: a numpy column-store for network traces.

A :class:`TraceTable` couples a :class:`~repro.data.schema.Schema` with one
numpy array per column.  It supports the handful of relational operations the
pipeline needs (select, filter, sort, group-by) without pulling in pandas.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.data.schema import FieldKind, Schema


class TraceTable:
    """Immutable-ish columnar table of trace records.

    Columns are stored as numpy arrays keyed by field name.  Mutating methods
    return new tables; the underlying arrays are shared where safe.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]) -> None:
        missing = [n for n in schema.names if n not in columns]
        if missing:
            raise ValueError(f"columns missing for fields: {missing}")
        extra = [n for n in columns if n not in schema.names]
        if extra:
            raise ValueError(f"columns not in schema: {extra}")
        lengths = {n: len(columns[n]) for n in schema.names}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns: {lengths}")
        self.schema = schema
        self._columns = {n: np.asarray(columns[n]) for n in schema.names}
        self._capsule = None

    @classmethod
    def _from_trusted(
        cls, schema: Schema, columns: dict, capsule=None
    ) -> "TraceTable":
        """Wrap pre-validated columns without re-checking or re-wrapping them.

        The internal fast path for transforms (take/filter/sort/concat) and
        the arena data plane: ``columns`` must already be ndarrays keyed
        exactly by ``schema.names`` with equal lengths — the invariants the
        public constructor just established for the inputs these methods
        derive from.  ``capsule`` keeps an external buffer (e.g. a shared-
        memory segment) mapped for as long as this table is alive.
        """
        table = object.__new__(cls)
        table.schema = schema
        table._columns = columns
        table._capsule = capsule
        return table

    # ------------------------------------------------------------------ basic
    @property
    def n_records(self) -> int:
        """Number of records (rows)."""
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __len__(self) -> int:
        return self.n_records

    def column(self, name: str) -> np.ndarray:
        """Return the column array for field ``name`` (shared, do not mutate)."""
        return self._columns[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def columns(self) -> dict:
        """Shallow copy of the column mapping."""
        return dict(self._columns)

    # ------------------------------------------------------------- transforms
    def with_column(self, name: str, values: np.ndarray, spec=None) -> "TraceTable":
        """Return a new table with column ``name`` added or replaced.

        When adding a new column, ``spec`` (a :class:`FieldSpec`) is required
        so the schema stays authoritative.
        """
        values = np.asarray(values)
        if len(values) != self.n_records:
            raise ValueError(
                f"column length {len(values)} != table length {self.n_records}"
            )
        if name in self.schema:
            cols = dict(self._columns)
            cols[name] = values
            return TraceTable._from_trusted(self.schema, cols)
        if spec is None:
            raise ValueError(f"new column {name!r} requires a FieldSpec")
        if spec.name != name:
            raise ValueError(f"spec name {spec.name!r} != column name {name!r}")
        schema = self.schema.with_field(spec)
        cols = dict(self._columns)
        cols[name] = values
        return TraceTable._from_trusted(schema, {n: cols[n] for n in schema.names})

    def without_column(self, name: str) -> "TraceTable":
        """Return a new table with column ``name`` dropped."""
        schema = self.schema.without_field(name)
        cols = {n: c for n, c in self._columns.items() if n != name}
        return TraceTable._from_trusted(schema, cols)

    def take(self, indices: np.ndarray) -> "TraceTable":
        """Row subset/permutation by integer indices (columns are copies)."""
        indices = np.asarray(indices)
        cols = {n: c[indices] for n, c in self._columns.items()}
        return TraceTable._from_trusted(self.schema, cols)

    def filter(self, mask: np.ndarray) -> "TraceTable":
        """Row subset by boolean mask."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.n_records:
            raise ValueError("mask length mismatch")
        return self.take(np.nonzero(mask)[0])

    def head(self, n: int) -> "TraceTable":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self.n_records)))

    def sort_by(self, *names: str) -> "TraceTable":
        """Stable sort by one or more columns (last name is primary key)."""
        if not names:
            raise ValueError("sort_by requires at least one column")
        order = np.lexsort(tuple(self._columns[n] for n in names))
        return self.take(order)

    def shuffle(self, rng: np.random.Generator) -> "TraceTable":
        """Random row permutation."""
        return self.take(rng.permutation(self.n_records))

    def concat(self, other: "TraceTable") -> "TraceTable":
        """Vertically stack two tables with identical schemas."""
        return TraceTable.concat_all([self, other])

    @staticmethod
    def concat_all(tables: "list[TraceTable]") -> "TraceTable":
        """Vertically stack many tables by view-stitching into one arena.

        Unlike chaining :meth:`concat`, which re-copies every earlier row for
        each appended table, this copies each column exactly once — straight
        into a single contiguous arena allocation, so the result's columns
        are views over one buffer (the merge primitive behind sharded
        decoding and chunk re-slicing).  Object columns, and columns whose
        dtype differs across inputs, fall back to a plain ``concatenate``.
        """
        from repro.data.arena import _align, copy_stats, track_arena

        if not tables:
            raise ValueError("concat_all requires at least one table")
        first = tables[0]
        if len(tables) == 1:
            return first
        for other in tables[1:]:
            if other.schema.names != first.schema.names:
                raise ValueError("schema mismatch in concat")
        n_total = sum(t.n_records for t in tables)
        # Plan one arena slot per stitchable column (shared dtype, non-object).
        plan = {}
        offset = 0
        for name in first.schema.names:
            dtype = first._columns[name].dtype
            if dtype == object or any(
                t._columns[name].dtype != dtype for t in tables[1:]
            ):
                continue
            offset = _align(offset)
            plan[name] = (dtype, offset)
            offset += dtype.itemsize * n_total
        buffer = np.empty(offset, dtype=np.uint8) if plan else None
        if buffer is not None:
            track_arena(buffer, buffer.nbytes)
        cols = {}
        for name in first.schema.names:
            parts = [t._columns[name] for t in tables]
            if name in plan:
                dtype, start = plan[name]
                out = np.ndarray((n_total,), dtype=dtype, buffer=buffer, offset=start)
                np.concatenate(parts, out=out)
                copy_stats.count_stitch(out.nbytes)
                cols[name] = out
            else:
                cols[name] = np.concatenate(parts)
        return TraceTable._from_trusted(first.schema, cols)

    # --------------------------------------------------------------- grouping
    def group_ids(self, names: Iterable[str]) -> np.ndarray:
        """Assign a dense integer group id to each row, keyed by ``names``.

        Rows sharing the same value tuple over ``names`` get the same id.
        Used to group records by flow identifier for tsdiff computation.
        """
        names = list(names)
        if not names:
            raise ValueError("group_ids requires at least one column")
        if self.n_records == 0:
            return np.zeros(0, dtype=np.int64)
        # Densify each column to integer codes, then fold pairwise so the
        # combined key never overflows int64 (codes stay < n after each fold).
        ids = np.zeros(self.n_records, dtype=np.int64)
        for name in names:
            _, codes = np.unique(self._columns[name], return_inverse=True)
            codes = codes.astype(np.int64)
            _, ids = np.unique(ids * (codes.max() + 1) + codes, return_inverse=True)
            ids = ids.astype(np.int64)
        return ids

    def content_digest(self) -> str:
        """SHA-256 over column names, dtypes, lengths, and values, in schema order.

        A stable content fingerprint: equal digests mean bit-identical tables
        (same columns, dtypes, row counts, and values; object columns hash
        length-prefixed string renderings so values cannot alias separators).
        Used by the engine's reproducibility tests and benchmarks to compare
        synthesis outputs across backends.
        """
        import hashlib

        h = hashlib.sha256()
        for name in self.schema.names:
            col = self._columns[name]
            h.update(f"{name}|{col.dtype.str}|{len(col)}|".encode())
            if col.dtype == object or col.dtype.kind in "US":
                for value in col:
                    rendered = str(value).encode()
                    h.update(f"{len(rendered)}:".encode())
                    h.update(rendered)
            else:
                h.update(np.ascontiguousarray(col).tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------- conversion
    def to_arena(self):
        """Flatten into a :class:`~repro.data.arena.TableArena` (one buffer).

        The arena's ``(slots, buffer, extras)`` triple is the table's
        explicit buffer layout — what the ``shared`` backend ships as a
        single shm segment and the Arrow sink wraps without copying.
        """
        from repro.data.arena import TableArena

        return TableArena.from_table(self)

    @classmethod
    def from_arena(cls, arena) -> "TraceTable":
        """Reconstruct a table from an arena; raw columns are views."""
        return arena.to_table()

    def to_records(self) -> list[dict]:
        """Materialize as a list of per-row dicts (small tables only)."""
        names = self.schema.names
        cols = [self._columns[n] for n in names]
        return [
            {n: col[i].item() if hasattr(col[i], "item") else col[i] for n, col in zip(names, cols)}
            for i in range(self.n_records)
        ]

    def feature_matrix(self, exclude: Iterable[str] = ()) -> tuple:
        """Return ``(X, names)`` — a float matrix of all non-excluded columns.

        Categorical string columns are integer-coded by their schema category
        order.  Used to feed the ML substrate.
        """
        exclude = set(exclude)
        names = [n for n in self.schema.names if n not in exclude]
        parts = []
        for name in names:
            spec = self.schema[name]
            col = self._columns[name]
            if spec.kind is FieldKind.CATEGORICAL and not np.issubdtype(
                np.asarray(col).dtype, np.number
            ):
                lookup = {c: i for i, c in enumerate(spec.categories)}
                col = np.array([lookup[v] for v in col], dtype=np.float64)
            parts.append(np.asarray(col, dtype=np.float64))
        if not parts:
            return np.empty((self.n_records, 0)), []
        return np.stack(parts, axis=1), names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceTable(kind={self.schema.kind!r}, n={self.n_records}, fields={list(self.schema.names)})"
