"""CSV round-trip for :class:`~repro.data.table.TraceTable`.

Traces are exchanged as plain CSV with a header row.  Column dtypes are
reconstructed from the schema: categorical fields stay strings, everything
else is parsed as float/int.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.schema import FieldKind, Schema
from repro.data.table import TraceTable


def write_csv(table: TraceTable, path: str | Path) -> None:
    """Write ``table`` to ``path`` as CSV with a header row."""
    path = Path(path)
    names = table.schema.names
    cols = [table.column(n) for n in names]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(table.n_records):
            writer.writerow([_render(col[i]) for col in cols])


def read_csv(path: str | Path, schema: Schema) -> TraceTable:
    """Read a CSV written by :func:`write_csv` back into a table."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = list(reader)
    if tuple(header) != schema.names:
        raise ValueError(f"CSV header {header} does not match schema {list(schema.names)}")
    columns = {}
    for j, name in enumerate(schema.names):
        raw = [row[j] for row in rows]
        columns[name] = _parse_column(raw, schema[name])
    return TraceTable(schema, columns)


def _render(value) -> str:
    """Render one cell for CSV output."""
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    if isinstance(value, (np.integer, int)):
        return str(int(value))
    return str(value)


def _parse_column(raw: list, spec) -> np.ndarray:
    """Parse a list of CSV strings into a typed column."""
    if spec.kind is FieldKind.CATEGORICAL:
        sample = spec.categories[0] if spec.categories else ""
        if isinstance(sample, str):
            return np.array(raw, dtype=object)
        return np.array([int(v) for v in raw], dtype=np.int64)
    if spec.kind in (FieldKind.IP, FieldKind.PORT):
        return np.array([int(float(v)) for v in raw], dtype=np.int64)
    if spec.kind is FieldKind.TIMESTAMP:
        return np.array([float(v) for v in raw], dtype=np.float64)
    # NUMERIC
    if spec.integral:
        return np.array([int(float(v)) for v in raw], dtype=np.int64)
    return np.array([float(v) for v in raw], dtype=np.float64)
