"""Tabular data model for network traces (flows and packets)."""

from repro.data.domain import Domain
from repro.data.io import read_csv, write_csv
from repro.data.schema import FieldKind, FieldSpec, Schema
from repro.data.sinks import (
    SINK_FORMATS,
    CsvSink,
    JsonlSink,
    NullSink,
    ParquetSink,
    TraceSink,
    open_sink,
    read_jsonl,
    read_parquet,
)
from repro.data.table import TraceTable

__all__ = [
    "Domain",
    "FieldKind",
    "FieldSpec",
    "Schema",
    "TraceTable",
    "read_csv",
    "write_csv",
    "SINK_FORMATS",
    "CsvSink",
    "JsonlSink",
    "NullSink",
    "ParquetSink",
    "TraceSink",
    "open_sink",
    "read_jsonl",
    "read_parquet",
]
