"""Schema: typed description of the fields in a network trace.

The field *kind* drives the type-dependent binning of NetDPSyn (paper §3.2):
IP addresses, ports, categorical values, numeric (integer/float) values, and
timestamps each get their own codec.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FieldKind(enum.Enum):
    """The five field types recognized by NetDPSyn's binning stage."""

    IP = "ip"
    PORT = "port"
    CATEGORICAL = "categorical"
    NUMERIC = "numeric"
    TIMESTAMP = "timestamp"


@dataclass(frozen=True)
class FieldSpec:
    """Description of one trace field.

    Parameters
    ----------
    name:
        Column name, e.g. ``"srcip"``.
    kind:
        One of :class:`FieldKind`; selects the binning codec.
    categories:
        For categorical fields, the closed set of admissible values (order
        defines the integer encoding).  ``None`` otherwise.
    is_label:
        Marks the classification label used by GUMMI initialization and the
        downstream ML tasks.
    integral:
        For numeric fields, whether decoded samples must be integers
        (packet/byte counts) rather than floats (durations).
    unit_scale:
        For numeric fields, a multiplier applied before log-binning.  The
        paper bins durations and inter-arrival gaps in *milliseconds*; our
        traces carry seconds, so duration-like fields use 1000 to keep
        sub-second structure out of the first log bin.
    """

    name: str
    kind: FieldKind
    categories: tuple = None
    is_label: bool = False
    integral: bool = True
    unit_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.kind is FieldKind.CATEGORICAL and self.categories is None:
            raise ValueError(f"categorical field {self.name!r} requires categories")
        if self.kind is not FieldKind.CATEGORICAL and self.categories is not None:
            raise ValueError(f"non-categorical field {self.name!r} must not set categories")


@dataclass(frozen=True)
class Schema:
    """Ordered collection of :class:`FieldSpec` plus trace-level metadata.

    Parameters
    ----------
    fields:
        Tuple of field specs, order defines column order.
    kind:
        ``"flow"`` or ``"packet"`` — documents what one record represents and
        therefore what record-level DP protects.
    flow_key:
        Names of the fields forming the flow identifier (IP 5-tuple); used to
        group records when deriving the ``tsdiff`` auxiliary attribute and
        when reconstructing timestamps.
    """

    fields: tuple
    kind: str = "flow"
    flow_key: tuple = ("srcip", "dstip", "srcport", "dstport", "proto")

    def __post_init__(self) -> None:
        if self.kind not in ("flow", "packet"):
            raise ValueError(f"schema kind must be 'flow' or 'packet', got {self.kind!r}")
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise ValueError("duplicate field names in schema")

    @property
    def names(self) -> tuple:
        """Column names in schema order."""
        return tuple(f.name for f in self.fields)

    @property
    def label_field(self) -> FieldSpec | None:
        """The field marked ``is_label``, or ``None``."""
        for spec in self.fields:
            if spec.is_label:
                return spec
        return None

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def __getitem__(self, name: str) -> FieldSpec:
        for spec in self.fields:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def __iter__(self):
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def with_field(self, spec: FieldSpec) -> "Schema":
        """Return a new schema with ``spec`` appended."""
        return Schema(fields=self.fields + (spec,), kind=self.kind, flow_key=self.flow_key)

    def without_field(self, name: str) -> "Schema":
        """Return a new schema with field ``name`` removed."""
        if name not in self:
            raise KeyError(name)
        kept = tuple(f for f in self.fields if f.name != name)
        return Schema(fields=kept, kind=self.kind, flow_key=self.flow_key)

    def effective_flow_key(self) -> tuple:
        """Flow-key fields actually present in this schema (order preserved)."""
        return tuple(name for name in self.flow_key if name in self)
