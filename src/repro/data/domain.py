"""Domain: the discrete value space of an encoded dataset.

After binning, every attribute takes values in ``range(size)``.  A
:class:`Domain` records the per-attribute sizes and provides the index
arithmetic that marginal computation and synthesis rely on.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np


class Domain:
    """Ordered mapping from attribute name to discrete domain size."""

    def __init__(self, sizes: Mapping[str, int]) -> None:
        for name, size in sizes.items():
            if size < 1:
                raise ValueError(f"domain size for {name!r} must be >= 1, got {size}")
        self._sizes = dict(sizes)

    @property
    def names(self) -> tuple:
        """Attribute names in order."""
        return tuple(self._sizes)

    def size(self, name: str) -> int:
        """Domain size of one attribute."""
        return self._sizes[name]

    def shape(self, attrs: Iterable[str]) -> tuple:
        """Domain sizes of a tuple of attributes, in the given order."""
        return tuple(self._sizes[a] for a in attrs)

    def cells(self, attrs: Iterable[str]) -> int:
        """Number of cells of the marginal over ``attrs``."""
        return int(np.prod(self.shape(attrs), dtype=np.int64))

    def total_size(self) -> int:
        """Sum of all attribute domain sizes (the paper's Table 5 'Domain')."""
        return int(sum(self._sizes.values()))

    def project(self, attrs: Iterable[str]) -> "Domain":
        """Sub-domain over ``attrs`` in the given order."""
        return Domain({a: self._sizes[a] for a in attrs})

    def __contains__(self, name: str) -> bool:
        return name in self._sizes

    def __iter__(self):
        return iter(self._sizes)

    def __len__(self) -> int:
        return len(self._sizes)

    def __eq__(self, other) -> bool:
        return isinstance(other, Domain) and self._sizes == other._sizes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self._sizes.items())
        return f"Domain({inner})"
