"""Contiguous columnar arenas: one buffer behind every TraceTable column.

A :class:`TableArena` flattens a :class:`~repro.data.table.TraceTable` into a
single contiguous byte buffer plus a tuple of :class:`ArenaSlot` descriptors
(name, kind, dtype, offset, count).  The slot tuple is the *wire form* of the
table's buffer layout: ship the descriptors plus the buffer (or a shared-
memory segment name standing in for it) and the receiver reconstructs every
column as a **view** — no per-column pickling, no per-column copies.  The
same layout backs :meth:`TraceTable.concat_all`'s single-allocation stitch,
the ``shared`` backend's one-segment-per-table transport
(:mod:`repro.engine.shm`), and the Arrow sink's buffer wrapping.

Slot kinds:

- ``raw`` — any non-object dtype (ints, floats, bools, fixed-width strings):
  the column's bytes live in the arena verbatim and reconstruct as a
  zero-copy view;
- ``dict`` — object columns (decoded categorical strings): ``int32`` codes
  live in the arena and the (small, deduplicated) value dictionary rides in
  :attr:`TableArena.extras`, like the schema does.  Per-row payload is four
  bytes regardless of string length;
- ``pickle`` — the fallback for object columns that cannot be dictionary-
  encoded (unorderable mixed types): the column itself rides in ``extras``
  and its pickled size is charged to the :data:`copy_stats` ledger, so the
  ``bytes_copied_per_record`` benchmark probe surfaces any regression to
  pickled column bytes.

:data:`copy_stats` is the process-wide ledger of data-plane byte movement:
pickled column bytes, stitch (concatenation) bytes, and the arena allocation
high-water mark (``arena_bytes``) that benchmarks record next to peak RSS so
memory gates can distinguish copies from working set.
"""

from __future__ import annotations

import pickle
import threading
import weakref
from dataclasses import dataclass

import numpy as np

#: Slot alignment in bytes: every column starts on a cache-line boundary so
#: views over the arena are as SIMD-friendly as freshly allocated arrays.
ARENA_ALIGN = 64

SLOT_RAW = "raw"
SLOT_DICT = "dict"
SLOT_PICKLE = "pickle"

#: Dtype of dictionary-encoded categorical codes.
_DICT_DTYPE = np.dtype("<i4")


class CopyStats:
    """Thread-safe ledger of data-plane byte movement in this process.

    ``pickled_array_bytes`` counts column payloads that traveled through
    pickle (the thing the zero-copy plane exists to eliminate);
    ``stitch_bytes`` counts the one copy per column that concatenation into a
    fresh arena still pays; ``arena_bytes_peak`` is the high-water mark of
    live arena allocations (decremented by finalizers as arenas die).
    """

    __slots__ = (
        "pickled_array_bytes",
        "stitch_bytes",
        "arena_bytes_in_use",
        "arena_bytes_peak",
        "_lock",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.pickled_array_bytes = 0
        self.stitch_bytes = 0
        self.arena_bytes_in_use = 0
        self.arena_bytes_peak = 0

    def reset(self) -> None:
        """Zero the movement counters; the peak restarts from live arenas."""
        with self._lock:
            self.pickled_array_bytes = 0
            self.stitch_bytes = 0
            self.arena_bytes_peak = self.arena_bytes_in_use

    def count_pickled(self, nbytes: int) -> None:
        with self._lock:
            self.pickled_array_bytes += int(nbytes)

    def count_stitch(self, nbytes: int) -> None:
        with self._lock:
            self.stitch_bytes += int(nbytes)

    def on_alloc(self, nbytes: int) -> None:
        with self._lock:
            self.arena_bytes_in_use += int(nbytes)
            if self.arena_bytes_in_use > self.arena_bytes_peak:
                self.arena_bytes_peak = self.arena_bytes_in_use

    def on_free(self, nbytes: int) -> None:
        with self._lock:
            self.arena_bytes_in_use -= int(nbytes)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "pickled_array_bytes": self.pickled_array_bytes,
                "stitch_bytes": self.stitch_bytes,
                "arena_bytes_in_use": self.arena_bytes_in_use,
                "arena_bytes_peak": self.arena_bytes_peak,
            }


#: The process-wide ledger (benchmarks reset/snapshot it around probes).
copy_stats = CopyStats()


def track_arena(owner, nbytes: int) -> None:
    """Charge ``nbytes`` of arena to the ledger until ``owner`` is collected."""
    if nbytes <= 0:
        return
    copy_stats.on_alloc(nbytes)
    weakref.finalize(owner, copy_stats.on_free, nbytes)


@dataclass(frozen=True)
class ArenaSlot:
    """Wire-form description of one column inside an arena buffer."""

    name: str
    kind: str
    dtype: str
    offset: int
    count: int


def _align(offset: int) -> int:
    return (offset + ARENA_ALIGN - 1) & ~(ARENA_ALIGN - 1)


def _dict_encode(col: np.ndarray):
    """``(values, int32 codes)`` of an object column, or ``None``.

    Dictionary order is the sorted unique-value order (deterministic), so
    identical columns always produce identical slots.  Columns whose values
    do not admit a total order (mixed types) fall back to the pickle slot.
    """
    try:
        values, codes = np.unique(col, return_inverse=True)
    except TypeError:
        return None
    if len(values) >= np.iinfo(_DICT_DTYPE).max:  # pragma: no cover - 2^31 uniques
        return None
    return values, codes.astype(_DICT_DTYPE)


def pickled_nbytes(value) -> int:
    """Size of ``value``'s pickle stream (the copy-probe unit of account)."""
    return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


def plan_layout(table) -> tuple:
    """Plan ``(slots, nbytes, arrays, extras)`` for one table.

    ``arrays`` holds, slot-aligned with ``slots``, the array to write into
    each arena slot (``None`` for pickle slots); ``extras`` the out-of-band
    payloads (dictionaries for ``dict`` slots, whole columns for ``pickle``
    slots).  Splitting planning from writing lets the shm exporter size a
    segment first and then build the arena directly inside it — the column
    bytes are copied exactly once, straight to their final home.
    """
    slots, arrays, extras = [], [], {}
    offset = 0
    for name in table.schema.names:
        col = table.column(name)
        if col.dtype == object:
            encoded = _dict_encode(col)
            if encoded is None:
                slots.append(ArenaSlot(name, SLOT_PICKLE, "|O", 0, len(col)))
                arrays.append(None)
                extras[name] = col
                continue
            values, codes = encoded
            offset = _align(offset)
            slots.append(ArenaSlot(name, SLOT_DICT, _DICT_DTYPE.str, offset, len(col)))
            arrays.append(codes)
            extras[name] = values
            offset += codes.nbytes
        else:
            col = np.ascontiguousarray(col)
            offset = _align(offset)
            slots.append(ArenaSlot(name, SLOT_RAW, col.dtype.str, offset, len(col)))
            arrays.append(col)
            offset += col.nbytes
    return tuple(slots), offset, arrays, extras


def write_layout(slots, arrays, buffer) -> None:
    """Copy each planned column into its slot of a writable ``buffer``."""
    for slot, arr in zip(slots, arrays):
        if arr is None:
            continue
        view = np.ndarray(
            (slot.count,), dtype=np.dtype(slot.dtype), buffer=buffer, offset=slot.offset
        )
        view[...] = arr


class TableArena:
    """A table flattened into one contiguous buffer plus slot descriptors.

    ``buffer`` is anything exposing the buffer protocol over at least
    ``nbytes`` bytes — a local ``uint8`` ndarray, or a shared-memory
    segment's ``memoryview``.  ``owner`` (optional) is the capsule that keeps
    an external buffer mapped; tables built by :meth:`to_table` hold it so
    the backing segment outlives every column view.
    """

    __slots__ = ("schema", "slots", "buffer", "extras", "nbytes", "owner", "__weakref__")

    def __init__(self, schema, slots, buffer, extras, nbytes, owner=None) -> None:
        self.schema = schema
        self.slots = tuple(slots)
        self.buffer = buffer
        self.extras = extras
        self.nbytes = int(nbytes)
        self.owner = owner

    @classmethod
    def from_table(cls, table) -> "TableArena":
        """Flatten ``table`` into a freshly allocated local arena."""
        slots, nbytes, arrays, extras = plan_layout(table)
        buffer = np.zeros(nbytes, dtype=np.uint8)  # zeroed padding: stable bytes
        track_arena(buffer, nbytes)
        write_layout(slots, arrays, buffer)
        return cls(table.schema, slots, buffer, extras, nbytes)

    def to_table(self):
        """Reconstruct the table; raw columns are zero-copy arena views."""
        from repro.data.table import TraceTable

        columns = {}
        for slot in self.slots:
            if slot.kind == SLOT_PICKLE:
                columns[slot.name] = np.asarray(self.extras[slot.name], dtype=object)
                continue
            view = np.ndarray(
                (slot.count,),
                dtype=np.dtype(slot.dtype),
                buffer=self.buffer,
                offset=slot.offset,
            )
            if slot.kind == SLOT_DICT:
                values = np.asarray(self.extras[slot.name], dtype=object)
                columns[slot.name] = values[view]
            else:
                columns[slot.name] = view
        return TraceTable._from_trusted(self.schema, columns, capsule=self.owner)

    def pickled_column_bytes(self) -> int:
        """Bytes of column payload that must travel through pickle."""
        return sum(
            pickled_nbytes(self.extras[slot.name])
            for slot in self.slots
            if slot.kind == SLOT_PICKLE
        )
