"""Bounded-memory sink writers for streamed synthetic traces.

A :class:`TraceSink` consumes :class:`~repro.data.table.TraceTable` chunks as
they come off the streaming engine (``NetDPSyn.sample_to``) and appends them
to a file, so the full trace never has to exist in memory.  Formats:

- ``csv`` — the :mod:`repro.data.io` CSV dialect (header row, ``repr`` floats
  so values round-trip bit-exactly through :func:`~repro.data.io.read_csv`);
- ``jsonl`` — one JSON object per record (round-trips through
  :func:`read_jsonl`; JSON serializes floats via ``repr`` so they round-trip
  too);
- ``parquet`` — columnar chunks through :mod:`pyarrow` (one row group per
  chunk).  pyarrow is optional; constructing the sink without it raises a
  clear error;
- ``null`` — counts records and writes nothing (benchmark harnesses use it
  to probe the synthesis pipeline's memory behavior without disk noise).

Readers reconstruct dtypes from the schema exactly like the CSV reader, so a
round-tripped trace is digest-identical to the in-memory one.
"""

from __future__ import annotations

import abc
import csv
import json
from pathlib import Path

import numpy as np

from repro.data.io import _parse_column, _render
from repro.data.schema import Schema
from repro.data.table import TraceTable

#: Supported sink format names.
SINK_FORMATS = ("csv", "jsonl", "parquet", "null")

_SUFFIX_FORMATS = {
    ".csv": "csv",
    ".jsonl": "jsonl",
    ".ndjson": "jsonl",
    ".parquet": "parquet",
    ".pq": "parquet",
}


class TraceSink(abc.ABC):
    """Append-only writer consuming trace chunks with bounded memory."""

    format: str = "abstract"

    def __init__(self, path, schema: Schema) -> None:
        self.path = Path(path)
        self.schema = schema
        self.rows_written = 0
        self.chunks_written = 0
        self._closed = False

    def write(self, table: TraceTable) -> None:
        """Append one chunk; the chunk's schema must match the sink's."""
        if self._closed:
            raise RuntimeError(f"sink {self.path} is closed")
        if table.schema.names != self.schema.names:
            raise ValueError(
                f"chunk columns {list(table.schema.names)} do not match sink "
                f"schema {list(self.schema.names)}"
            )
        self._write(table)
        self.rows_written += table.n_records
        self.chunks_written += 1

    @abc.abstractmethod
    def _write(self, table: TraceTable) -> None: ...

    def close(self) -> None:
        if not self._closed:
            self._close()
            self._closed = True

    def _close(self) -> None:
        pass

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CsvSink(TraceSink):
    """Stream chunks into one CSV file (header written once, on open)."""

    format = "csv"

    def __init__(self, path, schema: Schema) -> None:
        super().__init__(path, schema)
        self._handle = self.path.open("w", newline="")
        self._writer = csv.writer(self._handle)
        self._writer.writerow(schema.names)

    def _write(self, table: TraceTable) -> None:
        names = self.schema.names
        cols = [table.column(n) for n in names]
        for i in range(table.n_records):
            self._writer.writerow([_render(col[i]) for col in cols])

    def _close(self) -> None:
        self._handle.close()


def _json_cell(value):
    """One cell as a JSON-serializable scalar (numpy -> python)."""
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        return float(value)
    return str(value)


class JsonlSink(TraceSink):
    """Stream chunks as one JSON object per record."""

    format = "jsonl"

    def __init__(self, path, schema: Schema) -> None:
        super().__init__(path, schema)
        self._handle = self.path.open("w")

    def _write(self, table: TraceTable) -> None:
        names = self.schema.names
        cols = [table.column(n) for n in names]
        write = self._handle.write
        for i in range(table.n_records):
            record = {name: _json_cell(col[i]) for name, col in zip(names, cols)}
            write(json.dumps(record) + "\n")

    def _close(self) -> None:
        self._handle.close()


class NullSink(TraceSink):
    """Count records, write nothing (benchmarking / dry runs)."""

    format = "null"

    def _write(self, table: TraceTable) -> None:
        pass


class ParquetSink(TraceSink):
    """Stream chunks as parquet row groups via pyarrow (optional dependency)."""

    format = "parquet"

    def __init__(self, path, schema: Schema) -> None:
        super().__init__(path, schema)
        try:
            import pyarrow
            import pyarrow.parquet
        except ImportError as exc:  # pragma: no cover - depends on environment
            raise RuntimeError(
                "the parquet sink requires pyarrow; install it or use "
                "format='csv' / 'jsonl'"
            ) from exc
        self._pa = pyarrow
        self._pq = pyarrow.parquet
        self._writer = None

    def _wrap_column(self, col: np.ndarray):
        """An Arrow array over ``col``'s buffer — no copy for numeric dtypes.

        Streamed chunks arrive as views over one contiguous arena
        (:meth:`TraceTable.concat_all` stitching), so wrapping the buffer
        in place (``Array.from_buffers`` over a ``py_buffer``) hands the
        parquet encoder the very bytes the decode shards produced.  Dtypes
        Arrow cannot represent primitively (strings, bools-as-bits
        mismatches) fall back to the copying constructor.
        """
        pa = self._pa
        if col.dtype == object:
            return pa.array([str(v) for v in col])
        try:
            arrow_type = pa.from_numpy_dtype(col.dtype)
            if not pa.types.is_primitive(arrow_type) or col.dtype == np.bool_:
                raise pa.ArrowNotImplementedError("non-primitive")
            col = np.ascontiguousarray(col)
            return pa.Array.from_buffers(
                arrow_type, len(col), [None, pa.py_buffer(col)]
            )
        except (pa.ArrowNotImplementedError, pa.ArrowTypeError):
            return pa.array(col)

    def _arrow_chunk(self, table: TraceTable):
        return self._pa.table(
            {name: self._wrap_column(table.column(name)) for name in self.schema.names}
        )

    def _write(self, table: TraceTable) -> None:
        batch = self._arrow_chunk(table)
        if self._writer is None:
            self._writer = self._pq.ParquetWriter(self.path, batch.schema)
        self._writer.write_table(batch)

    def _close(self) -> None:
        if self._writer is not None:
            self._writer.close()


_SINK_CLASSES = {
    CsvSink.format: CsvSink,
    JsonlSink.format: JsonlSink,
    ParquetSink.format: ParquetSink,
    NullSink.format: NullSink,
}


def open_sink(path, schema: Schema, format: str | None = None) -> TraceSink:
    """Open a sink for ``path``, inferring the format from the suffix.

    ``format`` overrides inference (and is required for suffixes the table
    above does not know, e.g. the ``null`` sink).
    """
    if format is None:
        format = _SUFFIX_FORMATS.get(Path(path).suffix.lower())
        if format is None:
            raise ValueError(
                f"cannot infer sink format from {str(path)!r}; pass "
                f"format= (one of {SINK_FORMATS})"
            )
    if format not in _SINK_CLASSES:
        raise ValueError(f"format must be one of {SINK_FORMATS}, got {format!r}")
    return _SINK_CLASSES[format](path, schema)


def read_jsonl(path, schema: Schema) -> TraceTable:
    """Read a JSONL trace written by :class:`JsonlSink` back into a table.

    Column dtypes are reconstructed from the schema exactly like
    :func:`repro.data.io.read_csv`, so round-tripped tables are
    digest-identical.
    """
    path = Path(path)
    rows = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    columns = {}
    for name in schema.names:
        raw = [row[name] for row in rows]
        columns[name] = _parse_column(raw, schema[name])
    return TraceTable(schema, columns)


def read_parquet(path, schema: Schema) -> TraceTable:
    """Read a parquet trace written by :class:`ParquetSink` (needs pyarrow)."""
    try:
        import pyarrow.parquet as pq
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise RuntimeError("reading parquet requires pyarrow") from exc
    table = pq.read_table(str(path))
    columns = {}
    for name in schema.names:
        raw = table.column(name).to_pylist()
        columns[name] = _parse_column(raw, schema[name])
    return TraceTable(schema, columns)
