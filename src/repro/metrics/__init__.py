"""Fidelity metrics used across the evaluation."""

from repro.metrics.distribution import (
    earth_movers_distance,
    jensen_shannon_divergence,
    normalize_emds,
    total_variation,
)
from repro.metrics.error import relative_error
from repro.metrics.ranking import spearman_rank_correlation

__all__ = [
    "earth_movers_distance",
    "jensen_shannon_divergence",
    "normalize_emds",
    "relative_error",
    "spearman_rank_correlation",
    "total_variation",
]
