"""Distributional distances: JSD for categorical, EMD for continuous (App. E)."""

from __future__ import annotations

import numpy as np


def _align_categorical(a, b) -> tuple:
    """Relative-frequency vectors of two samples over their joint support."""
    a = np.asarray(a)
    b = np.asarray(b)
    support = np.unique(np.concatenate([a, b]))
    index = {v: i for i, v in enumerate(support)}
    pa = np.zeros(len(support))
    pb = np.zeros(len(support))
    va, ca = np.unique(a, return_counts=True)
    vb, cb = np.unique(b, return_counts=True)
    for v, c in zip(va, ca):
        pa[index[v]] = c
    for v, c in zip(vb, cb):
        pb[index[v]] = c
    pa = pa / pa.sum() if pa.sum() else pa
    pb = pb / pb.sum() if pb.sum() else pb
    return pa, pb


def jensen_shannon_divergence(a, b, base: float = 2.0) -> float:
    """JSD between the empirical distributions of two categorical samples.

    Bounded in [0, 1] for base 2; the paper's SA/DA/SP/DP/PR metrics rank
    values by frequency and compare the resulting distributions.
    """
    pa, pb = _align_categorical(a, b)
    m = (pa + pb) / 2.0

    def _kl(p, q):
        mask = p > 0
        return float(np.sum(p[mask] * (np.log(p[mask] / q[mask]) / np.log(base))))

    return 0.5 * _kl(pa, m) + 0.5 * _kl(pb, m)


def earth_movers_distance(a, b) -> float:
    """1-D Wasserstein-1 distance between two continuous samples.

    Computed from the quantile-function representation (exact for point
    masses): the mean absolute difference of matched order statistics of the
    merged grid.
    """
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    if len(a) == 0 or len(b) == 0:
        raise ValueError("EMD requires non-empty samples")
    grid = np.concatenate([a, b])
    grid.sort()
    deltas = np.diff(grid)
    if len(deltas) == 0:
        return 0.0
    cdf_a = np.searchsorted(a, grid[:-1], side="right") / len(a)
    cdf_b = np.searchsorted(b, grid[:-1], side="right") / len(b)
    return float(np.sum(np.abs(cdf_a - cdf_b) * deltas))


def total_variation(a, b) -> float:
    """Total-variation distance between two categorical samples."""
    pa, pb = _align_categorical(a, b)
    return 0.5 * float(np.abs(pa - pb).sum())


def normalize_emds(emds: dict, lo: float = 0.1, hi: float = 0.9) -> dict:
    """The paper's figure normalization: map raw EMDs to [0.1, 0.9].

    "Because different attributes have vastly different EMD ranges, we
    normalize the EMDs to [0.1, 0.9] for better figure readability."
    Normalization is per-attribute across methods.
    """
    if not emds:
        return {}
    values = np.array(list(emds.values()), dtype=np.float64)
    vmin, vmax = values.min(), values.max()
    if vmax - vmin < 1e-12:
        return {k: (lo + hi) / 2.0 for k in emds}
    scaled = lo + (values - vmin) * (hi - lo) / (vmax - vmin)
    return {k: float(s) for k, s in zip(emds, scaled)}
