"""Rank correlation (paper Tables 1 and 2)."""

from __future__ import annotations

import numpy as np


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank), 1-based."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1)
    # Average ties.
    for v in np.unique(values):
        mask = values == v
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def spearman_rank_correlation(a, b) -> float:
    """Spearman's rho between two paired score lists.

    The paper ranks the five classifiers by accuracy on raw vs synthetic
    data and reports the correlation of those rankings.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if len(a) != len(b):
        raise ValueError("paired samples must have equal length")
    if len(a) < 2:
        raise ValueError("need at least two pairs")
    ra = _ranks(a)
    rb = _ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    if denom == 0:
        return 0.0
    return float((ra * rb).sum() / denom)
