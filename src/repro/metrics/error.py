"""Relative-error helpers (paper Figures 2 and 4)."""

from __future__ import annotations

import numpy as np


def relative_error(synthetic: float, raw: float, eps: float = 1e-12) -> float:
    """The paper's relative error ``|x_syn - x_raw| / |x_raw|``.

    Used both for sketch heavy-hitter errors (Fig. 2, where x is the sketch
    estimation error itself) and NetML anomaly ratios (Fig. 4).

    Zero-denominator contract (explicit, shared with
    :func:`mean_relative_error`): when ``|raw| <= eps`` the ratio is
    undefined, so

    - ``|synthetic| <= eps`` too: the error is **0.0** — both quantities are
      zero, which is perfect agreement, not 0/0;
    - otherwise: ``|synthetic| / eps`` — a large *finite* sentinel ratio
      that dominates any genuine relative error while keeping downstream
      means finite (the paper's figures average these errors).
    """
    raw = float(raw)
    synthetic = float(synthetic)
    if abs(raw) <= eps:
        if abs(synthetic) <= eps:
            return 0.0
        return abs(synthetic) / eps
    return abs(synthetic - raw) / abs(raw)


def mean_relative_error(synthetic, raw, eps: float = 1e-12) -> float:
    """Mean of element-wise relative errors over paired arrays.

    Applies the same zero-denominator contract as :func:`relative_error` to
    every element: aligned zeros contribute 0, a zero raw value against a
    non-zero synthetic one contributes the finite sentinel ``|syn| / eps``.
    """
    synthetic = np.asarray(synthetic, dtype=np.float64)
    raw = np.asarray(raw, dtype=np.float64)
    if synthetic.shape != raw.shape:
        raise ValueError("arrays must be aligned")
    zero_raw = np.abs(raw) <= eps
    numer = np.abs(synthetic - raw)
    # Zero-denominator cells: |syn| / eps, except aligned zeros which are 0.
    numer = np.where(zero_raw, np.abs(synthetic), numer)
    numer = np.where(zero_raw & (np.abs(synthetic) <= eps), 0.0, numer)
    denom = np.where(zero_raw, eps, np.abs(raw))
    return float(np.mean(numer / denom))
