"""Relative-error helpers (paper Figures 2 and 4)."""

from __future__ import annotations

import numpy as np


def relative_error(synthetic: float, raw: float, eps: float = 1e-12) -> float:
    """The paper's relative error ``|x_syn - x_raw| / |x_raw|``.

    Used both for sketch heavy-hitter errors (Fig. 2, where x is the sketch
    estimation error itself) and NetML anomaly ratios (Fig. 4).  A tiny
    ``eps`` guards division when the raw quantity is zero.
    """
    raw = float(raw)
    synthetic = float(synthetic)
    return abs(synthetic - raw) / max(abs(raw), eps)


def mean_relative_error(synthetic, raw, eps: float = 1e-12) -> float:
    """Mean of element-wise relative errors over paired arrays."""
    synthetic = np.asarray(synthetic, dtype=np.float64)
    raw = np.asarray(raw, dtype=np.float64)
    if synthetic.shape != raw.shape:
        raise ValueError("arrays must be aligned")
    denom = np.maximum(np.abs(raw), eps)
    return float(np.mean(np.abs(synthetic - raw) / denom))
