"""Post-processing driver: projection + consistency + protocol rules.

Implements line 8 of Algorithm 1: "make noisy marginals consistent on the
sum of cell values, shared attributes, and protocol rules".  All operations
here are post-processing of already-published marginals — no privacy budget
is consumed.
"""

from __future__ import annotations

from repro.consistency.projection import norm_sub
from repro.consistency.weighted_average import (
    attribute_consistency,
    overall_total_consistency,
)
from repro.marginals.marginal import Marginal


def make_consistent(marginals: list, rounds: int = 3) -> list:
    """Iterate total- and attribute-consistency, ending non-negative.

    Consistency corrections can reintroduce negative cells and vice versa, so
    the two are alternated for ``rounds`` passes (PrivSyn does the same).
    """
    if not marginals:
        return []
    current = list(marginals)
    for _ in range(max(rounds, 1)):
        current = overall_total_consistency(current)
        current = attribute_consistency(current)
    # Final projection to valid distributions with a shared total.
    consensus = current[0].total
    projected = []
    for m in current:
        counts = norm_sub(m.counts, max(consensus, 0.0))
        projected.append(Marginal(m.attrs, counts, rho=m.rho, sigma=m.sigma))
    return projected


def apply_rules(marginals: list, codecs: dict, rules: list) -> list:
    """Apply every applicable protocol rule to every marginal."""
    out = []
    for m in marginals:
        for rule in rules:
            if rule.applies_to(m.attrs):
                m = rule.apply(m, codecs)
        out.append(m)
    return out


def postprocess_marginals(
    marginals: list,
    codecs: dict,
    rules: list | None = None,
    rounds: int = 3,
) -> list:
    """Full §3.3 post-processing: validity, consistency, protocol rules."""
    rules = list(rules or [])
    current = make_consistent(marginals, rounds=rounds)
    if rules:
        current = apply_rules(current, codecs, rules)
        # Rules preserve totals but consistency across marginals may drift;
        # one cheap reconciliation pass keeps the GUM targets coherent.
        current = make_consistent(current, rounds=1)
    return current
