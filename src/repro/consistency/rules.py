"""Protocol-rule edits on published marginals (paper §3.3, third step).

Network headers obey semantic constraints the noise does not know about:
a flow's byte count is at least its packet count, FTP control traffic is
(almost always) TCP, ports are < 65536.  Rules rewrite marginal cells after
publication — pure post-processing, no extra budget.

The paper's footnote 1 observes real traces *violate* some rules (UDP "FTP"
packets in UGR16), so rules are soft: :class:`ImplicationRule` caps the
violating probability mass at a threshold ``tau`` instead of zeroing it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.consistency.projection import norm_sub
from repro.marginals.marginal import Marginal


class Rule(abc.ABC):
    """A marginal-rewrite rule."""

    @abc.abstractmethod
    def applies_to(self, attrs: tuple) -> bool:
        """Whether this rule can act on a marginal over ``attrs``."""

    @abc.abstractmethod
    def apply(self, marginal: Marginal, codecs: dict) -> Marginal:
        """Return a rewritten copy of ``marginal``."""


@dataclass
class ComparisonRule(Rule):
    """Hard order constraint between two numeric attributes (e.g. byt >= pkt).

    Cells whose bin bounds make the constraint impossible (every value of
    ``left`` below every value of ``right``) are zeroed; the removed mass is
    redistributed by norm-sub so the marginal total is preserved.
    """

    left: str
    right: str
    op: str = ">="

    def __post_init__(self) -> None:
        if self.op not in (">=", "<="):
            raise ValueError(f"unsupported op: {self.op}")

    def applies_to(self, attrs: tuple) -> bool:
        return self.left in attrs and self.right in attrs

    def apply(self, marginal: Marginal, codecs: dict) -> Marginal:
        left_bounds = codecs[self.left].bin_bounds()
        right_bounds = codecs[self.right].bin_bounds()
        if left_bounds is None or right_bounds is None:
            return marginal.copy()
        llo, lhi = left_bounds
        rlo, rhi = right_bounds
        li = marginal.attrs.index(self.left)
        ri = marginal.attrs.index(self.right)
        # Violation mask over the (left, right) plane.
        if self.op == ">=":
            violate_2d = lhi[:, None] <= rlo[None, :]  # every left < every right
        else:
            violate_2d = llo[:, None] >= rhi[None, :]
        # Broadcast to the marginal's full shape.
        shape_l = [1] * marginal.counts.ndim
        shape_l[li] = marginal.shape[li]
        shape_r = [1] * marginal.counts.ndim
        shape_r[ri] = marginal.shape[ri]
        mask = np.zeros(marginal.shape, dtype=bool)
        left_idx = np.arange(marginal.shape[li]).reshape(shape_l)
        right_idx = np.arange(marginal.shape[ri]).reshape(shape_r)
        mask |= violate_2d[left_idx, right_idx]
        total = max(marginal.total, 0.0)
        counts = marginal.counts.copy()
        counts[mask] = 0.0
        if total > 0 and (~mask).any():
            # Redistribute the removed mass over the feasible cells only.
            counts[~mask] = norm_sub(counts[~mask], total)
        return Marginal(marginal.attrs, counts, rho=marginal.rho, sigma=marginal.sigma)


@dataclass
class ImplicationRule(Rule):
    """Soft implication: cond_attr ∈ cond_values ⇒ then_attr ∈ allowed_values.

    Within each marginal slice matching the condition, the probability mass
    of disallowed ``then_attr`` values is capped at ``tau`` of the slice mass
    (paper footnote 1); excess moves to the allowed values proportionally.
    ``max_bin_span`` guards against applying a value-level condition to a
    coarse merged bin that covers far more than the condition values.
    """

    cond_attr: str
    cond_values: tuple
    then_attr: str
    allowed_values: tuple
    tau: float = 0.1
    max_bin_span: float = 10.0

    def applies_to(self, attrs: tuple) -> bool:
        return self.cond_attr in attrs and self.then_attr in attrs

    def _condition_bins(self, codecs: dict) -> np.ndarray:
        codec = codecs[self.cond_attr]
        bins = np.unique(codec.encode(np.asarray(self.cond_values)))
        bounds = codec.bin_bounds()
        if bounds is None:
            return bins
        lo, hi = bounds
        keep = [b for b in bins if (hi[b] - lo[b]) <= self.max_bin_span]
        return np.asarray(keep, dtype=np.int64)

    def apply(self, marginal: Marginal, codecs: dict) -> Marginal:
        cond_bins = self._condition_bins(codecs)
        if len(cond_bins) == 0:
            return marginal.copy()
        then_codec = codecs[self.then_attr]
        allowed = np.unique(then_codec.encode(np.asarray(self.allowed_values, dtype=object)))
        ci = marginal.attrs.index(self.cond_attr)
        ti = marginal.attrs.index(self.then_attr)
        counts = marginal.counts.copy()
        # Work on a view with cond axis first, then_attr second.
        moved = np.moveaxis(counts, (ci, ti), (0, 1))
        allowed_mask = np.zeros(moved.shape[1], dtype=bool)
        allowed_mask[allowed] = True
        for b in cond_bins:
            slice_ = moved[b]  # shape (then_size, rest...)
            slice_total = slice_.sum()
            if slice_total <= 0:
                continue
            bad = slice_[~allowed_mask]
            bad_mass = bad.sum()
            cap = self.tau * slice_total
            if bad_mass <= cap:
                continue
            scale = cap / bad_mass
            removed = bad_mass - cap
            slice_[~allowed_mask] *= scale
            good_mass = slice_[allowed_mask].sum()
            if good_mass > 0:
                slice_[allowed_mask] *= 1.0 + removed / good_mass
            else:
                slice_[allowed_mask] = removed / max(allowed_mask.sum(), 1)
        return Marginal(marginal.attrs, counts, rho=marginal.rho, sigma=marginal.sigma)


def build_default_rules(schema, tau: float = 0.1) -> list:
    """Derive the paper's protocol rules from a trace schema."""
    rules: list[Rule] = []
    names = set(schema.names)
    if {"pkt", "byt"} <= names:
        rules.append(ComparisonRule("byt", "pkt", ">="))
    if {"proto", "dstport"} <= names:
        spec = schema["proto"]
        if spec.categories and "TCP" in spec.categories:
            rules.append(
                ImplicationRule(
                    cond_attr="dstport",
                    cond_values=(20, 21),
                    then_attr="proto",
                    allowed_values=("TCP",),
                    tau=tau,
                )
            )
    return rules
