"""Cross-marginal consistency via the weighted-average method (paper §3.3).

When an attribute ``f`` appears in several published marginals, their
projections onto ``f`` disagree because each carries independent noise.  The
minimum-variance reconciliation (Qardaji et al., cited by the paper) averages
the projections with weights inversely proportional to their variances, then
spreads each marginal's correction evenly over the cells that collapse onto
the same ``f`` value.
"""

from __future__ import annotations

import numpy as np

from repro.marginals.marginal import Marginal


def _projection_weight(marginal: Marginal, attr: str) -> float:
    """Inverse variance of the marginal's projection onto ``attr``.

    Projecting sums ``c / size_f`` cells, each with variance ``sigma^2``;
    exact marginals get a huge (but finite, for arithmetic ease) weight.
    """
    size_f = marginal.shape[marginal.attrs.index(attr)]
    cells_per_slice = marginal.n_cells / size_f
    if marginal.sigma is None or marginal.sigma == 0:
        return 1e12
    return 1.0 / (cells_per_slice * marginal.sigma**2)


def overall_total_consistency(marginals: list) -> list:
    """Make every marginal agree on the total count.

    The consensus total is the inverse-variance weighted average of the
    individual totals; each marginal is corrected by an even per-cell shift.
    """
    if not marginals:
        return []
    weights = []
    for m in marginals:
        if m.sigma is None or m.sigma == 0:
            weights.append(1e12)
        else:
            weights.append(1.0 / (m.n_cells * m.sigma**2))
    weights = np.asarray(weights)
    totals = np.array([m.total for m in marginals])
    consensus = float((weights * totals).sum() / weights.sum())
    out = []
    for m in marginals:
        shift = (consensus - m.total) / m.n_cells
        out.append(Marginal(m.attrs, m.counts + shift, rho=m.rho, sigma=m.sigma))
    return out


def attribute_consistency(marginals: list, attrs=None) -> list:
    """Reconcile marginals sharing attributes onto common 1-way projections.

    Parameters
    ----------
    marginals:
        Published marginals (modified copies are returned).
    attrs:
        Attributes to reconcile; defaults to every attribute appearing in
        two or more marginals.
    """
    marginals = [m.copy() for m in marginals]
    if attrs is None:
        seen: dict[str, int] = {}
        for m in marginals:
            for a in m.attrs:
                seen[a] = seen.get(a, 0) + 1
        attrs = [a for a, count in seen.items() if count >= 2]

    for attr in attrs:
        holders = [m for m in marginals if attr in m.attrs]
        if len(holders) < 2:
            continue
        weights = np.array([_projection_weight(m, attr) for m in holders])
        projections = [m.project((attr,)).counts for m in holders]
        target = np.zeros_like(projections[0])
        for w, p in zip(weights, projections):
            target += w * p
        target /= weights.sum()
        for m, p in zip(holders, projections):
            axis = m.attrs.index(attr)
            diff = target - p
            cells_per_slice = m.n_cells / m.shape[axis]
            correction = diff / cells_per_slice
            # Broadcast the per-value correction along the attr axis.
            shape = [1] * m.counts.ndim
            shape[axis] = m.shape[axis]
            m.counts += correction.reshape(shape)
    return marginals
