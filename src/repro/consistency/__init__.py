"""Post-processing of noisy marginals: projection, consistency, protocol rules."""

from repro.consistency.engine import make_consistent, postprocess_marginals
from repro.consistency.projection import norm_sub, project_simplex_counts
from repro.consistency.rules import (
    ComparisonRule,
    ImplicationRule,
    Rule,
    build_default_rules,
)
from repro.consistency.weighted_average import (
    attribute_consistency,
    overall_total_consistency,
)

__all__ = [
    "ComparisonRule",
    "ImplicationRule",
    "Rule",
    "attribute_consistency",
    "build_default_rules",
    "make_consistent",
    "norm_sub",
    "overall_total_consistency",
    "postprocess_marginals",
    "project_simplex_counts",
]
