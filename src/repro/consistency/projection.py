"""Projection of noisy marginals onto the valid-distribution polytope.

The first post-processing step of §3.3: no negative counts, and the counts
sum to a fixed total.  We use PrivSyn's *norm-sub* operator: shift every cell
by a common offset ``s`` and clip at zero, where ``s`` solves
``sum(max(v + s, 0)) = target``.  Norm-sub preserves the relative order of
cells and concentrates the correction on the (noise-dominated) small cells.
"""

from __future__ import annotations

import numpy as np


def norm_sub(values: np.ndarray, target: float) -> np.ndarray:
    """Project ``values`` to the set ``{x >= 0, sum(x) = target}`` via norm-sub.

    Finds the unique shift ``s`` with ``sum(max(values + s, 0)) == target``
    by scanning the sorted breakpoints (exact, O(n log n)).
    """
    if target < 0:
        raise ValueError(f"target must be >= 0, got {target}")
    flat = np.asarray(values, dtype=np.float64).reshape(-1)
    if flat.size == 0:
        return np.zeros_like(values, dtype=np.float64)
    if target == 0:
        return np.zeros_like(values, dtype=np.float64)

    desc = np.sort(flat)[::-1]
    prefix = np.cumsum(desc)
    k = np.arange(1, flat.size + 1)
    # Keeping the top-k entries positive requires s = (target - prefix_k) / k;
    # the configuration is valid when desc[k-1] + s > 0 and (k == n or
    # desc[k] + s <= 0).
    shifts = (target - prefix) / k
    positive_ok = desc + shifts > 1e-15
    boundary_ok = np.empty(flat.size, dtype=bool)
    boundary_ok[:-1] = desc[1:] + shifts[:-1] <= 1e-12
    boundary_ok[-1] = True
    valid = np.nonzero(positive_ok & boundary_ok)[0]
    if len(valid) == 0:
        # Degenerate (all mass forced onto the max cell).
        out = np.zeros_like(flat)
        out[int(np.argmax(flat))] = target
        return out.reshape(np.asarray(values).shape)
    s = shifts[valid[0]]
    projected = np.clip(flat + s, 0.0, None)
    # Wash out any residual float drift so the sum is exact.
    total = projected.sum()
    if total > 0:
        projected *= target / total
    return projected.reshape(np.asarray(values).shape)


def project_simplex_counts(values: np.ndarray) -> np.ndarray:
    """Norm-sub onto the polytope that keeps the clipped-positive total.

    Convenience for callers that only need validity (non-negativity) and want
    to preserve the marginal's own plausible total: the target is the sum of
    the positive part (a noisy marginal's best total estimate after clipping).
    """
    flat = np.asarray(values, dtype=np.float64)
    target = float(np.clip(flat, 0.0, None).sum())
    return norm_sub(flat, target)
