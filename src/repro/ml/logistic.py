"""Multinomial logistic regression trained by full-batch Adam."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier
from repro.ml.preprocessing import StandardScaler


class LogisticRegressionClassifier(Classifier):
    """Softmax regression with L2 regularization on standardized features."""

    def __init__(
        self,
        max_iter: int = 300,
        lr: float = 0.1,
        l2: float = 1e-4,
        tol: float = 1e-6,
    ) -> None:
        super().__init__()
        self.max_iter = max_iter
        self.lr = lr
        self.l2 = l2
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self._scaler = StandardScaler()

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        X = self._scaler.fit_transform(X)
        n, d = X.shape
        k = int(y.max()) + 1 if n else 1
        W = np.zeros((d, k))
        b = np.zeros(k)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y] = 1.0

        # Adam state.
        mW = np.zeros_like(W); vW = np.zeros_like(W)
        mb = np.zeros_like(b); vb = np.zeros_like(b)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        prev_loss = np.inf
        for t in range(1, self.max_iter + 1):
            logits = X @ W + b
            shifted = logits - logits.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            probs = exp / exp.sum(axis=1, keepdims=True)
            loss = -np.mean(np.log(probs[np.arange(n), y] + 1e-12)) + (
                0.5 * self.l2 * float((W**2).sum())
            )
            grad = (probs - onehot) / n
            gW = X.T @ grad + self.l2 * W
            gb = grad.sum(axis=0)
            mW = beta1 * mW + (1 - beta1) * gW
            vW = beta2 * vW + (1 - beta2) * gW**2
            mb = beta1 * mb + (1 - beta1) * gb
            vb = beta2 * vb + (1 - beta2) * gb**2
            b1t = 1 - beta1**t
            b2t = 1 - beta2**t
            W -= self.lr * (mW / b1t) / (np.sqrt(vW / b2t) + eps)
            b -= self.lr * (mb / b1t) / (np.sqrt(vb / b2t) + eps)
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss
        self.coef_ = W
        self.intercept_ = b

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = self._scaler.transform(X)
        logits = X @ self.coef_ + self.intercept_
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
