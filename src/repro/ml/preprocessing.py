"""Feature preprocessing: scaling and label encoding."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean unit-variance scaling (constant features left untouched)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class LabelEncoder:
    """Maps arbitrary label values to dense integers ``0..K-1``."""

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    def fit(self, y) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("encoder is not fitted")
        y = np.asarray(y)
        codes = np.searchsorted(self.classes_, y)
        codes = np.clip(codes, 0, len(self.classes_) - 1)
        if not np.array_equal(self.classes_[codes], y):
            raise ValueError("unseen label encountered")
        return codes.astype(np.int64)

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("encoder is not fitted")
        return self.classes_[np.asarray(codes, dtype=np.int64)]
