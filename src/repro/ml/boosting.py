"""Gradient boosting with softmax loss (multiclass, regression-tree base)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import ensure_rng


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class GradientBoostingClassifier(Classifier):
    """One shallow regression tree per class per round on softmax residuals."""

    def __init__(
        self,
        n_estimators: int = 25,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.rng = ensure_rng(rng)
        self.stages_: list = []
        self._base_scores: np.ndarray | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n = len(X)
        k = int(y.max()) + 1 if n else 1
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y] = 1.0
        # Log-prior initialization stabilizes the first rounds.
        prior = np.clip(onehot.mean(axis=0), 1e-6, None)
        self._base_scores = np.log(prior)
        scores = np.tile(self._base_scores, (n, 1))

        self.stages_ = []
        for _ in range(self.n_estimators):
            probs = _softmax(scores)
            residual = onehot - probs
            stage = []
            if self.subsample < 1.0:
                m = max(int(self.subsample * n), 1)
                idx = self.rng.choice(n, size=m, replace=False)
            else:
                idx = np.arange(n)
            for c in range(k):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    rng=self.rng,
                )
                tree.fit(X[idx], residual[idx, c])
                update = tree.predict(X)
                scores[:, c] += self.learning_rate * update
                stage.append(tree)
            self.stages_.append(stage)

    def _raw_scores(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        scores = np.tile(self._base_scores, (len(X), 1))
        for stage in self.stages_:
            for c, tree in enumerate(stage):
                scores[:, c] += self.learning_rate * tree.predict(X)
        return scores

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _softmax(self._raw_scores(X))
