"""Shared estimator plumbing and data splitting."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class Classifier:
    """Base classifier: integer-label fit/predict contract.

    Subclasses implement ``_fit(X, y)`` (labels already encoded to
    ``0..K-1``) and ``predict_proba``.
    """

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self._fit(X, encoded.astype(np.int64))
        return self

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        probs = self.predict_proba(np.asarray(X, dtype=np.float64))
        return self.classes_[np.argmax(probs, axis=1)]

    @property
    def n_classes(self) -> int:
        if self.classes_ is None:
            raise RuntimeError("classifier is not fitted")
        return len(self.classes_)


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.2,
    rng: np.random.Generator | int | None = None,
):
    """Random 80/20-style split (the paper splits randomly, footnote 3)."""
    rng = ensure_rng(rng)
    X = np.asarray(X)
    y = np.asarray(y)
    n = len(X)
    if len(y) != n:
        raise ValueError("X and y must align")
    if not 0 < test_size < 1:
        raise ValueError("test_size must be in (0, 1)")
    perm = rng.permutation(n)
    n_test = max(int(round(n * test_size)), 1)
    test_idx = perm[:n_test]
    train_idx = perm[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]
