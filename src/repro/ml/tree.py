"""CART decision trees (classification and regression).

Split finding is vectorized: per candidate feature the node's values are
sorted once and impurities of every boundary are evaluated from prefix sums
(class-count prefixes for Gini, sum/sum-of-squares prefixes for variance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Classifier
from repro.utils.rng import ensure_rng


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "._Node | None" = None
    right: "._Node | None" = None
    value: np.ndarray | float | None = None  # leaf payload

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _resolve_max_features(max_features, d: int) -> int:
    if max_features is None:
        return d
    if max_features == "sqrt":
        return max(1, int(np.sqrt(d)))
    if isinstance(max_features, float):
        return max(1, int(max_features * d))
    return min(int(max_features), d)


class _BaseTree:
    """Shared recursive builder; subclasses supply impurity machinery."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = max(min_samples_split, 2)
        self.min_samples_leaf = max(min_samples_leaf, 1)
        self.max_features = max_features
        self.rng = ensure_rng(rng)
        self.root: _Node | None = None

    # Subclass hooks ---------------------------------------------------------
    def _leaf_value(self, y: np.ndarray):
        raise NotImplementedError

    def _split_gain(self, y_sorted: np.ndarray):
        """Return per-boundary impurity totals (lower = better), length n-1."""
        raise NotImplementedError

    def _is_pure(self, y: np.ndarray) -> bool:
        raise NotImplementedError

    # Building ---------------------------------------------------------------
    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        n, d = X.shape
        node = _Node(value=self._leaf_value(y))
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or n < 2 * self.min_samples_leaf
            or self._is_pure(y)
        ):
            return node

        k = _resolve_max_features(self.max_features, d)
        features = self.rng.choice(d, size=k, replace=False) if k < d else np.arange(d)
        best = (np.inf, -1, 0.0, None)  # (impurity, feature, threshold, order)
        for f in features:
            xs = X[:, f]
            order = np.argsort(xs, kind="stable")
            xs_sorted = xs[order]
            boundaries = np.nonzero(xs_sorted[1:] > xs_sorted[:-1])[0]
            if len(boundaries) == 0:
                continue
            lo, hi = self.min_samples_leaf - 1, n - self.min_samples_leaf
            boundaries = boundaries[(boundaries >= lo) & (boundaries < hi)]
            if len(boundaries) == 0:
                continue
            totals = self._split_gain(y[order])
            scores = totals[boundaries]
            i = int(np.argmin(scores))
            if scores[i] < best[0]:
                b = boundaries[i]
                threshold = (xs_sorted[b] + xs_sorted[b + 1]) / 2.0
                best = (float(scores[i]), int(f), float(threshold), None)

        if best[1] < 0:
            return node
        _, feature, threshold, _ = best
        mask = X[:, feature] <= threshold
        if not mask.any() or mask.all():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _predict_values(self, X: np.ndarray) -> list:
        """Leaf payload per row (iterative traversal with index masks)."""
        X = np.asarray(X, dtype=np.float64)
        out = [None] * len(X)
        stack = [(self.root, np.arange(len(X)))]
        while stack:
            node, idx = stack.pop()
            if len(idx) == 0:
                continue
            if node.is_leaf:
                for i in idx:
                    out[i] = node.value
                continue
            mask = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out


class DecisionTreeClassifier(_BaseTree, Classifier):
    """CART with Gini impurity; leaves store class probability vectors."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        _BaseTree.__init__(
            self, max_depth, min_samples_split, min_samples_leaf, max_features, rng
        )
        Classifier.__init__(self)
        self._k = 0

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._k = int(y.max()) + 1 if len(y) else 1
        self.root = self._build(X, y, depth=0)

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=self._k).astype(np.float64)
        total = counts.sum()
        return counts / total if total else np.full(self._k, 1.0 / self._k)

    def _is_pure(self, y: np.ndarray) -> bool:
        return len(np.unique(y)) <= 1

    def _split_gain(self, y_sorted: np.ndarray) -> np.ndarray:
        n = len(y_sorted)
        onehot = np.zeros((n, self._k))
        onehot[np.arange(n), y_sorted] = 1.0
        left = np.cumsum(onehot, axis=0)[:-1]  # counts left of each boundary
        total = left[-1] + onehot[-1]
        right = total - left
        nl = np.arange(1, n)
        nr = n - nl
        gini_l = 1.0 - (left**2).sum(axis=1) / nl**2
        gini_r = 1.0 - (right**2).sum(axis=1) / nr**2
        return nl * gini_l + nr * gini_r

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        values = self._predict_values(X)
        probs = np.vstack(values)
        if probs.shape[1] < self.n_classes:  # pragma: no cover - defensive
            probs = np.pad(probs, ((0, 0), (0, self.n_classes - probs.shape[1])))
        return probs


class DecisionTreeRegressor(_BaseTree):
    """CART with variance reduction; leaves store means.  Used by boosting."""

    def _fit_arrays(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self.root = self._build(X, y, depth=0)
        return self

    # Regressors skip the Classifier label plumbing entirely.
    fit = _fit_arrays

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(y.mean()) if len(y) else 0.0

    def _is_pure(self, y: np.ndarray) -> bool:
        return len(y) == 0 or float(y.max() - y.min()) < 1e-12

    def _split_gain(self, y_sorted: np.ndarray) -> np.ndarray:
        n = len(y_sorted)
        cumsum = np.cumsum(y_sorted)[:-1]
        cumsq = np.cumsum(y_sorted**2)[:-1]
        total_sum = cumsum[-1] + y_sorted[-1]
        total_sq = cumsq[-1] + y_sorted[-1] ** 2
        nl = np.arange(1, n)
        nr = n - nl
        # Weighted variance = sum of squares - sum^2/n per side.
        sse_l = cumsq - cumsum**2 / nl
        sse_r = (total_sq - cumsq) - (total_sum - cumsum) ** 2 / nr
        return sse_l + sse_r

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.array(self._predict_values(X), dtype=np.float64)
