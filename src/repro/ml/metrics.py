"""Classification metrics (paper §4.3 reports accuracy)."""

from __future__ import annotations

import numpy as np


def accuracy_score(y_true, y_pred) -> float:
    """(TP + TN) / all — the paper's accuracy definition."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError("length mismatch")
    if len(y_true) == 0:
        raise ValueError("empty inputs")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Counts[i, j] = #samples with true label i predicted as label j."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {v: i for i, v in enumerate(labels)}
    k = len(labels)
    out = np.zeros((k, k), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        out[index[t], index[p]] += 1
    return out
