"""MLP classifier on the :mod:`repro.nn` substrate."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier
from repro.ml.preprocessing import StandardScaler
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import softmax_cross_entropy
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.utils.rng import ensure_rng


class MlpClassifier(Classifier):
    """Feed-forward network with ReLU hidden layers and softmax output."""

    def __init__(
        self,
        hidden: tuple = (64,),
        epochs: int = 30,
        batch_size: int = 128,
        lr: float = 1e-3,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.rng = ensure_rng(rng)
        self._scaler = StandardScaler()
        self._net: Sequential | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        X = self._scaler.fit_transform(X)
        n, d = X.shape
        k = int(y.max()) + 1 if n else 1
        layers: list = []
        sizes = (d,) + self.hidden + (k,)
        for i in range(len(sizes) - 1):
            layers.append(Dense(sizes[i], sizes[i + 1], self.rng))
            if i < len(sizes) - 2:
                layers.append(ReLU())
        self._net = Sequential(layers)
        optimizer = Adam(lr=self.lr)

        for _ in range(self.epochs):
            perm = self.rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = perm[start : start + self.batch_size]
                logits = self._net.forward(X[idx], training=True)
                _, grad = softmax_cross_entropy(logits, y[idx])
                self._net.backward(grad)
                optimizer.step(self._net.parameters(), self._net.gradients())

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = self._scaler.transform(np.asarray(X, dtype=np.float64))
        logits = self._net.forward(X, training=False)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
