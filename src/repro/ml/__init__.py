"""From-scratch ML models for the downstream-task evaluation (paper §4.3).

The paper trains five classifiers (DT, LR, RF, GB, MLP) on raw and synthetic
flows, and a one-class SVM for packet anomaly detection.  scikit-learn is not
available offline, so the standard algorithms are implemented here on numpy.
"""

from repro.ml.base import train_test_split
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.mlp import MlpClassifier
from repro.ml.model_zoo import PAPER_MODELS, build_classifier
from repro.ml.ocsvm import OneClassSVM
from repro.ml.preprocessing import LabelEncoder, StandardScaler
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "LabelEncoder",
    "LogisticRegressionClassifier",
    "MlpClassifier",
    "OneClassSVM",
    "PAPER_MODELS",
    "RandomForestClassifier",
    "StandardScaler",
    "accuracy_score",
    "build_classifier",
    "confusion_matrix",
    "train_test_split",
]
