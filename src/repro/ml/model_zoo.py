"""The paper's five classifiers with reproducible defaults (§4.3)."""

from __future__ import annotations

import numpy as np

from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.mlp import MlpClassifier
from repro.ml.tree import DecisionTreeClassifier

#: Model keys in the order the paper's figures use.
PAPER_MODELS = ("DT", "LR", "RF", "GB", "MLP")


def build_classifier(name: str, rng: np.random.Generator | int | None = None):
    """Instantiate one of the paper's five models by its figure label."""
    name = name.upper()
    if name == "DT":
        return DecisionTreeClassifier(max_depth=14, rng=rng)
    if name == "LR":
        return LogisticRegressionClassifier(max_iter=250)
    if name == "RF":
        return RandomForestClassifier(n_estimators=25, max_depth=14, rng=rng)
    if name == "GB":
        return GradientBoostingClassifier(n_estimators=20, max_depth=3, rng=rng)
    if name == "MLP":
        return MlpClassifier(hidden=(64,), epochs=25, rng=rng)
    raise KeyError(f"unknown model {name!r}; expected one of {PAPER_MODELS}")
