"""One-class SVM for novelty detection (the NetML anomaly pipeline, §4.3).

Solves Schölkopf's one-class objective by projected SGD:

    min_{w, rho}  0.5 ||w||^2 - rho + (1 / (nu n)) sum_i max(0, rho - w·z_i)

``nu`` upper-bounds the training anomaly fraction.  An optional random
Fourier feature map approximates the RBF kernel (sklearn's default), which
matters for the non-linear flow-feature spaces NetML produces.
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import StandardScaler
from repro.utils.rng import ensure_rng


class OneClassSVM:
    """SGD one-class SVM with optional RBF random-Fourier-feature map."""

    def __init__(
        self,
        nu: float = 0.5,
        kernel: str = "rbf",
        n_components: int = 100,
        gamma: float | str = "scale",
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 0.05,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0 < nu <= 1:
            raise ValueError("nu must be in (0, 1]")
        if kernel not in ("rbf", "linear"):
            raise ValueError("kernel must be 'rbf' or 'linear'")
        self.nu = nu
        self.kernel = kernel
        self.n_components = n_components
        self.gamma = gamma
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.rng = ensure_rng(rng)
        self._scaler = StandardScaler()
        self._omega: np.ndarray | None = None
        self._phase: np.ndarray | None = None
        self.w_: np.ndarray | None = None
        self.rho_: float = 0.0

    # -------------------------------------------------------------- features
    def _feature_map(self, X: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return X
        return np.sqrt(2.0 / self.n_components) * np.cos(X @ self._omega + self._phase)

    def _init_features(self, X: np.ndarray) -> None:
        if self.kernel == "linear":
            return
        d = X.shape[1]
        if self.gamma == "scale":
            var = X.var()
            gamma = 1.0 / (d * var) if var > 0 else 1.0 / d
        else:
            gamma = float(self.gamma)
        self._omega = self.rng.normal(0.0, np.sqrt(2.0 * gamma), size=(d, self.n_components))
        self._phase = self.rng.uniform(0, 2 * np.pi, size=self.n_components)

    # ------------------------------------------------------------------- fit
    def fit(self, X: np.ndarray) -> "OneClassSVM":
        X = self._scaler.fit_transform(np.asarray(X, dtype=np.float64))
        self._init_features(X)
        Z = self._feature_map(X)
        n, d = Z.shape
        w = np.zeros(d)
        rho = 0.0
        for epoch in range(self.epochs):
            lr = self.lr / (1.0 + 0.1 * epoch)
            perm = self.rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = perm[start : start + self.batch_size]
                zb = Z[idx]
                scores = zb @ w
                inside = scores < rho  # margin violators
                frac = inside.mean() if len(idx) else 0.0
                grad_w = w.copy()
                if inside.any():
                    grad_w -= zb[inside].sum(axis=0) / (self.nu * len(idx))
                grad_rho = -1.0 + frac / self.nu
                w -= lr * grad_w
                rho -= lr * grad_rho
        self.w_ = w
        self.rho_ = float(rho)
        return self

    # --------------------------------------------------------------- predict
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distance: negative = anomaly."""
        if self.w_ is None:
            raise RuntimeError("model is not fitted")
        X = self._scaler.transform(np.asarray(X, dtype=np.float64))
        Z = self._feature_map(X)
        return Z @ self.w_ - self.rho_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """+1 for inliers, -1 for anomalies (sklearn convention)."""
        return np.where(self.decision_function(X) >= 0, 1, -1)

    def anomaly_ratio(self, X: np.ndarray) -> float:
        """Fraction of rows flagged anomalous — Fig. 4's measured quantity."""
        return float(np.mean(self.predict(X) < 0))
