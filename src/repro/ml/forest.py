"""Random forest: bagged CART trees with feature subsampling."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import ensure_rng, spawn_rngs


class RandomForestClassifier(Classifier):
    """Majority-vote ensemble of bootstrapped Gini trees."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = ensure_rng(rng)
        self.trees_: list = []

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n = len(X)
        self.trees_ = []
        for tree_rng in spawn_rngs(self.rng, self.n_estimators):
            idx = tree_rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=tree_rng,
            )
            tree.classes_ = np.arange(int(y.max()) + 1)
            tree._fit(X[idx], y[idx])
            self.trees_.append(tree)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        k = self.n_classes
        acc = np.zeros((len(X), k))
        for tree in self.trees_:
            probs = tree.predict_proba(X)
            if probs.shape[1] < k:
                probs = np.pad(probs, ((0, 0), (0, k - probs.shape[1])))
            acc += probs
        return acc / len(self.trees_)
