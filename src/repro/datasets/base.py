"""Shared machinery for synthetic trace generators."""

from __future__ import annotations

import abc

import numpy as np

from repro.data.schema import FieldKind, FieldSpec, Schema
from repro.data.table import TraceTable

#: Maximum transmission unit bounds used when deriving bytes from packets.
MIN_PACKET_BYTES = 40
MAX_PACKET_BYTES = 1514


class TraceGenerator(abc.ABC):
    """A parametric generator of one dataset family."""

    #: Registry key and paper-reported statistics (Table 5).
    name: str = ""
    kind: str = "flow"
    label_attr: str = "label"
    paper_records: int = 0
    paper_attributes: int = 0
    paper_domain: float = 0.0

    @abc.abstractmethod
    def schema(self) -> Schema:
        """The dataset's schema."""

    @abc.abstractmethod
    def generate(
        self, n_records: int, rng: np.random.Generator | int | None = None
    ) -> TraceTable:
        """Generate ``n_records`` records deterministically from the seed."""


# --------------------------------------------------------------------- helpers
def zipf_probs(k: int, a: float = 1.1) -> np.ndarray:
    """Zipf rank probabilities over ``k`` items with exponent ``a``."""
    ranks = np.arange(1, k + 1, dtype=np.float64)
    probs = ranks**-a
    return probs / probs.sum()


def make_ip_pool(
    rng: np.random.Generator, size: int, subnets: list | None = None
) -> np.ndarray:
    """Pool of distinct integer IPv4 addresses drawn from a few subnets.

    ``subnets`` is a list of ``(base_int, prefix_len)``; hosts are uniform
    within each subnet.  Keeping the pool subnet-structured gives the /30
    binning something real to aggregate.
    """
    if subnets is None:
        subnets = [(ip_base(10, 0), 16), (ip_base(192, 168), 16), (ip_base(172, 16), 16)]
    per = -(-size // len(subnets))
    parts = []
    for base, prefix in subnets:
        host_bits = 32 - prefix
        hosts = rng.integers(1, 1 << host_bits, size=per * 2, dtype=np.int64)
        addrs = np.unique(base + hosts)[:per]
        parts.append(addrs)
    pool = np.unique(np.concatenate(parts))
    rng.shuffle(pool)
    if len(pool) < size:
        # Top up with fully random public addresses.
        extra = rng.integers(1 << 24, 1 << 31, size=size - len(pool), dtype=np.int64)
        pool = np.unique(np.concatenate([pool, extra]))
    return pool[:size]


def ip_base(a: int, b: int = 0, c: int = 0, d: int = 0) -> int:
    """Integer for the dotted quad ``a.b.c.d``."""
    return (a << 24) | (b << 16) | (c << 8) | d


def sample_zipf(
    rng: np.random.Generator, pool: np.ndarray, size: int, a: float = 1.1
) -> np.ndarray:
    """Sample from ``pool`` with Zipf-ranked popularity (pool order = rank)."""
    probs = zipf_probs(len(pool), a)
    idx = rng.choice(len(pool), size=size, p=probs)
    return pool[idx]


def ephemeral_ports(rng: np.random.Generator, size: int) -> np.ndarray:
    """Uniform ephemeral source ports."""
    return rng.integers(1024, 65536, size=size, dtype=np.int64)


def bytes_from_packets(
    rng: np.random.Generator,
    pkt: np.ndarray,
    mean_size: float = 400.0,
    sigma: float = 0.6,
) -> np.ndarray:
    """Derive byte counts from packet counts with lognormal per-packet sizes.

    Guarantees the protocol invariant ``byt >= max(pkt, MIN_PACKET_BYTES·1)``
    loosely — at least ``pkt`` bytes and at least the minimum header size per
    flow.
    """
    pkt = np.asarray(pkt, dtype=np.float64)
    per_packet = np.exp(rng.normal(np.log(mean_size), sigma, size=len(pkt)))
    per_packet = np.clip(per_packet, MIN_PACKET_BYTES, MAX_PACKET_BYTES)
    byt = np.round(pkt * per_packet).astype(np.int64)
    return np.maximum(byt, np.maximum(pkt.astype(np.int64), MIN_PACKET_BYTES))


def flow_field_specs(label_spec: FieldSpec, extra: list | None = None) -> tuple:
    """The common flow-header fields ⟨5-tuple, ts, td, pkt, byt⟩ + label."""
    fields = [
        FieldSpec("srcip", FieldKind.IP),
        FieldSpec("dstip", FieldKind.IP),
        FieldSpec("srcport", FieldKind.PORT),
        FieldSpec("dstport", FieldKind.PORT),
        FieldSpec("proto", FieldKind.CATEGORICAL, categories=("TCP", "UDP", "ICMP")),
        FieldSpec("ts", FieldKind.TIMESTAMP),
        FieldSpec("td", FieldKind.NUMERIC, integral=False, unit_scale=1000.0),
        FieldSpec("pkt", FieldKind.NUMERIC),
        FieldSpec("byt", FieldKind.NUMERIC),
    ]
    fields.extend(extra or [])
    fields.append(label_spec)
    return tuple(fields)


def build_table(schema: Schema, columns: dict, order: np.ndarray | None = None) -> TraceTable:
    """Assemble a table, optionally applying a row permutation/sort."""
    table = TraceTable(schema, columns)
    if order is not None:
        table = table.take(order)
    return table


def proto_for_port(rng: np.random.Generator, ports: np.ndarray) -> np.ndarray:
    """Protocol consistent with well-known service ports (DNS/NTP → UDP)."""
    udp_services = {53, 123, 161, 514}
    out = np.where(
        np.isin(ports, list(udp_services)),
        "UDP",
        np.where(rng.random(len(ports)) < 0.93, "TCP", "UDP"),
    )
    return out.astype(object)
