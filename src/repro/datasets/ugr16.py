"""UGR'16-style flow generator: ISP NetFlow with rare labelled attacks.

Reproduces the properties the paper leans on: a *binary* highly imbalanced
label (predicting all-benign already gives ~0.997 accuracy, §4.3), ISP-scale
service mix, heavy-tailed flow sizes, and the footnote-1 curiosity — a small
number of "FTP" flows (dstport 21) carried over UDP, which exercises the
soft protocol rule (tau).  10 attributes, matching Table 5.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import FieldKind, FieldSpec, Schema
from repro.data.table import TraceTable
from repro.datasets.base import (
    TraceGenerator,
    bytes_from_packets,
    ephemeral_ports,
    flow_field_specs,
    ip_base,
    make_ip_pool,
    sample_zipf,
)
from repro.utils.rng import ensure_rng

UGR_LABELS = ("benign", "malicious")


class Ugr16Generator(TraceGenerator):
    """Synthetic UGR'16 NetFlow v9 records from a Spanish ISP."""

    name = "ugr16"
    kind = "flow"
    label_attr = "label"
    paper_records = 1_000_000
    paper_attributes = 10
    paper_domain = 4e6

    def __init__(
        self,
        attack_fraction: float = 0.003,
        n_src_ips: int = 512,
        n_dst_ips: int = 256,
        span_seconds: float = 3600.0,
        ftp_udp_fraction: float = 0.02,
    ) -> None:
        self.attack_fraction = attack_fraction
        self.n_src_ips = n_src_ips
        self.n_dst_ips = n_dst_ips
        self.span_seconds = span_seconds
        self.ftp_udp_fraction = ftp_udp_fraction

    def schema(self) -> Schema:
        label = FieldSpec("label", FieldKind.CATEGORICAL, categories=UGR_LABELS, is_label=True)
        return Schema(fields=flow_field_specs(label), kind="flow")

    def generate(self, n_records: int, rng=None) -> TraceTable:
        rng = ensure_rng(rng)
        schema = self.schema()
        src_pool = make_ip_pool(
            rng, self.n_src_ips, subnets=[(ip_base(31, 4), 16), (ip_base(88, 12), 16)]
        )
        dst_pool = make_ip_pool(
            rng, self.n_dst_ips, subnets=[(ip_base(31, 4), 16), (ip_base(104, 16), 16)]
        )

        malicious = rng.random(n_records) < self.attack_fraction
        k_bad = int(malicious.sum())
        k_good = n_records - k_bad

        cols = {
            "srcip": sample_zipf(rng, src_pool, n_records, a=1.0),
            "dstip": sample_zipf(rng, dst_pool, n_records, a=1.15),
            "srcport": ephemeral_ports(rng, n_records),
            "dstport": np.zeros(n_records, dtype=np.int64),
            "proto": np.full(n_records, "TCP", dtype=object),
            "ts": rng.uniform(0, self.span_seconds, size=n_records),
            "td": np.zeros(n_records),
            "pkt": np.ones(n_records, dtype=np.int64),
            "byt": np.ones(n_records, dtype=np.int64),
            "label": np.where(malicious, "malicious", "benign").astype(object),
        }

        # ---- benign ISP mix -------------------------------------------------
        good = ~malicious
        ports = rng.choice(
            [80, 443, 53, 25, 110, 993, 123, 21, 8080],
            size=k_good,
            p=[0.27, 0.33, 0.20, 0.04, 0.02, 0.02, 0.05, 0.02, 0.05],
        )
        cols["dstport"][good] = ports
        proto = np.where(np.isin(ports, [53, 123]), "UDP", "TCP").astype(object)
        # Footnote-1 anomaly: a sliver of FTP flows rides UDP.
        ftp = ports == 21
        flip = ftp & (rng.random(k_good) < self.ftp_udp_fraction)
        proto[flip] = "UDP"
        cols["proto"][good] = proto
        pkt = np.maximum(rng.poisson(np.exp(rng.normal(1.8, 0.9, size=k_good))), 1)
        cols["pkt"][good] = pkt
        cols["byt"][good] = bytes_from_packets(rng, pkt, mean_size=500.0, sigma=0.7)
        cols["td"][good] = rng.exponential(3.0, size=k_good)

        # ---- malicious: DoS bursts and port scans ---------------------------
        if k_bad:
            kind = rng.random(k_bad) < 0.5  # True = dos, False = scan
            dstport = np.where(kind, 80, rng.integers(1, 20000, size=k_bad))
            cols["dstport"][malicious] = dstport
            cols["proto"][malicious] = "TCP"
            pkt_bad = np.where(
                kind, np.maximum(rng.poisson(60.0, size=k_bad), 2), 1
            ).astype(np.int64)
            cols["pkt"][malicious] = pkt_bad
            cols["byt"][malicious] = np.maximum(pkt_bad * 46, 46)
            cols["td"][malicious] = np.where(kind, rng.exponential(0.3, k_bad), 0.001)
            # Attacks target a single victim.
            cols["dstip"][malicious] = dst_pool[0]
        return TraceTable(schema, cols)
