"""CIDDS-001-style flow generator: emulated small-business network.

Internal clients and servers (web/email/file) in 192.168/16 plus injected
attacks (DoS, brute force, port scan, ping scan), reported through a binary
``label`` as the paper's classification task uses.  A TCP-``flags`` field
(the CIDDS NetFlow flags string) brings the attribute count to 11, matching
Table 5.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import FieldKind, FieldSpec, Schema
from repro.data.table import TraceTable
from repro.datasets.base import (
    TraceGenerator,
    bytes_from_packets,
    ephemeral_ports,
    flow_field_specs,
    ip_base,
    make_ip_pool,
    sample_zipf,
)
from repro.utils.rng import ensure_rng

CIDDS_LABELS = ("benign", "malicious")
FLAGS = (".A..SF", ".AP.SF", ".A...F", ".APRSF", "....S.", ".A.R..", "......")


class CiddsGenerator(TraceGenerator):
    """Synthetic CIDDS-001 NetFlow records."""

    name = "cidds"
    kind = "flow"
    label_attr = "label"
    paper_records = 1_000_000
    paper_attributes = 11
    paper_domain = 6e6

    def __init__(
        self,
        attack_fraction: float = 0.08,
        n_clients: int = 96,
        n_servers: int = 16,
        n_externals: int = 600,
        span_seconds: float = 3600.0,
    ) -> None:
        self.attack_fraction = attack_fraction
        self.n_clients = n_clients
        self.n_servers = n_servers
        #: CIDDS-001 captures the emulated business's *external* traffic too
        #: (the paper's Table 5 puts its domain above UGR16's); externals
        #: widen the address space accordingly.
        self.n_externals = n_externals
        self.span_seconds = span_seconds

    def schema(self) -> Schema:
        label = FieldSpec("label", FieldKind.CATEGORICAL, categories=CIDDS_LABELS, is_label=True)
        flags = FieldSpec("flags", FieldKind.CATEGORICAL, categories=FLAGS)
        return Schema(fields=flow_field_specs(label, extra=[flags]), kind="flow")

    def generate(self, n_records: int, rng=None) -> TraceTable:
        rng = ensure_rng(rng)
        schema = self.schema()
        clients = make_ip_pool(rng, self.n_clients, subnets=[(ip_base(192, 168, 100), 24)])
        servers = make_ip_pool(rng, self.n_servers, subnets=[(ip_base(192, 168, 200), 24)])
        externals = make_ip_pool(
            rng, self.n_externals, subnets=[(ip_base(77, 32), 16), (ip_base(203, 0), 16)]
        )
        src_pool = np.concatenate([clients, externals[: self.n_externals // 2]])
        dst_pool = np.concatenate([servers, externals[self.n_externals // 2 :]])

        malicious = rng.random(n_records) < self.attack_fraction
        k_bad = int(malicious.sum())
        k_good = n_records - k_bad

        cols = {
            "srcip": sample_zipf(rng, src_pool, n_records, a=0.9),
            "dstip": sample_zipf(rng, dst_pool, n_records, a=1.1),
            "srcport": ephemeral_ports(rng, n_records),
            "dstport": np.zeros(n_records, dtype=np.int64),
            "proto": np.full(n_records, "TCP", dtype=object),
            "ts": rng.uniform(0, self.span_seconds, size=n_records),
            "td": np.zeros(n_records),
            "pkt": np.ones(n_records, dtype=np.int64),
            "byt": np.ones(n_records, dtype=np.int64),
            "flags": np.full(n_records, ".A..SF", dtype=object),
            "label": np.where(malicious, "malicious", "benign").astype(object),
        }

        good = ~malicious
        ports = rng.choice(
            [80, 443, 25, 445, 53, 139],
            size=k_good,
            p=[0.30, 0.25, 0.12, 0.18, 0.10, 0.05],
        )
        cols["dstport"][good] = ports
        cols["proto"][good] = np.where(ports == 53, "UDP", "TCP")
        pkt = np.maximum(rng.poisson(10.0, size=k_good), 1)
        cols["pkt"][good] = pkt
        cols["byt"][good] = bytes_from_packets(rng, pkt, mean_size=450.0, sigma=0.6)
        cols["td"][good] = rng.exponential(4.0, size=k_good)
        cols["flags"][good] = rng.choice(
            [".A..SF", ".AP.SF", ".A...F", "......"], size=k_good, p=[0.45, 0.35, 0.12, 0.08]
        )

        if k_bad:
            # Four attack flavours with distinct signatures.
            flavour = rng.choice(4, size=k_bad, p=[0.35, 0.25, 0.3, 0.1])
            dstport = np.select(
                [flavour == 0, flavour == 1, flavour == 2, flavour == 3],
                [
                    np.full(k_bad, 80),                      # dos on web
                    rng.choice([22, 3389], size=k_bad),       # brute force
                    rng.integers(1, 1024, size=k_bad),        # port scan
                    np.zeros(k_bad, dtype=np.int64),          # ping scan
                ],
            )
            cols["dstport"][malicious] = dstport
            cols["proto"][malicious] = np.where(flavour == 3, "ICMP", "TCP")
            pkt_bad = np.select(
                [flavour == 0, flavour == 1, flavour == 2, flavour == 3],
                [
                    np.maximum(rng.poisson(80.0, size=k_bad), 2),
                    np.maximum(rng.poisson(4.0, size=k_bad), 1),
                    np.ones(k_bad, dtype=np.int64),
                    np.maximum(rng.poisson(2.0, size=k_bad), 1),
                ],
            ).astype(np.int64)
            cols["pkt"][malicious] = pkt_bad
            cols["byt"][malicious] = np.maximum(pkt_bad * 48, 48)
            cols["td"][malicious] = np.select(
                [flavour == 0, flavour == 1, flavour == 2, flavour == 3],
                [
                    rng.exponential(0.5, size=k_bad),
                    rng.exponential(0.1, size=k_bad),
                    np.full(k_bad, 0.001),
                    rng.exponential(0.05, size=k_bad),
                ],
            )
            cols["flags"][malicious] = np.select(
                [flavour == 0, flavour == 1, flavour == 2, flavour == 3],
                [
                    np.full(k_bad, ".APRSF", dtype=object),
                    np.full(k_bad, ".AP.SF", dtype=object),
                    np.full(k_bad, "....S.", dtype=object),
                    np.full(k_bad, "......", dtype=object),
                ],
            )
            # Attacks arrive in a burst window.
            cols["ts"][malicious] = rng.uniform(
                0.7 * self.span_seconds, 0.85 * self.span_seconds, size=k_bad
            )
        return TraceTable(schema, cols)
