"""Synthetic stand-ins for the paper's five trace datasets.

The originals (UGR16, CIDDS, TON, CAIDA, DC — NetShare's private copies) are
not redistributable; these generators produce traces with the same field
sets, label semantics, and the statistical structure each experiment relies
on (heavy hitters, class-conditional attack signatures, per-flow packet
streams).  See DESIGN.md §1 for the substitution rationale.
"""

from repro.datasets.base import TraceGenerator
from repro.datasets.caida import CaidaGenerator
from repro.datasets.cidds import CiddsGenerator
from repro.datasets.dc import DataCenterGenerator
from repro.datasets.registry import DATASET_INFO, get_generator, load_dataset
from repro.datasets.ton import TonGenerator
from repro.datasets.ugr16 import Ugr16Generator

__all__ = [
    "CaidaGenerator",
    "CiddsGenerator",
    "DATASET_INFO",
    "DataCenterGenerator",
    "TonGenerator",
    "TraceGenerator",
    "Ugr16Generator",
    "get_generator",
    "load_dataset",
]
