"""CAIDA-style packet generator: anonymized backbone traces.

The properties the evaluation needs: Zipf-popular source addresses (heavy
hitters on ``srcip`` drive Fig. 2's sketching experiment), bimodal packet
sizes, flow-structured timestamps, and a ``flag`` label derived from TCP
position semantics.  15 attributes, matching Table 5.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import TraceTable
from repro.datasets.base import (
    TraceGenerator,
    ephemeral_ports,
    ip_base,
    make_ip_pool,
    sample_zipf,
)
from repro.datasets.packets import (
    draw_flow_sizes,
    expand_flows,
    flow_timestamps,
    packet_schema,
    tcp_flags_for_positions,
)
from repro.utils.rng import ensure_rng


class CaidaGenerator(TraceGenerator):
    """Synthetic CAIDA backbone packet headers."""

    name = "caida"
    kind = "packet"
    label_attr = "flag"
    paper_records = 1_000_000
    paper_attributes = 15
    paper_domain = 1e7

    def __init__(
        self,
        n_src_ips: int = 600,
        n_dst_ips: int = 500,
        span_seconds: float = 60.0,
        src_zipf: float = 1.3,
    ) -> None:
        self.n_src_ips = n_src_ips
        self.n_dst_ips = n_dst_ips
        self.span_seconds = span_seconds
        self.src_zipf = src_zipf

    def schema(self):
        return packet_schema(link_categories=("dirA", "dirB"))

    def generate(self, n_records: int, rng=None) -> TraceTable:
        rng = ensure_rng(rng)
        schema = self.schema()
        src_pool = make_ip_pool(
            rng, self.n_src_ips, subnets=[(ip_base(61, 12), 16), (ip_base(131, 44), 16)]
        )
        dst_pool = make_ip_pool(
            rng, self.n_dst_ips, subnets=[(ip_base(23, 6), 16), (ip_base(198, 51), 16)]
        )

        sizes = draw_flow_sizes(rng, n_records, tail=1.2)
        n_flows = len(sizes)
        flow_idx, position = expand_flows(sizes)

        # Per-flow headers.
        f_src = sample_zipf(rng, src_pool, n_flows, a=self.src_zipf)
        f_dst = sample_zipf(rng, dst_pool, n_flows, a=1.1)
        f_sport = ephemeral_ports(rng, n_flows)
        f_dport = rng.choice(
            [80, 443, 53, 25, 8080, 1935, 6881],
            size=n_flows,
            p=[0.30, 0.34, 0.14, 0.04, 0.08, 0.04, 0.06],
        )
        proto_probs = np.array([0.85, 0.12, 0.03])
        f_proto = rng.choice(np.array(["TCP", "UDP", "ICMP"], dtype=object), n_flows, p=proto_probs)
        f_proto[f_dport == 53] = "UDP"
        f_ttl = rng.choice([64, 128, 255], size=n_flows) - rng.integers(1, 30, size=n_flows)
        f_window = rng.choice([8192, 16384, 29200, 65535], size=n_flows)
        f_start = rng.uniform(0, self.span_seconds, size=n_flows)
        f_link = rng.choice(np.array(["dirA", "dirB"], dtype=object), size=n_flows)
        f_ipid = rng.integers(0, 60000, size=n_flows)

        ts = flow_timestamps(rng, sizes, flow_idx, position, f_start, mean_gap=0.02)
        is_tcp = (f_proto[flow_idx] == "TCP")
        flags = tcp_flags_for_positions(rng, sizes, flow_idx, position, is_tcp)

        n = n_records
        # Packet sizes: control packets small, data packets bimodal.
        pkt_len = np.where(
            np.isin(flags, ["SYN", "FIN", "RST"]),
            rng.integers(40, 60, size=n),
            np.where(
                rng.random(n) < 0.55,
                rng.integers(40, 120, size=n),
                rng.integers(1200, 1514, size=n),
            ),
        )
        udp_or_icmp = ~is_tcp
        pkt_len[udp_or_icmp] = rng.integers(60, 600, size=int(udp_or_icmp.sum()))

        cols = {
            "srcip": f_src[flow_idx],
            "dstip": f_dst[flow_idx],
            "srcport": f_sport[flow_idx],
            "dstport": f_dport[flow_idx].astype(np.int64),
            "proto": f_proto[flow_idx],
            "ts": ts,
            "pkt_len": pkt_len.astype(np.int64),
            "ttl": f_ttl[flow_idx].astype(np.int64),
            "tos": rng.choice(np.array([0, 8, 16, 32]), size=n, p=[0.92, 0.04, 0.02, 0.02]),
            "ip_id": ((f_ipid[flow_idx] + position) % 65536).astype(np.int64),
            "frag": rng.choice(np.array(["DF", "0", "MF"], dtype=object), size=n,
                               p=[0.70, 0.29, 0.01]),
            "tcp_window": f_window[flow_idx].astype(np.int64),
            "chksum": rng.choice(np.array(["ok", "bad"], dtype=object), size=n,
                                 p=[0.995, 0.005]),
            "link": f_link[flow_idx],
            "flag": flags,
        }
        table = TraceTable(schema, cols)
        return table.sort_by("ts")
