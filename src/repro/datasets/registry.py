"""Dataset registry: name → generator, plus the paper's Table 5 metadata."""

from __future__ import annotations

import numpy as np

from repro.data.table import TraceTable
from repro.datasets.base import TraceGenerator
from repro.datasets.caida import CaidaGenerator
from repro.datasets.cidds import CiddsGenerator
from repro.datasets.dc import DataCenterGenerator
from repro.datasets.ton import TonGenerator
from repro.datasets.ugr16 import Ugr16Generator

_GENERATORS = {
    "ton": TonGenerator,
    "ugr16": Ugr16Generator,
    "cidds": CiddsGenerator,
    "caida": CaidaGenerator,
    "dc": DataCenterGenerator,
}

#: Paper Table 5 reference rows (records, attributes, domain, label, type).
DATASET_INFO = {
    "ton": dict(records=295_497, attributes=11, domain=2e6, label="type", type="flow"),
    "ugr16": dict(records=1_000_000, attributes=10, domain=4e6, label="type", type="flow"),
    "cidds": dict(records=1_000_000, attributes=11, domain=6e6, label="type", type="flow"),
    "caida": dict(records=1_000_000, attributes=15, domain=1e7, label="flag", type="packet"),
    "dc": dict(records=1_000_000, attributes=15, domain=1e7, label="flag", type="packet"),
}

#: Default laptop-scale record counts (the paper uses 295k-1M; see DESIGN.md).
DEFAULT_RECORDS = 10_000


def get_generator(name: str, **kwargs) -> TraceGenerator:
    """Instantiate the generator registered under ``name``."""
    try:
        cls = _GENERATORS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(_GENERATORS)}"
        ) from None
    return cls(**kwargs)


def load_dataset(
    name: str,
    n_records: int = DEFAULT_RECORDS,
    seed: int | np.random.Generator | None = 0,
    **kwargs,
) -> TraceTable:
    """Generate the named dataset deterministically.

    Example
    -------
    >>> table = load_dataset("ton", n_records=1000, seed=42)
    >>> len(table)
    1000
    """
    generator = get_generator(name, **kwargs)
    return generator.generate(n_records, rng=seed)
