"""Shared machinery for packet-level generators (CAIDA, DC).

Packets are emitted *per flow*: a set of 5-tuples with heavy-tailed sizes is
drawn first, then each flow's packets are placed with exponential
inter-arrival gaps.  This gives the per-flow structure that NetML (flows
with >= 2 packets), the FS attribute metric, and tsdiff all rely on.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import FieldKind, FieldSpec, Schema

PACKET_FLAGS = ("SYN", "ACK", "PSH", "FIN", "RST", "OTHER")
FRAG = ("DF", "0", "MF")
TOS = (0, 8, 16, 32)
CHKSUM = ("ok", "bad")


def packet_schema(link_categories: tuple) -> Schema:
    """The common 15-attribute packet-header schema (paper Table 5)."""
    fields = (
        FieldSpec("srcip", FieldKind.IP),
        FieldSpec("dstip", FieldKind.IP),
        FieldSpec("srcport", FieldKind.PORT),
        FieldSpec("dstport", FieldKind.PORT),
        FieldSpec("proto", FieldKind.CATEGORICAL, categories=("TCP", "UDP", "ICMP")),
        FieldSpec("ts", FieldKind.TIMESTAMP),
        FieldSpec("pkt_len", FieldKind.NUMERIC),
        FieldSpec("ttl", FieldKind.NUMERIC),
        FieldSpec("tos", FieldKind.CATEGORICAL, categories=TOS),
        FieldSpec("ip_id", FieldKind.NUMERIC),
        FieldSpec("frag", FieldKind.CATEGORICAL, categories=FRAG),
        FieldSpec("tcp_window", FieldKind.NUMERIC),
        FieldSpec("chksum", FieldKind.CATEGORICAL, categories=CHKSUM),
        FieldSpec("link", FieldKind.CATEGORICAL, categories=link_categories),
        FieldSpec("flag", FieldKind.CATEGORICAL, categories=PACKET_FLAGS, is_label=True),
    )
    return Schema(fields=fields, kind="packet")


def draw_flow_sizes(rng: np.random.Generator, n_packets: int, tail: float = 1.2) -> np.ndarray:
    """Heavy-tailed flow sizes whose sum is exactly ``n_packets``."""
    sizes = []
    remaining = n_packets
    while remaining > 0:
        batch = 1 + (rng.pareto(tail, size=max(remaining // 2, 64)) * 1.5).astype(np.int64)
        sizes.append(batch)
        remaining -= int(batch.sum())
    sizes = np.concatenate(sizes)
    cum = np.cumsum(sizes)
    cut = int(np.searchsorted(cum, n_packets))
    sizes = sizes[: cut + 1]
    overshoot = int(sizes.sum()) - n_packets
    sizes[-1] -= overshoot
    if sizes[-1] <= 0:
        sizes = sizes[:-1]
        deficit = n_packets - int(sizes.sum())
        if deficit > 0:
            sizes = np.append(sizes, deficit)
    return sizes


def expand_flows(sizes: np.ndarray) -> tuple:
    """Return ``(flow_idx, position)`` arrays expanding flows to packets."""
    sizes = np.asarray(sizes, dtype=np.int64)
    flow_idx = np.repeat(np.arange(len(sizes)), sizes)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    position = np.arange(sizes.sum()) - np.repeat(starts, sizes)
    return flow_idx, position


def flow_timestamps(
    rng: np.random.Generator,
    sizes: np.ndarray,
    flow_idx: np.ndarray,
    position: np.ndarray,
    start_times: np.ndarray,
    mean_gap: float,
) -> np.ndarray:
    """Packet timestamps: flow start + cumulative exponential gaps."""
    n = len(flow_idx)
    gaps = rng.exponential(mean_gap, size=n)
    gaps[position == 0] = 0.0
    cum = np.cumsum(gaps)
    starts_pkt = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    cum_at_head = np.repeat(cum[starts_pkt], sizes)
    return start_times[flow_idx] + (cum - cum_at_head)


def tcp_flags_for_positions(
    rng: np.random.Generator,
    sizes: np.ndarray,
    flow_idx: np.ndarray,
    position: np.ndarray,
    is_tcp: np.ndarray,
) -> np.ndarray:
    """Position-dependent TCP flags: SYN first, FIN/RST last, ACK/PSH middle."""
    n = len(flow_idx)
    flags = np.full(n, "OTHER", dtype=object)
    last_pos = np.asarray(sizes, dtype=np.int64)[flow_idx] - 1
    first = (position == 0) & is_tcp
    last = (position == last_pos) & (position > 0) & is_tcp
    middle = is_tcp & ~first & ~last
    flags[first] = "SYN"
    flags[last] = np.where(rng.random(int(last.sum())) < 0.85, "FIN", "RST")
    flags[middle] = np.where(rng.random(int(middle.sum())) < 0.7, "ACK", "PSH")
    return flags
