"""TON_IoT-style flow generator: IoT telemetry with 10 attack classes.

Mirrors the structure the paper's evaluation relies on: a ``type`` label
with "normal" plus nine simulated attack classes, each with a distinctive
header signature (so flow classifiers reach high accuracy on raw data), and
attacks concentrated late in the capture window (the property that broke
NetShare's time-ordered split, paper footnote 3).  11 attributes, matching
Table 5.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import FieldKind, FieldSpec, Schema
from repro.data.table import TraceTable
from repro.datasets.base import (
    TraceGenerator,
    bytes_from_packets,
    ephemeral_ports,
    flow_field_specs,
    ip_base,
    make_ip_pool,
    sample_zipf,
)
from repro.utils.rng import ensure_rng

TON_TYPES = (
    "normal",
    "ddos",
    "dos",
    "scanning",
    "injection",
    "backdoor",
    "password",
    "xss",
    "ransomware",
    "mitm",
)

TYPE_WEIGHTS = (0.56, 0.08, 0.06, 0.08, 0.06, 0.04, 0.05, 0.03, 0.02, 0.02)

SERVICES = ("-", "http", "dns", "ssl", "ftp", "ssh", "smb")

#: Window fraction after which simulated attacks begin.
ATTACK_PHASE = 0.65


class TonGenerator(TraceGenerator):
    """Synthetic TON_IoT ``Train_Test_datasets`` flow records."""

    name = "ton"
    kind = "flow"
    label_attr = "type"
    paper_records = 295_497
    paper_attributes = 11
    paper_domain = 2e6

    def __init__(
        self,
        n_src_ips: int = 256,
        n_dst_ips: int = 128,
        span_seconds: float = 3600.0,
    ) -> None:
        self.n_src_ips = n_src_ips
        self.n_dst_ips = n_dst_ips
        self.span_seconds = span_seconds

    def schema(self) -> Schema:
        label = FieldSpec("type", FieldKind.CATEGORICAL, categories=TON_TYPES, is_label=True)
        service = FieldSpec("service", FieldKind.CATEGORICAL, categories=SERVICES)
        return Schema(fields=flow_field_specs(label, extra=[service]), kind="flow")

    def generate(self, n_records: int, rng=None) -> TraceTable:
        rng = ensure_rng(rng)
        schema = self.schema()
        src_pool = make_ip_pool(
            rng, self.n_src_ips, subnets=[(ip_base(192, 168, 1), 24), (ip_base(3, 122), 16)]
        )
        dst_pool = make_ip_pool(
            rng, self.n_dst_ips, subnets=[(ip_base(192, 168, 1), 24), (ip_base(52, 14), 16)]
        )

        labels = rng.choice(len(TON_TYPES), size=n_records, p=np.array(TYPE_WEIGHTS))
        cols = {
            "srcip": sample_zipf(rng, src_pool, n_records, a=1.05),
            "dstip": sample_zipf(rng, dst_pool, n_records, a=1.2),
            "srcport": ephemeral_ports(rng, n_records),
            "dstport": np.zeros(n_records, dtype=np.int64),
            "proto": np.full(n_records, "TCP", dtype=object),
            "ts": np.zeros(n_records),
            "td": np.zeros(n_records),
            "pkt": np.ones(n_records, dtype=np.int64),
            "byt": np.ones(n_records, dtype=np.int64),
            "service": np.full(n_records, "-", dtype=object),
            "type": np.array(TON_TYPES, dtype=object)[labels],
        }
        for class_id in range(len(TON_TYPES)):
            mask = labels == class_id
            if mask.any():
                self._fill_class(cols, mask, TON_TYPES[class_id], rng, dst_pool)
        return TraceTable(schema, cols)

    # ------------------------------------------------------------- per class
    def _fill_class(self, cols, mask, type_name, rng, dst_pool) -> None:
        k = int(mask.sum())
        span = self.span_seconds
        if type_name == "normal":
            ports = rng.choice([80, 443, 53, 22, 25, 123, 8080], size=k,
                               p=[0.30, 0.30, 0.18, 0.06, 0.05, 0.06, 0.05])
            cols["dstport"][mask] = ports
            cols["proto"][mask] = np.where(np.isin(ports, [53, 123]), "UDP", "TCP")
            cols["service"][mask] = np.select(
                [ports == 80, ports == 443, ports == 53, ports == 22, ports == 8080],
                ["http", "ssl", "dns", "ssh", "http"],
                default="-",
            )
            pkt = np.maximum(rng.poisson(8.0, size=k), 1)
            cols["pkt"][mask] = pkt
            cols["byt"][mask] = bytes_from_packets(rng, pkt, mean_size=420.0)
            cols["td"][mask] = rng.exponential(2.0, size=k)
            cols["ts"][mask] = rng.uniform(0, span, size=k)
            return

        # Attacks happen late in the window.
        cols["ts"][mask] = rng.uniform(ATTACK_PHASE * span, span, size=k)
        if type_name == "ddos":
            cols["dstip"][mask] = dst_pool[0]
            cols["dstport"][mask] = 80
            pkt = np.maximum(rng.poisson(1.5, size=k), 1)
            cols["pkt"][mask] = pkt
            cols["byt"][mask] = bytes_from_packets(rng, pkt, mean_size=64.0, sigma=0.2)
            cols["td"][mask] = rng.exponential(0.05, size=k)
        elif type_name == "dos":
            cols["dstip"][mask] = dst_pool[1 % len(dst_pool)]
            cols["dstport"][mask] = 80
            pkt = np.maximum(rng.poisson(40.0, size=k), 1)
            cols["pkt"][mask] = pkt
            cols["byt"][mask] = bytes_from_packets(rng, pkt, mean_size=80.0, sigma=0.3)
            cols["td"][mask] = rng.exponential(0.5, size=k)
        elif type_name == "scanning":
            cols["dstport"][mask] = rng.integers(1, 10000, size=k)
            pkt = np.minimum(np.maximum(rng.poisson(1.1, size=k), 1), 3)
            cols["pkt"][mask] = pkt
            cols["byt"][mask] = np.maximum(pkt * 44, 44)
            cols["td"][mask] = rng.exponential(0.01, size=k)
        elif type_name == "injection":
            cols["dstport"][mask] = 80
            cols["service"][mask] = "http"
            pkt = np.maximum(rng.poisson(6.0, size=k), 2)
            cols["pkt"][mask] = pkt
            cols["byt"][mask] = bytes_from_packets(rng, pkt, mean_size=900.0, sigma=0.4)
            cols["td"][mask] = rng.exponential(1.0, size=k)
        elif type_name == "backdoor":
            # Port 15600 echoes the marginal example of the paper's Table 4.
            cols["dstport"][mask] = 15600
            pkt = np.maximum(rng.poisson(5.0, size=k), 1)
            cols["pkt"][mask] = pkt
            cols["byt"][mask] = bytes_from_packets(rng, pkt, mean_size=200.0)
            cols["td"][mask] = rng.exponential(5.0, size=k)
        elif type_name == "password":
            cols["dstport"][mask] = rng.choice([22, 21], size=k, p=[0.7, 0.3])
            cols["service"][mask] = np.where(cols["dstport"][mask] == 22, "ssh", "ftp")
            pkt = np.maximum(rng.poisson(3.0, size=k), 1)
            cols["pkt"][mask] = pkt
            cols["byt"][mask] = bytes_from_packets(rng, pkt, mean_size=120.0, sigma=0.3)
            cols["td"][mask] = rng.exponential(0.2, size=k)
        elif type_name == "xss":
            cols["dstport"][mask] = 80
            cols["service"][mask] = "http"
            pkt = np.maximum(rng.poisson(4.0, size=k), 1)
            cols["pkt"][mask] = pkt
            cols["byt"][mask] = bytes_from_packets(rng, pkt, mean_size=600.0, sigma=0.5)
            cols["td"][mask] = rng.exponential(0.8, size=k)
        elif type_name == "ransomware":
            cols["dstport"][mask] = 445
            cols["service"][mask] = "smb"
            pkt = np.maximum(rng.poisson(30.0, size=k), 2)
            cols["pkt"][mask] = pkt
            cols["byt"][mask] = bytes_from_packets(rng, pkt, mean_size=1100.0, sigma=0.3)
            cols["td"][mask] = rng.exponential(10.0, size=k)
        elif type_name == "mitm":
            cols["proto"][mask] = rng.choice(["ICMP", "TCP"], size=k, p=[0.6, 0.4])
            cols["dstport"][mask] = np.where(cols["proto"][mask] == "ICMP", 0, 443)
            pkt = np.maximum(rng.poisson(10.0, size=k), 1)
            cols["pkt"][mask] = pkt
            cols["byt"][mask] = bytes_from_packets(rng, pkt, mean_size=90.0, sigma=0.2)
            cols["td"][mask] = rng.exponential(3.0, size=k)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown TON type {type_name!r}")
