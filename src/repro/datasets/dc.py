"""Data-center (UNI1-style) packet generator.

Benson et al.'s DC traces show rack-locality, a handful of extremely hot
services (heavy hitters on ``dstip`` — the target of Fig. 2's DC sketching
run), strongly bimodal packet sizes (64-byte control vs ~1460-byte storage
transfers), and bursty ON/OFF arrivals.  15 attributes, matching Table 5.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import TraceTable
from repro.datasets.base import (
    TraceGenerator,
    ephemeral_ports,
    ip_base,
    make_ip_pool,
    sample_zipf,
)
from repro.datasets.packets import (
    draw_flow_sizes,
    expand_flows,
    flow_timestamps,
    packet_schema,
    tcp_flags_for_positions,
)
from repro.utils.rng import ensure_rng


class DataCenterGenerator(TraceGenerator):
    """Synthetic UNI1 data-center packet headers."""

    name = "dc"
    kind = "packet"
    label_attr = "flag"
    paper_records = 1_000_000
    paper_attributes = 15
    paper_domain = 1e7

    def __init__(
        self,
        n_hosts: int = 400,
        n_services: int = 40,
        span_seconds: float = 600.0,
        n_bursts: int = 24,
        dst_zipf: float = 1.4,
    ) -> None:
        self.n_hosts = n_hosts
        self.n_services = n_services
        self.span_seconds = span_seconds
        self.n_bursts = n_bursts
        self.dst_zipf = dst_zipf

    def schema(self):
        return packet_schema(link_categories=("intra", "inter"))

    def generate(self, n_records: int, rng=None) -> TraceTable:
        rng = ensure_rng(rng)
        schema = self.schema()
        hosts = make_ip_pool(rng, self.n_hosts, subnets=[(ip_base(10, 1), 16)])
        services = make_ip_pool(rng, self.n_services, subnets=[(ip_base(10, 2), 16)])

        sizes = draw_flow_sizes(rng, n_records, tail=1.1)
        n_flows = len(sizes)
        flow_idx, position = expand_flows(sizes)

        f_src = sample_zipf(rng, hosts, n_flows, a=0.9)
        f_dst = sample_zipf(rng, services, n_flows, a=self.dst_zipf)
        f_sport = ephemeral_ports(rng, n_flows)
        f_dport = rng.choice(
            [80, 443, 11211, 3306, 9092, 50010, 53],
            size=n_flows,
            p=[0.18, 0.16, 0.22, 0.14, 0.10, 0.14, 0.06],
        )
        f_proto = rng.choice(
            np.array(["TCP", "UDP", "ICMP"], dtype=object), n_flows, p=[0.96, 0.035, 0.005]
        )
        f_proto[f_dport == 53] = "UDP"
        f_ttl = np.full(n_flows, 64, dtype=np.int64) - rng.integers(1, 6, size=n_flows)
        f_window = rng.choice([29200, 65535, 262144 % 65536], size=n_flows)
        # ON/OFF bursts: flow starts cluster around burst centres.
        centres = rng.uniform(0, self.span_seconds, size=self.n_bursts)
        f_start = centres[rng.integers(0, self.n_bursts, size=n_flows)] + rng.exponential(
            2.0, size=n_flows
        )
        f_start = np.clip(f_start, 0, self.span_seconds)
        f_link = rng.choice(
            np.array(["intra", "inter"], dtype=object), size=n_flows, p=[0.75, 0.25]
        )
        f_ipid = rng.integers(0, 60000, size=n_flows)

        ts = flow_timestamps(rng, sizes, flow_idx, position, f_start, mean_gap=0.002)
        is_tcp = (f_proto[flow_idx] == "TCP")
        flags = tcp_flags_for_positions(rng, sizes, flow_idx, position, is_tcp)

        n = n_records
        pkt_len = np.where(
            np.isin(flags, ["SYN", "FIN", "RST"]),
            np.full(n, 64),
            np.where(
                rng.random(n) < 0.45,
                rng.integers(64, 128, size=n),
                rng.integers(1400, 1514, size=n),
            ),
        )
        not_tcp = ~is_tcp
        pkt_len[not_tcp] = rng.integers(64, 512, size=int(not_tcp.sum()))

        cols = {
            "srcip": f_src[flow_idx],
            "dstip": f_dst[flow_idx],
            "srcport": f_sport[flow_idx],
            "dstport": f_dport[flow_idx].astype(np.int64),
            "proto": f_proto[flow_idx],
            "ts": ts,
            "pkt_len": pkt_len.astype(np.int64),
            "ttl": f_ttl[flow_idx],
            "tos": rng.choice(np.array([0, 8, 16, 32]), size=n, p=[0.85, 0.10, 0.03, 0.02]),
            "ip_id": ((f_ipid[flow_idx] + position) % 65536).astype(np.int64),
            "frag": rng.choice(np.array(["DF", "0", "MF"], dtype=object), size=n,
                               p=[0.88, 0.115, 0.005]),
            "tcp_window": f_window[flow_idx].astype(np.int64),
            "chksum": rng.choice(np.array(["ok", "bad"], dtype=object), size=n,
                                 p=[0.998, 0.002]),
            "link": f_link[flow_idx],
            "flag": flags,
        }
        table = TraceTable(schema, cols)
        return table.sort_by("ts")
