"""User-level NetDPSyn: contribution bounding wrapped around the pipeline.

Implements the Appendix G future-work direction as a thin composition:
bound each user's contribution, shrink the record-level budget by the
group-privacy factor, and run the standard pipeline.  The released trace
then satisfies the *stated* ``(epsilon, delta)`` at the **user** level.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SynthesisConfig
from repro.core.synthesizer import NetDPSyn
from repro.data.table import TraceTable
from repro.dp.accountant import eps_delta_to_rho, rho_to_eps
from repro.dp.user_level import bound_user_contributions, record_rho_for_user_level
from repro.utils.rng import ensure_rng


class UserLevelNetDPSyn:
    """NetDPSyn with a user-level ``(epsilon, delta)`` guarantee.

    Parameters
    ----------
    config:
        Standard synthesis config; ``config.epsilon``/``delta`` are the
        *user-level* targets.
    user_key:
        Column(s) identifying a user (default ``srcip``).
    max_contribution:
        Per-user record cap ``k``; the record-level pipeline runs at
        ``rho_user / k^2`` (zCDP group privacy).

    Example
    -------
    >>> from repro.datasets import load_dataset
    >>> raw = load_dataset("ton", n_records=1500, seed=0)
    >>> synth = UserLevelNetDPSyn(max_contribution=4, rng=0)
    >>> out = synth.fit(raw).sample(500)
    >>> out.n_records
    500
    """

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        user_key="srcip",
        max_contribution: int = 8,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if max_contribution < 1:
            raise ValueError("max_contribution must be >= 1")
        self.config = config or SynthesisConfig()
        self.user_key = user_key
        self.max_contribution = int(max_contribution)
        self._rng = ensure_rng(rng)
        self.inner: NetDPSyn | None = None
        self.bounded_records: int = 0

    @property
    def record_level_epsilon(self) -> float:
        """The (smaller) record-level epsilon the inner pipeline runs at."""
        rho_user = eps_delta_to_rho(self.config.epsilon, self.config.delta)
        rho_record = record_rho_for_user_level(rho_user, self.max_contribution)
        return rho_to_eps(rho_record, self.config.delta)

    def fit(self, table: TraceTable) -> "UserLevelNetDPSyn":
        """Bound contributions, then fit the record-level pipeline."""
        bounded = bound_user_contributions(
            table, self.user_key, self.max_contribution, self._rng
        )
        self.bounded_records = bounded.n_records
        inner_config = SynthesisConfig(
            epsilon=self.record_level_epsilon,
            delta=self.config.delta,
            tau=self.config.tau,
            stage_split=dict(self.config.stage_split),
            encoder=self.config.encoder,
            gum=self.config.gum,
            engine=self.config.engine,
            fit_engine=self.config.fit_engine,
            initialization=self.config.initialization,
            n_init_marginals=self.config.n_init_marginals,
            key_attr=self.config.key_attr,
            max_combined_cells=self.config.max_combined_cells,
            max_pairs=self.config.max_pairs,
            rules=self.config.rules,
            weighted_allocation=self.config.weighted_allocation,
            consistency_rounds=self.config.consistency_rounds,
        )
        self.inner = NetDPSyn(inner_config, rng=self._rng)
        self.inner.fit(bounded)
        return self

    def sample(self, n: int | None = None) -> TraceTable:
        """Generate a synthetic trace (post-processing only)."""
        if self.inner is None:
            raise RuntimeError("fit() must be called before sample()")
        return self.inner.sample(n)

    def synthesize(self, table: TraceTable, n: int | None = None) -> TraceTable:
        """One-shot fit + sample."""
        return self.fit(table).sample(n)
