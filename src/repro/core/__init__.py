"""The NetDPSyn synthesizer: the paper's primary contribution."""

from repro.core.config import SynthesisConfig
from repro.core.synthesizer import NetDPSyn, synthesize
from repro.core.user_level import UserLevelNetDPSyn

__all__ = ["NetDPSyn", "SynthesisConfig", "UserLevelNetDPSyn", "synthesize"]
