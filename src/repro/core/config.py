"""Configuration of the NetDPSyn pipeline (defaults follow the paper §4.1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.binning.encoder import EncoderConfig
from repro.dp.allocation import DEFAULT_STAGE_SPLIT
from repro.engine.config import EngineConfig
from repro.synthesis.gum import GumConfig


@dataclass
class SynthesisConfig:
    """All knobs of a NetDPSyn run.

    Parameters mirror the paper: ``epsilon=2.0`` / ``delta=1e-5`` as the
    default privacy budget, ``tau=0.1`` for soft protocol rules, the
    0.1/0.1/0.8 stage split, and GUMMI initialization keyed on the label.
    The paper's default of 200 update iterations is scaled to 50 here (the
    ablation of Fig. 8 shows accuracy saturates well before that at our
    dataset sizes); benchmarks that sweep iterations override it.
    """

    epsilon: float = 2.0
    delta: float = 1e-5
    tau: float = 0.1
    stage_split: dict = field(default_factory=lambda: dict(DEFAULT_STAGE_SPLIT))
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    gum: GumConfig = field(default_factory=GumConfig)
    #: Execution of the (post-processing) sampling phase: backend and shard
    #: count; ``sample(shards=..., backend=...)`` overrides per call.
    engine: EngineConfig = field(default_factory=EngineConfig)
    #: Execution of the exact-count work inside ``fit()`` (the InDif pair
    #: scan and marginal publication).  ``None`` keeps the inline serial
    #: reference path; an :class:`EngineConfig` fans the exact counts out
    #: across ``max_workers`` workers of the named backend (``shards`` is
    #: ignored) using the batched cell-code kernel.  All noise stays on the
    #: single fit rng stream either way, so fit output is bit-identical.
    fit_engine: EngineConfig | None = None
    #: "gummi" (marginal initialization, the paper's method) or "random"
    #: (plain GUM, the PrivSyn baseline used in the Fig. 8 ablation).
    initialization: str = "gummi"
    n_init_marginals: int = 8
    #: Attribute anchoring GUMMI; defaults to the schema's label field.
    key_attr: str | None = None
    max_combined_cells: int = 10_000
    #: Optional cap on the number of selected 2-way marginals.
    max_pairs: int | None = None
    #: Protocol rules; ``None`` derives the paper's defaults from the schema.
    rules: list | None = None
    weighted_allocation: bool = True
    consistency_rounds: int = 3

    def __post_init__(self) -> None:
        if self.initialization not in ("gummi", "random"):
            raise ValueError(
                f"initialization must be 'gummi' or 'random', got {self.initialization!r}"
            )
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0 < self.delta < 1:
            raise ValueError("delta must be in (0, 1)")
        if not 0 <= self.tau <= 1:
            raise ValueError("tau must be in [0, 1]")
