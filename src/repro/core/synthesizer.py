"""NetDPSyn: end-to-end DP trace synthesis (paper Algorithm 1).

The pipeline:

1.  type-dependent binning of every attribute;
2.  tsdiff auxiliary attribute;
3.  noisy 1-way marginals (Gaussian mechanism, 0.1·rho);
4.  frequency-dependent binning on the noisy counts;
5.  2-way marginal selection via noisy InDif + DenseMarg (0.1·rho);
6.  combination of small overlapping marginals;
7.  publication of the combined marginals (Gaussian mechanism, 0.8·rho);
8.  consistency post-processing + protocol rules;
9.  GUMMI record synthesis;
10. in-bin decoding;
11. timestamp reconstruction from tsdiff.

Everything after step 7 is post-processing: the released trace satisfies the
same ``(epsilon, delta)``-DP as the published marginals (zCDP composition,
tracked by the :class:`~repro.dp.accountant.BudgetLedger`).

Steps 9-11 run on the :mod:`repro.engine` sampling engine: ``fit()`` freezes
a picklable :class:`~repro.engine.SynthesisPlan` and ``sample()`` executes it
on a serial, thread, or process backend, optionally sharded — post-processing
parallelism is free under DP.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.binning.encoder import DatasetEncoder, EncodedDataset
from repro.consistency.engine import postprocess_marginals
from repro.consistency.rules import build_default_rules
from repro.core.config import SynthesisConfig
from repro.data.schema import FieldKind
from repro.data.table import TraceTable
from repro.dp.accountant import BudgetLedger
from repro.dp.allocation import split_budget
from repro.engine import SynthesisPlan, execute_plan
from repro.marginals.combine import combine_attr_sets, cover_all_attributes
from repro.marginals.indif import noisy_indif_scores
from repro.marginals.publish import publish_marginals
from repro.marginals.selection import select_pairs
from repro.utils.rng import ensure_rng, make_seed_sequence


class NetDPSyn:
    """Differentially private network-trace synthesizer.

    Example
    -------
    >>> from repro.datasets import load_dataset
    >>> from repro.core import NetDPSyn, SynthesisConfig
    >>> table = load_dataset("ton", n_records=2000, seed=1)
    >>> synth = NetDPSyn(SynthesisConfig(epsilon=2.0), rng=7)
    >>> synthetic = synth.fit(table).sample()
    >>> synthetic.schema.names == table.schema.names
    True
    """

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self._rng = ensure_rng(rng)
        # Per-call sample() streams are spawned from this sequence (never
        # from self._rng) so each call is reproducible from the seed and the
        # call index alone, regardless of what else consumed the shared rng.
        self._seed_seq = make_seed_sequence(rng)
        self.ledger: BudgetLedger | None = None
        self.encoder: DatasetEncoder | None = None
        self.selection = None
        self.published: list = []
        self.gum_result = None
        self._template: EncodedDataset | None = None
        self._original_schema = None
        self._key_attr: str | None = None
        self._plan: SynthesisPlan | None = None

    # -------------------------------------------------------------------- fit
    def fit(self, table: TraceTable) -> "NetDPSyn":
        """Run the private phases (steps 1-8) on the raw trace."""
        cfg = self.config
        rng = self._rng
        self._original_schema = table.schema
        self.ledger = BudgetLedger.from_eps_delta(cfg.epsilon, cfg.delta)
        stages = split_budget(self.ledger.total, cfg.stage_split)

        # Steps 1-4: binning (type-dependent, tsdiff, noisy 1-ways, merging).
        rho_bin = self.ledger.spend(stages["binning"], "frequency-dependent binning")
        self.encoder = DatasetEncoder(cfg.encoder).fit(table, rho_bin, rng)
        encoded = self.encoder.encode(table)
        self._template = encoded.replace_data(np.empty((0, len(encoded.attrs)), dtype=np.int32))

        # Step 5: marginal selection via noisy InDif.
        rho_sel = self.ledger.spend(stages["selection"], "marginal selection")
        pairs = list(combinations(encoded.attrs, 2))
        indif = noisy_indif_scores(encoded, rho_sel, rng, pairs=pairs)
        cells = {p: encoded.domain.cells(p) for p in pairs}
        self.selection = select_pairs(
            indif, cells, stages["publish"], max_pairs=cfg.max_pairs
        )

        # Step 6: combine small overlapping marginals; cover every attribute.
        attr_sets = combine_attr_sets(
            self.selection.pairs, encoded.domain, max_cells=cfg.max_combined_cells
        )
        attr_sets = cover_all_attributes(attr_sets, encoded.domain)

        # Step 7: publish.
        rho_pub = self.ledger.spend(stages["publish"], "marginal publication")
        raw_published = publish_marginals(
            encoded, attr_sets, rho_pub, rng, weighted=cfg.weighted_allocation
        )

        # Step 8: post-processing (free).
        rules = cfg.rules if cfg.rules is not None else build_default_rules(
            self.encoder.schema, tau=cfg.tau
        )
        self._rules = rules
        self.published = postprocess_marginals(
            raw_published, self.encoder.codecs, rules, rounds=cfg.consistency_rounds
        )
        self._key_attr = self._resolve_key_attr()
        self._plan = None
        return self

    def _resolve_key_attr(self) -> str:
        """The GUMMI anchor: configured key, else the label, else a category."""
        if self.config.key_attr is not None:
            return self.config.key_attr
        schema = self.encoder.schema
        label = schema.label_field
        if label is not None:
            return label.name
        for spec in schema:
            if spec.kind is FieldKind.CATEGORICAL:
                return spec.name
        return schema.names[0]

    # ------------------------------------------------------------------ plan
    def plan(self) -> SynthesisPlan:
        """The picklable sampling plan (steps 9-11 inputs), built lazily."""
        if self.encoder is None or self._template is None:
            raise RuntimeError("fit() must be called before sample()/plan()")
        if self._plan is None:
            attrs = self._template.attrs
            one_way = {a: self._project_one_way(a) for a in attrs}
            self._plan = SynthesisPlan(
                attrs=attrs,
                domain=self._template.domain,
                published=self.published,
                one_way=one_way,
                codecs=self.encoder.codecs,
                schema=self.encoder.schema,
                original_schema=self._original_schema,
                rules=self._rules,
                key_attr=self._key_attr,
                gum=self.config.gum,
                initialization=self.config.initialization,
                n_init_marginals=self.config.n_init_marginals,
            )
        return self._plan

    # ----------------------------------------------------------------- sample
    def sample(
        self,
        n: int | None = None,
        rng: np.random.Generator | int | None = None,
        shards: int | None = None,
        backend: str | None = None,
    ) -> TraceTable:
        """Generate a synthetic trace (steps 9-11); pure post-processing.

        ``shards``/``backend`` override :attr:`SynthesisConfig.engine` for
        this call; with the defaults (one serial shard) and an explicit
        ``rng`` the output is bit-identical to the historic single-loop
        implementation.  When ``rng`` is ``None``, a fresh per-call stream is
        spawned from the constructor seed, so repeated calls are individually
        reproducible instead of silently advancing a shared generator.
        """
        plan = self.plan()
        engine = self.config.engine.override(shards=shards, backend=backend)
        stream = self._seed_seq.spawn(1)[0] if rng is None else rng
        outcome = execute_plan(plan, engine, n=n, rng=stream)
        self.gum_result = outcome.gum
        return plan.finalize(outcome.gum.data, outcome.decode_rng)

    def _project_one_way(self, attr: str) -> np.ndarray:
        """1-way counts for ``attr`` from the smallest published marginal."""
        holders = [m for m in self.published if attr in m.attrs]
        if not holders:
            raise RuntimeError(f"no published marginal covers {attr!r}")
        smallest = min(holders, key=lambda m: m.n_cells)
        return smallest.project((attr,)).counts

    # ------------------------------------------------------------ convenience
    def synthesize(self, table: TraceTable, n: int | None = None) -> TraceTable:
        """One-shot ``fit`` + ``sample``."""
        return self.fit(table).sample(n)


def synthesize(
    table: TraceTable,
    epsilon: float = 2.0,
    delta: float = 1e-5,
    rng: np.random.Generator | int | None = None,
    config: SynthesisConfig | None = None,
    n: int | None = None,
) -> TraceTable:
    """Functional one-shot API: synthesize a DP trace from ``table``."""
    if config is None:
        config = SynthesisConfig(epsilon=epsilon, delta=delta)
    return NetDPSyn(config, rng=rng).synthesize(table, n=n)
