"""NetDPSyn: end-to-end DP trace synthesis (paper Algorithm 1).

The pipeline:

1.  type-dependent binning of every attribute;
2.  tsdiff auxiliary attribute;
3.  noisy 1-way marginals (Gaussian mechanism, 0.1·rho);
4.  frequency-dependent binning on the noisy counts;
5.  2-way marginal selection via noisy InDif + DenseMarg (0.1·rho);
6.  combination of small overlapping marginals;
7.  publication of the combined marginals (Gaussian mechanism, 0.8·rho);
8.  consistency post-processing + protocol rules;
9.  GUMMI record synthesis;
10. in-bin decoding;
11. timestamp reconstruction from tsdiff.

Everything after step 7 is post-processing: the released trace satisfies the
same ``(epsilon, delta)``-DP as the published marginals (zCDP composition,
tracked by the :class:`~repro.dp.accountant.BudgetLedger`).

Steps 1-8 run as the staged :mod:`repro.pipeline` (Binning → Selection →
Combine → Publish → Consistency) threading an explicit
:class:`~repro.pipeline.FitContext`; per-stage wall-clock timings surface as
:attr:`NetDPSyn.fit_report`, and ``config.fit_engine`` fans the exact-count
work out across workers without touching the noise stream.

Steps 9-11 run on the :mod:`repro.engine` sampling engine: ``fit()`` freezes
a picklable :class:`~repro.engine.SynthesisPlan` and ``sample()`` executes it
on a serial, thread, or process backend, optionally sharded — post-processing
parallelism is free under DP.

A fitted model round-trips through :meth:`NetDPSyn.save` /
:meth:`NetDPSyn.load` (see :mod:`repro.io`): the loaded instance samples
bit-identically to the original, so fit-once/sample-anywhere deployments can
ship the model file to stateless workers.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.binning.encoder import EncodedDataset
from repro.core.config import SynthesisConfig
from repro.data.table import TraceTable
from repro.dp.accountant import BudgetLedger
from repro.dp.allocation import split_budget
from repro.engine import (
    DEFAULT_CHUNK,
    EngineConfig,
    SynthesisPlan,
    execute_plan_decoded,
    execute_plan_stream,
    get_backend,
)
from repro.pipeline import FitContext, FitPipeline, FitReport
from repro.utils.memory import peak_rss_bytes
from repro.utils.rng import ensure_rng, make_seed_sequence
from repro.utils.timer import Timer


def _fit_executor(engine: EngineConfig | None):
    """Resolve ``config.fit_engine`` into ``(backend, name, workers)``.

    ``None`` means the inline serial reference path (no executor at all);
    otherwise ``max_workers`` defaults to the machine's core count.
    """
    if engine is None:
        return None, None, None
    workers = engine.max_workers or (os.cpu_count() or 1)
    backend = get_backend(
        engine.backend,
        max_workers=workers,
        task_timeout=engine.task_timeout,
        retry=engine.max_task_retries,
    )
    return backend, engine.backend, workers


@dataclass(frozen=True)
class StreamReport:
    """Outcome of one streaming ``sample_to`` run (pure observability)."""

    path: str
    format: str
    n_records: int
    n_chunks: int
    seconds: float
    #: This process's lifetime RSS high-water mark after the run, in bytes
    #: (``resource.getrusage``; probe from a fresh process for clean numbers).
    peak_rss_bytes: int

    @property
    def records_per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.n_records / self.seconds

    def as_dict(self) -> dict:
        """Plain-dict rendering (JSON-friendly, used by benchmarks)."""
        return {
            "path": self.path,
            "format": self.format,
            "n_records": self.n_records,
            "n_chunks": self.n_chunks,
            "seconds": self.seconds,
            "records_per_second": self.records_per_second,
            "peak_rss_bytes": self.peak_rss_bytes,
        }


def smallest_marginal_index(published: list) -> dict:
    """Attr -> smallest published marginal covering it, in one scan.

    Ties keep the earliest marginal in publication order — the same choice
    ``min(..., key=n_cells)`` over a fresh rescan used to make per attribute.
    """
    index: dict = {}
    for marginal in published:
        for attr in marginal.attrs:
            current = index.get(attr)
            if current is None or marginal.n_cells < current.n_cells:
                index[attr] = marginal
    return index


class NetDPSyn:
    """Differentially private network-trace synthesizer.

    Example
    -------
    >>> from repro.datasets import load_dataset
    >>> from repro.core import NetDPSyn, SynthesisConfig
    >>> table = load_dataset("ton", n_records=2000, seed=1)
    >>> synth = NetDPSyn(SynthesisConfig(epsilon=2.0), rng=7)
    >>> synthetic = synth.fit(table).sample()
    >>> synthetic.schema.names == table.schema.names
    True
    """

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self._rng = ensure_rng(rng)
        # Per-call sample() streams are spawned from this sequence (never
        # from self._rng) so each call is reproducible from the seed and the
        # call index alone, regardless of what else consumed the shared rng.
        self._seed_seq = make_seed_sequence(rng)
        self.ledger: BudgetLedger | None = None
        self.encoder = None
        self.selection = None
        self.published: list = []
        self.gum_result = None
        self.fit_report: FitReport | None = None
        self._template: EncodedDataset | None = None
        self._original_schema = None
        self._key_attr: str | None = None
        self._rules: list | None = None
        self._plan: SynthesisPlan | None = None
        #: Persistent worker pool bound to the plan (see :meth:`pool`).
        self._session_backend = None

    # -------------------------------------------------------------------- fit
    def fit(self, table: TraceTable) -> "NetDPSyn":
        """Run the private phases (steps 1-8) as the staged pipeline."""
        cfg = self.config
        timer = Timer()
        timer.start()
        self.ledger = BudgetLedger.from_eps_delta(cfg.epsilon, cfg.delta)
        executor, backend_name, workers = _fit_executor(cfg.fit_engine)
        ctx = FitContext(
            table=table,
            config=cfg,
            rng=self._rng,
            ledger=self.ledger,
            executor=executor,
            stage_budgets=split_budget(self.ledger.total, cfg.stage_split),
        )
        FitPipeline().run(ctx)

        self._original_schema = ctx.original_schema
        self.encoder = ctx.encoder
        self._template = ctx.template
        self.selection = ctx.selection
        self.published = ctx.published
        self._rules = ctx.rules
        self._key_attr = ctx.key_attr
        self._plan = None
        self.fit_report = FitReport(
            stage_seconds=dict(ctx.timings),
            total_seconds=timer.stop(),
            backend=backend_name,
            workers=workers,
            n_records=table.n_records,
            n_pairs=len(ctx.pairs),
            n_marginals=len(ctx.published),
        )
        return self

    # ------------------------------------------------------------------ plan
    def plan(self) -> SynthesisPlan:
        """The picklable sampling plan (steps 9-11 inputs), built lazily.

        A loaded model (:meth:`load`) carries the frozen plan directly and
        needs no encoder; a freshly fitted instance builds the plan from the
        fit outputs on first use.
        """
        if self._plan is not None:
            return self._plan
        if self.encoder is None or self._template is None:
            raise RuntimeError("fit() must be called before sample()/plan()")
        attrs = self._template.attrs
        # One scan over the published marginals instead of a rescan per
        # attribute: the plan is frozen here, so the index is built exactly
        # once per fit.
        smallest = smallest_marginal_index(self.published)
        missing = [a for a in attrs if a not in smallest]
        if missing:
            raise RuntimeError(f"no published marginal covers {missing[0]!r}")
        one_way = {a: smallest[a].project((a,)).counts for a in attrs}
        self._plan = SynthesisPlan(
            attrs=attrs,
            domain=self._template.domain,
            published=self.published,
            one_way=one_way,
            codecs=self.encoder.codecs,
            schema=self.encoder.schema,
            original_schema=self._original_schema,
            rules=self._rules,
            key_attr=self._key_attr,
            gum=self.config.gum,
            initialization=self.config.initialization,
            n_init_marginals=self.config.n_init_marginals,
            kernel=self.config.engine.kernel,
        )
        return self._plan

    # ----------------------------------------------------------------- sample
    def _engine_call(self, rng, shards, backend, kernel=None):
        """Resolve one sampling call: (engine config, rng stream, pool).

        Under an open :meth:`pool` context, calls that do not name a backend
        themselves default to the pool's backend — that is the whole point of
        opening one.  An explicit per-call ``backend=`` still wins (and runs
        outside the pool when it names a different backend).
        """
        pool = self._session_backend
        if backend is None and pool is not None:
            backend = pool.name
        engine = self.config.engine.override(
            shards=shards, backend=backend, kernel=kernel
        )
        stream = self._seed_seq.spawn(1)[0] if rng is None else rng
        if pool is not None and pool.name != engine.backend:
            pool = None
        return engine, stream, pool

    def sample(
        self,
        n: int | None = None,
        rng: np.random.Generator | int | None = None,
        shards: int | None = None,
        backend: str | None = None,
        kernel: str | None = None,
    ) -> TraceTable:
        """Generate a synthetic trace (steps 9-11); pure post-processing.

        ``shards``/``backend``/``kernel`` override
        :attr:`SynthesisConfig.engine` for this call; with the defaults (one
        serial shard) and an explicit ``rng`` the output is bit-identical to
        the historic single-loop implementation.  Sharded runs decode inside
        the shards (one decode stream per shard), so the output depends on
        the shard count but never on the backend or kernel (every GUM
        kernel is bit-exact — see :mod:`repro.synthesis.kernels`).  When
        ``rng`` is ``None``, a fresh per-call stream is spawned from the
        constructor seed, so repeated calls are individually reproducible
        instead of silently advancing a shared generator.
        """
        plan = self.plan()
        engine, stream, pool = self._engine_call(rng, shards, backend, kernel)
        outcome = execute_plan_decoded(plan, engine, n=n, rng=stream, backend=pool)
        self.gum_result = outcome.gum
        return outcome.table

    def sample_stream(
        self,
        n: int | None = None,
        chunk: int = DEFAULT_CHUNK,
        rng: np.random.Generator | int | None = None,
        shards: int | None = None,
        backend: str | None = None,
        kernel: str | None = None,
    ):
        """Yield a synthetic trace as decoded chunks of ``chunk`` records.

        The concatenation of the chunks is digest-identical to
        ``sample(n, rng=..., shards=..., backend=...)`` for the same seed and
        shard count — chunking re-slices the shard stream without changing
        content.  When ``shards`` is not given it defaults to
        ``max(engine.shards, ceil(n / chunk))`` so each shard stays roughly
        chunk-sized and peak memory is bounded by ``chunk``, not ``n``.
        ``self.gum_result`` carries the merged run metadata once the stream
        is exhausted.
        """
        plan = self.plan()
        if n is None:
            n = plan.default_n
        engine, stream, pool = self._engine_call(rng, shards, backend, kernel)
        if shards is None and chunk >= 1:
            engine = engine.override(shards=max(engine.shards, -(-int(n) // int(chunk))))

        def _record(gum):
            self.gum_result = gum

        return execute_plan_stream(
            plan,
            engine,
            n=n,
            rng=stream,
            chunk=chunk,
            backend=pool,
            on_complete=_record,
        )

    def sample_to(
        self,
        path,
        n: int | None = None,
        format: str | None = None,
        chunk: int = DEFAULT_CHUNK,
        rng: np.random.Generator | int | None = None,
        shards: int | None = None,
        backend: str | None = None,
        kernel: str | None = None,
    ) -> StreamReport:
        """Stream a synthetic trace straight into a file at bounded RSS.

        ``format`` is one of :data:`repro.data.sinks.SINK_FORMATS` (``csv``,
        ``jsonl``, ``parquet``, ``null``), inferred from the path suffix when
        omitted.  The written records are exactly what
        ``sample_stream(n, chunk, rng=..., shards=...)`` yields, so a
        round-tripped file is digest-identical to the in-memory trace.
        """
        from repro.data.sinks import open_sink

        timer = Timer()
        timer.start()
        schema = self.plan().original_schema
        with open_sink(path, schema, format=format) as sink:
            for part in self.sample_stream(
                n, chunk=chunk, rng=rng, shards=shards, backend=backend, kernel=kernel
            ):
                sink.write(part)
        return StreamReport(
            path=str(sink.path),
            format=sink.format,
            n_records=sink.rows_written,
            n_chunks=sink.chunks_written,
            seconds=timer.stop(),
            peak_rss_bytes=peak_rss_bytes(),
        )

    @contextmanager
    def pool(self, backend: str | None = None, max_workers: int | None = None):
        """Hold one persistent worker pool across sampling calls.

        Opens the named backend's pool bound to the frozen plan — the plan
        ships to the workers **once per pool lifetime** — and makes every
        ``sample`` / ``sample_stream`` / ``sample_to`` call under the context
        reuse it (calls whose per-call ``backend=`` differs still get their
        own execution).  The pool is closed on exit.

        >>> with synth.pool(backend="shared", max_workers=4):  # doctest: +SKIP
        ...     for day in range(30):
        ...         synth.sample_to(f"day-{day}.csv", n=1_000_000)
        """
        engine = self.config.engine
        name = backend or engine.backend
        workers = max_workers if max_workers is not None else engine.max_workers
        pool = get_backend(
            name,
            workers,
            task_timeout=engine.task_timeout,
            retry=engine.max_task_retries,
        )
        pool.open(self.plan())
        self._session_backend = pool
        try:
            yield pool
        finally:
            self._session_backend = None
            pool.close()

    # ----------------------------------------------------------- persistence
    def save(self, path) -> "os.PathLike | str":
        """Write the fitted model to ``path`` (see :mod:`repro.io`).

        The file carries the frozen plan, config, ledger report, fit report,
        and sampling seed sequence; :meth:`load` restores an instance whose
        ``sample(n, rng=s)`` is bit-identical to this one's.
        """
        from repro.io.model import save_model

        return save_model(self, path)

    @classmethod
    def load(cls, path) -> "NetDPSyn":
        """Restore a fitted model written by :meth:`save`."""
        from repro.io.model import load_model

        return load_model(path)

    # ------------------------------------------------------------ convenience
    def synthesize(self, table: TraceTable, n: int | None = None) -> TraceTable:
        """One-shot ``fit`` + ``sample``."""
        return self.fit(table).sample(n)


def synthesize(
    table: TraceTable,
    epsilon: float = 2.0,
    delta: float = 1e-5,
    rng: np.random.Generator | int | None = None,
    config: SynthesisConfig | None = None,
    n: int | None = None,
) -> TraceTable:
    """Functional one-shot API: synthesize a DP trace from ``table``."""
    if config is None:
        config = SynthesisConfig(epsilon=epsilon, delta=delta)
    return NetDPSyn(config, rng=rng).synthesize(table, n=n)
