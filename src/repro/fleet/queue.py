"""ShardQueue: the work-queue fanning one release across the fleet.

One release = one list of shard tasks, fixed *before* any worker sees them:
each task tuple already carries its shard's pre-spawned ``SeedSequence``
child generators (the engine's ``_decoded_tasks`` derivation — GUM children
``0..shards-1``, decode children ``shards..2*shards-1``).  The queue only
decides *where* a shard runs, never *what* it computes, which is the whole
digest-equality argument:

- **Deterministic assignment.**  A shard's seeds are a function of the
  release's root ``SeedSequence`` and the shard index alone
  (:func:`release_seed_specs` publishes exactly that mapping), so scheduling
  order, worker count, and worker identity are all invisible to the output.
- **Seed-preserving reassignment.**  :meth:`ShardQueue.release_worker`
  returns a dead worker's unfinished shards to the pending queue *unchanged*
  — the retried shard re-runs on its original seed children, exactly like
  the single-node engine recovery (PR 8), so a release that survives a
  worker kill is bit-identical to a fault-free one.

The queue is plain bookkeeping (pending deque, leases, results); the
coordinator's dispatcher thread is its only caller, so it needs no lock.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.fleet.messaging import seed_spec


def release_seed_specs(root: np.random.SeedSequence, shards: int) -> list[dict]:
    """The published seed assignment of one release: shard -> spec pair.

    Mirrors the engine's per-shard stream derivation (GUM child ``i``,
    decode child ``shards + i``) as wire-auditable ``(entropy, spawn_key)``
    specs.  Reconstructing generators from these specs yields bit-identical
    streams to the coordinator's own spawn.
    """
    children = root.spawn(2 * shards)
    return [
        {"gum": seed_spec(children[i]), "decode": seed_spec(children[shards + i])}
        for i in range(shards)
    ]


class ShardQueue:
    """Pending/leased/done bookkeeping for one release's shard tasks."""

    def __init__(self, n_tasks: int) -> None:
        if n_tasks < 0:
            raise ValueError(f"n_tasks must be >= 0, got {n_tasks}")
        self.n_tasks = int(n_tasks)
        self._pending: deque[int] = deque(range(n_tasks))
        #: shard index -> worker id currently running it.
        self._leases: dict[int, str] = {}
        self._done: set[int] = set()
        #: shard index -> times it has been handed out (1 = first run).
        self.attempts: dict[int, int] = dict.fromkeys(range(n_tasks), 0)

    # ------------------------------------------------------------ scheduling
    def lease(self, worker_id: str) -> int | None:
        """Hand the next pending shard to ``worker_id`` (``None`` when idle)."""
        if not self._pending:
            return None
        index = self._pending.popleft()
        self._leases[index] = worker_id
        self.attempts[index] += 1
        return index

    def complete(self, index: int, worker_id: str | None = None) -> bool:
        """Mark a shard finished; ``False`` for stale completions.

        A completion is *stale* when the shard is no longer leased to the
        reporting worker — e.g. it was reassigned after the worker was
        expired, then the original worker's late result arrived anyway.
        Stale results are discarded (the reassigned run produces identical
        bytes, so dropping either copy is safe; keeping both would
        double-count).
        """
        if index in self._done:
            return False
        holder = self._leases.get(index)
        if holder is None or (worker_id is not None and holder != worker_id):
            return False
        del self._leases[index]
        self._done.add(index)
        return True

    def release_worker(self, worker_id: str) -> list[int]:
        """Requeue every shard leased to a dead worker, seeds untouched.

        Requeued shards go to the *front* of the pending queue so recovery
        latency stays one shard deep, not one release deep.
        """
        lost = sorted(
            index for index, holder in self._leases.items() if holder == worker_id
        )
        for index in reversed(lost):
            del self._leases[index]
            self._pending.appendleft(index)
        return lost

    # --------------------------------------------------------------- queries
    @property
    def done(self) -> bool:
        return len(self._done) == self.n_tasks

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def leased(self) -> int:
        return len(self._leases)

    def lease_holders(self) -> dict[int, str]:
        return dict(self._leases)

    def max_attempts(self) -> int:
        """The most times any one shard has been handed out so far."""
        return max(self.attempts.values(), default=0)
