"""ReplicatedQueryClient: round-robin dispatch over fleet serving replicas.

Serving a fitted model is pure post-processing — every replica loads the
same ``.ndpsyn`` files and the :class:`~repro.serving.QueryService` answer
path is deterministic per (model, query, seed) — so replicas are
interchangeable and answers are bit-identical no matter which replica
responds.  That makes the client side simple:

- **round-robin** across the replica URLs (a ``LocalCluster(serving_root=...)``
  advertises one per worker; a static URL list works too), so load spreads
  without coordination;
- a **per-replica** :class:`~repro.reliability.CircuitBreaker` (reusing the
  service-side breaker unchanged), so a dead or erroring replica is skipped
  after ``breaker_failures`` consecutive failures and probed again after
  ``breaker_reset`` seconds — requests fail over to the next replica in the
  same call rather than surfacing the outage to the caller.

Connection-level failures and 5xx responses trip the breaker and fail over;
4xx responses are the caller's problem (a malformed query is malformed on
every replica) and are returned as-is without penalising the replica.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse

from repro.reliability import CircuitBreaker


class NoReplicaAvailableError(RuntimeError):
    """Every replica is down, circuit-open, or erroring."""


class _Replica:
    """One serving endpoint: parsed address plus its circuit breaker."""

    def __init__(self, url: str, breaker: CircuitBreaker) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(f"replica URL must be http://host:port, got {url!r}")
        self.url = url.rstrip("/")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.breaker = breaker


class ReplicatedQueryClient:
    """Round-robin HTTP client over interchangeable serving replicas.

    ``replicas`` is a list of base URLs, or a
    :class:`~repro.fleet.cluster.LocalCluster` whose serving workers'
    advertised URLs are snapshotted at construction.
    """

    def __init__(
        self,
        replicas,
        timeout: float = 10.0,
        breaker_failures: int = 2,
        breaker_reset: float = 0.5,
    ) -> None:
        urls = replicas.serving_urls() if hasattr(replicas, "serving_urls") else replicas
        urls = list(urls)
        if not urls:
            raise ValueError("need at least one serving replica URL")
        self.timeout = float(timeout)
        self._replicas = [
            _Replica(
                url,
                CircuitBreaker(
                    failure_threshold=breaker_failures, reset_timeout=breaker_reset
                ),
            )
            for url in urls
        ]
        self._lock = threading.Lock()
        self._next = 0
        self.dispatched = 0
        self.failovers = 0

    # ------------------------------------------------------------------ HTTP
    def _order(self) -> list[_Replica]:
        """The replicas in this request's round-robin order."""
        with self._lock:
            start = self._next
            self._next = (self._next + 1) % len(self._replicas)
        return self._replicas[start:] + self._replicas[:start]

    def _one_request(self, replica: _Replica, method, path, body, headers):
        conn = http.client.HTTPConnection(
            replica.host, replica.port, timeout=self.timeout
        )
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def request(self, method: str, path: str, payload: dict | None = None) -> tuple:
        """Send one request, failing over across replicas; ``(status, body)``.

        Raises :class:`NoReplicaAvailableError` when no replica produced a
        non-5xx response (each attempt's error is listed).
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        errors: list[str] = []
        skipped = 0
        for replica in self._order():
            if not replica.breaker.allow():
                skipped += 1
                continue
            try:
                status, raw = self._one_request(replica, method, path, body, headers)
            except (OSError, http.client.HTTPException) as exc:
                replica.breaker.record_failure()
                errors.append(f"{replica.url}: {type(exc).__name__}: {exc}")
                self.failovers += 1
                continue
            if status >= 500:
                replica.breaker.record_failure()
                errors.append(f"{replica.url}: HTTP {status}")
                self.failovers += 1
                continue
            replica.breaker.record_success()
            with self._lock:
                self.dispatched += 1
            return status, raw
        raise NoReplicaAvailableError(
            f"all {len(self._replicas)} replica(s) unavailable "
            f"({skipped} circuit-open): " + ("; ".join(errors) or "no attempts made")
        )

    # ------------------------------------------------------------ convenience
    def query(self, model: str, query: dict, **extra) -> dict:
        """POST ``/v1/models/{model}/query``; returns the decoded answer."""
        status, raw = self.request(
            "POST", f"/v1/models/{model}/query", {"query": query, **extra}
        )
        answer = json.loads(raw)
        if status != 200:
            raise RuntimeError(f"query failed: HTTP {status}: {answer}")
        return answer

    def get_json(self, path: str) -> dict:
        status, raw = self.request("GET", path)
        if status != 200:
            raise RuntimeError(f"GET {path} failed: HTTP {status}")
        return json.loads(raw)

    def stats(self) -> dict:
        return {
            "replicas": [
                {"url": replica.url, "breaker": replica.breaker.stats()}
                for replica in self._replicas
            ],
            "dispatched": self.dispatched,
            "failovers": self.failovers,
        }
