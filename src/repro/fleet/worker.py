"""Fleet worker: connect, register, heartbeat, execute shards, serve queries.

:func:`worker_main` is the entry point :class:`~repro.fleet.cluster.LocalCluster`
runs in each subprocess (and what a multi-host deployment would run per
node).  The runtime is two threads over one authenticated
:mod:`multiprocessing.connection` channel:

- the **main loop** receives ``assign`` envelopes, executes
  ``fn(shared, *task)`` exactly like any engine backend worker would — the
  task tuple carries the shard's own pre-spawned seed children, so *who*
  runs it cannot change the output — spools the pickled result, and reports
  ``complete`` (or ``failed`` with the traceback for deterministic errors:
  a task function raising would raise again on any worker, so it is
  reported, not retried);
- the **heartbeat thread** sends one ``heartbeat`` envelope per interval
  (the interval is dictated by the coordinator's ``welcome``).  It passes
  the ``SITE_FLEET_HEARTBEAT`` fault site first, so the chaos suite can
  kill a worker mid-heartbeat as easily as mid-shard.

A lost connection is survivable: the main loop reconnects and re-registers
(bounded attempts), which is also how a worker expired during a stall
(e.g. ``SIGSTOP``) resumes after the coordinator dropped it — the registry
counts the re-registration, the work-queue already reassigned its shards,
and any stale result it still reports is discarded by the coordinator's
lease check.

Because ``LocalCluster`` forks workers, the module-global
:class:`~repro.reliability.FaultInjector` installed in the parent is
inherited here — worker-side chaos (kill mid-shard via ``SITE_SHARD``,
mid-heartbeat via ``SITE_FLEET_HEARTBEAT``) needs no extra plumbing.
"""

from __future__ import annotations

import importlib
import os
import pickle
import threading
import time
import traceback
from multiprocessing.connection import Client

from repro.fleet.messaging import (
    MSG_ASSIGN,
    MSG_COMPLETE,
    MSG_FAILED,
    MSG_HEARTBEAT,
    MSG_REGISTER,
    MSG_SHUTDOWN,
    MSG_WELCOME,
    ROLE_SAMPLER,
    ROLE_SERVING,
    Envelope,
    decode_envelope,
    encode_envelope,
    unpack_task,
)
from repro.reliability.faults import SITE_FLEET_HEARTBEAT, maybe_fire

#: Reconnect attempts after a lost coordinator connection before giving up.
RECONNECT_ATTEMPTS = 3
RECONNECT_DELAY = 0.05


class _WorkerRuntime:
    """State of one worker process: connection, caches, heartbeat."""

    def __init__(self, address, authkey: bytes, worker_id: str, spool: str) -> None:
        self.address = address
        self.authkey = authkey
        self.worker_id = worker_id
        self.spool = spool
        self.conn = None
        self.heartbeat_interval = 0.5
        self._send_lock = threading.Lock()
        self._seq = 0
        self._stop = threading.Event()
        #: spool path -> unpickled shared payload; a release's plan ships
        #: (and unpickles) once per worker, not once per shard.
        self._shared_cache: dict[str, object] = {}
        self._register_payload: dict = {"pid": os.getpid(), "role": ROLE_SAMPLER}
        self._result_seq = 0

    # ------------------------------------------------------------- transport
    def send(self, type_: str, payload: dict | None = None) -> None:
        with self._send_lock:
            self._seq += 1
            frame = encode_envelope(
                Envelope(
                    type=type_,
                    sender=self.worker_id,
                    seq=self._seq,
                    payload=payload or {},
                )
            )
            self.conn.send_bytes(frame)

    def connect(self) -> None:
        """Dial the coordinator, register, and adopt its heartbeat interval."""
        self.conn = Client(self.address, authkey=self.authkey)
        self.send(MSG_REGISTER, self._register_payload)
        welcome = decode_envelope(self.conn.recv_bytes())
        if welcome.type != MSG_WELCOME:
            raise RuntimeError(f"expected welcome, got {welcome.type!r}")
        self.heartbeat_interval = float(
            welcome.payload.get("heartbeat_interval", self.heartbeat_interval)
        )

    def reconnect(self) -> bool:
        """Re-dial and re-register after a lost connection."""
        for attempt in range(RECONNECT_ATTEMPTS):
            try:
                old = self.conn
                self.conn = None
                if old is not None:
                    old.close()
                self.connect()
                return True
            except OSError:
                time.sleep(RECONNECT_DELAY * (attempt + 1))
        return False

    # ------------------------------------------------------------- heartbeat
    def heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            maybe_fire(SITE_FLEET_HEARTBEAT)
            try:
                self.send(MSG_HEARTBEAT)
            except (OSError, ValueError, AttributeError):
                # Connection mid-replacement or gone; the main loop owns
                # reconnection — skip this beat rather than fight over it.
                continue

    # ------------------------------------------------------------- execution
    def _shared(self, path: str | None):
        if path is None:
            return None
        if path not in self._shared_cache:
            with open(path, "rb") as fh:
                self._shared_cache[path] = pickle.load(fh)
        return self._shared_cache[path]

    def _spool_result(self, release: int, index: int, result) -> str:
        """Pickle a shard result into the spool; unique name per attempt."""
        self._result_seq += 1
        name = f"result-{self.worker_id}-{release}-{index}-{self._result_seq}.pkl"
        path = os.path.join(self.spool, name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    def handle_assign(self, envelope: Envelope) -> None:
        payload = envelope.payload
        release = int(payload["release"])
        index = int(payload["index"])
        try:
            module = importlib.import_module(payload["fn_module"])
            fn = getattr(module, payload["fn_name"])
            shared = self._shared(payload.get("shared_path"))
            task = unpack_task(payload["task"])
            result = fn(shared, *task)
            path = self._spool_result(release, index, result)
        except BaseException as exc:  # noqa: BLE001 - reported, not retried
            self.send(
                MSG_FAILED,
                {
                    "release": release,
                    "index": index,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                },
            )
            return
        self.send(MSG_COMPLETE, {"release": release, "index": index, "path": path})

    # ------------------------------------------------------------- main loop
    def run(self) -> None:
        self.connect()
        beat = threading.Thread(target=self.heartbeat_loop, daemon=True)
        beat.start()
        try:
            while True:
                try:
                    envelope = decode_envelope(self.conn.recv_bytes())
                except (EOFError, OSError):
                    if not self.reconnect():
                        break
                    continue
                if envelope.type == MSG_SHUTDOWN:
                    break
                if envelope.type == MSG_ASSIGN:
                    try:
                        self.handle_assign(envelope)
                    except (EOFError, OSError):
                        # The coordinator dropped us mid-task (e.g. we were
                        # expired during a stall and the result report hit a
                        # closed pipe).  The shard was already reassigned;
                        # reconnect and re-register rather than die.
                        if not self.reconnect():
                            break
                # Anything else (a future coordinator speaking a newer minor
                # dialect) is ignored rather than fatal.
        finally:
            self._stop.set()
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass


def _start_serving(runtime: _WorkerRuntime, serving_root) -> None:
    """Stand up an HTTP query replica and advertise its URL at register time.

    Every replica serves from its own :class:`~repro.serving.ModelRegistry`
    over the same model files, so answers are bit-identical across replicas
    — the property the round-robin client's failover relies on.
    """
    from repro.serving import ModelRegistry, QueryService
    from repro.serving.http import serve_in_thread

    service = QueryService(ModelRegistry(serving_root))
    server, _thread = serve_in_thread(service)
    host, port = server.server_address[:2]
    runtime._register_payload["role"] = ROLE_SERVING
    runtime._register_payload["url"] = f"http://{host}:{port}"


def worker_main(
    address,
    authkey: bytes,
    worker_id: str,
    spool: str,
    serving_root=None,
) -> None:
    """Entry point of one fleet worker process."""
    runtime = _WorkerRuntime(address, authkey, worker_id, spool)
    if serving_root is not None:
        _start_serving(runtime, serving_root)
    runtime.run()
