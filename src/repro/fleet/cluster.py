"""LocalCluster: the fleet coordinator, with subprocess workers for CI.

One :class:`LocalCluster` owns the whole coordinator side of the fleet
protocol (:mod:`repro.fleet.messaging`):

- a :class:`multiprocessing.connection.Listener` on localhost with an HMAC
  ``authkey`` — the same channel a multi-host deployment would run over TCP;
- a :class:`~repro.fleet.registry.WorkerRegistry` driven by worker
  heartbeats, with monotonic liveness expiry;
- a single **dispatcher thread** that owns all connection I/O and all
  mutable release state (multiplexed via ``connection.wait``), so the
  scheduler needs no locking discipline beyond the hand-off queues at its
  edges;
- ``workers`` forked subprocesses running :func:`~repro.fleet.worker.worker_main`
  (fork start method where available, so the chaos suite's installed
  :class:`~repro.reliability.FaultInjector` is inherited).

:meth:`run_tasks` is the release primitive the ``fleet`` engine backend
delegates to: the shared payload (the synthesis plan) is spooled **once per
cluster lifetime per object** and shipped to each worker once; each shard
task — carrying its own pre-spawned seed children — is assigned to the next
idle live worker.  A worker that dies (connection EOF), stalls past its
heartbeat liveness window, or exceeds ``task_timeout`` is evicted and its
unfinished shards are requeued *unchanged* — seed-preserving reassignment,
bounded by the backend's :class:`~repro.reliability.RetryPolicy` budget —
so a recovered release is bit-identical to a fault-free one.  A task
function that raises is deterministic and fails the release with a
:class:`~repro.reliability.ShardTaskError` carrying the worker-side
traceback, exactly like the single-node pools.

Entering the context installs the cluster as the process-wide *current
cluster* so ``synth.sample(..., backend="fleet")`` finds it::

    with LocalCluster(workers=4):
        table = synth.sample(n, rng=7, shards=8, backend="fleet")
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import shutil
import tempfile
import threading
import time
from collections import deque
from multiprocessing.connection import Listener, wait

from repro.fleet.messaging import (
    MSG_ASSIGN,
    MSG_COMPLETE,
    MSG_FAILED,
    MSG_HEARTBEAT,
    MSG_REGISTER,
    MSG_SHUTDOWN,
    MSG_WELCOME,
    Envelope,
    EnvelopeError,
    decode_envelope,
    encode_envelope,
    pack_task,
)
from repro.fleet.queue import ShardQueue
from repro.fleet.registry import WorkerRegistry
from repro.fleet.worker import worker_main
from repro.reliability import RetryPolicy, ShardTaskError

#: The active cluster ``get_backend("fleet")`` resolves against.
_CURRENT: "LocalCluster | None" = None


def current_cluster() -> "LocalCluster | None":
    """The cluster installed by the innermost ``LocalCluster`` context."""
    return _CURRENT


class FleetError(RuntimeError):
    """A fleet-level protocol or capacity failure."""


class _Release:
    """One ``run_tasks`` call in flight: tasks, queue, results, outcome."""

    def __init__(
        self,
        seq: int,
        fn,
        tasks: list[tuple],
        shared_path: str | None,
        task_timeout: float | None,
        retry: RetryPolicy,
    ) -> None:
        self.seq = seq
        self.fn_module = fn.__module__
        self.fn_name = fn.__qualname__
        self.packed = [pack_task(task) for task in tasks]
        self.shared_path = shared_path
        self.task_timeout = task_timeout
        self.retry = retry
        self.queue = ShardQueue(len(tasks))
        self.results: list = [None] * len(tasks)
        self.lease_started: dict[int, float] = {}
        self.error: BaseException | None = None
        self.done = threading.Event()


class LocalCluster:
    """Coordinator plus ``workers`` local subprocess fleet members.

    ``serving_root`` (a directory of ``.ndpsyn`` model files) additionally
    makes every worker stand up an HTTP query replica and advertise its URL
    at registration; :meth:`serving_urls` lists the live replicas for the
    round-robin client (:mod:`repro.fleet.serving`).
    """

    def __init__(
        self,
        workers: int = 2,
        heartbeat_interval: float = 0.25,
        liveness_factor: float = 4.0,
        serving_root=None,
        task_timeout: float | None = None,
        retry: "RetryPolicy | int | None" = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if retry is None:
            retry = RetryPolicy()
        elif not isinstance(retry, RetryPolicy):
            retry = RetryPolicy(max_retries=int(retry))
        self.retry = retry
        self.task_timeout = task_timeout
        self._n_initial = int(workers)
        self._serving_root = serving_root
        self._authkey = os.urandom(16)
        self._listener = Listener(("127.0.0.1", 0), authkey=self._authkey)
        self.address = self._listener.address
        self.registry = WorkerRegistry(
            heartbeat_interval=heartbeat_interval, liveness_factor=liveness_factor
        )
        self.spool = tempfile.mkdtemp(prefix="repro-fleet-")
        self._registry_lock = threading.Lock()
        self._release_lock = threading.Lock()
        self._wake_r, self._wake_w = multiprocessing.Pipe(duplex=False)
        self._inbox: deque = deque()  # ("join", conn, envelope) | ("release", r)
        self._conns: dict = {}  # conn -> worker_id
        self._worker_conns: dict[str, object] = {}
        self._active: _Release | None = None
        self._running = True
        self._seq = 0
        self._release_seq = 0
        self._next_worker = 0
        self._procs: list = []
        #: id(shared) -> (strong ref, spool path): each payload ships once.
        self._shared_paths: dict[int, tuple] = {}
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._dispatch_thread = threading.Thread(target=self._dispatch_loop, daemon=True)
        self._accept_thread.start()
        self._dispatch_thread.start()

    # -------------------------------------------------------------- lifecycle
    def __enter__(self) -> "LocalCluster":
        global _CURRENT
        self._previous = _CURRENT
        _CURRENT = self
        for _ in range(self._n_initial):
            self.spawn_worker()
        return self

    def __exit__(self, *exc_info) -> None:
        global _CURRENT
        _CURRENT = self._previous
        self.close()

    def spawn_worker(self, worker_id: str | None = None) -> str:
        """Fork one more fleet member; returns its worker id."""
        if worker_id is None:
            worker_id = f"w{self._next_worker}"
        self._next_worker += 1
        ctx = (
            multiprocessing.get_context("fork")
            if "fork" in multiprocessing.get_all_start_methods()
            else multiprocessing.get_context()
        )
        proc = ctx.Process(
            target=worker_main,
            kwargs=dict(
                address=self.address,
                authkey=self._authkey,
                worker_id=worker_id,
                spool=self.spool,
                serving_root=self._serving_root,
            ),
            daemon=True,
        )
        proc.start()
        self._procs.append(proc)
        return worker_id

    def close(self) -> None:
        """Shut the fleet down and reclaim every resource."""
        if not self._running:
            return
        self._running = False
        self._wake()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._dispatch_thread.join(timeout=5.0)
        self._accept_thread.join(timeout=5.0)
        for conn in list(self._conns):
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        shutil.rmtree(self.spool, ignore_errors=True)

    # ---------------------------------------------------------------- helpers
    def _wake(self) -> None:
        try:
            self._wake_w.send_bytes(b"x")
        except (OSError, ValueError):  # pragma: no cover - torn down
            pass

    def _send(self, conn, type_: str, payload: dict | None = None) -> None:
        self._seq += 1
        conn.send_bytes(
            encode_envelope(
                Envelope(
                    type=type_, sender="coordinator", seq=self._seq, payload=payload or {}
                )
            )
        )

    def _spool_shared(self, shared) -> str | None:
        """Spool a shared payload once per object; reuse the path after."""
        if shared is None:
            return None
        key = id(shared)
        cached = self._shared_paths.get(key)
        if cached is not None and cached[0] is shared:
            return cached[1]
        path = os.path.join(self.spool, f"shared-{len(self._shared_paths)}.pkl")
        with open(path, "wb") as fh:
            pickle.dump(shared, fh, protocol=pickle.HIGHEST_PROTOCOL)
        self._shared_paths[key] = (shared, path)
        return path

    # ------------------------------------------------------------ accept loop
    def _accept_loop(self) -> None:
        """Admit connections; registration itself happens on the dispatcher."""
        while self._running:
            try:
                conn = self._listener.accept()
            except (OSError, EOFError, multiprocessing.AuthenticationError):
                if not self._running:
                    return
                continue
            try:
                envelope = decode_envelope(conn.recv_bytes())
            except (EOFError, OSError, EnvelopeError):
                conn.close()
                continue
            if envelope.type != MSG_REGISTER:
                conn.close()
                continue
            self._inbox.append(("join", conn, envelope))
            self._wake()

    # --------------------------------------------------------- dispatcher loop
    def _dispatch_loop(self) -> None:
        tick = self.registry.heartbeat_interval / 2.0
        while self._running:
            self._drain_inbox()
            self._expire_overdue()
            self._check_task_timeouts()
            self._check_capacity()
            self._assign_pending()
            ready = wait([self._wake_r, *self._conns], timeout=tick)
            for obj in ready:
                if obj is self._wake_r:
                    try:
                        self._wake_r.recv_bytes()
                    except (EOFError, OSError):  # pragma: no cover
                        pass
                    continue
                self._receive(obj)
        # Teardown: tell every worker to exit.
        for conn in list(self._conns):
            try:
                self._send(conn, MSG_SHUTDOWN)
            except (OSError, ValueError):
                pass

    def _drain_inbox(self) -> None:
        while self._inbox:
            kind, *rest = self._inbox.popleft()
            if kind == "join":
                conn, envelope = rest
                self._admit(conn, envelope)
            elif kind == "release":
                (release,) = rest
                self._active = release

    def _admit(self, conn, envelope: Envelope) -> None:
        worker_id = envelope.sender
        payload = envelope.payload
        with self._registry_lock:
            self.registry.register(
                worker_id,
                pid=int(payload.get("pid", 0)),
                role=str(payload.get("role", "sampler")),
                meta={k: v for k, v in payload.items() if k not in ("pid", "role")},
            )
        stale = self._worker_conns.pop(worker_id, None)
        if stale is not None:
            self._drop_conn(stale, evict=False)
        self._conns[conn] = worker_id
        self._worker_conns[worker_id] = conn
        try:
            self._send(
                conn,
                MSG_WELCOME,
                {
                    "worker_id": worker_id,
                    "heartbeat_interval": self.registry.heartbeat_interval,
                },
            )
        except (OSError, ValueError):
            self._worker_loss(conn)

    def _drop_conn(self, conn, evict: bool = True) -> None:
        worker_id = self._conns.pop(conn, None)
        if worker_id is not None and self._worker_conns.get(worker_id) is conn:
            del self._worker_conns[worker_id]
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
        if evict and worker_id is not None:
            with self._registry_lock:
                self.registry.evict(worker_id)

    # ---------------------------------------------------------- fault handling
    def _worker_loss(self, conn) -> None:
        """A dead/hung member: evict it and requeue its shards, seeds intact."""
        worker_id = self._conns.get(conn)
        self._drop_conn(conn, evict=True)
        if worker_id is not None:
            self._requeue_lost(worker_id)

    def _requeue_lost(self, worker_id: str) -> None:
        release = self._active
        if release is None:
            return
        for index in release.queue.release_worker(worker_id):
            release.lease_started.pop(index, None)
            retries = release.queue.attempts[index] - 1 + 1  # runs lost so far
            if not release.retry.retryable(retries):
                self._finish(
                    release,
                    error=ShardTaskError(
                        f"task {index} failed after {release.queue.attempts[index]} "
                        f"attempt(s) (transient fault: worker {worker_id!r} lost)",
                        index=index,
                        attempts=release.queue.attempts[index],
                        transient=True,
                    ),
                )
                return

    def _expire_overdue(self) -> None:
        with self._registry_lock:
            expired = self.registry.expire()
        for worker_id in expired:
            conn = self._worker_conns.get(worker_id)
            if conn is not None:
                # Closing the connection makes a merely-stalled worker's next
                # send fail, which triggers its reconnect-and-re-register
                # path — the clean resume the registry counts.
                self._drop_conn(conn, evict=False)
            self._requeue_lost(worker_id)

    def _check_task_timeouts(self) -> None:
        release = self._active
        if release is None or release.task_timeout is None:
            return
        now = time.monotonic()
        for index, started in list(release.lease_started.items()):
            if now - started <= release.task_timeout:
                continue
            holder = release.queue.lease_holders().get(index)
            conn = self._worker_conns.get(holder) if holder else None
            if conn is not None:
                self._worker_loss(conn)
            else:  # pragma: no cover - lease without a connection
                self._requeue_lost(holder)

    def _check_capacity(self) -> None:
        release = self._active
        if release is None or release.done.is_set():
            return
        with self._registry_lock:
            alive = self.registry.alive()
        if alive or any(proc.is_alive() for proc in self._procs):
            return
        self._finish(
            release,
            error=FleetError(
                "no live fleet workers remain and none are starting; "
                f"{release.queue.pending + release.queue.leased} shard(s) unfinished"
            ),
        )

    # ------------------------------------------------------------- scheduling
    def _assign_pending(self) -> None:
        release = self._active
        if release is None or release.done.is_set():
            return
        busy = set(release.queue.lease_holders().values())
        with self._registry_lock:
            alive = self.registry.alive()
        for record in alive:
            if not release.queue.pending:
                break
            if record.worker_id in busy:
                continue
            conn = self._worker_conns.get(record.worker_id)
            if conn is None:
                continue
            index = release.queue.lease(record.worker_id)
            if index is None:
                break
            release.lease_started[index] = time.monotonic()
            try:
                self._send(
                    conn,
                    MSG_ASSIGN,
                    {
                        "release": release.seq,
                        "index": index,
                        "fn_module": release.fn_module,
                        "fn_name": release.fn_name,
                        "shared_path": release.shared_path,
                        "task": release.packed[index],
                    },
                )
            except (OSError, ValueError):
                self._worker_loss(conn)
                return
            busy.add(record.worker_id)

    def _receive(self, conn) -> None:
        try:
            envelope = decode_envelope(conn.recv_bytes())
        except (EOFError, OSError, EnvelopeError):
            self._worker_loss(conn)
            return
        worker_id = self._conns.get(conn)
        if envelope.type == MSG_HEARTBEAT:
            with self._registry_lock:
                self.registry.heartbeat(worker_id)
        elif envelope.type == MSG_COMPLETE:
            self._on_complete(worker_id, envelope.payload)
        elif envelope.type == MSG_FAILED:
            self._on_failed(envelope.payload)

    def _on_complete(self, worker_id: str, payload: dict) -> None:
        release = self._active
        path = payload.get("path")
        index = int(payload.get("index", -1))
        stale = (
            release is None
            or release.done.is_set()
            or int(payload.get("release", -1)) != release.seq
            or not release.queue.complete(index, worker_id)
        )
        if stale:
            # A reassigned shard's original runner reported late; the retried
            # copy is bit-identical, so the duplicate is simply discarded.
            if path:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return
        try:
            with open(path, "rb") as fh:
                release.results[index] = pickle.load(fh)
            os.unlink(path)
        except (OSError, pickle.UnpicklingError) as exc:
            # The spooled result vanished or is torn (worker died mid-spool
            # rename would normally surface as a lost worker instead): treat
            # as a transient loss of just this shard.
            release.queue._done.discard(index)
            release.queue._pending.appendleft(index)
            retries = release.queue.attempts[index]
            if not release.retry.retryable(retries):
                self._finish(
                    release,
                    error=ShardTaskError(
                        f"task {index} result unreadable after "
                        f"{release.queue.attempts[index]} attempt(s): {exc}",
                        index=index,
                        attempts=release.queue.attempts[index],
                        transient=True,
                    ),
                )
            return
        release.lease_started.pop(index, None)
        if release.queue.done:
            self._finish(release)

    def _on_failed(self, payload: dict) -> None:
        release = self._active
        if release is None or int(payload.get("release", -1)) != release.seq:
            return
        index = int(payload.get("index", -1))
        self._finish(
            release,
            error=ShardTaskError(
                f"task {index} failed deterministically on a fleet worker "
                f"({payload.get('error', 'unknown error')})",
                index=index,
                attempts=release.queue.attempts.get(index, 1),
                transient=False,
                remote_traceback=payload.get("traceback"),
            ),
        )

    def _finish(self, release: _Release, error: BaseException | None = None) -> None:
        if release.done.is_set():
            return
        release.error = error
        if self._active is release:
            self._active = None
        release.done.set()

    # ------------------------------------------------------------ release API
    def run_tasks(
        self,
        fn,
        tasks: list[tuple],
        shared=None,
        task_timeout: float | None = None,
        retry: "RetryPolicy | None" = None,
    ) -> list:
        """Run one release across the fleet; results in task order.

        Same contract as :meth:`repro.engine.backends.Backend.run_tasks`:
        ``fn`` must be module-level and every task tuple picklable.
        ``task_timeout``/``retry`` override the cluster defaults for this
        release only.  Raises :class:`~repro.reliability.ShardTaskError`
        (deterministic task failure, or a shard out of transient-retry
        budget) or :class:`FleetError` (no live workers).
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if not self._running:
            raise FleetError("cluster is closed")
        with self._release_lock:
            self._release_seq += 1
            release = _Release(
                seq=self._release_seq,
                fn=fn,
                tasks=tasks,
                shared_path=self._spool_shared(shared),
                task_timeout=self.task_timeout if task_timeout is None else task_timeout,
                retry=self.retry if retry is None else retry,
            )
            self._inbox.append(("release", release))
            self._wake()
            release.done.wait()
        if release.error is not None:
            raise release.error
        return release.results

    # --------------------------------------------------------------- queries
    def serving_urls(self) -> list[str]:
        """Base URLs of the live serving replicas, registration order."""
        with self._registry_lock:
            return [
                record.meta["url"]
                for record in self.registry.alive()
                if "url" in record.meta
            ]

    def stats(self) -> dict:
        with self._registry_lock:
            registry = self.registry.stats()
        active = self._active
        return {
            "registry": registry,
            "active_release": None
            if active is None
            else {
                "seq": active.seq,
                "pending": active.queue.pending,
                "leased": active.queue.leased,
                "max_attempts": active.queue.max_attempts(),
            },
            "processes": sum(1 for proc in self._procs if proc.is_alive()),
        }
