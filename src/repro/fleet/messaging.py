"""Fleet wire protocol: versioned JSON envelopes over authenticated pipes.

Every message the coordinator and its workers exchange is one
:class:`Envelope` — a flat, versioned JSON object sent with
``Connection.send_bytes`` over a :mod:`multiprocessing.connection` channel
(which already gives us length-prefixed framing and an HMAC-authenticated
handshake via ``authkey``).  Keeping the control plane pure JSON makes the
protocol inspectable and forward-portable to a socket transport; the two
payloads that are *not* JSON-shaped ride alongside it:

- **task arguments** (a few hundred bytes: the shard size, its pre-spawned
  ``SeedSequence``-child generators, the kernel name) are pickled and
  base64-embedded in the ``assign`` envelope;
- **bulk payloads** (the pickled :class:`~repro.engine.SynthesisPlan` shipped
  once per release, and each shard's decoded result table) travel through a
  coordinator-owned *spool directory* on the shared filesystem — envelopes
  carry only the path.  ``LocalCluster`` is same-host, so the spool is the
  zero-config analogue of the object store a multi-host deployment would use.

Determinism contract: an ``assign`` envelope never *chooses* randomness —
the task tuple carries the shard's own ``SeedSequence`` children, fixed when
the release was sharded (see :mod:`repro.fleet.queue`).  Which worker runs a
shard, in what order, after how many reassignments, therefore cannot change
a single output byte.  :func:`seed_spec` / :func:`seed_from_spec` are the
JSON rendering of that contract: a spawned child is fully reconstructible
from ``(entropy, spawn_key)``, so the seed assignment itself can be
published in the release announcement and audited from the wire log alone.

Message types
-------------

=============  =========  ====================================================
type           direction  payload
=============  =========  ====================================================
``register``   w -> c     ``pid``, ``role`` (``"sampler"``/``"serving"``),
                          ``url`` (serving replicas only)
``welcome``    c -> w     ``worker_id`` echo, ``heartbeat_interval``
``heartbeat``  w -> c     (empty)
``assign``     c -> w     ``release``, ``index``, ``fn_module``, ``fn_name``,
                          ``shared_path``, ``task`` (base64 pickle)
``complete``   w -> c     ``release``, ``index``, ``path`` (spooled result)
``failed``     w -> c     ``release``, ``index``, ``error``, ``traceback``
``shutdown``   c -> w     (empty)
=============  =========  ====================================================
"""

from __future__ import annotations

import base64
import json
import pickle
from dataclasses import dataclass, field

import numpy as np

#: Version stamp carried by every envelope; receivers reject foreign
#: versions instead of guessing (mirrors the serving tier's
#: ``schema_version`` discipline).
FLEET_SCHEMA_VERSION = 1

MSG_REGISTER = "register"
MSG_WELCOME = "welcome"
MSG_HEARTBEAT = "heartbeat"
MSG_ASSIGN = "assign"
MSG_COMPLETE = "complete"
MSG_FAILED = "failed"
MSG_SHUTDOWN = "shutdown"

MESSAGE_TYPES = (
    MSG_REGISTER,
    MSG_WELCOME,
    MSG_HEARTBEAT,
    MSG_ASSIGN,
    MSG_COMPLETE,
    MSG_FAILED,
    MSG_SHUTDOWN,
)

#: Worker roles a ``register`` envelope may announce.
ROLE_SAMPLER = "sampler"
ROLE_SERVING = "serving"


class EnvelopeError(ValueError):
    """A wire frame that is not a valid fleet envelope."""


@dataclass(frozen=True)
class Envelope:
    """One fleet control-plane message.

    ``sender`` is the worker id (or ``"coordinator"``); ``seq`` is the
    sender's own monotonically increasing message counter, carried for
    observability (ordering is already guaranteed per connection).
    """

    type: str
    sender: str
    seq: int = 0
    payload: dict = field(default_factory=dict)
    version: int = FLEET_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.type not in MESSAGE_TYPES:
            raise EnvelopeError(
                f"message type must be one of {MESSAGE_TYPES}, got {self.type!r}"
            )


def encode_envelope(envelope: Envelope) -> bytes:
    """Render an envelope as UTF-8 JSON bytes for ``send_bytes``."""
    return json.dumps(
        {
            "version": envelope.version,
            "type": envelope.type,
            "sender": envelope.sender,
            "seq": envelope.seq,
            "payload": envelope.payload,
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_envelope(raw: bytes) -> Envelope:
    """Parse and validate one wire frame; reject foreign versions."""
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise EnvelopeError(f"frame is not UTF-8 JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise EnvelopeError(f"envelope must be a JSON object, got {type(obj).__name__}")
    version = obj.get("version")
    if version != FLEET_SCHEMA_VERSION:
        raise EnvelopeError(
            f"unsupported fleet schema version {version!r} "
            f"(this node speaks {FLEET_SCHEMA_VERSION})"
        )
    payload = obj.get("payload", {})
    if not isinstance(payload, dict):
        raise EnvelopeError("envelope payload must be a JSON object")
    return Envelope(
        type=str(obj.get("type")),
        sender=str(obj.get("sender", "")),
        seq=int(obj.get("seq", 0)),
        payload=payload,
    )


# --------------------------------------------------------------- seed specs
def seed_spec(seq: np.random.SeedSequence) -> dict:
    """The JSON form of a spawned ``SeedSequence``: ``(entropy, spawn_key)``.

    A spawned child is a pure function of these two fields, so a release
    announcement carrying one spec per shard pins the entire RNG tree on the
    wire — any node can reconstruct any shard's generator, and the digest
    contract can be audited without trusting pickled bytes.
    """
    entropy = seq.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = [int(word) for word in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return {"entropy": entropy, "spawn_key": [int(k) for k in seq.spawn_key]}


def seed_from_spec(spec: dict) -> np.random.SeedSequence:
    """Rebuild the exact ``SeedSequence`` a :func:`seed_spec` described."""
    return np.random.SeedSequence(
        entropy=spec["entropy"], spawn_key=tuple(spec["spawn_key"])
    )


# ----------------------------------------------------------- binary embeds
def pack_task(task: tuple) -> str:
    """Base64-embed one (small) task argument tuple for an assign envelope."""
    return base64.b64encode(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)).decode(
        "ascii"
    )


def unpack_task(packed: str) -> tuple:
    """Inverse of :func:`pack_task`."""
    return pickle.loads(base64.b64decode(packed.encode("ascii")))
