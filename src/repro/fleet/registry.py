"""WorkerRegistry: fleet membership with heartbeats and liveness expiry.

The coordinator's authoritative view of who is in the fleet.  A worker
joins with :meth:`~WorkerRegistry.register`, stays alive by heartbeating
every ``heartbeat_interval`` seconds, and is *expired* — reported by
:meth:`~WorkerRegistry.expire` exactly once — when
``liveness_factor * heartbeat_interval`` elapses without one.  All deadlines
live on the **monotonic clock** (injectable for unit tests), consistent with
the rest of the reliability layer: a wall-clock step must never evict a
healthy worker or resurrect a dead one.

Re-registration is first-class: a worker that crashed and restarted (or was
expired during a network partition and reconnected) registers again under
its id and resumes as a fresh, alive member — the record keeps a
``registrations`` count so the chaos suite can assert the resume actually
happened.  The registry tracks membership only; requeueing the shards an
evicted worker held is the work-queue's job (:mod:`repro.fleet.queue`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

STATE_ALIVE = "alive"
STATE_EXPIRED = "expired"
STATE_EVICTED = "evicted"


@dataclass
class WorkerRecord:
    """One fleet member as the coordinator sees it."""

    worker_id: str
    pid: int
    role: str = "sampler"
    meta: dict = field(default_factory=dict)
    state: str = STATE_ALIVE
    registered_at: float = 0.0
    last_heartbeat: float = 0.0
    heartbeats: int = 0
    #: How many times this id has registered (>1 means it came back).
    registrations: int = 1


class WorkerRegistry:
    """Membership, heartbeats, and liveness expiry on a monotonic clock."""

    def __init__(
        self,
        heartbeat_interval: float = 0.5,
        liveness_factor: float = 3.0,
        clock=time.monotonic,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        if liveness_factor < 1:
            raise ValueError(f"liveness_factor must be >= 1, got {liveness_factor}")
        self.heartbeat_interval = float(heartbeat_interval)
        self.liveness_factor = float(liveness_factor)
        self._clock = clock
        self._workers: dict[str, WorkerRecord] = {}

    @property
    def liveness_timeout(self) -> float:
        """Seconds of heartbeat silence after which a worker is expired."""
        return self.heartbeat_interval * self.liveness_factor

    # ------------------------------------------------------------ membership
    def register(self, worker_id: str, pid: int, role: str = "sampler", meta=None):
        """Admit (or re-admit) a worker; returns its record.

        Registering an id that already exists resets it to alive with a
        fresh heartbeat deadline — that is how a restarted worker resumes.
        """
        now = self._clock()
        record = self._workers.get(worker_id)
        if record is None:
            record = WorkerRecord(
                worker_id=worker_id,
                pid=int(pid),
                role=role,
                meta=dict(meta or {}),
                registered_at=now,
                last_heartbeat=now,
            )
            self._workers[worker_id] = record
        else:
            record.pid = int(pid)
            record.role = role
            record.meta = dict(meta or {})
            record.state = STATE_ALIVE
            record.last_heartbeat = now
            record.registrations += 1
        return record

    def heartbeat(self, worker_id: str) -> bool:
        """Record one heartbeat; ``False`` for unknown/evicted workers (the
        sender should re-register)."""
        record = self._workers.get(worker_id)
        if record is None or record.state == STATE_EVICTED:
            return False
        record.last_heartbeat = self._clock()
        record.heartbeats += 1
        if record.state == STATE_EXPIRED:
            # A late heartbeat after expiry does not resurrect the worker —
            # its shards were already reassigned; it must re-register.
            return False
        return True

    def expire(self) -> list[str]:
        """Mark overdue workers expired; return the *newly* expired ids."""
        now = self._clock()
        cutoff = self.liveness_timeout
        newly: list[str] = []
        for record in self._workers.values():
            if record.state != STATE_ALIVE:
                continue
            if now - record.last_heartbeat > cutoff:
                record.state = STATE_EXPIRED
                newly.append(record.worker_id)
        return newly

    def evict(self, worker_id: str) -> None:
        """Remove a worker for good (dead connection, shutdown)."""
        record = self._workers.get(worker_id)
        if record is not None:
            record.state = STATE_EVICTED

    # --------------------------------------------------------------- queries
    def get(self, worker_id: str) -> WorkerRecord | None:
        return self._workers.get(worker_id)

    def alive(self, role: str | None = None) -> list[WorkerRecord]:
        """Live members, registration order (optionally one role only)."""
        return [
            record
            for record in self._workers.values()
            if record.state == STATE_ALIVE and (role is None or record.role == role)
        ]

    def stats(self) -> dict:
        by_state: dict[str, int] = {}
        for record in self._workers.values():
            by_state[record.state] = by_state.get(record.state, 0) + 1
        return {
            "workers": len(self._workers),
            "by_state": by_state,
            "heartbeat_interval": self.heartbeat_interval,
            "liveness_timeout": self.liveness_timeout,
        }
