"""FleetBackend: the engine backend that fans shard tasks across a fleet.

``get_backend("fleet")`` returns this class, which makes the fleet a
drop-in peer of ``serial``/``thread``/``process``/``shared``::

    with LocalCluster(workers=4):
        table = synth.sample(200_000, rng=7, shards=8, backend="fleet")

:meth:`run_tasks` delegates to the installed
:class:`~repro.fleet.cluster.LocalCluster` (the innermost active context,
or one passed explicitly).  Determinism is inherited, not re-implemented:
the engine hands this backend the *same* task tuples — each carrying its
shard's pre-spawned ``SeedSequence``-child generators — that the serial
backend would run in a loop, and the engine's merge is by task order, so a
fleet release is digest-identical to single-node at the same shard count,
regardless of worker count, scheduling order, or mid-release worker death.

The backend's ``task_timeout`` and ``retry`` knobs (the standard
:class:`~repro.engine.backends.Backend` contract) override the cluster's
own defaults per release.
"""

from __future__ import annotations

from repro.engine.backends import Backend


class FleetBackend(Backend):
    """Run engine tasks on the current (or given) fleet cluster."""

    name = "fleet"

    def __init__(
        self,
        max_workers=None,
        task_timeout=None,
        retry=None,
        cluster=None,
    ) -> None:
        super().__init__(
            max_workers=max_workers, task_timeout=task_timeout, retry=retry
        )
        self._cluster = cluster
        self._explicit_timeout = task_timeout is not None
        self._explicit_retry = retry is not None

    def _resolve(self):
        from repro.fleet.cluster import current_cluster

        cluster = self._cluster if self._cluster is not None else current_cluster()
        if cluster is None:
            raise RuntimeError(
                "backend 'fleet' needs an active cluster: enter a "
                "repro.fleet.LocalCluster(...) context (or pass cluster=) first"
            )
        return cluster

    def run_tasks(self, fn, tasks, shared=None):
        cluster = self._resolve()
        # Per-backend overrides travel with the release; the cluster's own
        # defaults stay untouched (it may be shared across backends).
        return cluster.run_tasks(
            fn,
            tasks,
            shared=shared,
            task_timeout=self.task_timeout if self._explicit_timeout else None,
            retry=self.retry if self._explicit_retry else None,
        )

    # imap_tasks: the inherited eager default is correct — the fleet already
    # bounds in-flight work to one shard per worker, and results spool to
    # disk rather than accumulating in worker memory.
