"""Multi-node fleet: fit once, sample and serve anywhere.

Synthesis in this codebase is *fit once, sample forever*: the fitted model
is a frozen set of noisy marginals, and sampling is pure post-processing —
free under DP and embarrassingly parallel.  This package turns that into a
fleet: a coordinator (:class:`LocalCluster`) registers workers over an
authenticated :mod:`multiprocessing.connection` channel with heartbeats and
monotonic liveness expiry (:class:`WorkerRegistry`), fans one release's
shard tasks across them (:class:`ShardQueue` — deterministic
``SeedSequence`` shard assignment, so a multi-node release is digest-equal
to single-node), and fronts replicated HTTP query workers with round-robin
dispatch and per-replica circuit breakers
(:class:`ReplicatedQueryClient`).  The engine integration is one backend
(:class:`FleetBackend`, ``backend="fleet"``)::

    with LocalCluster(workers=4):
        table = synth.sample(200_000, rng=7, shards=8, backend="fleet")

Failure handling reuses :mod:`repro.reliability` wholesale: a worker killed
mid-release (or mid-heartbeat) is expired and its unfinished shards re-run
on their original seed children, bounded by the backend's
:class:`~repro.reliability.RetryPolicy` — see ``docs/fleet.md`` for the
protocol, envelope schema, determinism contract, and failure matrix.
"""

from repro.fleet.backend import FleetBackend
from repro.fleet.cluster import FleetError, LocalCluster, current_cluster
from repro.fleet.messaging import (
    FLEET_SCHEMA_VERSION,
    MESSAGE_TYPES,
    Envelope,
    EnvelopeError,
    decode_envelope,
    encode_envelope,
    seed_from_spec,
    seed_spec,
)
from repro.fleet.queue import ShardQueue, release_seed_specs
from repro.fleet.registry import (
    STATE_ALIVE,
    STATE_EVICTED,
    STATE_EXPIRED,
    WorkerRecord,
    WorkerRegistry,
)
from repro.fleet.serving import NoReplicaAvailableError, ReplicatedQueryClient
from repro.fleet.worker import worker_main

__all__ = [
    "FLEET_SCHEMA_VERSION",
    "MESSAGE_TYPES",
    "STATE_ALIVE",
    "STATE_EVICTED",
    "STATE_EXPIRED",
    "Envelope",
    "EnvelopeError",
    "FleetBackend",
    "FleetError",
    "LocalCluster",
    "NoReplicaAvailableError",
    "ReplicatedQueryClient",
    "ShardQueue",
    "WorkerRecord",
    "WorkerRegistry",
    "current_cluster",
    "decode_envelope",
    "encode_envelope",
    "release_seed_specs",
    "seed_from_spec",
    "seed_spec",
    "worker_main",
]
