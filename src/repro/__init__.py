"""repro: a from-scratch reproduction of NetDPSyn (IMC 2024).

Synthesizes network traces (flows and packets) under record-level
differential privacy by publishing noisy marginals and generating records
from them — plus every substrate the paper's evaluation needs: baseline
synthesizers (PGM, PrivMRF, NetShare), sketching algorithms, a from-scratch
ML suite, the NetML feature library, dataset generators, and a membership-
inference attack.

Quickstart
----------
>>> from repro import NetDPSyn, SynthesisConfig, load_dataset
>>> raw = load_dataset("ton", n_records=2000, seed=0)
>>> synthetic = NetDPSyn(SynthesisConfig(epsilon=2.0), rng=0).synthesize(raw)
"""

from repro.core import NetDPSyn, SynthesisConfig, synthesize
from repro.data import FieldKind, FieldSpec, Schema, TraceTable
from repro.datasets import load_dataset
from repro.serving import (
    ModelRegistry,
    Query,
    QueryAnswer,
    QueryEngine,
    count,
    histogram,
    marginal,
    topk,
)

__version__ = "1.0.0"

# The serving surface (registry + query algebra) is re-exported at top level
# so the fit/sample and query tiers read as one API:
#     from repro import NetDPSyn, ModelRegistry, count, marginal
# ``tests/test_exports.py`` audits this list — update both together.
__all__ = [
    "FieldKind",
    "FieldSpec",
    "ModelRegistry",
    "NetDPSyn",
    "Query",
    "QueryAnswer",
    "QueryEngine",
    "Schema",
    "SynthesisConfig",
    "TraceTable",
    "count",
    "histogram",
    "load_dataset",
    "marginal",
    "synthesize",
    "topk",
    "__version__",
]
