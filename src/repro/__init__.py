"""repro: a from-scratch reproduction of NetDPSyn (IMC 2024).

Synthesizes network traces (flows and packets) under record-level
differential privacy by publishing noisy marginals and generating records
from them — plus every substrate the paper's evaluation needs: baseline
synthesizers (PGM, PrivMRF, NetShare), sketching algorithms, a from-scratch
ML suite, the NetML feature library, dataset generators, and a membership-
inference attack.

Quickstart
----------
>>> from repro import NetDPSyn, SynthesisConfig, load_dataset
>>> raw = load_dataset("ton", n_records=2000, seed=0)
>>> synthetic = NetDPSyn(SynthesisConfig(epsilon=2.0), rng=0).synthesize(raw)
"""

from repro.core import NetDPSyn, SynthesisConfig, synthesize
from repro.data import FieldKind, FieldSpec, Schema, TraceTable
from repro.datasets import load_dataset

__version__ = "1.0.0"

__all__ = [
    "FieldKind",
    "FieldSpec",
    "NetDPSyn",
    "Schema",
    "SynthesisConfig",
    "TraceTable",
    "load_dataset",
    "synthesize",
    "__version__",
]
