"""Figure 8 (Appendix F): GUMMI vs GUM across update-iteration budgets.

GUMMI seeds the synthetic dataset from label-bearing marginals, so DT/GB
accuracy is high from the very first update round; plain GUM (random
independent initialization) needs ~10 rounds to catch up — the paper's
efficiency argument for marginal initialization.
"""

from __future__ import annotations

import numpy as np

from repro.core import NetDPSyn, SynthesisConfig
from repro.experiments.runner import ExperimentScale, split_cached
from repro.ml import accuracy_score, build_classifier

UPDATE_ROUNDS = (1, 2, 3, 4, 5, 10, 20)


def run(
    scale: ExperimentScale | None = None,
    dataset: str = "ton",
    rounds: tuple = UPDATE_ROUNDS,
    models: tuple = ("DT", "GB"),
) -> dict:
    """Return ``{model: {rounds: {"gummi": acc, "gum": acc, "real": acc}}}``."""
    scale = scale or ExperimentScale()
    train, test = split_cached(dataset, scale)
    label = train.schema.label_field.name
    X_test, _ = test.feature_matrix(exclude=(label,))
    y_test = np.asarray(test.column(label))
    X_real, _ = train.feature_matrix(exclude=(label,))
    y_real = np.asarray(train.column(label))

    real_acc = {}
    for model in models:
        classifier = build_classifier(model, rng=scale.seed + 53)
        classifier.fit(X_real, y_real)
        real_acc[model] = float(accuracy_score(y_test, classifier.predict(X_test)))

    results: dict = {m: {} for m in models}
    for init in ("gummi", "gum"):
        config = SynthesisConfig(epsilon=scale.epsilon, delta=scale.delta)
        config.initialization = "gummi" if init == "gummi" else "random"
        config.gum.patience = 10**9  # no early stopping: Fig. 8 sweeps rounds
        synthesizer = NetDPSyn(config, rng=scale.seed + 59)
        synthesizer.fit(train)
        for r in rounds:
            config.gum.iterations = int(r)
            synthetic = synthesizer.sample(n=len(train))
            X_syn, _ = synthetic.feature_matrix(exclude=(label,))
            y_syn = np.asarray(synthetic.column(label))
            for model in models:
                classifier = build_classifier(model, rng=scale.seed + 53)
                classifier.fit(X_syn, y_syn)
                acc = float(accuracy_score(y_test, classifier.predict(X_test)))
                entry = results[model].setdefault(int(r), {"real": real_acc[model]})
                entry[init] = acc
    return results
