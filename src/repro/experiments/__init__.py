"""One module per paper table/figure, plus the shared experiment runner.

Every module exposes a ``run(scale=...)`` function returning plain dicts of
the same rows/series the paper reports.  Benchmarks (``benchmarks/``) and
EXPERIMENTS.md are thin wrappers over this package.
"""

from repro.experiments.runner import (
    ALL_METHODS,
    ExperimentScale,
    clear_cache,
    synthesize_cached,
)

__all__ = ["ALL_METHODS", "ExperimentScale", "clear_cache", "synthesize_cached"]
