"""Serving layer: query throughput (serial vs batched) over a fitted model.

DPMon-style query serving is pure post-processing of the published noisy
marginals, so a deployed NetDPSyn system can answer unlimited queries under
the privacy budget the fit already paid.  This experiment measures what the
serving layer's batched execution plane buys:

- **throughput** — queries/sec of one-by-one :meth:`QueryEngine.run` against
  :meth:`QueryEngine.run_batch` over the same mixed workload (marginals,
  top-k, histograms, filtered counts; marginal-path and sample-path);
- **exactness** — batched answers must be bit-identical to serial answers
  (grouping is an execution optimization, never an approximation);
- **provenance** — every query that projects onto a published pair must be
  answered from the marginal path (no sampling involved);
- **registry behavior** — cache hit after a load, hot reload after the model
  file changes on disk.

Runnable as ``python -m repro.experiments serve`` or standalone::

    python -m repro.experiments.serving
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.binning.categorical import CategoricalCodec
from repro.core import NetDPSyn, SynthesisConfig
from repro.experiments.runner import ExperimentScale
from repro.serving import (
    PROVENANCE_MARGINAL,
    ModelRegistry,
    QueryEngine,
    answers_equal,
    count,
    histogram,
    marginal,
    topk,
)
from repro.utils.timer import Timer

#: Default workload size; large enough that per-query timing noise averages
#: out at smoke scale.
DEFAULT_QUERIES = 2000


def _fit(scale: ExperimentScale) -> NetDPSyn:
    from repro.datasets import load_dataset

    table = load_dataset("ton", n_records=scale.n_records, seed=scale.seed)
    config = SynthesisConfig(epsilon=scale.epsilon, delta=scale.delta)
    config.gum.iterations = scale.gum_iterations
    return NetDPSyn(config, rng=scale.seed + 1).fit(table)


def covered_pairs(plan) -> list:
    """Attribute pairs a single published marginal covers (sorted, unique)."""
    pairs = set()
    for m in plan.published:
        for pair in itertools.combinations(sorted(m.attrs), 2):
            pairs.add(pair)
    return sorted(pairs)


def uncovered_pairs(plan, attrs=None) -> list:
    """Pairs of (original-schema) attributes no published marginal covers."""
    covered = set(covered_pairs(plan))
    names = [a for a in (attrs or plan.original_schema.names) if a in plan.domain]
    return [
        pair
        for pair in itertools.combinations(sorted(names), 2)
        if pair not in covered
    ]


def _categorical_values(plan, attr: str) -> list:
    """Raw category values of one attribute (for filter construction)."""
    codec = plan.codecs[attr]
    base = codec.base if hasattr(codec, "base") else codec
    if isinstance(base, CategoricalCodec):
        return list(base.categories)
    return []


def build_workload(model, n_queries: int = DEFAULT_QUERIES, seed: int = 0) -> list:
    """A deterministic mixed query workload over one fitted model.

    Cycles marginal-path work (published-pair marginals, top-k rankings,
    histograms, filtered counts) with sample-path work (unpublished-pair
    marginals) in a fixed 40/15/15/15/15 mix.  Queries repeat across a small
    number of source groups — the realistic dashboard/monitoring shape that
    batched execution is built for.
    """
    plan = model.plan()
    rng = np.random.default_rng(seed)
    pairs = covered_pairs(plan)
    fallback_pairs = uncovered_pairs(plan)
    numeric = [a for a in ("byt", "pkt", "td", "ts") if a in plan.domain] or list(
        plan.attrs[:1]
    )
    cat_attrs = [a for a in plan.original_schema.names if _categorical_values(plan, a)]
    single = [a for a in plan.original_schema.names if a in plan.domain]

    queries = []
    for i in range(n_queries):
        slot = i % 20
        if slot < 8 and pairs:  # 40%: published-pair marginals
            a, b = pairs[int(rng.integers(len(pairs)))]
            queries.append(marginal(a, b))
        elif slot < 11:  # 15%: top-k rankings
            attr = single[int(rng.integers(len(single)))]
            queries.append(topk(attr, k=int(rng.integers(3, 12))))
        elif slot < 14:  # 15%: histograms
            attr = numeric[int(rng.integers(len(numeric)))]
            queries.append(histogram(attr, bins=int(rng.integers(4, 16))))
        elif slot < 17 and cat_attrs:  # 15%: filtered counts
            attr = cat_attrs[int(rng.integers(len(cat_attrs)))]
            values = _categorical_values(plan, attr)
            queries.append(count(where={attr: values[int(rng.integers(len(values)))]}))
        elif fallback_pairs:  # 15%: sample-path marginals
            a, b = fallback_pairs[int(rng.integers(len(fallback_pairs)))]
            queries.append(marginal(a, b))
        else:  # degenerate plans: everything is covered
            queries.append(count())
    return queries


def measure(engine: QueryEngine, queries: list, repetitions: int = 1) -> dict:
    """Serial vs batched wall clock over one workload (best of ``repetitions``).

    The sample cache is warmed before timing so both paths measure query
    execution, not the one-off synthesis of the fallback sample.
    """
    sample_needed = [q for q in queries if not engine.answerable_from_marginal(q)]
    if sample_needed:
        engine.run(sample_needed[0])  # builds the cached sample once

    serial_seconds = None
    serial_answers = None
    for _ in range(max(1, repetitions)):
        timer = Timer()
        timer.start()
        answers = [engine.run(q) for q in queries]
        elapsed = timer.stop()
        if serial_seconds is None or elapsed < serial_seconds:
            serial_seconds, serial_answers = elapsed, answers

    batched_seconds = None
    batched_answers = None
    for _ in range(max(1, repetitions)):
        timer = Timer()
        timer.start()
        answers = engine.run_batch(queries)
        elapsed = timer.stop()
        if batched_seconds is None or elapsed < batched_seconds:
            batched_seconds, batched_answers = elapsed, answers

    equal = len(serial_answers) == len(batched_answers) and all(
        answers_equal(s, b) for s, b in zip(serial_answers, batched_answers)
    )
    provenance: dict = {}
    for answer in batched_answers:
        provenance[answer.provenance] = provenance.get(answer.provenance, 0) + 1
    return {
        "n_queries": len(queries),
        "repetitions": repetitions,
        "serial_seconds": serial_seconds,
        "serial_queries_per_second": len(queries) / serial_seconds,
        "batched_seconds": batched_seconds,
        "batched_queries_per_second": len(queries) / batched_seconds,
        "batch_speedup": serial_seconds / batched_seconds,
        "batch_equal": equal,
        "provenance": provenance,
    }


def _registry_demo(model, tmp: Path) -> dict:
    """Exercise load -> hit -> hot-reload through a registry on disk."""
    model_path = tmp / "ton.ndpsyn"
    model.save(model_path)
    registry = ModelRegistry(tmp)
    registry.get("ton")  # cold load
    registry.get("ton")  # hit
    # Atomic-replace deployment: rewrite the file, bump mtime past the
    # filesystem's timestamp granularity, observe the reload.
    model.save(model_path)
    stat = model_path.stat()
    os.utime(model_path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
    registry.get("ton")
    stats = registry.stats.as_dict()
    return {
        "models_on_disk": registry.list_models(),
        "stats": stats,
        "hot_reload_ok": stats["reloads"] >= 1 and stats["hits"] >= 1,
    }


def run(
    scale: ExperimentScale | None = None,
    n_queries: int | None = None,
    repetitions: int = 3,
    sample_records: int | None = None,
) -> dict:
    """Fit once, then measure the serving layer end to end at ``scale``."""
    scale = scale or ExperimentScale()
    n_queries = n_queries if n_queries is not None else DEFAULT_QUERIES
    model = _fit(scale)
    plan = model.plan()
    # The fallback sample is floored at 20k records even for tiny fits: a
    # serving tier sizes its cache for answer quality, not for the fit size,
    # and a too-small cache would understate the sample path's real cost.
    if sample_records is None:
        sample_records = max(scale.n_records, 20_000)
    engine = QueryEngine(model, sample_records=sample_records)

    queries = build_workload(model, n_queries=n_queries, seed=scale.seed)
    timing = measure(engine, queries, repetitions=repetitions)

    pair_queries = [
        marginal(a, b) for a, b in covered_pairs(plan)[:16]
    ]
    pair_answers = engine.run_batch(pair_queries)
    pair_marginal_ok = all(
        a.provenance == PROVENANCE_MARGINAL for a in pair_answers
    )

    examples = []
    for query in (count(), topk("dstport", k=3), count(where={"proto": "TCP"})):
        answer = engine.run(query)
        examples.append(
            {
                "query": repr(answer.query),
                "provenance": answer.provenance,
                "value": answer.value if not hasattr(answer.value, "tolist") else answer.value.tolist(),
            }
        )

    with tempfile.TemporaryDirectory() as tmp:
        registry = _registry_demo(model, Path(tmp))

    return {
        "n_records_fit": scale.n_records,
        "n_published_marginals": len(plan.published),
        "n_covered_pairs": len(covered_pairs(plan)),
        "n_fallback_pairs": len(uncovered_pairs(plan)),
        "measure": timing,
        "pair_marginal_provenance_ok": pair_marginal_ok,
        "examples": examples,
        "registry": registry,
    }


def main() -> None:
    payload = run(ExperimentScale())
    print(json.dumps(payload, indent=2, default=float))


if __name__ == "__main__":
    main()
