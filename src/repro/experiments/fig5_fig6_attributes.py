"""Figures 5 and 6 (Appendix E): attribute-wise fidelity measurements.

Categorical attributes are compared with Jensen-Shannon divergence —
SA/DA (source/destination address), SP/DP (ports), PR (protocol).
Continuous attributes use Earth Mover's Distance, normalized per attribute
to [0.1, 0.9] across methods as the paper does:

* flows (Fig. 5, TON): TS, TD, PKT, BYT;
* packets (Fig. 6, CAIDA): PS (packet size), PAT (arrival time), FS (flow
  size = packets per 5-tuple).
"""

from __future__ import annotations

import numpy as np

from repro.data.table import TraceTable
from repro.experiments.runner import ExperimentScale, load_raw_cached, synthesize_cached
from repro.metrics import (
    earth_movers_distance,
    jensen_shannon_divergence,
    normalize_emds,
)

#: Categorical metric name -> column (shared by both figures).
JSD_METRICS = {
    "SA": "srcip",
    "DA": "dstip",
    "SP": "srcport",
    "DP": "dstport",
    "PR": "proto",
}

FLOW_EMD_METRICS = {"TS": "ts", "TD": "td", "PKT": "pkt", "BYT": "byt"}
PACKET_EMD_METRICS = {"PS": "pkt_len", "PAT": "ts", "FS": None}  # FS is derived


def _flow_sizes(table: TraceTable) -> np.ndarray:
    """Packets per 5-tuple (the FS metric of Fig. 6)."""
    groups = table.group_ids(table.schema.effective_flow_key())
    return np.bincount(groups).astype(np.float64)


def _emd_column(table: TraceTable, metric: str, column: str | None) -> np.ndarray:
    if metric == "FS":
        return _flow_sizes(table)
    return np.asarray(table.column(column), dtype=np.float64)


def run(
    scale: ExperimentScale | None = None,
    dataset: str = "ton",
    methods: tuple = ("netdpsyn", "netshare", "pgm", "privmrf"),
) -> dict:
    """Return ``{"jsd": ..., "emd": ..., "emd_normalized": ...}`` per metric/method."""
    scale = scale or ExperimentScale()
    raw = load_raw_cached(dataset, scale)
    emd_metrics = FLOW_EMD_METRICS if raw.schema.kind == "flow" else PACKET_EMD_METRICS

    jsd: dict = {name: {} for name in JSD_METRICS}
    emd: dict = {name: {} for name in emd_metrics}
    for method in methods:
        synthetic, _ = synthesize_cached(method, dataset, scale)
        if synthetic is None:
            for name in JSD_METRICS:
                jsd[name][method] = None
            for name in emd_metrics:
                emd[name][method] = None
            continue
        for name, column in JSD_METRICS.items():
            jsd[name][method] = jensen_shannon_divergence(
                raw.column(column), synthetic.column(column)
            )
        for name, column in emd_metrics.items():
            emd[name][method] = earth_movers_distance(
                _emd_column(raw, name, column), _emd_column(synthetic, name, column)
            )

    emd_normalized: dict = {}
    for name, per_method in emd.items():
        valid = {m: v for m, v in per_method.items() if v is not None}
        scaled = normalize_emds(valid)
        emd_normalized[name] = {
            m: scaled.get(m) if v is not None else None for m, v in per_method.items()
        }
    return {"jsd": jsd, "emd": emd, "emd_normalized": emd_normalized}
