"""Figure 7 and Tables 6/7 (Appendix F): accuracy across privacy budgets.

Fig. 7 lowers epsilon to {0.1, 1.0, 2.0} on TON (all methods, DT and RF);
Tables 6/7 raise it to {4, 16, 32, 64, 1e3, 1e10} comparing NetDPSyn vs
NetShare on TON and UGR16.  The paper's shape: NetDPSyn's accuracy is robust
down to small epsilon and saturates early as epsilon grows, while NetShare
stays far below even at absurd budgets.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ExperimentScale, split_cached, synthesize_cached
from repro.ml import accuracy_score, build_classifier

FIG7_EPSILONS = (0.1, 1.0, 2.0)
TABLE_EPSILONS = (4.0, 16.0, 32.0, 64.0, 1e3, 1e10)


def _evaluate(source, test, label: str, models: tuple, seed: int) -> dict:
    X_test, _ = test.feature_matrix(exclude=(label,))
    y_test = np.asarray(test.column(label))
    X_train, _ = source.feature_matrix(exclude=(label,))
    y_train = np.asarray(source.column(label))
    out = {}
    for model in models:
        classifier = build_classifier(model, rng=seed)
        classifier.fit(X_train, y_train)
        out[model] = float(accuracy_score(y_test, classifier.predict(X_test)))
    return out


def run(
    scale: ExperimentScale | None = None,
    dataset: str = "ton",
    eps_values: tuple = FIG7_EPSILONS,
    methods: tuple = ("netdpsyn", "netshare", "pgm", "privmrf"),
    models: tuple = ("DT", "RF"),
) -> dict:
    """Return ``{epsilon: {model: {method_or_real: accuracy_or_None}}}``."""
    scale = scale or ExperimentScale()
    train, test = split_cached(dataset, scale)
    label = train.schema.label_field.name
    real = _evaluate(train, test, label, models, scale.seed + 47)

    results: dict = {}
    for eps in eps_values:
        per_model: dict = {m: {"real": real[m]} for m in models}
        for method in methods:
            synthetic, _ = synthesize_cached(
                method, dataset, scale, epsilon=eps, from_train=True
            )
            if synthetic is None:
                for m in models:
                    per_model[m][method] = None
                continue
            scores = _evaluate(synthetic, test, label, models, scale.seed + 47)
            for m in models:
                per_model[m][method] = scores[m]
        results[eps] = per_model
    return results


def run_sweep(
    scale: ExperimentScale | None = None,
    dataset: str = "ton",
    eps_values: tuple = TABLE_EPSILONS,
    models: tuple = ("DT", "RF"),
) -> dict:
    """Tables 6/7: the NetDPSyn-vs-NetShare large-epsilon sweep."""
    return run(
        scale,
        dataset=dataset,
        eps_values=eps_values,
        methods=("netdpsyn", "netshare"),
        models=models,
    )
