"""Table 5: dataset summary — generated statistics next to the paper's.

"Domain is computed by summing the domain sizes from all attributes"; for
the synthetic stand-ins we sum distinct observed values per attribute and
report it alongside the paper's reference domain so the relative ordering
(TON < UGR16 < CIDDS < CAIDA ≈ DC) can be checked.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry import DATASET_INFO
from repro.experiments.runner import ExperimentScale, load_raw_cached


def run(scale: ExperimentScale | None = None, datasets: tuple | None = None) -> dict:
    """Return ``{dataset: {records, attributes, domain, label, type, paper_*}}``."""
    scale = scale or ExperimentScale()
    datasets = datasets or tuple(DATASET_INFO)
    results: dict = {}
    for name in datasets:
        table = load_raw_cached(name, scale)
        domain = sum(
            len(np.unique(table.column(field))) for field in table.schema.names
        )
        info = DATASET_INFO[name]
        label = table.schema.label_field
        results[name] = {
            "records": table.n_records,
            "attributes": len(table.schema),
            "domain": int(domain),
            "label": label.name if label else None,
            "type": table.schema.kind,
            "paper_records": info["records"],
            "paper_attributes": info["attributes"],
            "paper_domain": info["domain"],
        }
    return results
