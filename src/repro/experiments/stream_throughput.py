"""Streaming engine: end-to-end sample throughput and bounded-RSS probes.

The release phase is pure post-processing (paper §3.5), so *how* records are
generated, decoded, and written is free under DP.  This experiment measures
what the streaming execution plane buys end to end:

- **throughput** — wall-clock ``sample()`` (GUM + decode) across backends at
  a fixed worker count, against the serial single-shard legacy baseline;
- **digest stability** — sharded decode must not depend on the backend, and
  ``sample_stream`` chunks must concatenate to the in-memory trace;
- **bounded memory** — ``sample_to`` peak RSS, probed from *fresh
  subprocesses* (``getrusage`` reports a lifetime high-water mark, so
  in-process measurements after a fit are meaningless): the model is saved
  once, then each probe loads it, streams ``n`` records to a sink, and
  reports its own peak RSS.  Growing ``n`` 10x at a fixed chunk size should
  leave the peak roughly flat;
- **copy probe** — a sharded ``backend="shared"`` sample with the
  :data:`~repro.data.arena.copy_stats` ledger reset around it: shard tables
  must cross as arena descriptors (``pickled_column_bytes == 0``, asserted
  by the benchmark), and ``bytes_copied_per_record`` — pickled plus stitch
  bytes per synthesized record — is gated against the committed baseline so
  a regression to pickled columns cannot land silently.

Runnable as a CLI for the subprocess probe::

    python -m repro.experiments.stream_throughput --probe MODEL N CHUNK FORMAT
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.core import NetDPSyn, SynthesisConfig
from repro.data.table import TraceTable
from repro.datasets import load_dataset
from repro.experiments.runner import ExperimentScale
from repro.utils.memory import peak_rss_bytes
from repro.utils.timer import Timer

#: (backend, shards) grid for the end-to-end throughput rows.
DEFAULT_GRID = (
    ("serial", 1),
    ("serial", 4),
    ("process", 4),
    ("shared", 4),
)

#: Shard count for the cross-backend digest-stability check.
STABILITY_SHARDS = 3


def _fit(n_records: int, seed: int, epsilon: float, delta: float, iterations: int):
    table = load_dataset("ton", n_records=n_records, seed=seed)
    config = SynthesisConfig(epsilon=epsilon, delta=delta)
    config.gum.iterations = iterations
    synthesizer = NetDPSyn(config, rng=seed + 1).fit(table)
    synthesizer.plan()  # build outside the timed region
    return synthesizer


def _time_sample(synthesizer, n: int, seed: int, backend: str, shards: int, reps: int):
    """Best-of-``reps`` end-to-end sample() wall clock (GUM + decode)."""
    seconds = None
    trace = None
    for _ in range(max(reps, 1)):
        timer = Timer()
        timer.start()
        trace = synthesizer.sample(n, rng=seed, shards=shards, backend=backend)
        elapsed = timer.stop()
        if seconds is None or elapsed < seconds:
            seconds = elapsed
    return seconds, trace.content_digest()


def rss_probe(model_path, n: int, chunk: int, sink_format: str = "null") -> dict:
    """Run one ``sample_to`` in a fresh subprocess; return its self-report.

    The child loads the saved model, streams ``n`` records through a sink,
    and prints a JSON line with its own peak RSS — clean numbers untouched by
    this process's fit-time high-water mark.
    """
    out = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.experiments.stream_throughput",
            "--probe",
            str(model_path),
            str(n),
            str(chunk),
            sink_format,
        ],
        capture_output=True,
        text=True,
        check=True,
        env=os.environ.copy(),
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _run_probe(model_path: str, n: int, chunk: int, sink_format: str) -> dict:
    """Child side of :func:`rss_probe` (``--probe`` entry point)."""
    worker = NetDPSyn.load(model_path)
    with tempfile.TemporaryDirectory() as tmp:
        suffix = "out" if sink_format == "null" else sink_format
        report = worker.sample_to(
            Path(tmp) / f"trace.{suffix}",
            n=n,
            format=sink_format,
            chunk=chunk,
            rng=1234,
        )
    return {
        "n_records": report.n_records,
        "n_chunks": report.n_chunks,
        "seconds": report.seconds,
        "records_per_second": report.records_per_second,
        "peak_rss_bytes": peak_rss_bytes(),
    }


def copy_probe(synthesizer, n: int, seed: int, shards: int = 4) -> dict:
    """Byte-movement ledger around one sharded ``backend="shared"`` sample.

    ``n`` is floored at 4000 so each of the ``shards`` decoded shard tables
    stays above ``SHM_MIN_BYTES`` — smaller tables legitimately pickle
    through whole, which would make ``pickled_column_bytes`` scale-dependent
    instead of an invariant.
    """
    from repro.data.arena import copy_stats

    probe_n = max(min(n, 20_000), 4_000)
    copy_stats.reset()
    trace = synthesizer.sample(probe_n, rng=seed, shards=shards, backend="shared")
    snap = copy_stats.snapshot()
    return {
        "n_records": trace.n_records,
        "shards": shards,
        "pickled_column_bytes": snap["pickled_array_bytes"],
        "stitch_bytes": snap["stitch_bytes"],
        "arena_bytes": snap["arena_bytes_peak"],
        "bytes_copied_per_record": (
            (snap["pickled_array_bytes"] + snap["stitch_bytes"]) / trace.n_records
            if trace.n_records
            else 0.0
        ),
    }


def verify_stream_equality(synthesizer, n: int, seed: int) -> dict:
    """Chunked stream concatenation must equal the in-memory sample."""
    expected = synthesizer.sample(
        n, rng=seed, shards=STABILITY_SHARDS, backend="serial"
    ).content_digest()
    chunks = list(
        synthesizer.sample_stream(
            n, chunk=max(1, n // 4), rng=seed, shards=STABILITY_SHARDS
        )
    )
    streamed = TraceTable.concat_all(chunks).content_digest()
    return {"expected": expected, "streamed": streamed, "matches": streamed == expected}


def run(
    scale: ExperimentScale | None = None,
    n_synth: int | None = None,
    grid=DEFAULT_GRID,
    repetitions: int = 1,
    rss_base: int | None = None,
    rss_growth: int = 10,
    rss_format: str = "null",
) -> dict:
    """Measure the streaming release path at ``scale``.

    ``rss_base`` (default: a quarter of the synthesis budget) is both the
    base record count and the chunk size of the RSS probes; the grown probe
    streams ``rss_growth``x as many records through the same chunk size.
    """
    scale = scale or ExperimentScale()
    n = n_synth if n_synth is not None else scale.n_records
    synthesizer = _fit(
        scale.n_records, scale.seed, scale.epsilon, scale.delta, scale.gum_iterations
    )

    rows = {}
    for backend, shards in grid:
        seconds, sample_digest = _time_sample(
            synthesizer, n, scale.seed + 101, backend, shards, repetitions
        )
        rows[f"{backend}-{shards}"] = {
            "backend": backend,
            "shards": shards,
            "seconds": seconds,
            "records_per_second": n / seconds if seconds > 0 else float("inf"),
            "digest": sample_digest,
        }
    baseline = rows.get("serial-1", {}).get("seconds")
    for row in rows.values():
        row["speedup_vs_serial"] = (
            baseline / row["seconds"] if baseline and row["seconds"] > 0 else None
        )

    stability = {
        backend: synthesizer.sample(
            min(n, 2000), rng=scale.seed + 7, shards=STABILITY_SHARDS, backend=backend
        ).content_digest()
        for backend in ("serial", "process", "shared")
    }

    result = {
        "n_records_fit": scale.n_records,
        "n_synthesized": n,
        "gum_iterations": scale.gum_iterations,
        "repetitions": repetitions,
        "rows": rows,
        "decode_digest_stability": {
            "digests": stability,
            "matches": len(set(stability.values())) == 1,
        },
        "stream_equality": verify_stream_equality(
            synthesizer, min(n, 2000), scale.seed + 31
        ),
        "copy_probe": copy_probe(synthesizer, n, scale.seed + 53),
    }

    base = rss_base if rss_base is not None else max(1, n // 4)
    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "model.ndpsyn"
        synthesizer.save(model_path)
        small = rss_probe(model_path, base, chunk=base, sink_format=rss_format)
        grown = rss_probe(model_path, base * rss_growth, chunk=base, sink_format=rss_format)
    ratio = (
        grown["peak_rss_bytes"] / small["peak_rss_bytes"]
        if small["peak_rss_bytes"] > 0
        else None
    )
    result["rss"] = {
        "format": rss_format,
        "growth": rss_growth,
        "base": small,
        "grown": grown,
        "peak_rss_ratio": ratio,
    }
    return result


def main(argv=None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] == ["--probe"]:
        model_path, n, chunk, sink_format = argv[1:5]
        print(json.dumps(_run_probe(model_path, int(n), int(chunk), sink_format)))
        return
    payload = run(ExperimentScale())
    print(json.dumps(payload, indent=2, default=float))


if __name__ == "__main__":
    main()
