"""Design-choice ablations called out by DESIGN.md (§3 of the paper).

Three NetDPSyn components are ablated on TON:

* **allocation** — PrivSyn's weighted (rho_i ∝ c_i^{2/3}) vs uniform budget
  split across published marginals, measured by mean categorical JSD;
* **frequency binning** — the merge threshold (in noise sigmas) vs the
  resulting domain size and port-distribution JSD;
* **protocol rules** — the tau-capped FTP⇒TCP rule on vs off, measured by
  the fraction of synthesized FTP flows carried over UDP.
"""

from __future__ import annotations

import numpy as np

from repro.core import NetDPSyn, SynthesisConfig
from repro.experiments.runner import ExperimentScale, load_raw_cached
from repro.metrics import jensen_shannon_divergence

_JSD_COLUMNS = ("srcip", "dstip", "srcport", "dstport", "proto")


def _mean_jsd(raw, synthetic, columns=_JSD_COLUMNS) -> float:
    return float(
        np.mean(
            [
                jensen_shannon_divergence(raw.column(c), synthetic.column(c))
                for c in columns
            ]
        )
    )


def run_allocation(scale: ExperimentScale | None = None, dataset: str = "ton") -> dict:
    """Weighted vs uniform marginal-budget allocation."""
    scale = scale or ExperimentScale()
    raw = load_raw_cached(dataset, scale)
    out = {}
    for name, weighted in (("weighted", True), ("uniform", False)):
        config = SynthesisConfig(epsilon=scale.epsilon, weighted_allocation=weighted)
        config.gum.iterations = scale.gum_iterations
        synthetic = NetDPSyn(config, rng=scale.seed + 71).synthesize(raw)
        out[name] = _mean_jsd(raw, synthetic)
    return out


def run_binning_threshold(
    scale: ExperimentScale | None = None,
    dataset: str = "ton",
    thresholds: tuple = (0.0, 3.0, 8.0),
) -> dict:
    """Frequency-merge threshold vs domain size and port fidelity."""
    scale = scale or ExperimentScale()
    raw = load_raw_cached(dataset, scale)
    out = {}
    for sigmas in thresholds:
        config = SynthesisConfig(epsilon=scale.epsilon)
        config.encoder.freq_threshold_sigmas = float(sigmas)
        config.gum.iterations = scale.gum_iterations
        synthesizer = NetDPSyn(config, rng=scale.seed + 73)
        synthetic = synthesizer.synthesize(raw)
        domain_total = synthesizer.encoder.codecs["dstport"].domain_size
        out[sigmas] = {
            "dstport_bins": int(domain_total),
            "dstport_jsd": float(
                jensen_shannon_divergence(raw.column("dstport"), synthetic.column("dstport"))
            ),
        }
    return out


def run_protocol_rules(
    scale: ExperimentScale | None = None, dataset: str = "ugr16"
) -> dict:
    """FTP⇒TCP rule on vs off: fraction of port-21 flows carried over UDP."""
    scale = scale or ExperimentScale()
    raw = load_raw_cached(dataset, scale)

    def ftp_udp_fraction(table) -> float:
        dstport = np.asarray(table.column("dstport"))
        proto = np.asarray(table.column("proto"))
        ftp = np.isin(dstport, (20, 21))
        if not ftp.any():
            return 0.0
        return float(np.mean(proto[ftp] == "UDP"))

    out = {"raw": ftp_udp_fraction(raw)}
    for name, rules in (("rules_on", None), ("rules_off", [])):
        config = SynthesisConfig(epsilon=scale.epsilon, rules=rules)
        config.gum.iterations = scale.gum_iterations
        synthetic = NetDPSyn(config, rng=scale.seed + 79).synthesize(raw)
        out[name] = ftp_udp_fraction(synthetic)
    return out
