"""Figure 2: relative error of sketch algorithms on synthesized packet traces.

Heavy hitters (threshold 0.1%) are computed on DC's ``dstip`` and CAIDA's
``srcip``; each sketch's estimation error on raw vs synthesized streams is
compared (10 randomized trials, as in the paper).  Lower is better; the
paper's shape is NetShare ≫ the marginal-based methods (up to 12x NetDPSyn).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ExperimentScale, load_raw_cached, synthesize_cached
from repro.sketch import (
    CountMinSketch,
    CountSketch,
    NitroSketch,
    UnivMon,
    sketch_fidelity_error,
)

#: Figure 2's x-axis with the paper's abbreviations.
SKETCHES = ("CMS", "CS", "UM", "NS")

#: Which address column carries the heavy hitters per dataset (paper §4.2).
HH_KEYS = {"dc": "dstip", "caida": "srcip"}

# Sketch sizes follow the paper's stream-to-memory ratio: the evaluation
# runs 1M-packet streams against kilobyte-scale sketches, so estimation
# error on heavy hitters is non-trivial.  At our scaled streams (~6k
# packets) that ratio maps to width ~128.
_FACTORIES = {
    "CMS": lambda rng: CountMinSketch(width=128, depth=3, rng=rng),
    "CS": lambda rng: CountSketch(width=128, depth=3, rng=rng),
    "UM": lambda rng: UnivMon(levels=6, width=256, depth=3, rng=rng),
    "NS": lambda rng: NitroSketch(width=128, depth=3, sample_rate=0.25, rng=rng),
}


def run(
    scale: ExperimentScale | None = None,
    datasets: tuple = ("dc", "caida"),
    methods: tuple = ("netdpsyn", "netshare", "pgm"),
    threshold: float = 0.001,
    trials: int = 10,
) -> dict:
    """Return ``{dataset: {sketch: {method: relative_error_or_None}}}``."""
    scale = scale or ExperimentScale()
    results: dict = {}
    for dataset in datasets:
        raw = load_raw_cached(dataset, scale)
        raw_keys = np.asarray(raw.column(HH_KEYS[dataset]), dtype=np.int64)
        per_sketch: dict = {name: {} for name in SKETCHES}
        for method in methods:
            synthetic, _ = synthesize_cached(method, dataset, scale)
            if synthetic is None:
                for name in SKETCHES:
                    per_sketch[name][method] = None
                continue
            syn_keys = np.asarray(synthetic.column(HH_KEYS[dataset]), dtype=np.int64)
            for name in SKETCHES:
                error = sketch_fidelity_error(
                    _FACTORIES[name],
                    raw_keys,
                    syn_keys,
                    threshold=threshold,
                    trials=trials,
                    rng=scale.seed + 5,
                )
                per_sketch[name][method] = None if np.isnan(error) else float(error)
        results[dataset] = per_sketch
    return results
