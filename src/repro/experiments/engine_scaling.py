"""Engine scaling: sampling-phase throughput across shard counts and backends.

Record synthesis is pure post-processing (paper §3.4): the privacy budget is
fully spent at publication time, so the GUM sampling loop can be sharded and
parallelized freely.  This experiment fits one NetDPSyn model on a ToN-style
workload, then times ``sample()`` under each engine configuration and reports
records/second plus the speedup over the serial baseline.  The serial
single-shard baseline is the legacy (pre-engine) implementation bit for bit,
so the speedups quantify exactly what the engine adds.

Timings are the engine's own sampling-phase instrumentation
(:attr:`GumResult.seconds` covers initialization + GUM across all shards);
decoding is identical in every configuration and excluded.
"""

from __future__ import annotations

from repro.core import NetDPSyn, SynthesisConfig
from repro.datasets import load_dataset
from repro.experiments.runner import ExperimentScale
from repro.synthesis.kernels import available_kernels

#: (backend, shards) grid reported by the benchmark, in column order.
DEFAULT_GRID = (
    ("serial", 1),
    ("process", 1),
    ("serial", 2),
    ("process", 2),
    ("process", 4),
)

#: Kernels timed on the single-shard serial configuration (the kernel
#: dimension of the benchmark); restricted to what this host can run.
def kernel_grid() -> tuple:
    return available_kernels()

#: SHA-256 of the trace the PRE-ENGINE ``sample()`` produces for the pinned
#: workload of :func:`verify_bit_identity` (captured from the seed repo with
#: the marginal-combination order made deterministic).  The engine's
#: single-shard path must keep reproducing it bit for bit.
PRE_REFACTOR_GOLDEN = "4a64762ef8c2fc6ca8fd194d44af15be7c34c09213662866c853880dac4f3e4b"


def _fit(n_records: int, seed: int, epsilon: float, delta: float, iterations: int):
    table = load_dataset("ton", n_records=n_records, seed=seed)
    config = SynthesisConfig(epsilon=epsilon, delta=delta)
    config.gum.iterations = iterations
    synthesizer = NetDPSyn(config, rng=seed + 1).fit(table)
    synthesizer.plan()  # build outside the timed region
    return synthesizer


def verify_bit_identity() -> dict:
    """Check the engine's serial path against the pre-engine golden digest.

    Runs the exact workload the golden was captured on (ton n=2500 seed=31,
    eps=2.0, 15 GUM iterations, fit rng=7, ``sample(2000, rng=123)``).
    """
    table = load_dataset("ton", n_records=2500, seed=31)
    config = SynthesisConfig(epsilon=2.0)
    config.gum.iterations = 15
    synthesizer = NetDPSyn(config, rng=7).fit(table)
    digest = synthesizer.sample(2000, rng=123).content_digest()
    return {
        "digest": digest,
        "golden": PRE_REFACTOR_GOLDEN,
        "matches": digest == PRE_REFACTOR_GOLDEN,
    }


def run(
    scale: ExperimentScale | None = None,
    n_synth: int | None = None,
    grid=DEFAULT_GRID,
    kernels: tuple | None = None,
    repetitions: int = 1,
    check_bit_identity: bool = True,
) -> dict:
    """Time the sampling phase for every engine configuration in ``grid``.

    ``n_synth`` defaults to the fit size.  With ``repetitions > 1`` the best
    (minimum) time per configuration is reported, benchmark-style.

    Two dimensions are reported:

    - ``rows``: the (backend, shards) grid, run on the ``auto`` kernel;
    - ``kernel_rows``: every kernel in ``kernels`` (default: all available
      on this host) on the single-shard serial configuration — the
      single-core comparison the kernel speedup gate reads.  All kernels
      are bit-identical, so every kernel row must report the same digest.
    """
    scale = scale or ExperimentScale()
    n = n_synth if n_synth is not None else scale.n_records
    synthesizer = _fit(
        scale.n_records, scale.seed, scale.epsilon, scale.delta, scale.gum_iterations
    )

    def time_config(shards: int, backend: str, kernel: str | None) -> dict:
        seconds = None
        digest = None
        for _ in range(max(repetitions, 1)):
            out = synthesizer.sample(
                n, rng=scale.seed + 101, shards=shards, backend=backend, kernel=kernel
            )
            elapsed = synthesizer.gum_result.seconds
            if seconds is None or elapsed < seconds:
                seconds = elapsed
            digest = out.content_digest()
        return {
            "backend": backend,
            "shards": shards,
            "kernel": synthesizer.gum_result.kernel,
            "seconds": seconds,
            "records_per_second": n / seconds if seconds > 0 else float("inf"),
            "digest": digest,
        }

    rows = {}
    for backend, shards in grid:
        rows[f"{backend}-{shards}"] = time_config(shards, backend, None)

    baseline = rows["serial-1"]["seconds"] if "serial-1" in rows else None
    for row in rows.values():
        row["speedup_vs_serial"] = (
            baseline / row["seconds"] if baseline and row["seconds"] > 0 else None
        )

    kernel_rows = {}
    for kernel in kernel_grid() if kernels is None else kernels:
        kernel_rows[kernel] = time_config(1, "serial", kernel)
    ref = kernel_rows.get("reference", {}).get("seconds")
    for row in kernel_rows.values():
        row["speedup_vs_reference"] = (
            ref / row["seconds"] if ref and row["seconds"] > 0 else None
        )

    result = {
        "n_records_fit": scale.n_records,
        "n_synthesized": n,
        "gum_iterations": scale.gum_iterations,
        "repetitions": repetitions,
        "rows": rows,
        "kernel_rows": kernel_rows,
    }
    if check_bit_identity:
        result["bit_identity"] = verify_bit_identity()
    return result
