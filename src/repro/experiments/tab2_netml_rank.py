"""Table 2: rank correlation of the NetML modes, packet datasets.

The six feature modes are ranked by the anomaly ratio they produce on raw vs
synthetic packets; Spearman's rho of those rankings is reported (higher is
better).  Methods with no valid flows stay "N/A".
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig4_netml
from repro.experiments.runner import ExperimentScale
from repro.metrics import spearman_rank_correlation


def from_fig4(fig4_results: dict) -> dict:
    """Derive ``{dataset: {method: rho_or_None}}`` from Figure 4's output."""
    table: dict = {}
    for dataset, payload in fig4_results.items():
        raw_ratios = payload["_raw_ratio"]
        syn_ratios = payload["_syn_ratio"]
        row: dict = {}
        for method, ratios in syn_ratios.items():
            pairs = []
            for mode, syn in ratios.items():
                raw = raw_ratios.get(mode)
                if raw is None or syn is None or np.isnan(raw) or np.isnan(syn):
                    continue
                pairs.append((raw, syn))
            if len(pairs) < 2:
                row[method] = None
            else:
                row[method] = spearman_rank_correlation(
                    [p[0] for p in pairs], [p[1] for p in pairs]
                )
        table[dataset] = row
    return table


def run(scale: ExperimentScale | None = None, **kwargs) -> dict:
    """Compute Fig. 4 then reduce it to the Table 2 rank correlations."""
    return from_fig4(fig4_netml.run(scale, **kwargs))
