"""Shared experiment machinery: synthesizer factory, scaling, result caching.

The paper runs on 295k-1M-record traces on a 32-core/256 GB workstation;
:class:`ExperimentScale` shrinks record counts and iteration budgets to
laptop scale while preserving every comparison's structure.  Synthetic
outputs are cached per ``(method, dataset, n, epsilon, seed)`` because many
tables/figures share them (e.g. Fig. 3 and Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.baselines import (
    MemoryBudgetExceeded,
    NetShareConfig,
    NetShareSynthesizer,
    PgmConfig,
    PgmSynthesizer,
    PrivMrfConfig,
    PrivMrfSynthesizer,
)
from repro.core import NetDPSyn, SynthesisConfig
from repro.data.table import TraceTable
from repro.datasets import load_dataset
from repro.utils.timer import Timer

#: Synthesis methods in the paper's column order.
ALL_METHODS = ("netdpsyn", "netshare", "pgm", "privmrf")


@dataclass
class ExperimentScale:
    """Laptop-scale knobs; the paper-scale equivalents are in DESIGN.md."""

    n_records: int = 6000
    seed: int = 0
    epsilon: float = 2.0
    delta: float = 1e-5
    gum_iterations: int = 25
    netshare_pretrain: int = 100
    netshare_finetune: int = 120
    gibbs_sweeps: int = 4
    privmrf_memory_bytes: int = 256 * 1024**3  # the paper's workstation (modeled)
    #: Print per-stage fit instrumentation (``synth.fit_report``) after each
    #: synthesis; flip with ``python -m repro.experiments ... --verbose``.
    verbose: bool = False

    def smaller(self, n_records: int | None = None) -> "ExperimentScale":
        """A reduced copy for expensive sweeps (never above the original)."""

        def halve(value: int, floor: int) -> int:
            return min(value, max(value // 2, floor))

        out = ExperimentScale(**self.__dict__)
        if n_records is not None:
            out.n_records = n_records
        out.netshare_pretrain = halve(self.netshare_pretrain, 30)
        out.netshare_finetune = halve(self.netshare_finetune, 40)
        out.gum_iterations = halve(self.gum_iterations, 10)
        return out


def build_synthesizer(
    method: str,
    scale: ExperimentScale,
    epsilon: float | None = None,
    rng: np.random.Generator | int | None = None,
):
    """Instantiate one synthesizer at the given scale."""
    eps = epsilon if epsilon is not None else scale.epsilon
    method = method.lower()
    if method == "netdpsyn":
        config = SynthesisConfig(epsilon=eps, delta=scale.delta)
        config.gum.iterations = scale.gum_iterations
        return NetDPSyn(config, rng=rng)
    if method == "netshare":
        config = NetShareConfig(
            epsilon=eps,
            delta=scale.delta,
            pretrain_iterations=scale.netshare_pretrain,
            finetune_iterations=scale.netshare_finetune,
        )
        return NetShareSynthesizer(config, rng=rng)
    if method == "pgm":
        return PgmSynthesizer(PgmConfig(epsilon=eps, delta=scale.delta), rng=rng)
    if method == "privmrf":
        config = PrivMrfConfig(
            epsilon=eps,
            delta=scale.delta,
            gibbs_sweeps=scale.gibbs_sweeps,
            memory_budget_bytes=scale.privmrf_memory_bytes,
        )
        return PrivMrfSynthesizer(config, rng=rng)
    raise KeyError(f"unknown method {method!r}; expected one of {ALL_METHODS}")


_RAW_CACHE: dict = {}
_SPLIT_CACHE: dict = {}
_SYN_CACHE: dict = {}

#: Fraction held out for testing (paper: 80/20 random split, §4.3).
TEST_FRACTION = 0.2


def load_raw_cached(dataset: str, scale: ExperimentScale) -> TraceTable:
    """Deterministic raw trace, cached per (dataset, n, seed)."""
    key = (dataset, scale.n_records, scale.seed)
    if key not in _RAW_CACHE:
        _RAW_CACHE[key] = load_dataset(dataset, n_records=scale.n_records, seed=scale.seed)
    return _RAW_CACHE[key]


def split_cached(dataset: str, scale: ExperimentScale) -> tuple:
    """Deterministic (train_table, test_table) 80/20 split of the raw trace."""
    key = (dataset, scale.n_records, scale.seed)
    if key not in _SPLIT_CACHE:
        raw = load_raw_cached(dataset, scale)
        rng = np.random.default_rng(scale.seed + 17)
        perm = rng.permutation(raw.n_records)
        n_test = max(int(round(raw.n_records * TEST_FRACTION)), 1)
        _SPLIT_CACHE[key] = (raw.take(perm[n_test:]), raw.take(perm[:n_test]))
    return _SPLIT_CACHE[key]


def synthesize_cached(
    method: str,
    dataset: str,
    scale: ExperimentScale,
    epsilon: float | None = None,
    from_train: bool = False,
    model_dir: str | Path | None = None,
) -> tuple:
    """Synthesize (or fetch) a trace; returns ``(table_or_None, seconds)``.

    ``None`` output means the method failed structurally (PrivMRF memory) —
    rendered as the paper's "N/A".  ``from_train=True`` synthesizes from the
    80% train split (so test records are never seen by the synthesizer).

    ``model_dir`` enables fit-once/sample-anywhere for NetDPSyn: fitted
    models persist there (:meth:`NetDPSyn.save`) and later runs — including
    fresh processes — load instead of refitting.  The saved seed sequence
    makes the loaded model's first ``sample()`` identical to the first
    sample of the run that fitted it, so the cache is output-stable.
    """
    eps = epsilon if epsilon is not None else scale.epsilon
    key = (method, dataset, scale.n_records, scale.seed, eps, from_train)
    if key in _SYN_CACHE:
        return _SYN_CACHE[key]
    if from_train:
        raw, _ = split_cached(dataset, scale)
    else:
        raw = load_raw_cached(dataset, scale)
    synthesizer = build_synthesizer(method, scale, epsilon=eps, rng=scale.seed + 1)
    with Timer() as timer:
        try:
            if method.lower() == "netdpsyn" and model_dir is not None:
                model_path = Path(model_dir) / (
                    f"netdpsyn-{dataset}-n{scale.n_records}-s{scale.seed}"
                    f"-e{eps}-t{int(from_train)}.ndpsyn"
                )
                if model_path.exists():
                    synthesizer = NetDPSyn.load(model_path)
                else:
                    synthesizer.fit(raw)
                    synthesizer.save(model_path)
                synthetic = synthesizer.sample(len(raw))
            else:
                synthetic = synthesizer.synthesize(raw, n=len(raw))
        except MemoryBudgetExceeded:
            synthetic = None
    if scale.verbose:
        _print_fit_report(method, dataset, synthesizer)
    result = (synthetic, timer.elapsed)
    _SYN_CACHE[key] = result
    return result


def _print_fit_report(method: str, dataset: str, synthesizer) -> None:
    """Verbose mode: per-stage fit timings for synthesizers that expose them."""
    report = getattr(synthesizer, "fit_report", None)
    if report is None:
        return
    for line in report.lines():
        print(f"[{method}/{dataset}] {line}")


def clear_cache() -> None:
    """Drop all cached raw and synthetic tables (tests use this)."""
    _RAW_CACHE.clear()
    _SPLIT_CACHE.clear()
    _SYN_CACHE.clear()
