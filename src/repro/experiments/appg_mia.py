"""Appendix G: membership inference against raw vs synthesized training data.

The Yeom loss-threshold attack targets a classifier trained on (a) the raw
TON train split and (b) NetDPSyn outputs at decreasing epsilon.  The paper's
shape: ~64% attack accuracy on raw, ~56% at eps=2, ~41% at eps=0.1 — DP
synthesis collapses the membership signal toward (or below) chance.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import loss_threshold_mia
from repro.experiments.runner import ExperimentScale, split_cached, synthesize_cached
from repro.ml import DecisionTreeClassifier, RandomForestClassifier, build_classifier

MIA_EPSILONS = (2.0, 0.1)


def _target_model(model: str, seed: int):
    """The attacked classifier.

    The Yeom attack exploits the generalization gap, so the overfit targets
    are deliberately unregularized: a deep tree (the setting where the
    paper's raw baseline reaches ~64% attack accuracy) and a small deep
    forest ("overfit-rf" — graded leaf probabilities give the AUC-based
    privacy gates a stronger, less tie-bound signal than the tree's near
    0/1 losses).  Any zoo model name also works.
    """
    if model == "overfit-dt":
        return DecisionTreeClassifier(max_depth=40, min_samples_leaf=1, rng=seed)
    if model == "overfit-rf":
        return RandomForestClassifier(
            n_estimators=10, max_depth=25, min_samples_leaf=1, rng=seed
        )
    return build_classifier(model, rng=seed)


def run(
    scale: ExperimentScale | None = None,
    dataset: str = "ton",
    eps_values: tuple = MIA_EPSILONS,
    model: str = "RF",
    target_subsample: int = 400,
) -> dict:
    """Return ``{"raw": acc, eps: acc_or_None, ...}`` attack accuracies.

    The raw target trains on a ``target_subsample``-row subset of the train
    split (the classic Yeom setting: small training sets overfit hard, so
    the membership signal is visible).  The surrogate models train on
    synthetic data derived from the full train split; attack members remain
    the same subsample.
    """
    scale = scale or ExperimentScale()
    train, test = split_cached(dataset, scale)
    label = train.schema.label_field.name
    sub_rng = np.random.default_rng(scale.seed + 71)
    sub_idx = sub_rng.choice(
        train.n_records, size=min(target_subsample, train.n_records), replace=False
    )
    members = train.take(sub_idx)
    X_members, _ = members.feature_matrix(exclude=(label,))
    y_members = np.asarray(members.column(label))
    X_test, _ = test.feature_matrix(exclude=(label,))
    y_test = np.asarray(test.column(label))

    results: dict = {}
    target = _target_model(model, scale.seed + 61)
    target.fit(X_members, y_members)
    results["raw"] = loss_threshold_mia(
        target, X_members, y_members, X_test, y_test, rng=scale.seed + 67
    ).accuracy

    for eps in eps_values:
        synthetic, _ = synthesize_cached(
            "netdpsyn", dataset, scale, epsilon=eps, from_train=True
        )
        if synthetic is None:  # pragma: no cover - NetDPSyn never OOMs
            results[eps] = None
            continue
        X_syn, _ = synthetic.feature_matrix(exclude=(label,))
        y_syn = np.asarray(synthetic.column(label))
        surrogate = _target_model(model, scale.seed + 61)
        surrogate.fit(X_syn, y_syn)
        results[eps] = loss_threshold_mia(
            surrogate, X_members, y_members, X_test, y_test, rng=scale.seed + 67
        ).accuracy
    return results
