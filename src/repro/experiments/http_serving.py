"""HTTP serving: closed-loop concurrent load over the micro-batched service.

``bench_serving`` measures the in-process batched execution plane; this
experiment measures what a *network client* actually gets.  It stands up the
real stdlib HTTP server (:mod:`repro.serving.http`) over a saved model and
drives it with N closed-loop threaded clients (persistent keep-alive
connections, each firing its next request the moment the previous answer
lands), comparing three service configurations:

- **unbatched** — ``batch_window=0``, answer cache off: every request runs
  ``engine.run`` by itself (the batch-size-1 baseline);
- **batched** — a few-millisecond micro-batching window, cache off:
  concurrent requests ride one ``run_batch`` execution;
- **cached** — the batched config with the answer cache on (the production
  default): repeated dashboard queries short-circuit entirely.

Measured per configuration: queries/sec, p50/p99 client-observed latency,
and the service's own batch/cache counters.  Correctness checks: every HTTP
answer is **bit-identical** to a direct, independently constructed
:class:`~repro.serving.QueryEngine` answering the same query
(``answer_from_wire`` -> ``answers_equal``), and a registry hot-reload
invalidates the answer cache (the stale-answer test: overwrite the model
file, observe the served answer change to the new model's).

The workload is the dashboard shape micro-batching is built for: many
clients repeating a small set of distinct queries, weighted toward
sample-path filtered counts/topk over *unpublished* attribute pairs — the
expensive shared-group work where one grouped execution amortizes across
everyone in the window — plus cheap marginal-path counts, rankings, and
histograms.

Runnable as ``python -m repro.experiments servehttp`` or standalone::

    python -m repro.experiments.http_serving
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.client import HTTPConnection, RemoteDisconnected
from pathlib import Path

import numpy as np

from repro.experiments.runner import ExperimentScale
from repro.experiments.serving import (
    _categorical_values,
    _fit,
    covered_pairs,
    uncovered_pairs,
)
from repro.serving import (
    ModelRegistry,
    Prefer,
    QueryEngine,
    QueryService,
    ServiceConfig,
    answer_from_wire,
    answers_equal,
    count,
    histogram,
    marginal,
    query_to_wire,
    topk,
)
from repro.serving.http import serve_in_thread

#: Distinct queries in the workload (clients cycle through them offset by
#: client id, so concurrent requests overlap heavily in batch groups).
DEFAULT_DISTINCT = 48

#: Micro-batching window of the batched/cached configurations (seconds).
DEFAULT_WINDOW = 0.003

#: Generous stall ceiling: client-observed p99 beyond this means the service
#: wedged (deadlocked batcher, lost wakeup), not that it is merely slow.
P99_CEILING_SECONDS = 0.5


def _filter_values(plan, attr: str, rng, k: int = 3) -> list:
    """Up to ``k`` raw values of ``attr`` usable in a ``where`` filter."""
    values = _categorical_values(plan, attr)
    if not values:
        bounds = plan.codecs[attr].bin_bounds()
        if bounds is None:
            return []
        lo, hi = bounds
        values = [float(v) for v in ((np.asarray(lo) + np.asarray(hi)) / 2.0)[:64]]
    if len(values) <= k:
        return list(values)
    picks = rng.choice(len(values), size=k, replace=False)
    return [values[int(i)] for i in picks]


def build_http_workload(model, n_distinct: int = DEFAULT_DISTINCT, seed: int = 0) -> list:
    """A deterministic dashboard workload of ``n_distinct`` queries.

    Slot mix per 8 queries: 4 sample-path filtered counts/topk over
    unpublished pairs (heavy shared-group compute, tiny answers), 2
    marginal-path filtered counts / top-k rankings, 1 histogram, 1 total
    count.  Falls back to published-pair work when the plan covers
    everything (degenerate tiny fits).
    """
    plan = model.plan()
    rng = np.random.default_rng(seed)
    fallback = uncovered_pairs(plan)
    published = covered_pairs(plan)
    numeric = [a for a in ("byt", "pkt", "td", "ts") if a in plan.domain] or list(
        plan.attrs[:1]
    )
    cat_attrs = [a for a in plan.original_schema.names if _categorical_values(plan, a)]
    # Concentrate sample-path work on a handful of pairs: run_batch shares one
    # joint computation per (needed-attrs) group, so a dashboard hammering a
    # few panels (the realistic shape) amortizes far better than queries
    # spread thinly over every unpublished pair.
    filterable_fallback = []
    for a, b in fallback:
        va, vb = _filter_values(plan, a, rng), _filter_values(plan, b, rng)
        if va and vb:
            filterable_fallback.append((a, b, va, vb))
        if len(filterable_fallback) >= 4:
            break

    queries = []
    for i in range(n_distinct):
        slot = i % 8
        if slot < 3 and filterable_fallback:  # sample path: filtered counts
            a, b, va, vb = filterable_fallback[int(rng.integers(len(filterable_fallback)))]
            queries.append(
                count(where={a: va[int(rng.integers(len(va)))], b: vb[int(rng.integers(len(vb)))]})
            )
        elif slot == 3 and filterable_fallback:  # sample path: filtered topk
            a, b, va, vb = filterable_fallback[int(rng.integers(len(filterable_fallback)))]
            queries.append(
                topk(a, k=int(rng.integers(3, 9)), where={b: vb[int(rng.integers(len(vb)))]})
            )
        elif slot == 4 and cat_attrs:  # marginal path: filtered count
            attr = cat_attrs[int(rng.integers(len(cat_attrs)))]
            values = _categorical_values(plan, attr)
            queries.append(count(where={attr: values[int(rng.integers(len(values)))]}))
        elif slot == 5:  # marginal path: topk ranking
            attr = plan.original_schema.names[int(rng.integers(len(plan.original_schema.names)))]
            if attr not in plan.domain:
                attr = numeric[0]
            queries.append(topk(attr, k=int(rng.integers(3, 12))))
        elif slot == 6:  # marginal path: histogram
            queries.append(
                histogram(numeric[int(rng.integers(len(numeric)))], bins=int(rng.integers(6, 16)))
            )
        elif slot == 7 or not published:
            queries.append(count())
        else:  # degenerate plans: published-pair marginal
            a, b = published[int(rng.integers(len(published)))]
            queries.append(marginal(a, b))
    return queries


# --------------------------------------------------------------- load driver
class _Client(threading.Thread):
    """One closed-loop client: fire, wait for the answer, fire again."""

    def __init__(self, host, port, path, bodies, reps, offset, barrier):
        super().__init__(daemon=True)
        self.host, self.port, self.path = host, port, path
        self.bodies, self.reps, self.offset = bodies, reps, offset
        self.barrier = barrier
        self.latencies: list = []
        self.errors: list = []

    def _request(self, conn, body):
        conn.request("POST", self.path, body=body, headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = response.read()
        if response.status != 200:
            self.errors.append((response.status, payload[:200]))

    def run(self) -> None:
        conn = HTTPConnection(self.host, self.port)
        try:
            self._request(conn, self.bodies[self.offset % len(self.bodies)])  # connect+warm
            self.barrier.wait()
            for i in range(self.reps):
                body = self.bodies[(self.offset + i) % len(self.bodies)]
                start = time.perf_counter()
                try:
                    self._request(conn, body)
                except (RemoteDisconnected, ConnectionError, BrokenPipeError):
                    conn.close()
                    conn = HTTPConnection(self.host, self.port)  # one reconnect retry
                    self._request(conn, body)
                self.latencies.append(time.perf_counter() - start)
        except Exception as exc:  # pragma: no cover - surfaced by the caller
            self.errors.append(repr(exc))
            try:
                self.barrier.wait(timeout=1)
            except threading.BrokenBarrierError:
                pass
        finally:
            conn.close()


def run_load(server, model_name: str, bodies: list, clients: int, reps: int) -> dict:
    """Drive one server with ``clients`` closed-loop threads; measure."""
    host, port = server.server_address[:2]
    path = f"/v1/models/{model_name}/query"
    barrier = threading.Barrier(clients + 1)
    offsets = [i * max(1, len(bodies) // max(clients, 1)) for i in range(clients)]
    workers = [
        _Client(host, port, path, bodies, reps, offsets[i], barrier) for i in range(clients)
    ]
    for worker in workers:
        worker.start()
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        pass  # a client died pre-start; its recorded error is raised below
    start = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - start
    errors = [e for w in workers for e in w.errors]
    if errors:
        raise AssertionError(f"{len(errors)} client error(s); first: {errors[0]}")
    latencies = np.asarray([lat for w in workers for lat in w.latencies])
    p50, p99 = np.percentile(latencies, [50, 99])
    total = clients * reps
    return {
        "clients": clients,
        "requests": total,
        "seconds": elapsed,
        "queries_per_second": total / elapsed,
        "p50_ms": float(p50) * 1000.0,
        "p99_ms": float(p99) * 1000.0,
    }


# -------------------------------------------------------------- verification
def verify_bit_identity(server, model_name: str, queries: list, direct: QueryEngine) -> int:
    """Every HTTP answer must be bit-identical to the direct engine's."""
    host, port = server.server_address[:2]
    conn = HTTPConnection(host, port)
    try:
        for query in queries:
            body = json.dumps({"query": query_to_wire(query), "prefer": str(Prefer.AUTO)})
            conn.request(
                "POST",
                f"/v1/models/{model_name}/query",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200, f"{query!r} failed: {payload}"
            got = answer_from_wire(payload)
            want = direct.run(query)
            assert answers_equal(got, want), (
                f"HTTP answer for {query!r} diverged from the direct engine"
            )
    finally:
        conn.close()
    return len(queries)


def check_hot_reload_invalidation(tmp: Path, scale: ExperimentScale) -> dict:
    """The stale-answer test: a re-deployed model must change served answers.

    Runs at tiny scale regardless of the benchmark scale — invalidation
    correctness does not need a big fit.  Two different fits (different rng)
    have different publication noise, so ``count()`` almost surely differs;
    the served answer after the overwrite must equal the NEW model's direct
    answer, proving the generation-keyed cache could not serve the old one.
    """
    small = ExperimentScale(n_records=min(scale.n_records, 1000), seed=scale.seed)
    small.gum_iterations = min(small.gum_iterations, 5)
    model_a = _fit(small)
    bumped = ExperimentScale(**{**small.__dict__, "seed": small.seed + 101})
    model_b = _fit(bumped)
    path = tmp / "reload.ndpsyn"
    model_a.save(path)

    service = QueryService(
        ModelRegistry(tmp), ServiceConfig(batch_window=0.0, cache_answers=True)
    )
    server, _ = serve_in_thread(service)
    host, port = server.server_address[:2]
    conn = HTTPConnection(host, port)
    body = json.dumps({"query": query_to_wire(count())})

    def ask() -> float:
        conn.request(
            "POST",
            "/v1/models/reload/query",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 200, payload
        return answer_from_wire(payload).value

    try:
        first = ask()
        again = ask()  # second hit comes from the answer cache
        cache_hits = service.cache.stats()["hits"]
        model_b.save(path)
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 5_000_000))
        after = ask()
        expected = QueryEngine(model_b).run(count()).value
    finally:
        conn.close()
        server.shutdown()
        server.server_close()
    return {
        "first": first,
        "after_reload": after,
        "cache_hit_before_reload": cache_hits >= 1,
        "answer_changed": after != first,
        "matches_new_model": after == expected,
        "ok": first == again and cache_hits >= 1 and after != first and after == expected,
    }


# --------------------------------------------------------------------- runner
def run(
    scale: ExperimentScale | None = None,
    clients: int = 16,
    reps: int = 150,
    n_distinct: int = DEFAULT_DISTINCT,
    window: float = DEFAULT_WINDOW,
    sample_records: int | None = None,
) -> dict:
    """Fit once, serve over HTTP, and measure all three configurations."""
    import tempfile

    scale = scale or ExperimentScale()
    model = _fit(scale)
    if sample_records is None:
        # Like the in-process bench, the fallback sample is floored well above
        # tiny fits: a serving tier sizes its cache for answer quality.
        sample_records = max(scale.n_records, 20_000)
    engine_options = {"sample_records": sample_records}

    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        model_path = tmp / "ton.ndpsyn"
        model.save(model_path)
        queries = build_http_workload(model, n_distinct=n_distinct, seed=scale.seed)
        bodies = [
            json.dumps({"query": query_to_wire(q), "prefer": str(Prefer.AUTO)})
            for q in queries
        ]
        # One registry shared by all three configurations: the engine (and its
        # lazily built sample cache) is constructed once, so each measured run
        # sees a warm engine and the configs differ ONLY in window/cache.
        registry = ModelRegistry(tmp)
        configs = {
            "unbatched": ServiceConfig(
                batch_window=0.0, cache_answers=False, engine_options=engine_options
            ),
            "batched": ServiceConfig(
                batch_window=window, cache_answers=False, engine_options=engine_options
            ),
            "cached": ServiceConfig(
                batch_window=window, cache_answers=True, engine_options=engine_options
            ),
        }
        results: dict = {}
        for name, config in configs.items():
            service = QueryService(registry, config)
            server, _ = serve_in_thread(service)
            try:
                row = run_load(server, "ton", bodies, clients=clients, reps=reps)
                row["window_ms"] = config.batch_window * 1000.0
                row["cache"] = config.cache_answers
                stats = service.stats()
                row["batcher"] = stats["batcher"]
                row["cache_stats"] = stats["cache"]
            finally:
                server.shutdown()
                server.server_close()
            results[name] = row

        # Bit-identity: a fresh server (production config) vs an INDEPENDENT
        # engine over an independently loaded copy of the model file.
        from repro.core import NetDPSyn

        direct = QueryEngine(NetDPSyn.load(model_path), **engine_options)
        service = QueryService(registry, configs["cached"])
        server, _ = serve_in_thread(service)
        try:
            n_verified = verify_bit_identity(server, "ton", queries, direct)
        finally:
            server.shutdown()
            server.server_close()

        reload_result = check_hot_reload_invalidation(tmp, scale)

    sample_path_groups = len(
        {q.needed_attrs for q in queries if not direct.answerable_from_marginal(q)}
    )
    return {
        "n_records_fit": scale.n_records,
        "n_distinct_queries": len(queries),
        "n_sample_path_groups": sample_path_groups,
        "sample_records": sample_records,
        "configs": results,
        "window_speedup": (
            results["batched"]["queries_per_second"]
            / results["unbatched"]["queries_per_second"]
        ),
        "cache_speedup": (
            results["cached"]["queries_per_second"]
            / results["unbatched"]["queries_per_second"]
        ),
        "bit_identical": True,  # verify_bit_identity raises otherwise
        "n_verified": n_verified,
        "hot_reload": reload_result,
    }


def main() -> None:
    payload = run(ExperimentScale())
    print(json.dumps(payload, indent=2, default=float))


if __name__ == "__main__":
    main()
