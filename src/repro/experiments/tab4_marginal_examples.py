"""Table 4 (Appendix C): example marginal tables on TON's dstport × type.

Regenerates the appendix's illustration: exact 1-way marginals for dstport
and type, the raw-noise 2-way marginal straight out of the Gaussian
mechanism, and the same marginal after post-processing (non-negative,
integer-consistent) — including the paper's marquee cells (port 80's
injection spike, port 15600's backdoor traffic).
"""

from __future__ import annotations

import numpy as np

from repro.binning.encoder import DatasetEncoder, EncoderConfig
from repro.consistency.engine import make_consistent
from repro.dp.accountant import BudgetLedger
from repro.experiments.runner import ExperimentScale, load_raw_cached
from repro.marginals.compute import compute_marginal
from repro.marginals.publish import publish_marginals
from repro.utils.rng import ensure_rng


def _top_rows(counts: np.ndarray, labels_a, labels_b, k: int = 6) -> list:
    """The k highest-mass (a, b) cells as printable rows."""
    flat = counts.reshape(-1)
    order = np.argsort(flat)[::-1][:k]
    rows = []
    for idx in order:
        i, j = np.unravel_index(idx, counts.shape)
        rows.append((labels_a[i], labels_b[j], float(flat[idx])))
    return rows


def run(scale: ExperimentScale | None = None, top_k: int = 6) -> dict:
    """Return the four panels of Table 4 as row lists."""
    scale = scale or ExperimentScale()
    rng = ensure_rng(scale.seed + 41)
    raw = load_raw_cached("ton", scale)
    ledger = BudgetLedger.from_eps_delta(scale.epsilon, scale.delta)

    encoder = DatasetEncoder(EncoderConfig()).fit(
        raw, ledger.spend(0.1 * ledger.total, "binning"), rng
    )
    encoded = encoder.encode(raw)

    dstport_bounds = encoder.codecs["dstport"].bin_bounds()
    port_labels = [
        f"{int(lo)}" if hi - lo <= 1 else f"{int(lo)}-{int(hi) - 1}"
        for lo, hi in zip(*dstport_bounds)
    ]
    type_labels = list(encoder.codecs["type"].base.categories)

    one_way_port = compute_marginal(encoded, ("dstport",))
    one_way_type = compute_marginal(encoded, ("type",))
    exact_2way = compute_marginal(encoded, ("dstport", "type"))
    noisy = publish_marginals(
        encoded, [("dstport", "type")], ledger.spend(0.8 * ledger.total, "publish"), rng
    )[0]
    processed = make_consistent([noisy], rounds=2)[0]

    port_order = np.argsort(one_way_port.counts)[::-1][:top_k]
    return {
        "one_way_dstport": [
            (port_labels[i], float(one_way_port.counts[i])) for i in port_order
        ],
        "one_way_type": [
            (type_labels[i], float(c)) for i, c in enumerate(one_way_type.counts)
        ],
        "noisy_2way": _top_rows(noisy.counts, port_labels, type_labels, top_k),
        "postprocessed_2way": _top_rows(processed.counts, port_labels, type_labels, top_k),
        "exact_2way": _top_rows(exact_2way.counts, port_labels, type_labels, top_k),
    }
