"""Fleet experiment: multi-worker release throughput and digest identity.

Fit once, sample anywhere: the release phase is pure post-processing, so a
:class:`~repro.fleet.LocalCluster` can fan one release's shards across N
worker processes with zero DP cost and — because every shard's
``SeedSequence`` children are fixed before any worker sees them — zero
output drift.  This experiment measures what the fleet buys and proves what
it must not change:

- **throughput** — wall-clock ``sample(backend="fleet")`` against the serial
  single-node baseline at the *same shard count*, plus a worker-count
  scaling row (the fleet bench gates ``speedup_vs_serial >= 1.5`` at 4
  workers, full scale, mirroring the shared-backend stream gate);
- **digest identity** — every fleet release (every worker count, every
  repetition) must reproduce the serial digest bit-for-bit; asserted here
  and re-asserted by the benchmark at every scale, smoke included.

The cluster is *warmed* before timing (one small release ships the pickled
plan to every worker), so the timed rows measure the steady-state release
path — the fleet's unit of work — not one-time plan shipment, matching how
the process backends are measured against a warm ``open()``-ed pool.
"""

from __future__ import annotations

import json
import os

from repro.core import NetDPSyn, SynthesisConfig
from repro.datasets import load_dataset
from repro.experiments.runner import ExperimentScale
from repro.fleet import LocalCluster
from repro.utils.timer import Timer

#: Worker counts for the scaling rows; the gate reads the 4-worker row.
DEFAULT_WORKERS = (2, 4)

#: Shards per release: enough to keep every 4-worker slot busy twice over.
DEFAULT_SHARDS = 8


def _fit(scale: ExperimentScale) -> NetDPSyn:
    table = load_dataset("ton", n_records=scale.n_records, seed=scale.seed)
    config = SynthesisConfig(epsilon=scale.epsilon, delta=scale.delta)
    config.gum.iterations = scale.gum_iterations
    synthesizer = NetDPSyn(config, rng=scale.seed + 1).fit(table)
    synthesizer.plan()  # build outside every timed region
    return synthesizer


def _best_of(repetitions: int, sample) -> tuple[float, set]:
    """Best wall clock over ``repetitions`` runs + every digest observed."""
    seconds = None
    digests = set()
    for _ in range(max(repetitions, 1)):
        timer = Timer()
        timer.start()
        trace = sample()
        elapsed = timer.stop()
        digests.add(trace.content_digest())
        if seconds is None or elapsed < seconds:
            seconds = elapsed
    return seconds, digests


def run_release(
    scale: ExperimentScale | None = None,
    n_synth: int | None = None,
    workers=DEFAULT_WORKERS,
    shards: int = DEFAULT_SHARDS,
    repetitions: int = 1,
) -> dict:
    """Measure fleet release throughput vs the serial baseline at ``scale``."""
    scale = scale or ExperimentScale()
    n = n_synth if n_synth is not None else scale.n_records
    synthesizer = _fit(scale)
    seed = scale.seed + 101

    serial_seconds, serial_digests = _best_of(
        repetitions,
        lambda: synthesizer.sample(n, rng=seed, shards=shards, backend="serial"),
    )
    (serial_digest,) = serial_digests  # serial repetitions must agree
    rows = {
        "serial-1": {
            "backend": "serial",
            "workers": 1,
            "shards": shards,
            "seconds": serial_seconds,
            "records_per_second": n / serial_seconds if serial_seconds > 0 else None,
            "bit_identical": True,
        }
    }

    for count in workers:
        with LocalCluster(workers=count):
            # Warm the fleet: ships the pickled plan to every worker once,
            # so the timed rows measure the steady-state release path.
            warm = synthesizer.sample(
                min(n, 1000), rng=seed + 1, shards=count, backend="fleet"
            )
            del warm
            seconds, digests = _best_of(
                repetitions,
                lambda: synthesizer.sample(n, rng=seed, shards=shards, backend="fleet"),
            )
        identical = digests == {serial_digest}
        assert identical, (
            f"fleet release at {count} workers diverged from serial: "
            f"{digests} != {serial_digest}"
        )
        rows[f"local{count}"] = {
            "backend": "fleet",
            "workers": count,
            "shards": shards,
            "seconds": seconds,
            "records_per_second": n / seconds if seconds > 0 else None,
            "speedup_vs_serial": serial_seconds / seconds if seconds > 0 else None,
            "bit_identical": identical,
        }

    gate_row = rows.get(f"local{max(workers)}", {})
    return {
        "n_records_fit": scale.n_records,
        "n_synthesized": n,
        "shards": shards,
        "repetitions": repetitions,
        "serial_digest": serial_digest,
        "rows": rows,
        "bit_identical": all(row["bit_identical"] for row in rows.values()),
        "measure": {
            "records_per_second": gate_row.get("records_per_second"),
            "speedup_vs_serial": gate_row.get("speedup_vs_serial"),
            "workers": gate_row.get("workers"),
        },
        "cpu_count": os.cpu_count(),
    }


def run(scale: ExperimentScale | None = None, **kwargs) -> dict:
    return run_release(scale, **kwargs)


if __name__ == "__main__":
    print(json.dumps(run(ExperimentScale()), indent=2, default=float))
