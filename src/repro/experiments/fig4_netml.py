"""Figure 4: NetML anomaly-ratio relative error on packet traces.

For each of NetML's six flow-representation modes an OCSVM computes the
anomaly ratio on raw and synthesized packets; the figure reports
``|ano_syn - ano_raw| / ano_raw``.  Methods whose synthesis destroys flow
structure produce no >= 2-packet flows and surface as NaN/None — the paper's
PGM-on-CAIDA case.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ExperimentScale, load_raw_cached, synthesize_cached
from repro.netml import NETML_MODES, netml_anomaly_ratio

PACKET_DATASETS = ("dc", "caida")


#: Anomaly ratios below this are statistically indistinguishable from zero
#: at our flow counts (a few hundred); the relative-error denominator is
#: floored here so near-zero raw ratios don't explode the metric.
RATIO_FLOOR = 0.02


def run(
    scale: ExperimentScale | None = None,
    datasets: tuple = PACKET_DATASETS,
    methods: tuple = ("netdpsyn", "netshare", "pgm"),
    modes: tuple = NETML_MODES,
    nu: float = 0.1,
) -> dict:
    """Return ``{dataset: {mode: {method: rel_error_or_None}}}`` plus ratios.

    The raw anomaly ratios are included under the ``"_raw_ratio"`` key per
    dataset so Table 2 can reuse them without re-running OCSVM.
    """
    scale = scale or ExperimentScale()
    results: dict = {}
    for dataset in datasets:
        raw = load_raw_cached(dataset, scale)
        raw_ratios = {
            mode: netml_anomaly_ratio(raw, mode, nu=nu, rng=scale.seed + 31)
            for mode in modes
        }
        per_mode: dict = {mode: {} for mode in modes}
        syn_ratios: dict = {}
        for method in methods:
            synthetic, _ = synthesize_cached(method, dataset, scale)
            for mode in modes:
                if synthetic is None:
                    per_mode[mode][method] = None
                    continue
                ratio = netml_anomaly_ratio(synthetic, mode, nu=nu, rng=scale.seed + 31)
                syn_ratios.setdefault(method, {})[mode] = ratio
                raw_ratio = raw_ratios[mode]
                if np.isnan(ratio) or np.isnan(raw_ratio):
                    per_mode[mode][method] = None
                else:
                    per_mode[mode][method] = abs(ratio - raw_ratio) / max(
                        raw_ratio, RATIO_FLOOR
                    )
        results[dataset] = per_mode
        results[dataset]["_raw_ratio"] = raw_ratios
        results[dataset]["_syn_ratio"] = syn_ratios
    return results
