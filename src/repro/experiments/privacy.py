"""The fidelity-vs-leakage frontier: seeded attacks across an epsilon sweep.

PAPERS.md's "Quantifying the Privacy Implications of High-Fidelity Synthetic
Network Traffic" (Tran et al.) argues fidelity and leakage must be measured
*together* — a release can look faithful while quietly memorizing, or
private while useless.  This experiment runs both sides of that trade at
every epsilon in the sweep and emits one **frontier**: per-epsilon
``(mean JSD, MIA AUC, user-level MIA AUC, attribute advantage)`` points,
plus a raw-target calibration row proving the attacks have power (an attack
that cannot beat chance on an unprotected target gates nothing).

Protocol (full rationale in ``docs/privacy.md``):

- 80/20 train/test split; a small *member* subsample of the train split is
  the attack target population (small targets overfit hard — the classic
  Yeom setting), the test split supplies non-members.
- For each epsilon, NetDPSyn synthesizes from the full train split; a
  surrogate classifier trained on the synthetic output is attacked with
  record-level MIA, user-level MIA (users keyed by ``srcip``), and
  attribute inference on the label field.
- Fidelity is the mean JSD over the fidelity suite's categorical attrs,
  synthetic vs the train split it was synthesized from.

``benchmarks/bench_privacy.py`` wraps this with ceilings and writes the
frontier JSON artifact CI uploads; ``tests/test_privacy_acceptance.py``
gates the same attacks at pinned seeds in tier-1.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import (
    attribute_inference_attack,
    loss_threshold_mia,
    user_level_mia,
)
from repro.experiments.appg_mia import _target_model
from repro.experiments.runner import ExperimentScale, split_cached, synthesize_cached
from repro.metrics.distribution import jensen_shannon_divergence

#: The epsilon sweep: a strict budget, the paper's headline setting, and a
#: loose budget — enough to see the frontier bend.
PRIVACY_EPSILONS = (0.5, 2.0, 8.0)

#: Attrs averaged into the frontier's fidelity coordinate (the fidelity
#: suite's categorical JSD set; missing attrs are skipped per dataset).
FIDELITY_ATTRS = ("proto", "service", "type", "dstport", "srcip", "dstip")

#: Member subsample size (the classic Yeom setting: small training sets
#: overfit hard, so the raw calibration has a visible membership signal).
TARGET_SUBSAMPLE = 400


def _mean_jsd(reference, synthetic, attrs=FIDELITY_ATTRS) -> float:
    """Mean Jensen-Shannon divergence over the shared categorical attrs."""
    names = [a for a in attrs if a in reference.schema.names]
    values = [
        jensen_shannon_divergence(reference.column(a), synthetic.column(a)) for a in names
    ]
    return float(np.mean(values)) if values else float("nan")


def _attack_suite(
    target_model,
    attribute_source,
    members,
    non_members,
    label: str,
    user_key: str,
    seed: int,
) -> dict:
    """All three attacks against one target; returns one frontier row's metrics.

    ``target_model`` is the fitted classifier under MIA; ``attribute_source``
    is the table the attribute-inference model trains on (the synthetic
    release, or the members themselves for the raw calibration).
    """
    X_members, _ = members.feature_matrix(exclude=(label,))
    y_members = np.asarray(members.column(label))
    X_non, _ = non_members.feature_matrix(exclude=(label,))
    y_non = np.asarray(non_members.column(label))

    record = loss_threshold_mia(
        target_model, X_members, y_members, X_non, y_non, rng=seed + 67
    )
    user = user_level_mia(
        target_model,
        X_members,
        y_members,
        np.asarray(members.column(user_key)),
        X_non,
        y_non,
        np.asarray(non_members.column(user_key)),
        rng=seed + 68,
    )
    attribute = attribute_inference_attack(
        attribute_source, members, non_members, sensitive=label, rng=seed + 69
    )
    return {
        "mia_auc": record.auc,
        "mia_accuracy": record.accuracy,
        "user_mia_auc": user.auc,
        "user_mia_accuracy": user.accuracy,
        "attr_advantage": attribute.advantage,
        "attr_member_accuracy": attribute.member_accuracy,
        "attr_non_member_accuracy": attribute.non_member_accuracy,
    }


def run(
    scale: ExperimentScale | None = None,
    dataset: str = "ton",
    eps_values: tuple = PRIVACY_EPSILONS,
    model: str = "overfit-rf",
    user_key: str = "srcip",
    target_subsample: int = TARGET_SUBSAMPLE,
) -> dict:
    """Measure the fidelity-vs-leakage frontier; returns frontier + gates.

    ``result["frontier"]`` is the per-epsilon point list; ``result["raw"]``
    is the unprotected-target calibration; ``result["gates"]`` holds the
    worst (largest) leakage values across the sweep — the numbers
    ``compare_baselines.py`` checks against the committed ceilings.
    """
    scale = scale or ExperimentScale()
    train, test = split_cached(dataset, scale)
    label = train.schema.label_field.name

    sub_rng = np.random.default_rng(scale.seed + 71)
    sub_idx = sub_rng.choice(
        train.n_records, size=min(target_subsample, train.n_records), replace=False
    )
    members = train.take(sub_idx)
    X_members, _ = members.feature_matrix(exclude=(label,))
    y_members = np.asarray(members.column(label))

    # Calibration: attack a model trained directly on the members (and an
    # attribute model trained on the members).  If these numbers sit at
    # chance, the attacks are broken and every ceiling below is vacuous.
    raw_target = _target_model(model, scale.seed + 61)
    raw_target.fit(X_members, y_members)
    raw = _attack_suite(
        raw_target, members, members, test, label, user_key, scale.seed
    )

    frontier = []
    for eps in eps_values:
        synthetic, _ = synthesize_cached(
            "netdpsyn", dataset, scale, epsilon=eps, from_train=True
        )
        X_syn, _ = synthetic.feature_matrix(exclude=(label,))
        y_syn = np.asarray(synthetic.column(label))
        surrogate = _target_model(model, scale.seed + 61)
        surrogate.fit(X_syn, y_syn)
        point = {"epsilon": eps, "jsd": _mean_jsd(train, synthetic)}
        point.update(
            _attack_suite(surrogate, synthetic, members, test, label, user_key, scale.seed)
        )
        frontier.append(point)

    gates = {
        "mia_auc_worst": max(p["mia_auc"] for p in frontier),
        "user_mia_auc_worst": max(p["user_mia_auc"] for p in frontier),
        "attr_advantage_worst": max(p["attr_advantage"] for p in frontier),
    }
    return {
        "dataset": dataset,
        "n_records": scale.n_records,
        "seed": scale.seed,
        "label": label,
        "user_key": user_key,
        "epsilons": list(eps_values),
        "raw": raw,
        "frontier": frontier,
        "gates": gates,
    }


def frontier_artifact(result: dict) -> dict:
    """The versioned frontier JSON artifact CI uploads next to the timings."""
    return {
        "format": "repro-privacy-frontier",
        "version": 1,
        "dataset": result["dataset"],
        "n_records": result["n_records"],
        "seed": result["seed"],
        "points": [
            {
                "epsilon": p["epsilon"],
                "jsd": p["jsd"],
                "mia_auc": p["mia_auc"],
                "user_mia_auc": p["user_mia_auc"],
                "attr_advantage": p["attr_advantage"],
            }
            for p in result["frontier"]
        ],
        "raw_calibration": {
            "mia_auc": result["raw"]["mia_auc"],
            "user_mia_auc": result["raw"]["user_mia_auc"],
            "attr_advantage": result["raw"]["attr_advantage"],
        },
        "gates": dict(result["gates"]),
    }
