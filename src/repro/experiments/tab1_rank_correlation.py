"""Table 1: Spearman rank correlation of the model ranking, flow datasets.

"Instead of always achieving high accuracy, it is more important that a
classification model achieves similar accuracy on raw and synthesized
datasets" — the five models are ranked by accuracy under raw vs synthetic
training and the rankings' Spearman correlation is reported.  Higher is
better; the paper reports NetDPSyn highest on all three flow datasets.
"""

from __future__ import annotations

from repro.experiments import fig3_classification
from repro.experiments.runner import ALL_METHODS, ExperimentScale
from repro.metrics import spearman_rank_correlation


def from_fig3(fig3_results: dict, methods: tuple = ALL_METHODS) -> dict:
    """Derive ``{dataset: {method: rho_or_None}}`` from Figure 3's output."""
    table: dict = {}
    for dataset, per_model in fig3_results.items():
        models = list(per_model)
        real = [per_model[m].get("real") for m in models]
        row: dict = {}
        for method in methods:
            scores = [per_model[m].get(method) for m in models]
            pairs = [
                (r, s) for r, s in zip(real, scores) if r is not None and s is not None
            ]
            if len(pairs) < 2:
                row[method] = None
            else:
                row[method] = spearman_rank_correlation(
                    [p[0] for p in pairs], [p[1] for p in pairs]
                )
        table[dataset] = row
    return table


def run(scale: ExperimentScale | None = None, **kwargs) -> dict:
    """Compute Fig. 3 then reduce it to the Table 1 rank correlations."""
    results = fig3_classification.run(scale, **kwargs)
    return from_fig3(results)
