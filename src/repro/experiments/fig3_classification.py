"""Figure 3: flow-classification accuracy across synthesis methods.

Five classifiers are trained on raw (80% split) or synthesized-from-train
data and evaluated on the held-out 20% of the raw trace (train-on-synthetic,
test-on-real).  The paper's shape: NetDPSyn ≈ PGM ≈ Real on TON, NetShare
far below; near-ceiling accuracy for everyone on the imbalanced binary
UGR16/CIDDS.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import (
    ALL_METHODS,
    ExperimentScale,
    split_cached,
    synthesize_cached,
)
from repro.ml import accuracy_score, build_classifier
from repro.ml.model_zoo import PAPER_MODELS

FLOW_DATASETS = ("ton", "ugr16", "cidds")


def _features(table, label: str):
    X, _ = table.feature_matrix(exclude=(label,))
    y = np.asarray(table.column(label))
    return X, y


def run(
    scale: ExperimentScale | None = None,
    datasets: tuple = FLOW_DATASETS,
    methods: tuple = ("real",) + ALL_METHODS,
    models: tuple = PAPER_MODELS,
) -> dict:
    """Return ``{dataset: {model: {method: accuracy_or_None}}}``."""
    scale = scale or ExperimentScale()
    results: dict = {}
    for dataset in datasets:
        train, test = split_cached(dataset, scale)
        label = train.schema.label_field.name
        X_test, y_test = _features(test, label)
        per_model: dict = {m: {} for m in models}
        for method in methods:
            if method == "real":
                source = train
            else:
                source, _ = synthesize_cached(method, dataset, scale, from_train=True)
            if source is None:
                for model in models:
                    per_model[model][method] = None
                continue
            X_train, y_train = _features(source, label)
            for model in models:
                classifier = build_classifier(model, rng=scale.seed + 23)
                classifier.fit(X_train, y_train)
                accuracy = accuracy_score(y_test, classifier.predict(X_test))
                per_model[model][method] = float(accuracy)
        results[dataset] = per_model
    return results
