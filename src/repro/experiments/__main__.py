"""CLI: regenerate any paper table/figure from the command line.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig3 --records 6000 --seed 0
    python -m repro.experiments all --records 4000

Results print as an indented summary; benchmarks under ``benchmarks/``
wrap the same functions with pytest-benchmark and shape assertions.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import (
    ablations,
    appg_mia,
    engine_scaling,
    fig2_sketch,
    fit_scaling,
    fleet,
    http_serving,
    privacy,
    reliability,
    serving,
    stream_throughput,
    fig3_classification,
    fig4_netml,
    fig5_fig6_attributes,
    fig7_tab67_epsilon,
    fig8_gum_vs_gummi,
    tab1_rank_correlation,
    tab2_netml_rank,
    tab3_runtime,
    tab4_marginal_examples,
    tab5_datasets,
)
from repro.experiments.runner import ExperimentScale

EXPERIMENTS = {
    "fig2": lambda s: fig2_sketch.run(s),
    "fig3": lambda s: fig3_classification.run(s),
    "tab1": lambda s: tab1_rank_correlation.run(s),
    "fig4": lambda s: fig4_netml.run(s),
    "tab2": lambda s: tab2_netml_rank.run(s),
    "tab3": lambda s: tab3_runtime.run(s),
    "tab4": lambda s: tab4_marginal_examples.run(s),
    "tab5": lambda s: tab5_datasets.run(s),
    "fig5": lambda s: fig5_fig6_attributes.run(s, dataset="ton"),
    "fig6": lambda s: fig5_fig6_attributes.run(s, dataset="caida"),
    "fig7": lambda s: fig7_tab67_epsilon.run(s),
    "tab6": lambda s: fig7_tab67_epsilon.run_sweep(s, dataset="ton"),
    "tab7": lambda s: fig7_tab67_epsilon.run_sweep(s, dataset="ugr16"),
    "fig8": lambda s: fig8_gum_vs_gummi.run(s),
    "appg": lambda s: appg_mia.run(s),
    "privacy": lambda s: privacy.run(s),
    "enginescale": lambda s: engine_scaling.run(s),
    "fitscale": lambda s: fit_scaling.run(s),
    "streamscale": lambda s: stream_throughput.run(s),
    "serve": lambda s: serving.run(s),
    "servehttp": lambda s: http_serving.run(s),
    "reliability": lambda s: reliability.run(s),
    "fleet": lambda s: fleet.run(s),
    "ablations": lambda s: {
        "allocation": ablations.run_allocation(s),
        "binning": ablations.run_binning_threshold(s),
        "rules": ablations.run_protocol_rules(s),
    },
}


def _sanitize(obj):
    """Make result dicts JSON-friendly (tuple keys, numpy scalars)."""
    if isinstance(obj, dict):
        return {str(k): _sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_sanitize(v) for v in obj]
    if hasattr(obj, "item"):
        return obj.item()
    return obj


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate NetDPSyn paper tables/figures.",
    )
    parser.add_argument("name", help="experiment id (or 'list' / 'all')")
    parser.add_argument("--records", type=int, default=6000, help="records per dataset")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--epsilon", type=float, default=2.0)
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print per-stage fit timings (synth.fit_report) for every synthesis",
    )
    args = parser.parse_args(argv)

    if args.name == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    scale = ExperimentScale(
        n_records=args.records,
        seed=args.seed,
        epsilon=args.epsilon,
        verbose=args.verbose,
    )
    names = list(EXPERIMENTS) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2

    for name in names:
        print(f"=== {name} ===")
        result = EXPERIMENTS[name](scale)
        print(json.dumps(_sanitize(result), indent=2, default=str))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
