"""Fit scaling: private-phase throughput across exact-count executors.

The fit hot path is the exact-count work — the InDif scan over all
``d(d-1)/2`` attribute pairs plus the published contingency tables.  Both
are deterministic, so ``config.fit_engine`` can fan them out across workers
(batched cell-code kernel) while every noise draw stays on the single fit
stream — making parallel fits bit-identical to the serial reference
(:data:`FIT_GOLDEN` pins the pre-pipeline output).

This experiment fits one model per executor configuration on the same wide
workload (ToN flows encode to 12 attributes, 66 pairs; ``dataset="caida"``
gives 16 attributes / 120 pairs) with the same fit seed and reports, from
the per-stage instrumentation in ``synth.fit_report``:

- ``marginal_seconds`` — selection + publish stage wall clock, the part the
  executor touches and the number the speedup gate in
  ``benchmarks/bench_fit_scaling.py`` applies to;
- ``fit_seconds`` — end-to-end fit wall clock (Amdahl context: binning and
  consistency are serial);
- the published-marginal digest, asserted identical across configurations.
"""

from __future__ import annotations

import hashlib
import os
import tempfile

import numpy as np

from repro.core import NetDPSyn, SynthesisConfig
from repro.datasets import load_dataset
from repro.engine import EngineConfig
from repro.experiments.runner import ExperimentScale

#: (row key, backend, workers) grid; backend ``None`` is the inline serial
#: reference path (``fit_engine=None``), the baseline every speedup is
#: measured against.  ``batched-1`` isolates the cell-code kernel's
#: single-worker gain from the process fan-out on top of it.
DEFAULT_GRID = (
    ("serial", None, None),
    ("batched-1", "serial", 1),
    ("process-2", "process", 2),
    ("process-4", "process", 4),
)

#: SHA-256 of the published marginals the PRE-PIPELINE serial ``fit()``
#: produces for the pinned workload of :func:`verify_fit_identity` (captured
#: from the seed repo before the staged-pipeline refactor).  Serial and
#: executor fits alike must keep reproducing it bit for bit.
FIT_GOLDEN = "a6a8d533b8bbc883d0ebea428cb67587575aced749623177cbff977e2c9b2c6a"


def published_digest(marginals) -> str:
    """Stable content hash of a published-marginal list (order-sensitive)."""
    h = hashlib.sha256()
    for m in marginals:
        h.update(("|".join(m.attrs)).encode())
        h.update(np.ascontiguousarray(m.counts, dtype=np.float64).tobytes())
        h.update(repr((m.rho, m.sigma)).encode())
    return h.hexdigest()


def _config(scale: ExperimentScale, fit_engine: EngineConfig | None) -> SynthesisConfig:
    config = SynthesisConfig(
        epsilon=scale.epsilon, delta=scale.delta, fit_engine=fit_engine
    )
    config.gum.iterations = scale.gum_iterations
    return config


def verify_fit_identity() -> dict:
    """Check the staged pipeline against the pre-refactor fit golden digest.

    Runs the exact workload the golden was captured on (ton n=2500 seed=31,
    eps=2.0, fit rng=7) on the serial reference path.
    """
    table = load_dataset("ton", n_records=2500, seed=31)
    config = SynthesisConfig(epsilon=2.0)
    config.gum.iterations = 15
    synthesizer = NetDPSyn(config, rng=7).fit(table)
    digest = published_digest(synthesizer.published)
    return {
        "digest": digest,
        "golden": FIT_GOLDEN,
        "matches": digest == FIT_GOLDEN,
    }


def verify_save_load_identity(
    synthesizer: NetDPSyn, n: int = 500, seed: int = 9
) -> dict:
    """Round-trip ``synthesizer`` through save/load; compare fixed-rng samples."""
    fd, path = tempfile.mkstemp(suffix=".ndpsyn")
    os.close(fd)
    try:
        synthesizer.save(path)
        loaded = NetDPSyn.load(path)
        original = synthesizer.sample(n, rng=seed).content_digest()
        restored = loaded.sample(n, rng=seed).content_digest()
    finally:
        os.unlink(path)
    return {
        "original": original,
        "restored": restored,
        "matches": original == restored,
    }


def run(
    scale: ExperimentScale | None = None,
    grid=DEFAULT_GRID,
    repetitions: int = 1,
    dataset: str = "ton",
    check_fit_identity: bool = True,
    check_save_load: bool = True,
) -> dict:
    """Fit under every executor configuration in ``grid``; time the stages.

    With ``repetitions > 1`` the best (minimum) marginal-phase time per
    configuration is reported, benchmark-style.  Every configuration uses the
    same fit seed, so the published digests must all be identical.
    """
    scale = scale or ExperimentScale()
    table = load_dataset(dataset, n_records=scale.n_records, seed=scale.seed)

    rows = {}
    last_fit = None
    for key, backend, workers in grid:
        engine = None if backend is None else EngineConfig(
            backend=backend, max_workers=workers
        )
        marginal_seconds = None
        fit_seconds = None
        digest = None
        report = None
        for _ in range(max(repetitions, 1)):
            synthesizer = NetDPSyn(_config(scale, engine), rng=scale.seed + 1)
            synthesizer.fit(table)
            stage = synthesizer.fit_report.stage_seconds
            marginal = stage["selection"] + stage["publish"]
            if marginal_seconds is None or marginal < marginal_seconds:
                marginal_seconds = marginal
                fit_seconds = synthesizer.fit_report.total_seconds
                report = synthesizer.fit_report.as_dict()
            digest = published_digest(synthesizer.published)
            last_fit = synthesizer
        rows[key] = {
            "backend": backend,
            "workers": workers,
            "marginal_seconds": marginal_seconds,
            "fit_seconds": fit_seconds,
            "digest": digest,
            "fit_report": report,
        }

    baseline = rows.get("serial")
    for row in rows.values():
        row["marginal_speedup"] = (
            baseline["marginal_seconds"] / row["marginal_seconds"]
            if baseline and row["marginal_seconds"] > 0
            else None
        )
        row["fit_speedup"] = (
            baseline["fit_seconds"] / row["fit_seconds"]
            if baseline and row["fit_seconds"] > 0
            else None
        )

    result = {
        "dataset": dataset,
        "n_records": scale.n_records,
        "n_attributes": len(last_fit.encoder.schema.names),
        "n_pairs": last_fit.fit_report.n_pairs,
        "repetitions": repetitions,
        "rows": rows,
    }
    if check_fit_identity:
        result["fit_identity"] = verify_fit_identity()
    if check_save_load:
        result["save_load"] = verify_save_load_identity(last_fit)
    return result
